// Key-rotation & breach-response audit (paper Section 5.5 scenarios):
//
//  Scenario 1/2 — storage or filesystem compromise: show that no file
//  contains plaintext.
//  Scenario 3 — DEK compromise: "leak" one file's DEK, then run a
//  compaction; the leaked key can no longer decrypt anything because
//  the file it protected was rewritten under a new DEK and the old key
//  destroyed at the KDS.
//
// Usage: key_rotation_audit

#include <cstdio>
#include <memory>

#include "crypto/cipher.h"
#include "env/env.h"
#include "kds/local_kds.h"
#include "lsm/db.h"
#include "lsm/file_names.h"
#include "shield/file_crypto.h"

namespace {
using namespace shield;  // example code; keep the demo readable
}

int main() {
  auto env = NewMemEnv();
  auto kds = std::make_shared<LocalKds>();

  Options options;
  options.env = env.get();
  options.write_buffer_size = 32 * 1024;
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = kds;

  DB* raw_db = nullptr;
  Status s = DB::Open(options, "/audit", &raw_db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw_db);

  for (int i = 0; i < 2000; i++) {
    db->Put(WriteOptions(), "card:" + std::to_string(i),
            "PAN-4111-1111-1111-" + std::to_string(1000 + i));
  }
  db->Flush();

  // --- Scenario 1+2: inspect every raw file for plaintext.
  std::vector<std::string> children;
  env->GetChildren("/audit", &children);
  bool leaked = false;
  for (const auto& child : children) {
    std::string raw;
    if (ReadFileToString(env.get(), "/audit/" + child, &raw).ok() &&
        raw.find("PAN-4111") != std::string::npos) {
      leaked = true;
    }
  }
  printf("scenario 1/2 (stolen media / fs access): plaintext found: %s\n",
         leaked ? "YES — FAILURE" : "none");

  // --- Scenario 3: a strong attacker steals ONE file's DEK.
  ShieldFileHeader stolen_header;
  std::string stolen_file;
  for (const auto& child : children) {
    if (child.find(".sst") != std::string::npos &&
        ReadShieldFileHeader(env.get(), "/audit/" + child, &stolen_header)
            .ok()) {
      stolen_file = child;
      break;
    }
  }
  Dek stolen_dek;
  if (stolen_file.empty() ||
      !kds->GetDek("attacker", stolen_header.dek_id, &stolen_dek).ok()) {
    fprintf(stderr, "demo setup failed\n");
    return 1;
  }
  printf("scenario 3: attacker holds DEK %s... of %s\n",
         stolen_header.dek_id.ToHex().substr(0, 12).c_str(),
         stolen_file.c_str());
  printf("  exposure is limited to that ONE file (unique DEK per file)\n");

  // Operator response: rotate by compacting. Outputs get fresh DEKs;
  // the stolen DEK is destroyed together with its file.
  db->CompactRange(nullptr, nullptr);
  db->WaitForIdle();

  const bool file_gone = !env->FileExists("/audit/" + stolen_file);
  Dek refetched;
  const bool key_dead =
      kds->GetDek("attacker", stolen_header.dek_id, &refetched).IsNotFound();
  printf("  after compaction: stolen file deleted: %s, stolen DEK "
         "destroyed at KDS: %s\n",
         file_gone ? "yes" : "NO", key_dead ? "yes" : "NO");

  // The data, under new keys, is still fully readable by the DB.
  std::string value;
  s = db->Get(ReadOptions(), "card:7", &value);
  printf("  service still reads its data: %s\n",
         s.ok() ? "yes" : s.ToString().c_str());

  printf("\nkey_rotation_audit %s\n",
         (!leaked && file_gone && key_dead && s.ok()) ? "OK" : "FAILED");
  return (!leaked && file_gone && key_dead && s.ok()) ? 0 : 1;
}
