// Quickstart: open a SHIELD-encrypted LSM-KVS, write, read, scan.
//
// Usage: quickstart [db_path]
//
// Every persistent file (WAL, SST, Manifest) is encrypted with its own
// DEK; a monolithic deployment needs zero extra infrastructure (an
// in-process KDS is created automatically).

#include <cstdio>
#include <memory>

#include "lsm/db.h"

using shield::DB;
using shield::Iterator;
using shield::Options;
using shield::ReadOptions;
using shield::Status;
using shield::WriteBatch;
using shield::WriteOptions;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/shield_quickstart_db";

  Options options;
  options.create_if_missing = true;
  // Turn on SHIELD: per-file DEKs, rotation via compaction, buffered
  // WAL encryption. Everything else is default.
  options.encryption.mode = shield::EncryptionMode::kShield;

  shield::DestroyDB(options, path);  // fresh start for the demo

  DB* raw_db = nullptr;
  Status s = DB::Open(options, path, &raw_db);
  if (!s.ok()) {
    fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw_db);

  // Single writes.
  s = db->Put(WriteOptions(), "user:1001:name", "ada");
  if (!s.ok()) {
    fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
    return 1;
  }
  db->Put(WriteOptions(), "user:1001:email", "ada@example.com");

  // Atomic multi-key updates.
  WriteBatch batch;
  batch.Put("user:1002:name", "grace");
  batch.Put("user:1002:email", "grace@example.com");
  batch.Delete("user:1001:email");
  db->Write(WriteOptions(), &batch);

  // Point reads.
  std::string value;
  s = db->Get(ReadOptions(), "user:1002:name", &value);
  printf("user:1002:name = %s\n", s.ok() ? value.c_str() : s.ToString().c_str());
  s = db->Get(ReadOptions(), "user:1001:email", &value);
  printf("user:1001:email -> %s (deleted in the batch)\n",
         s.IsNotFound() ? "NotFound" : "unexpected!");

  // Range scan.
  printf("\nall keys under user:1002:\n");
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  for (iter->Seek("user:1002:"); iter->Valid(); iter->Next()) {
    if (!iter->key().starts_with("user:1002:")) {
      break;
    }
    printf("  %s = %s\n", iter->key().ToString().c_str(),
           iter->value().ToString().c_str());
  }

  // Persist the memtable and show internal state.
  db->Flush();
  std::string stats;
  if (db->GetProperty("shield.stats", &stats)) {
    printf("\n%s", stats.c_str());
  }
  std::string kds_requests;
  db->GetProperty("shield.kds-requests", &kds_requests);
  printf("DEKs requested from the KDS so far: %s\n", kds_requests.c_str());

  printf("\nquickstart OK — encrypted database at %s\n", path.c_str());
  return 0;
}
