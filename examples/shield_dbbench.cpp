// shield_dbbench — a db_bench-style CLI for this engine. Lets users
// run the same workloads as the paper's evaluation against any engine
// configuration without writing code.
//
// Usage:
//   shield_dbbench [--db=/path] [--benchmarks=fillrandom,readrandom,...]
//                  [--num=100000] [--reads=50000] [--key_size=16]
//                  [--value_size=100] [--threads=1]
//                  [--encryption=none|encfs|shield]
//                  [--wal_buffer=512] [--encryption_threads=1]
//                  [--compaction=leveled|universal|fifo]
//                  [--write_buffer=4194304] [--sync] [--bloom_bits=0]
//                  [--use_existing_db] [--trace=/path/to/trace.bin]
//
// --trace records every span of the run into a binary trace file
// (analyze/replay it with tools/trace_replay).
//
// Benchmarks: fillrandom, fillseq, readrandom, readwritemix (50/50),
//             ycsb-a..ycsb-f, mixgraph, compact, stats

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/mixgraph.h"
#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "benchutil/ycsb.h"
#include "crypto/secure_random.h"
#include "lsm/db.h"
#include "lsm/filter_policy.h"

namespace {

using namespace shield;
using namespace shield::bench;

struct Flags {
  std::string db = "/tmp/shield_dbbench";
  std::string benchmarks = "fillrandom,readrandom,stats";
  uint64_t num = 100'000;
  uint64_t reads = 50'000;
  size_t key_size = 16;
  size_t value_size = 100;
  int threads = 1;
  std::string encryption = "none";
  size_t wal_buffer = 512;
  int encryption_threads = 1;
  std::string compaction = "leveled";
  size_t write_buffer = 4 << 20;
  bool sync = false;
  int bloom_bits = 0;
  bool use_existing_db = false;
  std::string trace;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (strncmp(arg, prefix.c_str(), prefix.size()) == 0) {
    *out = arg + prefix.size();
    return true;
  }
  return false;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t end = s.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    std::string value;
    if (ParseFlag(argv[i], "db", &value)) {
      flags.db = value;
    } else if (ParseFlag(argv[i], "benchmarks", &value)) {
      flags.benchmarks = value;
    } else if (ParseFlag(argv[i], "num", &value)) {
      flags.num = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "reads", &value)) {
      flags.reads = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "key_size", &value)) {
      flags.key_size = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "value_size", &value)) {
      flags.value_size = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "threads", &value)) {
      flags.threads = atoi(value.c_str());
    } else if (ParseFlag(argv[i], "encryption", &value)) {
      flags.encryption = value;
    } else if (ParseFlag(argv[i], "wal_buffer", &value)) {
      flags.wal_buffer = strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "encryption_threads", &value)) {
      flags.encryption_threads = atoi(value.c_str());
    } else if (ParseFlag(argv[i], "compaction", &value)) {
      flags.compaction = value;
    } else if (ParseFlag(argv[i], "write_buffer", &value)) {
      flags.write_buffer = strtoull(value.c_str(), nullptr, 10);
    } else if (strcmp(argv[i], "--sync") == 0) {
      flags.sync = true;
    } else if (ParseFlag(argv[i], "bloom_bits", &value)) {
      flags.bloom_bits = atoi(value.c_str());
    } else if (strcmp(argv[i], "--use_existing_db") == 0) {
      flags.use_existing_db = true;
    } else if (ParseFlag(argv[i], "trace", &value)) {
      flags.trace = value;
    } else {
      fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 1;
    }
  }

  Options options;
  options.write_buffer_size = flags.write_buffer;
  if (flags.compaction == "universal") {
    options.compaction_style = CompactionStyle::kUniversal;
  } else if (flags.compaction == "fifo") {
    options.compaction_style = CompactionStyle::kFifo;
  } else if (flags.compaction != "leveled") {
    fprintf(stderr, "bad --compaction=%s\n", flags.compaction.c_str());
    return 1;
  }
  if (flags.encryption == "encfs") {
    options.encryption.mode = EncryptionMode::kEncFS;
    options.encryption.instance_key = crypto::SecureRandomString(16);
    options.encryption.wal_buffer_size = flags.wal_buffer;
  } else if (flags.encryption == "shield") {
    options.encryption.mode = EncryptionMode::kShield;
    options.encryption.wal_buffer_size = flags.wal_buffer;
    options.encryption.encryption_threads = flags.encryption_threads;
  } else if (flags.encryption != "none") {
    fprintf(stderr, "bad --encryption=%s\n", flags.encryption.c_str());
    return 1;
  }
  std::unique_ptr<const FilterPolicy> bloom;
  if (flags.bloom_bits > 0) {
    bloom.reset(NewBloomFilterPolicy(flags.bloom_bits));
    options.filter_policy = bloom.get();
  }

  if (!flags.use_existing_db) {
    DestroyDB(options, flags.db);
  }
  DB* raw_db = nullptr;
  Status s = DB::Open(options, flags.db, &raw_db);
  if (!s.ok()) {
    fprintf(stderr, "open %s failed: %s\n", flags.db.c_str(),
            s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw_db);

  if (!flags.trace.empty()) {
    s = db->StartTrace(TraceOptions(), flags.trace);
    if (!s.ok()) {
      fprintf(stderr, "StartTrace %s failed: %s\n", flags.trace.c_str(),
              s.ToString().c_str());
      return 1;
    }
  }

  WorkloadOptions workload;
  workload.num_ops = flags.num;
  workload.num_keys = flags.num;
  workload.key_size = flags.key_size;
  workload.value_size = flags.value_size;
  workload.num_threads = flags.threads;
  workload.sync_writes = flags.sync;

  printf("%-40s %14s %12s %12s\n", "benchmark", "ops/sec", "avg(us)",
         "p99(us)");
  for (const std::string& name : Split(flags.benchmarks, ',')) {
    if (name.empty()) {
      continue;
    }
    BenchResult result;
    if (name == "fillrandom") {
      result = FillRandom(db.get(), workload, name);
    } else if (name == "fillseq") {
      result = FillSeq(db.get(), workload, name);
    } else if (name == "readrandom") {
      WorkloadOptions reads = workload;
      reads.num_ops = flags.reads;
      result = ReadRandom(db.get(), reads, name);
    } else if (name == "readwritemix") {
      WorkloadOptions mixed = workload;
      mixed.num_ops = flags.reads;
      mixed.read_percent = 50;
      result = ReadWriteMix(db.get(), mixed, name);
    } else if (name.rfind("ycsb-", 0) == 0 && name.size() == 6) {
      const char which = name[5];
      if (which < 'a' || which > 'f') {
        fprintf(stderr, "unknown benchmark: %s\n", name.c_str());
        return 1;
      }
      WorkloadOptions ycsb = workload;
      ycsb.num_ops = flags.reads;
      result = RunYcsb(db.get(), static_cast<YcsbKind>(which - 'a'), ycsb);
      result.label = name;
    } else if (name == "mixgraph") {
      WorkloadOptions mix = workload;
      mix.num_ops = flags.reads;
      result = RunMixgraph(db.get(), mix);
      result.label = name;
    } else if (name == "compact") {
      db->CompactRange(nullptr, nullptr);
      db->WaitForIdle();
      printf("%-40s (done)\n", name.c_str());
      continue;
    } else if (name == "stats") {
      std::string stats;
      db->GetProperty("shield.stats", &stats);
      printf("%s", stats.c_str());
      std::string kds;
      if (db->GetProperty("shield.kds-requests", &kds)) {
        printf("kds-requests: %s\n", kds.c_str());
      }
      continue;
    } else {
      fprintf(stderr, "unknown benchmark: %s\n", name.c_str());
      return 1;
    }
    printf("%-40s %14.0f %12.1f %12.1f\n", result.label.c_str(),
           result.ops_per_sec(), result.avg_micros(), result.p99_micros());
    fflush(stdout);
  }
  if (!flags.trace.empty()) {
    s = db->EndTrace();
    if (!s.ok()) {
      fprintf(stderr, "EndTrace failed: %s\n", s.ToString().c_str());
      return 1;
    }
    printf("trace written to %s\n", flags.trace.c_str());
  }
  return 0;
}
