// Disaggregated-storage scenario (paper Sections 5.4-5.6):
//
//   compute server            storage cluster (simulated network)
//   ┌───────────────┐   RTT+bw   ┌──────────────────────────────┐
//   │ primary DB    │──────────▶│ shared files (WAL, SST, ...)  │
//   │ (SHIELD)      │            │  + offloaded compaction       │
//   └───────────────┘            │    worker (own KDS identity)  │
//   ┌───────────────┐            └──────────────────────────────┘
//   │ read-only     │──────────────────────▲
//   │ instance      │   resolves DEKs from file-embedded DEK-IDs
//   └───────────────┘   through the shared KDS
//
// Usage: disaggregated_offload

#include <cstdio>
#include <memory>

#include "ds/compaction_worker.h"
#include "ds/storage_service.h"
#include "kds/sim_kds.h"
#include "lsm/db.h"

namespace {
using namespace shield;  // example code; keep the demo readable
}

int main() {
  // --- The storage cluster: a shared namespace behind a simulated
  // 1 Gbps / 500 us network.
  auto backing = NewMemEnv();
  NetworkSimOptions network;
  network.rtt_micros = 200;  // small so the demo runs fast
  network.bandwidth_bytes_per_sec = 125ull * 1000 * 1000;
  StorageService storage(backing.get(), network);

  // --- The KDS (Secure-Swarm-Toolkit-style): per-server
  // authorization; all three parties are enrolled.
  auto kds = std::make_shared<SimKds>(SimKdsOptions{
      .request_latency_us = 500,
      .one_time_provisioning = false,
      .require_authorization = true});
  kds->AuthorizeServer("primary");
  kds->AuthorizeServer("compaction-worker");
  kds->AuthorizeServer("read-replica");

  // --- The offloaded compaction worker, colocated with storage.
  Options engine_options;
  engine_options.write_buffer_size = 64 * 1024;
  engine_options.encryption.mode = EncryptionMode::kShield;
  engine_options.encryption.kds = kds;

  RemoteCompactionWorker::WorkerOptions worker_options;
  worker_options.env = storage.server_env();
  worker_options.db_options = engine_options;
  worker_options.db_options.env = storage.server_env();
  worker_options.db_options.encryption.server_id = "compaction-worker";
  worker_options.server_id = "compaction-worker";
  RemoteCompactionWorker worker(worker_options);

  // --- The primary compute instance.
  IoStats compute_traffic;
  auto compute_env = NewRemoteEnv(&storage, &compute_traffic);
  Options primary_options = engine_options;
  primary_options.env = compute_env.get();
  primary_options.encryption.server_id = "primary";
  primary_options.compaction_service = &worker;

  DB* raw_primary = nullptr;
  Status s = DB::Open(primary_options, "/cluster/db", &raw_primary);
  if (!s.ok()) {
    fprintf(stderr, "primary open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> primary(raw_primary);

  printf("loading 5000 KV pairs through the primary...\n");
  for (int i = 0; i < 5000; i++) {
    s = primary->Put(WriteOptions(), "order:" + std::to_string(i % 1500),
                     "payload-" + std::to_string(i) + std::string(60, '.'));
    if (!s.ok()) {
      fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  printf("offloading a full compaction to the storage-side worker...\n");
  s = primary->CompactRange(nullptr, nullptr);
  if (!s.ok()) {
    fprintf(stderr, "offloaded compaction failed: %s\n",
            s.ToString().c_str());
    return 1;
  }
  primary->WaitForIdle();
  printf("  worker ran %llu job(s); worker KDS round-trips: %llu\n",
         static_cast<unsigned long long>(worker.jobs_run()),
         static_cast<unsigned long long>(worker.kds_requests()));

  // --- A read-only replica on yet another server.
  auto replica_env = NewRemoteEnv(&storage, nullptr);
  Options replica_options = engine_options;
  replica_options.env = replica_env.get();
  replica_options.encryption.server_id = "read-replica";
  replica_options.compaction_service = nullptr;

  DB* raw_replica = nullptr;
  s = DB::OpenReadOnly(replica_options, "/cluster/db", &raw_replica);
  if (!s.ok()) {
    fprintf(stderr, "replica open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> replica(raw_replica);

  std::string value;
  s = replica->Get(ReadOptions(), "order:77", &value);
  printf("replica read order:77 -> %s\n",
         s.ok() ? value.substr(0, 16).c_str() : s.ToString().c_str());

  // Primary keeps writing; the replica catches up on demand.
  primary->Put(WriteOptions(), "order:new", "fresh-after-replica-open");
  primary->Flush();
  replica->TryCatchUp();
  s = replica->Get(ReadOptions(), "order:new", &value);
  printf("replica after catch-up, order:new -> %s\n",
         s.ok() ? value.c_str() : s.ToString().c_str());

  // --- Traffic summary (the Table-3 style accounting).
  printf("\ncompute-side network traffic: %s\n",
         compute_traffic.ToString().c_str());
  printf("storage-media I/O:            %s\n",
         storage.media_stats()->ToString().c_str());
  printf("network: %llu requests, %.1f MiB transferred\n",
         static_cast<unsigned long long>(storage.network()->total_requests()),
         storage.network()->total_bytes() / 1048576.0);

  printf("\ndisaggregated_offload OK\n");
  return 0;
}
