// Encrypted monolith scenario: compares the paper's two designs on one
// server, then audits what is actually on disk.
//
//  1. EncFS (Section 4): one instance key, transparent Env-level
//     encryption.
//  2. SHIELD (Section 5): per-file DEKs + rotation, showing the DEK-ID
//     of every file before and after a compaction — the rotation is
//     visible as every SST's DEK changing.
//
// Usage: encrypted_monolith [work_dir]

#include <cstdio>
#include <map>
#include <memory>

#include "crypto/secure_random.h"
#include "env/env.h"
#include "lsm/db.h"
#include "lsm/file_names.h"
#include "shield/file_crypto.h"

namespace {

using namespace shield;  // example code; keep the demo readable

// Scans the DB directory for a plaintext needle (the "attacker with
// filesystem access" of the threat model).
bool DirectoryLeaks(Env* env, const std::string& dir,
                    const std::string& needle) {
  std::vector<std::string> children;
  env->GetChildren(dir, &children);
  for (const auto& child : children) {
    std::string contents;
    if (ReadFileToString(env, dir + "/" + child, &contents).ok() &&
        contents.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void FillDemoData(DB* db, int n) {
  for (int i = 0; i < n; i++) {
    db->Put(WriteOptions(), "patient:" + std::to_string(i),
            "SSN-SECRET-" + std::to_string(1000000 + i));
  }
  db->Flush();
}

std::map<std::string, std::string> ListDekIds(Env* env,
                                              const std::string& dir) {
  std::map<std::string, std::string> ids;
  std::vector<std::string> children;
  env->GetChildren(dir, &children);
  for (const auto& child : children) {
    ShieldFileHeader header;
    if (ReadShieldFileHeader(env, dir + "/" + child, &header).ok()) {
      ids[child] = header.dek_id.ToHex().substr(0, 12);
    }
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "/tmp/shield_monolith_demo";
  Env* env = Env::Default();
  env->CreateDirIfMissing(root);

  // ---- Design 1: instance-level EncFS -------------------------------
  {
    const std::string dir = root + "/encfs_db";
    Options options;
    options.encryption.mode = EncryptionMode::kEncFS;
    options.encryption.instance_key = crypto::SecureRandomString(16);
    DestroyDB(options, dir);

    DB* raw_db = nullptr;
    Status s = DB::Open(options, dir, &raw_db);
    if (!s.ok()) {
      fprintf(stderr, "encfs open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::unique_ptr<DB> db(raw_db);
    FillDemoData(db.get(), 500);

    printf("[EncFS]  plaintext visible to filesystem attacker: %s\n",
           DirectoryLeaks(env, dir, "SSN-SECRET-") ? "YES (bug!)" : "no");
    printf("[EncFS]  trade-off: ONE key protects every file — a single "
           "DEK compromise exposes the whole store.\n\n");
  }

  // ---- Design 2: SHIELD ----------------------------------------------
  {
    const std::string dir = root + "/shield_db";
    Options options;
    options.write_buffer_size = 64 * 1024;  // small, to create many SSTs
    options.encryption.mode = EncryptionMode::kShield;
    DestroyDB(options, dir);

    DB* raw_db = nullptr;
    Status s = DB::Open(options, dir, &raw_db);
    if (!s.ok()) {
      fprintf(stderr, "shield open failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::unique_ptr<DB> db(raw_db);
    FillDemoData(db.get(), 3000);

    printf("[SHIELD] plaintext visible to filesystem attacker: %s\n",
           DirectoryLeaks(env, dir, "SSN-SECRET-") ? "YES (bug!)" : "no");

    printf("[SHIELD] per-file DEK-IDs before compaction:\n");
    auto before = ListDekIds(env, dir);
    for (const auto& [file, id] : before) {
      printf("    %-20s dek=%s...\n", file.c_str(), id.c_str());
    }

    // DEK rotation: compaction rewrites data under fresh DEKs and the
    // old keys are destroyed with their files.
    db->CompactRange(nullptr, nullptr);
    db->WaitForIdle();

    printf("[SHIELD] per-file DEK-IDs after compaction (all rotated):\n");
    auto after = ListDekIds(env, dir);
    for (const auto& [file, id] : after) {
      printf("    %-20s dek=%s...\n", file.c_str(), id.c_str());
    }

    // Verify reads still work after rotation.
    std::string value;
    s = db->Get(ReadOptions(), "patient:42", &value);
    printf("[SHIELD] read after rotation: %s\n",
           s.ok() ? value.c_str() : s.ToString().c_str());

    std::string kds_requests, cache_hits;
    db->GetProperty("shield.kds-requests", &kds_requests);
    db->GetProperty("shield.dek-cache-hits", &cache_hits);
    printf("[SHIELD] KDS round-trips: %s, in-memory/cache DEK hits: %s\n",
           kds_requests.c_str(), cache_hits.c_str());
  }

  printf("\nencrypted_monolith OK\n");
  return 0;
}
