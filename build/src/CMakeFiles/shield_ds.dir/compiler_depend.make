# Empty compiler generated dependencies file for shield_ds.
# This may be replaced when dependencies are built.
