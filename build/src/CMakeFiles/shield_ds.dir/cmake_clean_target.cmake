file(REMOVE_RECURSE
  "libshield_ds.a"
)
