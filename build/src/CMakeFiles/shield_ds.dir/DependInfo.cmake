
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ds/compaction_service.cc" "src/CMakeFiles/shield_ds.dir/ds/compaction_service.cc.o" "gcc" "src/CMakeFiles/shield_ds.dir/ds/compaction_service.cc.o.d"
  "/root/repo/src/ds/network_sim.cc" "src/CMakeFiles/shield_ds.dir/ds/network_sim.cc.o" "gcc" "src/CMakeFiles/shield_ds.dir/ds/network_sim.cc.o.d"
  "/root/repo/src/ds/storage_service.cc" "src/CMakeFiles/shield_ds.dir/ds/storage_service.cc.o" "gcc" "src/CMakeFiles/shield_ds.dir/ds/storage_service.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shield_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_shield.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_kds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_encfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
