file(REMOVE_RECURSE
  "CMakeFiles/shield_ds.dir/ds/compaction_service.cc.o"
  "CMakeFiles/shield_ds.dir/ds/compaction_service.cc.o.d"
  "CMakeFiles/shield_ds.dir/ds/network_sim.cc.o"
  "CMakeFiles/shield_ds.dir/ds/network_sim.cc.o.d"
  "CMakeFiles/shield_ds.dir/ds/storage_service.cc.o"
  "CMakeFiles/shield_ds.dir/ds/storage_service.cc.o.d"
  "libshield_ds.a"
  "libshield_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
