
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/env.cc" "src/CMakeFiles/shield_env.dir/env/env.cc.o" "gcc" "src/CMakeFiles/shield_env.dir/env/env.cc.o.d"
  "/root/repo/src/env/fault_injection_env.cc" "src/CMakeFiles/shield_env.dir/env/fault_injection_env.cc.o" "gcc" "src/CMakeFiles/shield_env.dir/env/fault_injection_env.cc.o.d"
  "/root/repo/src/env/io_stats.cc" "src/CMakeFiles/shield_env.dir/env/io_stats.cc.o" "gcc" "src/CMakeFiles/shield_env.dir/env/io_stats.cc.o.d"
  "/root/repo/src/env/mem_env.cc" "src/CMakeFiles/shield_env.dir/env/mem_env.cc.o" "gcc" "src/CMakeFiles/shield_env.dir/env/mem_env.cc.o.d"
  "/root/repo/src/env/posix_env.cc" "src/CMakeFiles/shield_env.dir/env/posix_env.cc.o" "gcc" "src/CMakeFiles/shield_env.dir/env/posix_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
