file(REMOVE_RECURSE
  "libshield_env.a"
)
