file(REMOVE_RECURSE
  "CMakeFiles/shield_env.dir/env/env.cc.o"
  "CMakeFiles/shield_env.dir/env/env.cc.o.d"
  "CMakeFiles/shield_env.dir/env/fault_injection_env.cc.o"
  "CMakeFiles/shield_env.dir/env/fault_injection_env.cc.o.d"
  "CMakeFiles/shield_env.dir/env/io_stats.cc.o"
  "CMakeFiles/shield_env.dir/env/io_stats.cc.o.d"
  "CMakeFiles/shield_env.dir/env/mem_env.cc.o"
  "CMakeFiles/shield_env.dir/env/mem_env.cc.o.d"
  "CMakeFiles/shield_env.dir/env/posix_env.cc.o"
  "CMakeFiles/shield_env.dir/env/posix_env.cc.o.d"
  "libshield_env.a"
  "libshield_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
