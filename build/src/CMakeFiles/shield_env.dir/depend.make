# Empty dependencies file for shield_env.
# This may be replaced when dependencies are built.
