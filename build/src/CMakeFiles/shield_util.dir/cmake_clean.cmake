file(REMOVE_RECURSE
  "CMakeFiles/shield_util.dir/util/arena.cc.o"
  "CMakeFiles/shield_util.dir/util/arena.cc.o.d"
  "CMakeFiles/shield_util.dir/util/coding.cc.o"
  "CMakeFiles/shield_util.dir/util/coding.cc.o.d"
  "CMakeFiles/shield_util.dir/util/crc32c.cc.o"
  "CMakeFiles/shield_util.dir/util/crc32c.cc.o.d"
  "CMakeFiles/shield_util.dir/util/histogram.cc.o"
  "CMakeFiles/shield_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/shield_util.dir/util/random.cc.o"
  "CMakeFiles/shield_util.dir/util/random.cc.o.d"
  "CMakeFiles/shield_util.dir/util/retry.cc.o"
  "CMakeFiles/shield_util.dir/util/retry.cc.o.d"
  "CMakeFiles/shield_util.dir/util/status.cc.o"
  "CMakeFiles/shield_util.dir/util/status.cc.o.d"
  "CMakeFiles/shield_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/shield_util.dir/util/thread_pool.cc.o.d"
  "libshield_util.a"
  "libshield_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
