# Empty compiler generated dependencies file for shield_util.
# This may be replaced when dependencies are built.
