file(REMOVE_RECURSE
  "libshield_util.a"
)
