# Empty compiler generated dependencies file for shield_shield.
# This may be replaced when dependencies are built.
