file(REMOVE_RECURSE
  "libshield_shield.a"
)
