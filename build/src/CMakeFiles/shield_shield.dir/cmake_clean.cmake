file(REMOVE_RECURSE
  "CMakeFiles/shield_shield.dir/shield/chunk_encryptor.cc.o"
  "CMakeFiles/shield_shield.dir/shield/chunk_encryptor.cc.o.d"
  "CMakeFiles/shield_shield.dir/shield/dek_manager.cc.o"
  "CMakeFiles/shield_shield.dir/shield/dek_manager.cc.o.d"
  "CMakeFiles/shield_shield.dir/shield/file_crypto.cc.o"
  "CMakeFiles/shield_shield.dir/shield/file_crypto.cc.o.d"
  "libshield_shield.a"
  "libshield_shield.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_shield.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
