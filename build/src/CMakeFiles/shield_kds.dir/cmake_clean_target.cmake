file(REMOVE_RECURSE
  "libshield_kds.a"
)
