# Empty compiler generated dependencies file for shield_kds.
# This may be replaced when dependencies are built.
