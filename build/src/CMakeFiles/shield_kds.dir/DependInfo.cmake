
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kds/dek.cc" "src/CMakeFiles/shield_kds.dir/kds/dek.cc.o" "gcc" "src/CMakeFiles/shield_kds.dir/kds/dek.cc.o.d"
  "/root/repo/src/kds/faulty_kds.cc" "src/CMakeFiles/shield_kds.dir/kds/faulty_kds.cc.o" "gcc" "src/CMakeFiles/shield_kds.dir/kds/faulty_kds.cc.o.d"
  "/root/repo/src/kds/local_kds.cc" "src/CMakeFiles/shield_kds.dir/kds/local_kds.cc.o" "gcc" "src/CMakeFiles/shield_kds.dir/kds/local_kds.cc.o.d"
  "/root/repo/src/kds/secure_dek_cache.cc" "src/CMakeFiles/shield_kds.dir/kds/secure_dek_cache.cc.o" "gcc" "src/CMakeFiles/shield_kds.dir/kds/secure_dek_cache.cc.o.d"
  "/root/repo/src/kds/sim_kds.cc" "src/CMakeFiles/shield_kds.dir/kds/sim_kds.cc.o" "gcc" "src/CMakeFiles/shield_kds.dir/kds/sim_kds.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
