file(REMOVE_RECURSE
  "CMakeFiles/shield_kds.dir/kds/dek.cc.o"
  "CMakeFiles/shield_kds.dir/kds/dek.cc.o.d"
  "CMakeFiles/shield_kds.dir/kds/faulty_kds.cc.o"
  "CMakeFiles/shield_kds.dir/kds/faulty_kds.cc.o.d"
  "CMakeFiles/shield_kds.dir/kds/local_kds.cc.o"
  "CMakeFiles/shield_kds.dir/kds/local_kds.cc.o.d"
  "CMakeFiles/shield_kds.dir/kds/secure_dek_cache.cc.o"
  "CMakeFiles/shield_kds.dir/kds/secure_dek_cache.cc.o.d"
  "CMakeFiles/shield_kds.dir/kds/sim_kds.cc.o"
  "CMakeFiles/shield_kds.dir/kds/sim_kds.cc.o.d"
  "libshield_kds.a"
  "libshield_kds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_kds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
