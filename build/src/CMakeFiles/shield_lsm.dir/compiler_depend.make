# Empty compiler generated dependencies file for shield_lsm.
# This may be replaced when dependencies are built.
