
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/block.cc" "src/CMakeFiles/shield_lsm.dir/lsm/block.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/block.cc.o.d"
  "/root/repo/src/lsm/block_builder.cc" "src/CMakeFiles/shield_lsm.dir/lsm/block_builder.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/block_builder.cc.o.d"
  "/root/repo/src/lsm/cache.cc" "src/CMakeFiles/shield_lsm.dir/lsm/cache.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/cache.cc.o.d"
  "/root/repo/src/lsm/compaction_picker.cc" "src/CMakeFiles/shield_lsm.dir/lsm/compaction_picker.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/compaction_picker.cc.o.d"
  "/root/repo/src/lsm/comparator.cc" "src/CMakeFiles/shield_lsm.dir/lsm/comparator.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/comparator.cc.o.d"
  "/root/repo/src/lsm/db_compaction.cc" "src/CMakeFiles/shield_lsm.dir/lsm/db_compaction.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/db_compaction.cc.o.d"
  "/root/repo/src/lsm/db_impl.cc" "src/CMakeFiles/shield_lsm.dir/lsm/db_impl.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/db_impl.cc.o.d"
  "/root/repo/src/lsm/db_iter.cc" "src/CMakeFiles/shield_lsm.dir/lsm/db_iter.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/db_iter.cc.o.d"
  "/root/repo/src/lsm/db_read.cc" "src/CMakeFiles/shield_lsm.dir/lsm/db_read.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/db_read.cc.o.d"
  "/root/repo/src/lsm/db_recovery.cc" "src/CMakeFiles/shield_lsm.dir/lsm/db_recovery.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/db_recovery.cc.o.d"
  "/root/repo/src/lsm/db_write.cc" "src/CMakeFiles/shield_lsm.dir/lsm/db_write.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/db_write.cc.o.d"
  "/root/repo/src/lsm/file_names.cc" "src/CMakeFiles/shield_lsm.dir/lsm/file_names.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/file_names.cc.o.d"
  "/root/repo/src/lsm/filter_block.cc" "src/CMakeFiles/shield_lsm.dir/lsm/filter_block.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/filter_block.cc.o.d"
  "/root/repo/src/lsm/filter_policy.cc" "src/CMakeFiles/shield_lsm.dir/lsm/filter_policy.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/filter_policy.cc.o.d"
  "/root/repo/src/lsm/format.cc" "src/CMakeFiles/shield_lsm.dir/lsm/format.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/format.cc.o.d"
  "/root/repo/src/lsm/iterator.cc" "src/CMakeFiles/shield_lsm.dir/lsm/iterator.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/iterator.cc.o.d"
  "/root/repo/src/lsm/log_reader.cc" "src/CMakeFiles/shield_lsm.dir/lsm/log_reader.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/log_reader.cc.o.d"
  "/root/repo/src/lsm/log_writer.cc" "src/CMakeFiles/shield_lsm.dir/lsm/log_writer.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/log_writer.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/CMakeFiles/shield_lsm.dir/lsm/memtable.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/memtable.cc.o.d"
  "/root/repo/src/lsm/merger.cc" "src/CMakeFiles/shield_lsm.dir/lsm/merger.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/merger.cc.o.d"
  "/root/repo/src/lsm/sst_builder.cc" "src/CMakeFiles/shield_lsm.dir/lsm/sst_builder.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/sst_builder.cc.o.d"
  "/root/repo/src/lsm/sst_reader.cc" "src/CMakeFiles/shield_lsm.dir/lsm/sst_reader.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/sst_reader.cc.o.d"
  "/root/repo/src/lsm/table_cache.cc" "src/CMakeFiles/shield_lsm.dir/lsm/table_cache.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/table_cache.cc.o.d"
  "/root/repo/src/lsm/table_format.cc" "src/CMakeFiles/shield_lsm.dir/lsm/table_format.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/table_format.cc.o.d"
  "/root/repo/src/lsm/two_level_iterator.cc" "src/CMakeFiles/shield_lsm.dir/lsm/two_level_iterator.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/two_level_iterator.cc.o.d"
  "/root/repo/src/lsm/version_edit.cc" "src/CMakeFiles/shield_lsm.dir/lsm/version_edit.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/version_edit.cc.o.d"
  "/root/repo/src/lsm/version_set.cc" "src/CMakeFiles/shield_lsm.dir/lsm/version_set.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/version_set.cc.o.d"
  "/root/repo/src/lsm/write_batch.cc" "src/CMakeFiles/shield_lsm.dir/lsm/write_batch.cc.o" "gcc" "src/CMakeFiles/shield_lsm.dir/lsm/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shield_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_kds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_shield.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_encfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/shield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
