file(REMOVE_RECURSE
  "libshield_lsm.a"
)
