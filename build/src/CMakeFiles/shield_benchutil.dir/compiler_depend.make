# Empty compiler generated dependencies file for shield_benchutil.
# This may be replaced when dependencies are built.
