file(REMOVE_RECURSE
  "libshield_benchutil.a"
)
