file(REMOVE_RECURSE
  "CMakeFiles/shield_benchutil.dir/benchutil/driver.cc.o"
  "CMakeFiles/shield_benchutil.dir/benchutil/driver.cc.o.d"
  "CMakeFiles/shield_benchutil.dir/benchutil/engines.cc.o"
  "CMakeFiles/shield_benchutil.dir/benchutil/engines.cc.o.d"
  "CMakeFiles/shield_benchutil.dir/benchutil/mixgraph.cc.o"
  "CMakeFiles/shield_benchutil.dir/benchutil/mixgraph.cc.o.d"
  "CMakeFiles/shield_benchutil.dir/benchutil/report.cc.o"
  "CMakeFiles/shield_benchutil.dir/benchutil/report.cc.o.d"
  "CMakeFiles/shield_benchutil.dir/benchutil/workload.cc.o"
  "CMakeFiles/shield_benchutil.dir/benchutil/workload.cc.o.d"
  "CMakeFiles/shield_benchutil.dir/benchutil/ycsb.cc.o"
  "CMakeFiles/shield_benchutil.dir/benchutil/ycsb.cc.o.d"
  "libshield_benchutil.a"
  "libshield_benchutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_benchutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
