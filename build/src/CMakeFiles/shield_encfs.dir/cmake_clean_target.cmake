file(REMOVE_RECURSE
  "libshield_encfs.a"
)
