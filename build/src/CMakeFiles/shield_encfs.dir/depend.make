# Empty dependencies file for shield_encfs.
# This may be replaced when dependencies are built.
