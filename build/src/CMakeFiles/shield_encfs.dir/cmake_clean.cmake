file(REMOVE_RECURSE
  "CMakeFiles/shield_encfs.dir/encfs/encrypted_env.cc.o"
  "CMakeFiles/shield_encfs.dir/encfs/encrypted_env.cc.o.d"
  "libshield_encfs.a"
  "libshield_encfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_encfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
