file(REMOVE_RECURSE
  "CMakeFiles/shield_crypto.dir/crypto/aes.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/aes.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/chacha20.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/chacha20.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/cipher.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/cipher.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/ctr_stream.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/ctr_stream.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/hkdf.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/hkdf.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/secure_random.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/secure_random.cc.o.d"
  "CMakeFiles/shield_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/shield_crypto.dir/crypto/sha256.cc.o.d"
  "libshield_crypto.a"
  "libshield_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
