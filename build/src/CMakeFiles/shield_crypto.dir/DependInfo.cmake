
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/shield_crypto.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/chacha20.cc" "src/CMakeFiles/shield_crypto.dir/crypto/chacha20.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/chacha20.cc.o.d"
  "/root/repo/src/crypto/cipher.cc" "src/CMakeFiles/shield_crypto.dir/crypto/cipher.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/cipher.cc.o.d"
  "/root/repo/src/crypto/ctr_stream.cc" "src/CMakeFiles/shield_crypto.dir/crypto/ctr_stream.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/ctr_stream.cc.o.d"
  "/root/repo/src/crypto/hkdf.cc" "src/CMakeFiles/shield_crypto.dir/crypto/hkdf.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/hkdf.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/shield_crypto.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/secure_random.cc" "src/CMakeFiles/shield_crypto.dir/crypto/secure_random.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/secure_random.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/shield_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/shield_crypto.dir/crypto/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/shield_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
