file(REMOVE_RECURSE
  "CMakeFiles/shield_dbbench.dir/shield_dbbench.cpp.o"
  "CMakeFiles/shield_dbbench.dir/shield_dbbench.cpp.o.d"
  "shield_dbbench"
  "shield_dbbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_dbbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
