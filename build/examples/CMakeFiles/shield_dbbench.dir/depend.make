# Empty dependencies file for shield_dbbench.
# This may be replaced when dependencies are built.
