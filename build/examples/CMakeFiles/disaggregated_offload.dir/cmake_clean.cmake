file(REMOVE_RECURSE
  "CMakeFiles/disaggregated_offload.dir/disaggregated_offload.cpp.o"
  "CMakeFiles/disaggregated_offload.dir/disaggregated_offload.cpp.o.d"
  "disaggregated_offload"
  "disaggregated_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaggregated_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
