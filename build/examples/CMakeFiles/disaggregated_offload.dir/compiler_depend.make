# Empty compiler generated dependencies file for disaggregated_offload.
# This may be replaced when dependencies are built.
