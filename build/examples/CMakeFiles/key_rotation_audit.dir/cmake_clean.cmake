file(REMOVE_RECURSE
  "CMakeFiles/key_rotation_audit.dir/key_rotation_audit.cpp.o"
  "CMakeFiles/key_rotation_audit.dir/key_rotation_audit.cpp.o.d"
  "key_rotation_audit"
  "key_rotation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_rotation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
