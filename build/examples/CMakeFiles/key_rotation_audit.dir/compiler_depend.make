# Empty compiler generated dependencies file for key_rotation_audit.
# This may be replaced when dependencies are built.
