file(REMOVE_RECURSE
  "CMakeFiles/encrypted_monolith.dir/encrypted_monolith.cpp.o"
  "CMakeFiles/encrypted_monolith.dir/encrypted_monolith.cpp.o.d"
  "encrypted_monolith"
  "encrypted_monolith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encrypted_monolith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
