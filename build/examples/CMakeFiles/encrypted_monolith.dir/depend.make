# Empty dependencies file for encrypted_monolith.
# This may be replaced when dependencies are built.
