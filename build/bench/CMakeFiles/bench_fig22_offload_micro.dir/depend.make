# Empty dependencies file for bench_fig22_offload_micro.
# This may be replaced when dependencies are built.
