# Empty compiler generated dependencies file for bench_fig7_monolith_micro.
# This may be replaced when dependencies are built.
