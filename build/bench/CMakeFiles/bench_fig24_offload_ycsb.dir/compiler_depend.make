# Empty compiler generated dependencies file for bench_fig24_offload_ycsb.
# This may be replaced when dependencies are built.
