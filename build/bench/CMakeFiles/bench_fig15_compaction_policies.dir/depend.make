# Empty dependencies file for bench_fig15_compaction_policies.
# This may be replaced when dependencies are built.
