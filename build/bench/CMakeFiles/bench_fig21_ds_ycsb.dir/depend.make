# Empty dependencies file for bench_fig21_ds_ycsb.
# This may be replaced when dependencies are built.
