# Empty dependencies file for bench_fig4_encryption_cost.
# This may be replaced when dependencies are built.
