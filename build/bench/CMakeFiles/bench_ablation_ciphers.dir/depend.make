# Empty dependencies file for bench_ablation_ciphers.
# This may be replaced when dependencies are built.
