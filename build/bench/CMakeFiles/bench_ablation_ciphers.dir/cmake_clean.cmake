file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ciphers.dir/bench_ablation_ciphers.cc.o"
  "CMakeFiles/bench_ablation_ciphers.dir/bench_ablation_ciphers.cc.o.d"
  "bench_ablation_ciphers"
  "bench_ablation_ciphers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ciphers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
