file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_resources.dir/bench_fig18_resources.cc.o"
  "CMakeFiles/bench_fig18_resources.dir/bench_fig18_resources.cc.o.d"
  "bench_fig18_resources"
  "bench_fig18_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
