# Empty dependencies file for bench_fig18_resources.
# This may be replaced when dependencies are built.
