file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_buffer_sizes.dir/bench_fig14_buffer_sizes.cc.o"
  "CMakeFiles/bench_fig14_buffer_sizes.dir/bench_fig14_buffer_sizes.cc.o.d"
  "bench_fig14_buffer_sizes"
  "bench_fig14_buffer_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_buffer_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
