# Empty compiler generated dependencies file for bench_fig14_buffer_sizes.
# This may be replaced when dependencies are built.
