# Empty dependencies file for bench_fig23_offload_mixed.
# This may be replaced when dependencies are built.
