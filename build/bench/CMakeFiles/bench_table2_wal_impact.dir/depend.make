# Empty dependencies file for bench_table2_wal_impact.
# This may be replaced when dependencies are built.
