# Empty dependencies file for bench_fig20_ds_mixed.
# This may be replaced when dependencies are built.
