# Empty compiler generated dependencies file for bench_fig9_ycsb_monolith.
# This may be replaced when dependencies are built.
