file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_ycsb_monolith.dir/bench_fig9_ycsb_monolith.cc.o"
  "CMakeFiles/bench_fig9_ycsb_monolith.dir/bench_fig9_ycsb_monolith.cc.o.d"
  "bench_fig9_ycsb_monolith"
  "bench_fig9_ycsb_monolith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_ycsb_monolith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
