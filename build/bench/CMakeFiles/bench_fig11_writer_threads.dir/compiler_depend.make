# Empty compiler generated dependencies file for bench_fig11_writer_threads.
# This may be replaced when dependencies are built.
