file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_writer_threads.dir/bench_fig11_writer_threads.cc.o"
  "CMakeFiles/bench_fig11_writer_threads.dir/bench_fig11_writer_threads.cc.o.d"
  "bench_fig11_writer_threads"
  "bench_fig11_writer_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_writer_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
