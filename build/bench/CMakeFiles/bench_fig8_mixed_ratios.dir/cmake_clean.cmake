file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_mixed_ratios.dir/bench_fig8_mixed_ratios.cc.o"
  "CMakeFiles/bench_fig8_mixed_ratios.dir/bench_fig8_mixed_ratios.cc.o.d"
  "bench_fig8_mixed_ratios"
  "bench_fig8_mixed_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_mixed_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
