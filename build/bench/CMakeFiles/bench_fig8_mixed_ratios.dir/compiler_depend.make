# Empty compiler generated dependencies file for bench_fig8_mixed_ratios.
# This may be replaced when dependencies are built.
