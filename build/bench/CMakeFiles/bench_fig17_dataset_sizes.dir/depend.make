# Empty dependencies file for bench_fig17_dataset_sizes.
# This may be replaced when dependencies are built.
