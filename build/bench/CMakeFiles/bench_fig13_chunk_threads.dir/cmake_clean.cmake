file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_chunk_threads.dir/bench_fig13_chunk_threads.cc.o"
  "CMakeFiles/bench_fig13_chunk_threads.dir/bench_fig13_chunk_threads.cc.o.d"
  "bench_fig13_chunk_threads"
  "bench_fig13_chunk_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_chunk_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
