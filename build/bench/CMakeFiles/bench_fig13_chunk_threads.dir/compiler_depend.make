# Empty compiler generated dependencies file for bench_fig13_chunk_threads.
# This may be replaced when dependencies are built.
