# Empty dependencies file for kds_test.
# This may be replaced when dependencies are built.
