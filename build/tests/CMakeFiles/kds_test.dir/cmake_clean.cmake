file(REMOVE_RECURSE
  "CMakeFiles/kds_test.dir/kds_test.cc.o"
  "CMakeFiles/kds_test.dir/kds_test.cc.o.d"
  "kds_test"
  "kds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
