# Empty compiler generated dependencies file for encfs_test.
# This may be replaced when dependencies are built.
