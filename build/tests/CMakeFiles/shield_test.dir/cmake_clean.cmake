file(REMOVE_RECURSE
  "CMakeFiles/shield_test.dir/shield_test.cc.o"
  "CMakeFiles/shield_test.dir/shield_test.cc.o.d"
  "shield_test"
  "shield_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
