# Empty compiler generated dependencies file for shield_test.
# This may be replaced when dependencies are built.
