file(REMOVE_RECURSE
  "CMakeFiles/db_encryption_test.dir/db_encryption_test.cc.o"
  "CMakeFiles/db_encryption_test.dir/db_encryption_test.cc.o.d"
  "db_encryption_test"
  "db_encryption_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_encryption_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
