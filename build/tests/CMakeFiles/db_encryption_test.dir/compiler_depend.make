# Empty compiler generated dependencies file for db_encryption_test.
# This may be replaced when dependencies are built.
