// Figure 17: increasing dataset sizes in the DS deployment (16 B keys,
// 240 B values in the paper, 50M..1000M pairs). SHIELD's overhead
// stays bounded (<10%) as the dataset grows; we sweep scaled-down
// dataset sizes with the same key/value shape.

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const uint64_t base = EnvInt("SHIELD_BENCH_DATASET_BASE", 20'000);
  const uint64_t kDatasetSizes[] = {base, base * 2, base * 5, base * 10};

  PrintBenchHeader("Fig 17: dataset-size scaling (DS, 16B keys / 240B "
                   "values)",
                   "SHIELD overhead stays <10% from 50M to 1000M "
                   "KV pairs");

  for (uint64_t n : kDatasetSizes) {
    printf("\n-- dataset: %llu KV pairs (~%.0f MiB) --\n",
           static_cast<unsigned long long>(n), n * 256.0 / 1048576.0);
    BenchResult baseline;
    for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
      auto cluster = MakeDsCluster(/*rtt_us=*/200);
      Options options = cluster->MakeDbOptions(engine, /*offload=*/false);
      auto db = OpenDs(cluster.get(), options, "fig17");

      WorkloadOptions workload;
      workload.num_ops = n;
      workload.num_keys = n;
      workload.key_size = 16;
      workload.value_size = 240;
      BenchResult result =
          FillRandomSettled(db.get(), workload, EngineName(engine));
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
    }
  }
  return 0;
}
