// MultiGet vs sequential Gets on the simulated disaggregated-storage
// fabric. Each batch asks for the same keys both ways; MultiGet's
// coalesced block fetches should need fewer fabric round trips per
// key (ds.network.requests) at equal results. Also exercises the
// compaction readahead path during the fill (io.readahead.* tickers).
//
// Knobs: SHIELD_BENCH_MULTIGET_KEYS (default 20000),
//        SHIELD_BENCH_MULTIGET_BATCHES (default 400),
//        SHIELD_BENCH_MULTIGET_BATCH_SIZE (default 16).

#include <cinttypes>

#include "bench_common.h"
#include "benchutil/driver.h"
#include "util/random.h"

namespace shield {
namespace bench {
namespace {

std::string ProbeKey(uint64_t i) {
  char key[32];
  snprintf(key, sizeof(key), "probe%016llu",
           static_cast<unsigned long long>(i));
  return std::string(key);
}

void Run() {
  PrintBenchHeader("MultiGet vs sequential Gets (DS fabric)",
                   "batched reads coalesce block fetches into fewer "
                   "round trips");

  const uint64_t num_keys = EnvInt("SHIELD_BENCH_MULTIGET_KEYS", 20'000);
  const uint64_t num_batches = EnvInt("SHIELD_BENCH_MULTIGET_BATCHES", 400);
  const uint64_t batch_size = EnvInt("SHIELD_BENCH_MULTIGET_BATCH_SIZE", 16);

  auto cluster = MakeDsCluster(/*rtt_us=*/200);
  Options options = cluster->MakeDbOptions(Engine::kShieldWalBuf, false);
  options.statistics = CreateDBStatistics();
  Statistics* stats = options.statistics.get();
  // Mirror fabric traffic into the same stats object so the report's
  // ds.network.requests ticker covers both phases.
  cluster->storage->SetStatisticsSink(stats);
  auto db = OpenDs(cluster.get(), options, "multiget");

  const std::string value(100, 'v');
  for (uint64_t i = 0; i < num_keys; i++) {
    db->Put(WriteOptions(), ProbeKey(i), value);
  }
  db->Flush();
  db->WaitForIdle();

  // Deterministic batches so both phases read identical key sets.
  Random rnd(42);
  std::vector<std::vector<std::string>> batches(num_batches);
  for (auto& batch : batches) {
    for (uint64_t k = 0; k < batch_size; k++) {
      batch.push_back(ProbeKey(rnd.Next64() % num_keys));
    }
  }

  // fill_cache=false: every batch pays its block fetches, so the
  // fabric round-trip difference is visible instead of the second
  // phase free-riding on the first phase's cache.
  ReadOptions ro;
  ro.fill_cache = false;

  const uint64_t net_before_seq =
      stats->GetTickerCount(Tickers::kDsNetworkRequests);
  BenchResult seq = RunOps("sequential_gets", num_batches, 1,
                           [&](int, uint64_t i) {
                             for (const std::string& key : batches[i]) {
                               std::string result;
                               db->Get(ro, key, &result);
                             }
                           });
  const uint64_t seq_trips =
      stats->GetTickerCount(Tickers::kDsNetworkRequests) - net_before_seq;
  PrintResult(seq);

  const uint64_t net_before_mg =
      stats->GetTickerCount(Tickers::kDsNetworkRequests);
  bool mismatch = false;
  BenchResult mg = RunOps("multiget", num_batches, 1, [&](int, uint64_t i) {
    std::vector<Slice> keys(batches[i].begin(), batches[i].end());
    std::vector<std::string> values;
    std::vector<Status> statuses = db->MultiGet(ro, keys, &values);
    for (const Status& s : statuses) {
      if (!s.ok()) {
        mismatch = true;
      }
    }
  });
  const uint64_t mg_trips =
      stats->GetTickerCount(Tickers::kDsNetworkRequests) - net_before_mg;
  PrintResult(mg);
  PrintPercentVs(seq, mg);

  // Full scan with iterator readahead: exercises the prefetch buffer
  // (io.readahead.* tickers) deterministically, even at scales where
  // the fill was too small for compaction readahead to kick in.
  ReadOptions scan_ro;
  scan_ro.fill_cache = false;
  scan_ro.readahead_size = 256 * 1024;
  BenchResult scan = RunOps("readahead_scan", 1, 1, [&](int, uint64_t) {
    std::unique_ptr<Iterator> it(db->NewIterator(scan_ro));
    uint64_t seen = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      seen++;
    }
    if (seen != num_keys) {
      fprintf(stderr, "FATAL: scan saw %" PRIu64 " of %" PRIu64 " keys\n",
              seen, num_keys);
      exit(1);
    }
  });
  scan.ops = num_keys;  // report per-key throughput, not per-scan
  PrintResult(scan);
  printf("readahead: hits=%" PRIu64 " prefetched_bytes=%" PRIu64 "\n",
         stats->GetTickerCount(Tickers::kIoReadaheadHit),
         stats->GetTickerCount(Tickers::kIoReadaheadBytes));

  const uint64_t keys_read = num_batches * batch_size;
  printf("fabric round trips: sequential=%" PRIu64 " (%.2f/key)  "
         "multiget=%" PRIu64 " (%.2f/key)\n",
         seq_trips, static_cast<double>(seq_trips) / keys_read, mg_trips,
         static_cast<double>(mg_trips) / keys_read);
  if (mismatch) {
    fprintf(stderr, "FATAL: MultiGet returned an error for a present key\n");
    exit(1);
  }

  // Round-trip counts ride along as synthetic results so the JSON
  // report carries the per-phase split (tickers only hold the total).
  BenchResult seq_net, mg_net;
  seq_net.label = "sequential_fabric_round_trips";
  seq_net.ops = seq_trips;
  mg_net.label = "multiget_fabric_round_trips";
  mg_net.ops = mg_trips;

  db.reset();
  const std::string json_path = "BENCH_multiget.json";
  if (WriteBenchJson(json_path, "multiget", {seq, mg, scan, seq_net, mg_net},
                     stats)) {
    printf("wrote %s\n", json_path.c_str());
  } else {
    fprintf(stderr, "multiget: cannot write %s\n", json_path.c_str());
  }
  cluster->storage->SetStatisticsSink(nullptr);  // stats dies before cluster
}

}  // namespace
}  // namespace bench
}  // namespace shield

int main() {
  shield::bench::Run();
  return 0;
}
