// See ds_suite.h — this binary regenerates the paper's fig21 ds ycsb series.

#include "ds_suite.h"

int main() {
  shield::bench::RunDsYcsb(false);
  return 0;
}
