// Figure 15 + Table 3: SHIELD across compaction policies (leveled,
// universal, FIFO) with offloaded compaction in the simulated DS, for
// fillrandom and readrandom; plus the read/write I/O distribution per
// server and storage medium (Table 3).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

namespace {

const char* StyleName(CompactionStyle style) {
  switch (style) {
    case CompactionStyle::kLeveled:
      return "leveled";
    case CompactionStyle::kUniversal:
      return "universal";
    case CompactionStyle::kFifo:
      return "fifo";
  }
  return "?";
}

}  // namespace

int main() {
  const CompactionStyle kStyles[] = {CompactionStyle::kLeveled,
                                     CompactionStyle::kUniversal,
                                     CompactionStyle::kFifo};

  printf("\n=== Fig 15 + Table 3: compaction policies with offloaded "
         "compaction (simulated DS) ===\n");
  printf("paper: SHIELD overhead 0-40%% on fillrandom, 0-11%% on "
         "readrandom, consistent across policies\n");

  for (CompactionStyle style : kStyles) {
    printf("\n##### policy: %s #####\n", StyleName(style));
    BenchResult write_baseline, read_baseline;
    for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
      auto cluster = MakeDsCluster(/*rtt_us=*/200);
      Options options = cluster->MakeDbOptions(engine, /*offload=*/true);
      options.compaction_style = style;
      options.fifo_max_table_files_size = 1ull << 30;
      auto db = OpenDs(cluster.get(), options, "fig15");

      WorkloadOptions workload;
      workload.num_ops = DefaultDsOps();
      workload.num_keys = DefaultDsOps();
      BenchResult write_result =
          FillRandomSettled(db.get(), workload, std::string(EngineName(engine)) +
                                             " fillrandom");
      db->WaitForIdle();
      PrintResult(write_result);
      WorkloadOptions reads = workload;
      reads.num_ops = DefaultDsOps() / 2;
      BenchResult read_result =
          ReadRandom(db.get(), reads, std::string(EngineName(engine)) +
                                          " readrandom");
      if (style == CompactionStyle::kFifo) {
        printf("   (fifo: early keys may have been evicted; readrandom "
               "column is indicative only)\n");
      }
      PrintResult(read_result);
      if (engine == Engine::kUnencrypted) {
        write_baseline = write_result;
        read_baseline = read_result;
      } else {
        PrintPercentVs(write_baseline, write_result);
        PrintPercentVs(read_baseline, read_result);
        // Table 3: I/O distribution for the SHIELD run.
        printf("  [table 3] compute->storage traffic: %s\n",
               cluster->compute_traffic.ToString().c_str());
        printf("  [table 3] storage-media I/O:        %s\n",
               cluster->storage->media_stats()->ToString().c_str());
        const double compute_w =
            cluster->compute_traffic.TotalWriteBytes() / 1048576.0;
        const double media_w =
            cluster->storage->media_stats()->TotalWriteBytes() / 1048576.0;
        printf("  [table 3] compaction-server share of storage writes: "
               "%.1f MiB of %.1f MiB (ratio 1:%.1f)\n",
               media_w - compute_w, media_w,
               compute_w > 0 ? media_w / compute_w : 0);
      }
      db.reset();
    }
  }
  return 0;
}
