// Figure 7: monolithic micro/macro baselines — fillrandom (write-heavy
// worst case), readrandom (read path hides decryption), and mixgraph —
// across unencrypted / EncFS / SHIELD with and without the WAL buffer.

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  WorkloadOptions write_workload;
  write_workload.num_ops = DefaultOps();
  write_workload.num_keys = DefaultKeys();

  WorkloadOptions read_workload = write_workload;
  read_workload.num_ops = DefaultReads();

  // --- fillrandom -----------------------------------------------------
  PrintBenchHeader("Fig 7a: fillrandom (monolith)",
                   "EncFS -32.9%, SHIELD -36.2%; with WAL-Buf "
                   "-16.6% / -19.4%");
  BenchResult write_baseline;
  for (Engine engine : AllEngines()) {
    Options options = MonolithOptions();
    ApplyEngine(engine, &options);
    auto db = OpenFresh(options, "fig7");
    BenchResult result =
        FillRandomSettled(db.get(), write_workload, EngineName(engine));
    PrintResult(result);
    if (engine == Engine::kUnencrypted) {
      write_baseline = result;
    } else {
      PrintPercentVs(write_baseline, result);
    }
    db.reset();
    Cleanup(options, "fig7");
  }

  // --- readrandom -------------------------------------------------------
  PrintBenchHeader("Fig 7b: readrandom (monolith)",
                   "all engines within ~1% of baseline");
  BenchResult read_baseline;
  for (Engine engine : AllEngines()) {
    Options options = MonolithOptions();
    ApplyEngine(engine, &options);
    auto db = OpenFresh(options, "fig7r");
    FillRandom(db.get(), write_workload, "load");
    db->Flush();
    db->WaitForIdle();
    // Warm the block cache first: the paper's near-zero read overhead
    // assumes decryption is cheap relative to the read path (AES-NI);
    // with a portable cipher the one-time per-block decryption cost
    // would otherwise dominate the first touch of each block.
    ReadRandom(db.get(), read_workload, "warmup");
    BenchResult result =
        ReadRandom(db.get(), read_workload, EngineName(engine));
    PrintResult(result);
    if (engine == Engine::kUnencrypted) {
      read_baseline = result;
    } else {
      PrintPercentVs(read_baseline, result);
    }
    db.reset();
    Cleanup(options, "fig7r");
  }

  // --- mixgraph ----------------------------------------------------------
  PrintBenchHeader("Fig 7c: mixgraph (monolith)",
                   "EncFS -10%, SHIELD -12.9%");
  WorkloadOptions mixgraph_workload = read_workload;
  BenchResult mixgraph_baseline;
  for (Engine engine : AllEngines()) {
    Options options = MonolithOptions();
    ApplyEngine(engine, &options);
    auto db = OpenFresh(options, "fig7m");
    FillRandom(db.get(), write_workload, "load");
    db->WaitForIdle();
    BenchResult result = RunMixgraph(db.get(), mixgraph_workload);
    result.label = EngineName(engine);
    PrintResult(result);
    if (engine == Engine::kUnencrypted) {
      mixgraph_baseline = result;
    } else {
      PrintPercentVs(mixgraph_baseline, result);
    }
    db.reset();
    Cleanup(options, "fig7m");
  }
  return 0;
}
