// Figure 18: resource sensitivity in the offloaded-compaction DS setup.
// The paper varies CPU cores / RAM via cgroups and bandwidth via tc;
// here the same ceilings are applied at the layer the engine consumes
// them: CPU -> background+encryption thread budget, RAM -> memtable +
// block-cache budget, bandwidth -> the network simulator's token
// bucket. Paper: bandwidth dominates (+77% when raised), CPU/RAM have
// modest impact; SHIELD stays within ~20% under all ceilings.

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

namespace {

BenchResult RunOne(const std::string& label, Engine engine, int cpu_threads,
                   size_t ram_bytes, uint64_t bandwidth_bps) {
  auto cluster = MakeDsCluster(/*rtt_us=*/200, bandwidth_bps);
  Options options = cluster->MakeDbOptions(engine, /*offload=*/true);
  options.max_background_jobs = cpu_threads;
  options.encryption.encryption_threads = cpu_threads;
  options.write_buffer_size = ram_bytes / 4;
  options.block_cache_size = ram_bytes / 2;
  auto db = OpenDs(cluster.get(), options, "fig18");

  WorkloadOptions workload;
  workload.num_ops = DefaultDsOps();
  workload.num_keys = DefaultDsOps();
  BenchResult result = FillRandomSettled(db.get(), workload, label);
  db.reset();
  return result;
}

}  // namespace

int main() {
  PrintBenchHeader("Fig 18: CPU / RAM / bandwidth ceilings (DS + "
                   "offload)",
                   "bandwidth is the bottleneck; SHIELD <=20% "
                   "overhead under constrained resources");

  printf("\n-- (a) CPU cores (4 MiB RAM budget, 1 Gbps) --\n");
  for (int cpu : {1, 2, 4}) {
    char label[64];
    BenchResult baseline, shielded;
    snprintf(label, sizeof(label), "unencrypted cpu=%d", cpu);
    baseline = RunOne(label, Engine::kUnencrypted, cpu, 4 << 20,
                      125ull * 1000 * 1000);
    PrintResult(baseline);
    snprintf(label, sizeof(label), "shield cpu=%d", cpu);
    shielded = RunOne(label, Engine::kShieldWalBuf, cpu, 4 << 20,
                      125ull * 1000 * 1000);
    PrintResult(shielded);
    PrintPercentVs(baseline, shielded);
  }

  printf("\n-- (b) memory budget (2 CPU, 1 Gbps) --\n");
  for (size_t ram : {size_t{1} << 20, size_t{4} << 20, size_t{16} << 20}) {
    char label[64];
    snprintf(label, sizeof(label), "unencrypted ram=%zuMiB", ram >> 20);
    BenchResult baseline =
        RunOne(label, Engine::kUnencrypted, 2, ram, 125ull * 1000 * 1000);
    PrintResult(baseline);
    snprintf(label, sizeof(label), "shield ram=%zuMiB", ram >> 20);
    BenchResult shielded =
        RunOne(label, Engine::kShieldWalBuf, 2, ram, 125ull * 1000 * 1000);
    PrintResult(shielded);
    PrintPercentVs(baseline, shielded);
  }

  printf("\n-- (c) network bandwidth (2 CPU, 4 MiB RAM) --\n");
  for (uint64_t mbps : {100ull, 1000ull, 10000ull}) {
    const uint64_t bps = mbps * 1000 * 1000 / 8;
    char label[64];
    snprintf(label, sizeof(label), "unencrypted bw=%lluMbps",
             static_cast<unsigned long long>(mbps));
    BenchResult baseline =
        RunOne(label, Engine::kUnencrypted, 2, 4 << 20, bps);
    PrintResult(baseline);
    snprintf(label, sizeof(label), "shield bw=%lluMbps",
             static_cast<unsigned long long>(mbps));
    BenchResult shielded =
        RunOne(label, Engine::kShieldWalBuf, 2, 4 << 20, bps);
    PrintResult(shielded);
    PrintPercentVs(baseline, shielded);
  }
  return 0;
}
