// Ablation (beyond the paper): cipher choice under SHIELD. The paper
// fixes AES-128-CTR; this compares the per-file cipher options the
// design supports (AES-128-CTR, AES-256-CTR, ChaCha20) on fillrandom
// and readrandom, plus raw keystream throughput.

#include "bench_common.h"
#include "crypto/cipher.h"
#include "crypto/secure_random.h"
#include "util/clock.h"

using namespace shield;
using namespace shield::bench;

int main() {
  // Raw cipher throughput first (1 MiB buffer, persistent context).
  printf("\n=== Ablation: cipher choice ===\n");
  printf("raw keystream throughput (1 MiB buffer):\n");
  for (crypto::CipherKind kind :
       {crypto::CipherKind::kAes128Ctr, crypto::CipherKind::kAes256Ctr,
        crypto::CipherKind::kChaCha20}) {
    std::unique_ptr<crypto::StreamCipher> cipher;
    crypto::NewStreamCipher(kind,
                            crypto::SecureRandomString(
                                crypto::CipherKeySize(kind)),
                            crypto::SecureRandomString(
                                crypto::CipherNonceSize(kind)),
                            &cipher);
    std::string buf(1 << 20, 'b');
    const uint64_t t0 = NowMicros();
    const int kRounds = 64;
    for (int i = 0; i < kRounds; i++) {
      cipher->CryptAt(0, buf.data(), buf.size());
    }
    const double seconds = (NowMicros() - t0) / 1e6;
    printf("  %-14s %8.1f MiB/s\n", crypto::CipherKindName(kind),
           kRounds / seconds);
  }

  PrintBenchHeader("SHIELD end-to-end by cipher (fillrandom + readrandom)",
                   "(ablation beyond the paper; paper uses AES-128-CTR)");
  for (crypto::CipherKind kind :
       {crypto::CipherKind::kAes128Ctr, crypto::CipherKind::kAes256Ctr,
        crypto::CipherKind::kChaCha20}) {
    Options options = MonolithOptions();
    ApplyEngine(Engine::kShieldWalBuf, &options);
    options.encryption.cipher = kind;
    auto db = OpenFresh(options, "ciphers");

    WorkloadOptions workload;
    workload.num_ops = DefaultOps() / 2;
    workload.num_keys = DefaultKeys();
    BenchResult write_result = FillRandom(
        db.get(), workload,
        std::string(crypto::CipherKindName(kind)) + " fillrandom");
    PrintResult(write_result);
    db->WaitForIdle();

    WorkloadOptions reads = workload;
    reads.num_ops = DefaultReads() / 2;
    BenchResult read_result = ReadRandom(
        db.get(), reads,
        std::string(crypto::CipherKindName(kind)) + " readrandom");
    PrintResult(read_result);
    db.reset();
    Cleanup(options, "ciphers");
  }
  return 0;
}
