// Figure 10: value-size sensitivity. Encryption cost per operation is
// amortized over larger values, so the engines converge as values
// grow (paper: 31%/35% overhead at 50 B values -> 9%/16% at 1000 B,
// for the unbuffered EncFS/SHIELD variants).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const size_t kValueSizes[] = {50, 100, 250, 500, 1000};

  PrintBenchHeader("Fig 10: value-size sensitivity (fillrandom, no WAL "
                   "buffer)",
                   "engines converge as value size grows");

  for (size_t value_size : kValueSizes) {
    printf("\n-- value size %zu B --\n", value_size);
    BenchResult baseline;
    for (Engine engine :
         {Engine::kUnencrypted, Engine::kEncFs, Engine::kShield}) {
      Options options = MonolithOptions();
      ApplyEngine(engine, &options, /*wal_buffer_size=*/0);
      auto db = OpenFresh(options, "fig10");

      WorkloadOptions workload;
      workload.num_ops = DefaultOps() / 2;
      workload.num_keys = DefaultKeys();
      workload.value_size = value_size;
      BenchResult result =
          FillRandomSettled(db.get(), workload, EngineName(engine));
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
      Cleanup(options, "fig10");
    }
  }
  return 0;
}
