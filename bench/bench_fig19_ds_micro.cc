// See ds_suite.h — this binary regenerates the paper's fig19 ds micro series.

#include "ds_suite.h"

int main() {
  shield::bench::RunDsMicro(false);
  return 0;
}
