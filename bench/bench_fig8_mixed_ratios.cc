// Figure 8: throughput and p99 for different read:write ratios in the
// monolith. The encryption overhead shrinks as the read share grows
// (reads only pay decryption on block-cache misses).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const int kReadPercents[] = {10, 25, 50, 75, 90};

  PrintBenchHeader("Fig 8: mixed read/write ratios (monolith)",
                   "overhead shrinks toward <1% as reads dominate");

  for (int read_percent : kReadPercents) {
    printf("\n-- %d%% reads / %d%% writes --\n", read_percent,
           100 - read_percent);
    BenchResult baseline;
    for (Engine engine : CoreEngines()) {
      Options options = MonolithOptions();
      ApplyEngine(engine, &options);
      auto db = OpenFresh(options, "fig8");

      WorkloadOptions load;
      load.num_ops = DefaultKeys() / 2;
      load.num_keys = DefaultKeys();
      FillRandom(db.get(), load, "load");
      db->WaitForIdle();

      WorkloadOptions mixed = load;
      mixed.num_ops = DefaultReads();
      mixed.read_percent = read_percent;
      BenchResult result = ReadWriteMix(db.get(), mixed, EngineName(engine));
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
      Cleanup(options, "fig8");
    }
  }
  return 0;
}
