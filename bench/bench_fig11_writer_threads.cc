// Figure 11: writer-thread sensitivity. With many concurrent writers
// the group-commit queue becomes the bottleneck and the WAL buffer's
// benefit shrinks (paper: WAL-Buf gain drops from ~22% to ~1% at 8
// writer threads). On top of the paper's engines this bench adds
// "shield-parallel": the SHIELD engine with the pipelined-keystream
// encrypted WAL (EncryptionOptions::wal_pipeline_window) and the
// sharded memtable (Options::memtable_shards), which keeps scaling
// where the single-threaded apply path flattens out.
//
// Emits BENCH_fig11.json with one result row per engine x thread
// count (labels "<engine>/t<threads>") so CI can check the 1->8
// scaling curve.
//
// Knobs: SHIELD_BENCH_OPS / SHIELD_BENCH_KEYS     (bench_common.h)
//        SHIELD_BENCH_FIG11_MAX_WRITERS           (default 16)
//        SHIELD_BENCH_FIG11_SHARDS                (default 8)
//        SHIELD_BENCH_FIG11_PIPELINE              (default 262144)

#include <cinttypes>
#include <vector>

#include "bench_common.h"

namespace shield {
namespace bench {
namespace {

// The parallel write path is not one of the paper's engines; it is
// this repo's extension, so it gets its own label next to them.
const char* kParallelName = "shield-parallel";

void Run() {
  const uint64_t max_writers = EnvInt("SHIELD_BENCH_FIG11_MAX_WRITERS", 16);
  const int shards =
      static_cast<int>(EnvInt("SHIELD_BENCH_FIG11_SHARDS", 8));
  const size_t pipeline_window = static_cast<size_t>(
      EnvInt("SHIELD_BENCH_FIG11_PIPELINE", 256 * 1024));

  PrintBenchHeader("Fig 11: writer threads (fillrandom, 16 bg jobs)",
                   "WAL-Buf benefit fades as writers saturate the "
                   "ingestion queue; the parallel write path keeps "
                   "scaling");

  std::shared_ptr<Statistics> stats = CreateDBStatistics();
  std::vector<BenchResult> all_results;

  for (int threads : {1, 2, 4, 8, 16}) {
    if (static_cast<uint64_t>(threads) > max_writers) {
      break;
    }
    printf("\n-- %d writer thread(s) --\n", threads);
    BenchResult unbuffered;
    BenchResult shield_baseline;
    // kShield is the pre-parallel-write-path configuration (single
    // memtable, per-group keystream computed inline on the leader):
    // the paper-faithful baseline the parallel path is judged against.
    struct Config {
      Engine engine;
      bool parallel;
    };
    const Config configs[] = {{Engine::kUnencrypted, false},
                              {Engine::kShield, false},
                              {Engine::kShieldWalBuf, false},
                              {Engine::kShieldWalBuf, true}};
    for (const Config& config : configs) {
      Options options = MonolithOptions();
      options.max_background_jobs = 16;
      options.statistics = stats;
      ApplyEngine(config.engine, &options);
      std::string name = EngineName(config.engine);
      if (config.parallel) {
        options.memtable_shards = shards;
        options.encryption.wal_pipeline_window = pipeline_window;
        name = kParallelName;
      }
      auto db = OpenFresh(options, "fig11");

      WorkloadOptions workload;
      workload.num_ops = DefaultOps();
      workload.num_keys = DefaultKeys();
      workload.num_threads = threads;

      const uint64_t groups_before =
          stats->GetTickerCount(Tickers::kLsmWriteGroups);
      const uint64_t grouped_before =
          stats->GetTickerCount(Tickers::kLsmWriteGroupSize);
      const uint64_t stall_before =
          stats->GetTickerCount(Tickers::kLsmWalPipelineStallMicros);

      BenchResult result = FillRandomSettled(
          db.get(), workload, name + "/t" + std::to_string(threads));
      PrintResult(result);

      const uint64_t groups =
          stats->GetTickerCount(Tickers::kLsmWriteGroups) - groups_before;
      const uint64_t grouped =
          stats->GetTickerCount(Tickers::kLsmWriteGroupSize) - grouped_before;
      const uint64_t stall =
          stats->GetTickerCount(Tickers::kLsmWalPipelineStallMicros) -
          stall_before;
      printf("   groups=%" PRIu64 " avg_group=%.2f pipeline_stall=%" PRIu64
             "us\n",
             groups, groups > 0 ? static_cast<double>(grouped) / groups : 0.0,
             stall);

      if (config.parallel) {
        PrintPercentVs(shield_baseline, result);
      } else if (config.engine == Engine::kShield) {
        shield_baseline = result;
        unbuffered = result;
      } else if (config.engine == Engine::kShieldWalBuf) {
        PrintPercentVs(unbuffered, result);
      }
      all_results.push_back(result);
      db.reset();
      Cleanup(options, "fig11");
    }
  }

  const std::string json_path = "BENCH_fig11.json";
  if (WriteBenchJson(json_path, "fig11_writer_threads", all_results,
                     stats.get())) {
    printf("\nwrote %s\n", json_path.c_str());
  } else {
    fprintf(stderr, "fig11: cannot write %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace shield

int main() {
  shield::bench::Run();
  return 0;
}
