// Figure 11: writer-thread sensitivity. With many concurrent writers
// the group-commit queue becomes the bottleneck and the WAL buffer's
// benefit shrinks (paper: WAL-Buf gain drops from ~22% to ~1% at 8
// writer threads).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const int kWriterThreads[] = {1, 2, 4, 8};

  PrintBenchHeader("Fig 11: writer threads (fillrandom, 16 bg jobs)",
                   "WAL-Buf benefit fades as writers saturate the "
                   "ingestion queue");

  for (int threads : kWriterThreads) {
    printf("\n-- %d writer thread(s) --\n", threads);
    BenchResult unbuffered;
    for (Engine engine : {Engine::kUnencrypted, Engine::kShield,
                          Engine::kShieldWalBuf}) {
      Options options = MonolithOptions();
      options.max_background_jobs = 16;
      ApplyEngine(engine, &options);
      auto db = OpenFresh(options, "fig11");

      WorkloadOptions workload;
      workload.num_ops = DefaultOps();
      workload.num_keys = DefaultKeys();
      workload.num_threads = threads;
      BenchResult result =
          FillRandomSettled(db.get(), workload, EngineName(engine));
      PrintResult(result);
      if (engine == Engine::kShield) {
        unbuffered = result;
      } else if (engine == Engine::kShieldWalBuf) {
        PrintPercentVs(unbuffered, result);
      }
      db.reset();
      Cleanup(options, "fig11");
    }
  }
  return 0;
}
