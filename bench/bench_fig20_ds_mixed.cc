// See ds_suite.h — this binary regenerates the paper's fig20 ds mixed series.

#include "ds_suite.h"

int main() {
  shield::bench::RunDsMixed(false);
  return 0;
}
