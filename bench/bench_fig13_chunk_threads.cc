// Figure 13: compaction time vs encryption chunk size and encryption
// threads. SHIELD encrypts compaction output in configurable chunks;
// larger chunks amortize cipher setup and enable useful multi-threaded
// encryption (paper: threaded SHIELD approaches / beats baseline
// compaction time at 2 MiB chunks).

#include "bench_common.h"
#include "util/clock.h"

using namespace shield;
using namespace shield::bench;

namespace {

// Measures the wall time of a full manual compaction over a preloaded
// database.
double MeasureCompactionSeconds(const Options& options) {
  auto db = OpenFresh(options, "fig13");
  WorkloadOptions load;
  load.num_ops = EnvInt("SHIELD_BENCH_COMPACT_OPS", 200'000);
  load.num_keys = load.num_ops;
  load.value_size = 100;
  FillRandom(db.get(), load, "load");
  db->WaitForIdle();

  const uint64_t t0 = NowMicros();
  db->CompactRange(nullptr, nullptr);
  const double seconds = (NowMicros() - t0) / 1e6;
  db.reset();
  Cleanup(options, "fig13");
  return seconds;
}

}  // namespace

int main() {
  printf("\n=== Fig 13: compaction time vs chunk size and encryption "
         "threads ===\n");
  printf("paper: threaded chunk encryption converges to (and can beat) "
         "unencrypted compaction time at large chunks\n\n");

  {
    Options options = MonolithOptions();
    printf("%-34s %8.2f s\n", "unencrypted",
           MeasureCompactionSeconds(options));
  }
  {
    Options options = MonolithOptions();
    ApplyEngine(Engine::kEncFs, &options);
    printf("%-34s %8.2f s\n", "encfs (whole-file at I/O layer)",
           MeasureCompactionSeconds(options));
  }

  const size_t kChunkSizes[] = {4096, 64 << 10, 256 << 10, 1 << 20, 2 << 20};
  for (size_t chunk_size : kChunkSizes) {
    for (int threads : {1, 2, 4}) {
      Options options = MonolithOptions();
      ApplyEngine(Engine::kShieldWalBuf, &options);
      options.encryption.sst_chunk_size = chunk_size;
      options.encryption.encryption_threads = threads;
      char label[64];
      snprintf(label, sizeof(label), "shield chunk=%zuKiB threads=%d",
               chunk_size >> 10, threads);
      printf("%-34s %8.2f s\n", label, MeasureCompactionSeconds(options));
      fflush(stdout);
    }
  }
  return 0;
}
