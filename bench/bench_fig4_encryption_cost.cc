// Figure 4: motivation microbenchmarks.
//  (a) cost of one encryption operation vs. writing the same bytes to
//      a file (with sync), across data sizes;
//  (b) the share of a small synchronous WAL-style write spent in
//      encryption, across KV sizes — the repeated encryption
//      initialization is what SHIELD's WAL buffer amortizes.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "benchutil/driver.h"
#include "benchutil/engines.h"
#include "benchutil/report.h"
#include "crypto/cipher.h"
#include "crypto/secure_random.h"
#include "env/env.h"
#include "lsm/db.h"
#include "util/clock.h"

namespace {

using namespace shield;

// One encryption operation = fresh cipher context (init) + keystream
// application, as performed per write by the instance-level design.
void EncryptOnce(const std::string& key, const std::string& nonce,
                 std::string* buf) {
  std::unique_ptr<crypto::StreamCipher> cipher;
  crypto::NewStreamCipher(crypto::CipherKind::kAes128Ctr, key, nonce,
                          &cipher);
  cipher->CryptAt(0, buf->data(), buf->size());
}

void BM_Encrypt(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string key = crypto::SecureRandomString(16);
  const std::string nonce = crypto::SecureRandomString(16);
  std::string buf(n, 'x');
  for (auto _ : state) {
    EncryptOnce(key, nonce, &buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_Encrypt)->Range(16, 4 << 20)->Unit(benchmark::kMicrosecond);

void BM_FileWriteSync(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Env* env = Env::Default();
  const std::string path = "/tmp/shield_fig4_write.bin";
  std::string buf(n, 'x');
  for (auto _ : state) {
    std::unique_ptr<WritableFile> file;
    env->NewWritableFile(path, &file);
    file->Append(buf);
    file->Sync();
    file->Close();
  }
  env->RemoveFile(path);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FileWriteSync)->Range(16, 4 << 20)->Unit(benchmark::kMicrosecond);

// (b) encryption share of one WAL-style write: encrypt-then-append for
// a single KV record, reporting the fraction of time spent encrypting.
void BM_WalWriteEncryptShare(benchmark::State& state) {
  const size_t kv_size = static_cast<size_t>(state.range(0));
  Env* env = Env::Default();
  const std::string key = crypto::SecureRandomString(16);
  const std::string nonce = crypto::SecureRandomString(16);
  const std::string path = "/tmp/shield_fig4_wal.log";
  std::unique_ptr<WritableFile> file;
  env->NewWritableFile(path, &file);
  std::string record(kv_size, 'r');

  uint64_t encrypt_ns = 0, total_ns = 0;
  for (auto _ : state) {
    const uint64_t t0 = NowNanos();
    EncryptOnce(key, nonce, &record);
    const uint64_t t1 = NowNanos();
    file->Append(record);
    file->Flush();
    const uint64_t t2 = NowNanos();
    encrypt_ns += t1 - t0;
    total_ns += t2 - t0;
  }
  file->Close();
  env->RemoveFile(path);
  state.counters["encrypt_share_pct"] =
      total_ns > 0 ? 100.0 * static_cast<double>(encrypt_ns) /
                         static_cast<double>(total_ns)
                   : 0;
}
BENCHMARK(BM_WalWriteEncryptShare)
    ->Arg(64)
    ->Arg(116)  // paper default: 16 B key + 100 B value
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

// End-to-end probe feeding the machine-readable report: a full SHIELD
// DB (per-file DEKs from the KDS, WAL buffer, authenticated blocks)
// with a Statistics registry attached, filled and read back so the
// JSON carries a nonzero crypto/KDS/IO ticker set alongside the
// microbenchmark context.
void RunShieldProbeAndWriteJson() {
  using namespace shield;
  Options options;
  options.statistics = CreateDBStatistics();
  bench::ApplyEngine(bench::Engine::kShieldWalBuf, &options);

  const std::string path = "/tmp/shield_fig4_probe_db";
  DestroyDB(options, path);
  DB* db = nullptr;
  Status s = DB::Open(options, path, &db);
  if (!s.ok()) {
    fprintf(stderr, "fig4 probe: open failed: %s\n", s.ToString().c_str());
    return;
  }

  const uint64_t n = bench::EnvInt("SHIELD_BENCH_PROBE_OPS", 2000);
  const std::string value(100, 'v');
  bench::BenchResult fill =
      bench::RunOps("shield_walbuf_fill", n, 1, [&](int, uint64_t i) {
        char key[32];
        snprintf(key, sizeof(key), "probe%016llu",
                 static_cast<unsigned long long>(i));
        db->Put(WriteOptions(), key, value);
      });
  db->Flush();

  ReadOptions ro;
  ro.fill_cache = false;  // force block reads through the decrypt path
  bench::BenchResult read =
      bench::RunOps("shield_walbuf_read", n, 1, [&](int, uint64_t i) {
        char key[32];
        snprintf(key, sizeof(key), "probe%016llu",
                 static_cast<unsigned long long>(i));
        std::string result;
        db->Get(ro, key, &result);
      });
  db->WaitForIdle();
  delete db;

  const std::string json_path = "BENCH_fig4_encryption_cost.json";
  if (bench::WriteBenchJson(json_path, "fig4_encryption_cost", {fill, read},
                            options.statistics.get())) {
    printf("wrote %s\n", json_path.c_str());
  } else {
    fprintf(stderr, "fig4 probe: cannot write %s\n", json_path.c_str());
  }
  DestroyDB(options, path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  RunShieldProbeAndWriteJson();
  return 0;
}
