// Ablation (beyond the paper): bloom filters on encrypted SSTs. A
// filter hit avoids both the block I/O and its decryption, so filters
// matter slightly MORE for an encrypted store. Measures point lookups
// for present and absent keys, with and without filters, under SHIELD
// and the plaintext baseline.

#include "bench_common.h"
#include "lsm/filter_policy.h"
#include "util/random.h"

using namespace shield;
using namespace shield::bench;

int main() {
  std::unique_ptr<const FilterPolicy> bloom(NewBloomFilterPolicy(10));

  PrintBenchHeader("Ablation: bloom filters x encryption (point lookups)",
                   "(beyond the paper) absent-key lookups gain most; "
                   "filters also skip block decryption under SHIELD");

  for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
    for (bool use_filter : {false, true}) {
      Options options = MonolithOptions();
      options.block_cache_size = 0;  // force block fetches on every read
      ApplyEngine(engine, &options);
      if (use_filter) {
        options.filter_policy = bloom.get();
      }
      auto db = OpenFresh(options, "bloom");

      WorkloadOptions load;
      load.num_ops = DefaultKeys() / 2;
      load.num_keys = DefaultKeys() / 2;
      FillRandom(db.get(), load, "load");
      db->CompactRange(nullptr, nullptr);
      db->WaitForIdle();

      const std::string prefix = std::string(EngineName(engine)) +
                                 (use_filter ? "+bloom" : "      ");
      WorkloadOptions reads = load;
      reads.num_ops = DefaultReads() / 2;
      BenchResult present =
          ReadRandom(db.get(), reads, prefix + " present-keys");
      PrintResult(present);

      // Absent keys: shift the probe space past the loaded range.
      ReadOptions read_options;
      std::vector<Random> rngs;
      for (int t = 0; t < reads.num_threads; t++) {
        rngs.emplace_back(999 + t);
      }
      BenchResult absent =
          RunOps(prefix + " absent-keys", reads.num_ops, reads.num_threads,
                 [&](int t, uint64_t) {
                   const std::string key = MakeKey(
                       load.num_keys + rngs[t].Uniform(load.num_keys), 16);
                   std::string value;
                   db->Get(read_options, key, &value);
                 });
      PrintResult(absent);

      db.reset();
      Cleanup(options, "bloom");
    }
  }
  return 0;
}
