// See ds_suite.h — this binary regenerates the paper's fig24 offload ycsb series.

#include "ds_suite.h"

int main() {
  shield::bench::RunDsYcsb(true);
  return 0;
}
