#ifndef SHIELD_BENCH_DS_SUITE_H_
#define SHIELD_BENCH_DS_SUITE_H_

// Shared drivers for the disaggregated-storage evaluation (Figs 19-24):
// the same micro / mixed-ratio / YCSB suites as the monolith figures,
// run over the simulated DS cluster, with or without offloaded
// compaction. EncFS is excluded, as in the paper (incompatible with
// the DS deployment path).

#include "bench_common.h"

namespace shield {
namespace bench {

inline void RunDsMicro(bool offload) {
  PrintBenchHeader(
      offload ? "DS + offloaded compaction: micro baselines (Fig 22)"
              : "Disaggregated storage: micro baselines (Fig 19)",
      offload ? "fillrandom gap ~17%; network hides most overhead"
              : "fillrandom gap narrows to ~5% vs monolith");

  // All engines' results go to one machine-readable report; the
  // tickers come from the SHIELD run (the paper's subject), where
  // compaction readahead and fabric round trips are visible.
  std::vector<BenchResult> all_results;
  std::shared_ptr<Statistics> shield_stats;

  BenchResult write_baseline, read_baseline, mix_baseline;
  for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
    auto cluster = MakeDsCluster(/*rtt_us=*/200);
    Options options = cluster->MakeDbOptions(engine, offload);
    options.statistics = CreateDBStatistics();
    if (engine == Engine::kShieldWalBuf) {
      shield_stats = options.statistics;
    }
    // Mirror fabric traffic (ds.network.*) into the per-engine stats so
    // the JSON report shows round trips next to the readahead tickers.
    cluster->storage->SetStatisticsSink(options.statistics.get());
    auto db = OpenDs(cluster.get(), options, "dsmicro");

    WorkloadOptions workload;
    workload.num_ops = DefaultDsOps();
    workload.num_keys = DefaultDsOps();
    BenchResult write_result = FillRandomSettled(
        db.get(), workload, std::string(EngineName(engine)) + " fillrandom");
    db->WaitForIdle();
    PrintResult(write_result);

    WorkloadOptions reads = workload;
    reads.num_ops = DefaultDsOps() / 2;
    BenchResult read_result = ReadRandom(
        db.get(), reads, std::string(EngineName(engine)) + " readrandom");
    PrintResult(read_result);

    WorkloadOptions mix = reads;
    BenchResult mix_result = RunMixgraph(db.get(), mix);
    mix_result.label = std::string(EngineName(engine)) + " mixgraph";
    PrintResult(mix_result);

    all_results.push_back(write_result);
    all_results.push_back(read_result);
    all_results.push_back(mix_result);

    if (engine == Engine::kUnencrypted) {
      write_baseline = write_result;
      read_baseline = read_result;
      mix_baseline = mix_result;
    } else {
      PrintPercentVs(write_baseline, write_result);
      PrintPercentVs(read_baseline, read_result);
      PrintPercentVs(mix_baseline, mix_result);
    }
    db.reset();
    cluster->storage->SetStatisticsSink(nullptr);  // stats may die first
  }

  const std::string json_path = offload ? "BENCH_fig22_offload_micro.json"
                                        : "BENCH_fig19_ds_micro.json";
  const std::string bench_name =
      offload ? "fig22_offload_micro" : "fig19_ds_micro";
  if (WriteBenchJson(json_path, bench_name, all_results,
                     shield_stats.get())) {
    printf("wrote %s\n", json_path.c_str());
  } else {
    fprintf(stderr, "%s: cannot write %s\n", bench_name.c_str(),
            json_path.c_str());
  }
}

inline void RunDsMixed(bool offload) {
  PrintBenchHeader(
      offload ? "DS + offloaded compaction: mixed ratios (Fig 23)"
              : "Disaggregated storage: mixed ratios (Fig 20)",
      "throughput and p99 for different read:write ratios; paper: 6-14% "
      "gap in DS");

  for (int read_percent : {10, 50, 90}) {
    printf("\n-- %d%% reads --\n", read_percent);
    BenchResult baseline;
    for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
      auto cluster = MakeDsCluster(/*rtt_us=*/200);
      Options options = cluster->MakeDbOptions(engine, offload);
      auto db = OpenDs(cluster.get(), options, "dsmixed");

      WorkloadOptions load;
      load.num_ops = DefaultDsOps() / 2;
      load.num_keys = DefaultDsOps() / 2;
      FillRandom(db.get(), load, "load");
      db->WaitForIdle();

      WorkloadOptions mixed = load;
      mixed.num_ops = DefaultDsOps() / 2;
      mixed.read_percent = read_percent;
      BenchResult result = ReadWriteMix(db.get(), mixed, EngineName(engine));
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
    }
  }
}

inline void RunDsYcsb(bool offload) {
  PrintBenchHeader(offload
                       ? "DS + offloaded compaction: YCSB (Fig 24)"
                       : "Disaggregated storage: YCSB (Fig 21)",
                   "paper: ~8% (DS) / ~4% (offload) average YCSB gap");

  const YcsbKind kKinds[] = {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC,
                             YcsbKind::kD, YcsbKind::kE, YcsbKind::kF};
  for (YcsbKind kind : kKinds) {
    printf("\n-- %s --\n", YcsbName(kind));
    BenchResult baseline;
    for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
      auto cluster = MakeDsCluster(/*rtt_us=*/200);
      Options options = cluster->MakeDbOptions(engine, offload);
      auto db = OpenDs(cluster.get(), options, "dsycsb");

      WorkloadOptions workload;
      workload.num_keys = EnvInt("SHIELD_BENCH_DS_YCSB_KEYS", 8'000);
      workload.value_size = 1024;
      workload.num_ops = EnvInt("SHIELD_BENCH_DS_YCSB_OPS", 8'000);
      if (kind == YcsbKind::kE) {
        workload.num_ops /= 4;
      }
      YcsbLoad(db.get(), workload);
      db->WaitForIdle();

      BenchResult result = RunYcsb(db.get(), kind, workload);
      result.label = EngineName(engine);
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
    }
  }
}

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCH_DS_SUITE_H_
