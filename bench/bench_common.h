#ifndef SHIELD_BENCH_BENCH_COMMON_H_
#define SHIELD_BENCH_BENCH_COMMON_H_

// Shared plumbing for the per-figure/table bench binaries. Scale knobs
// come from the environment so a laptop run and a beefy-server run use
// the same binaries:
//   SHIELD_BENCH_OPS    write ops per run        (default 100000)
//   SHIELD_BENCH_READS  read ops per run         (default 50000)
//   SHIELD_BENCH_KEYS   key-space size           (default 100000)
//   SHIELD_BENCH_DS_OPS ops for simulated-DS runs (default 20000)

#include <cstdio>
#include <memory>
#include <string>

#include "benchutil/engines.h"
#include "benchutil/mixgraph.h"
#include "benchutil/report.h"
#include "benchutil/workload.h"
#include "benchutil/ycsb.h"
#include "ds/compaction_worker.h"
#include "ds/storage_service.h"
#include "kds/sim_kds.h"
#include "lsm/db.h"
#include "util/clock.h"

namespace shield {
namespace bench {

inline uint64_t DefaultOps() { return EnvInt("SHIELD_BENCH_OPS", 100'000); }
inline uint64_t DefaultReads() { return EnvInt("SHIELD_BENCH_READS", 50'000); }
inline uint64_t DefaultKeys() { return EnvInt("SHIELD_BENCH_KEYS", 100'000); }
inline uint64_t DefaultDsOps() { return EnvInt("SHIELD_BENCH_DS_OPS", 20'000); }

/// Baseline options used by all monolith benches (defaults follow the
/// paper's db_bench setup at reduced scale).
inline Options MonolithOptions() {
  Options options;
  options.write_buffer_size =
      static_cast<size_t>(EnvInt("SHIELD_BENCH_WRITE_BUFFER", 4 << 20));
  options.block_cache_size = 32 << 20;
  options.max_background_jobs = 2;
  return options;
}

/// Opens a freshly-destroyed DB on tmpfs (stable timing on shared VMs).
inline std::unique_ptr<DB> OpenFresh(const Options& options,
                                     const std::string& name) {
  const std::string path = "/dev/shm/shield_bench_" + name;
  DestroyDB(options, path);
  DB* raw_db = nullptr;
  Status s = DB::Open(options, path, &raw_db);
  if (!s.ok()) {
    fprintf(stderr, "FATAL: cannot open %s: %s\n", path.c_str(),
            s.ToString().c_str());
    exit(1);
  }
  return std::unique_ptr<DB>(raw_db);
}

inline void Cleanup(const Options& options, const std::string& name) {
  DestroyDB(options, "/dev/shm/shield_bench_" + name);
}

/// One simulated disaggregated-storage deployment: shared storage
/// behind a network, an optional offloaded-compaction worker, and a
/// SimKds. Mirrors the paper's two-server testbed.
struct DsCluster {
  std::unique_ptr<Env> backing;      // storage server filesystem
  std::unique_ptr<StorageService> storage;
  std::unique_ptr<Env> compute_env;  // client (compute server) view
  std::shared_ptr<SimKds> kds;
  std::unique_ptr<RemoteCompactionWorker> worker;
  IoStats compute_traffic;

  /// `engine` selects unencrypted vs SHIELD; `offload` wires the
  /// storage-side compaction worker into the returned options.
  Options MakeDbOptions(Engine engine, bool offload) {
    Options options;
    options.env = compute_env.get();
    options.write_buffer_size = 1 << 20;
    options.block_cache_size = 16 << 20;
    ApplyEngine(engine, &options);
    if (options.encryption.mode == EncryptionMode::kShield) {
      options.encryption.kds = kds;
      options.encryption.server_id = "primary";
    }
    if (offload) {
      RemoteCompactionWorker::WorkerOptions worker_options;
      worker_options.env = storage->server_env();
      worker_options.db_options = options;
      worker_options.db_options.env = storage->server_env();
      worker_options.db_options.encryption.server_id = "worker";
      worker_options.server_id = "worker";
      worker = std::make_unique<RemoteCompactionWorker>(worker_options);
      options.compaction_service = worker.get();
    }
    return options;
  }
};

inline std::unique_ptr<DsCluster> MakeDsCluster(
    uint64_t rtt_us = 500, uint64_t bandwidth_bps = 125ull * 1000 * 1000,
    uint64_t kds_latency_us = 2750) {
  auto cluster = std::make_unique<DsCluster>();
  cluster->backing = NewMemEnv();
  NetworkSimOptions network;
  network.rtt_micros = rtt_us;
  network.bandwidth_bytes_per_sec = bandwidth_bps;
  cluster->storage =
      std::make_unique<StorageService>(cluster->backing.get(), network);
  cluster->compute_env =
      NewRemoteEnv(cluster->storage.get(), &cluster->compute_traffic);
  cluster->kds = std::make_shared<SimKds>(SimKdsOptions{
      .request_latency_us = kds_latency_us,
      .one_time_provisioning = false,
      .require_authorization = false});
  return cluster;
}

/// fillrandom with run isolation: foreground throughput is measured
/// exactly as the paper does (Put-call rate while background jobs run
/// concurrently); the flush/compaction backlog is then drained OUTSIDE
/// the timed window so consecutive engine configurations start from a
/// quiesced system and do not inherit each other's background debt.
inline BenchResult FillRandomSettled(DB* db, const WorkloadOptions& opts,
                                     const std::string& label) {
  BenchResult result = FillRandom(db, opts, label);
  db->Flush();
  db->WaitForIdle();
  return result;
}

inline std::unique_ptr<DB> OpenDs(DsCluster* cluster, const Options& options,
                                  const std::string& name) {
  const std::string path = "/cluster/" + name;
  DestroyDB(options, path);
  DB* raw_db = nullptr;
  Status s = DB::Open(options, path, &raw_db);
  if (!s.ok()) {
    fprintf(stderr, "FATAL: cannot open DS db %s: %s\n", path.c_str(),
            s.ToString().c_str());
    exit(1);
  }
  (void)cluster;
  return std::unique_ptr<DB>(raw_db);
}

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCH_BENCH_COMMON_H_
