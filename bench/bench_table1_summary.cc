// Table 1: comparison of the designs. The qualitative columns are
// design facts; the "throughput degradation" band is measured live
// with a quick fillrandom across the engine configurations.

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  WorkloadOptions workload;
  workload.num_ops = DefaultOps() / 2;
  workload.num_keys = DefaultKeys();

  printf("Reproducing Table 1: Comparison of Our Designs with Existing "
         "Work\n");
  printf("(qualitative columns are design properties; the degradation "
         "band is measured below)\n\n");

  double worst_encfs = 0, worst_shield = 0;
  BenchResult baseline;
  for (Engine engine :
       {Engine::kUnencrypted, Engine::kEncFs, Engine::kShield}) {
    Options options = MonolithOptions();
    ApplyEngine(engine, &options, /*wal_buffer_size=*/0);
    auto db = OpenFresh(options, "table1");
    BenchResult result = FillRandomSettled(db.get(), workload, EngineName(engine));
    db.reset();
    Cleanup(options, "table1");
    if (engine == Engine::kUnencrypted) {
      baseline = result;
    } else {
      const double degradation = -PercentVs(baseline, result);
      if (engine == Engine::kEncFs) {
        worst_encfs = degradation;
      } else {
        worst_shield = degradation;
      }
    }
  }

  printf("%-26s %6s %12s %12s %12s %16s\n", "design", "DS", "at-rest",
         "in-use", "DEK-pract.", "degradation");
  printf("%-26s %6s %12s %12s %12s %16s\n", "no-encryption", "-", "no", "no",
         "-", "0% (baseline)");
  printf("%-26s %6s %12s %12s %12s %16s\n",
         "existing (SGX: SPEICHER..)", "no", "partial", "yes", "no",
         "340-1500% (paper)");
  printf("%-26s %6s %12s %12s %12s %11.0f%% max\n", "instance-level (EncFS)",
         "yes", "yes", "no", "no", worst_encfs);
  printf("%-26s %6s %12s %12s %12s %11.0f%% max\n", "SHIELD", "yes", "yes",
         "no", "yes", worst_shield);
  printf("\npaper bands: EncFS 0-32%%, SHIELD 0-36%% (worst case: "
         "small-value fillrandom, no WAL buffer)\n");
  return 0;
}
