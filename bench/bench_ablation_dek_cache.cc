// Ablation (beyond the paper): SHIELD's secure on-disk DEK cache.
// Measures database restart (open + first read over every SST) with a
// realistic KDS latency, with and without the cache — the cache turns
// per-file KDS round-trips into local reads.

#include "bench_common.h"
#include "util/clock.h"

using namespace shield;
using namespace shield::bench;

namespace {

struct RestartCost {
  double open_seconds;
  uint64_t kds_requests;
};

RestartCost MeasureRestart(bool use_cache, int num_files) {
  auto env = NewMemEnv();
  auto kds = std::make_shared<SimKds>(SimKdsOptions{
      .request_latency_us = 2750,  // SSToolkit-like
      .one_time_provisioning = false,
      .require_authorization = false});

  Options options;
  options.env = env.get();
  options.write_buffer_size = 16 * 1024;
  options.level0_file_num_compaction_trigger = 1000;  // keep files at L0
  options.encryption.mode = EncryptionMode::kShield;
  options.encryption.kds = kds;
  options.encryption.use_secure_dek_cache = use_cache;
  options.encryption.passkey = use_cache ? "bench-passkey" : "";

  {
    DB* raw_db = nullptr;
    Status s = DB::Open(options, "/db", &raw_db);
    if (!s.ok()) {
      fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
      exit(1);
    }
    std::unique_ptr<DB> db(raw_db);
    // Create `num_files` SSTs by flushing between batches.
    int key = 0;
    for (int f = 0; f < num_files; f++) {
      for (int i = 0; i < 50; i++) {
        db->Put(WriteOptions(), "key" + std::to_string(key++),
                std::string(100, 'c'));
      }
      db->Flush();
    }
  }

  const uint64_t before_requests = kds->num_requests();
  const uint64_t t0 = NowMicros();
  DB* raw_db = nullptr;
  Status s = DB::Open(options, "/db", &raw_db);
  if (!s.ok()) {
    fprintf(stderr, "reopen failed: %s\n", s.ToString().c_str());
    exit(1);
  }
  std::unique_ptr<DB> db(raw_db);
  // Touch every file: one Get per flushed batch.
  for (int f = 0; f < num_files; f++) {
    std::string value;
    db->Get(ReadOptions(), "key" + std::to_string(f * 50 + 1), &value);
  }
  const double seconds = (NowMicros() - t0) / 1e6;
  return {seconds, kds->num_requests() - before_requests};
}

}  // namespace

int main() {
  printf("\n=== Ablation: secure DEK cache (restart cost, KDS latency "
         "2750us) ===\n");
  printf("%-10s %-14s %12s %16s\n", "sst files", "dek cache", "restart(s)",
         "KDS round-trips");
  for (int files : {10, 40, 100}) {
    for (bool use_cache : {false, true}) {
      const RestartCost cost = MeasureRestart(use_cache, files);
      printf("%-10d %-14s %12.3f %16llu\n", files,
             use_cache ? "enabled" : "disabled", cost.open_seconds,
             static_cast<unsigned long long>(cost.kds_requests));
      fflush(stdout);
    }
  }
  printf("\n(the cache eliminates the per-file GetDek round-trips on "
         "restart; creates still contact the KDS)\n");
  return 0;
}
