// Figure 16: sensitivity to KDS latency (offloaded compaction, DS).
// SHIELD requests one DEK per file creation, so even multi-millisecond
// KDS latency has bounded impact (paper: <=10% throughput, ~6% p99).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const uint64_t kKdsLatenciesUs[] = {0, 1000, 2750, 5000, 10000};

  PrintBenchHeader("Fig 16: KDS latency sensitivity (DS + offloaded "
                   "compaction)",
                   "<=10% throughput delta up to 10ms KDS latency; "
                   "SSToolkit measures ~2750us");

  BenchResult baseline;
  for (uint64_t latency_us : kKdsLatenciesUs) {
    auto cluster = MakeDsCluster(/*rtt_us=*/200,
                                 /*bandwidth_bps=*/125ull * 1000 * 1000,
                                 /*kds_latency_us=*/latency_us);
    Options options =
        cluster->MakeDbOptions(Engine::kShieldWalBuf, /*offload=*/true);
    auto db = OpenDs(cluster.get(), options, "fig16");

    WorkloadOptions workload;
    workload.num_ops = DefaultDsOps();
    workload.num_keys = DefaultDsOps();
    char label[64];
    snprintf(label, sizeof(label), "shield kds-latency=%lluus",
             static_cast<unsigned long long>(latency_us));
    BenchResult result = FillRandomSettled(db.get(), workload, label);
    PrintResult(result);
    printf("   KDS requests served: %llu\n",
           static_cast<unsigned long long>(cluster->kds->num_requests()));
    if (latency_us == 0) {
      baseline = result;
    } else {
      PrintPercentVs(baseline, result);
    }
    db.reset();
  }
  return 0;
}
