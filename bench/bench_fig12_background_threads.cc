// Figure 12: background-thread sensitivity with 4 writer threads.
// Flush/compaction (and under SHIELD, their encryption) are background
// work: starving them throttles the whole pipeline, while enough
// threads let SHIELD+WAL-Buf even beat the unbuffered baseline.

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const int kBackgroundJobs[] = {1, 2, 4, 8};

  PrintBenchHeader("Fig 12: background jobs (fillrandom, 4 writers)",
                   "SHIELD+WAL-Buf goes from -6% (2 jobs) to +10% "
                   "(4 jobs) vs unbuffered baseline");

  for (int jobs : kBackgroundJobs) {
    printf("\n-- %d background job(s) --\n", jobs);
    BenchResult baseline;
    for (Engine engine : {Engine::kUnencrypted, Engine::kShieldWalBuf}) {
      Options options = MonolithOptions();
      options.max_background_jobs = jobs;
      ApplyEngine(engine, &options);
      auto db = OpenFresh(options, "fig12");

      WorkloadOptions workload;
      workload.num_ops = DefaultOps();
      workload.num_keys = DefaultKeys();
      workload.num_threads = 4;
      BenchResult result =
          FillRandomSettled(db.get(), workload, EngineName(engine));
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
      Cleanup(options, "fig12");
    }
  }
  return 0;
}
