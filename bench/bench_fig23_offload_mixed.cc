// See ds_suite.h — this binary regenerates the paper's fig23 offload mixed series.

#include "ds_suite.h"

int main() {
  shield::bench::RunDsMixed(true);
  return 0;
}
