// See ds_suite.h — this binary regenerates the paper's fig22 offload micro series.

#include "ds_suite.h"

int main() {
  shield::bench::RunDsMicro(true);
  return 0;
}
