// Figure 14: WAL buffer size sensitivity. Bigger buffers amortize the
// per-operation encryption initialization over more writes (paper:
// EncFS overhead 32%->7% and SHIELD 36%->10% going from no buffer to
// 2048 B).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const size_t kBufferSizes[] = {0, 128, 256, 512, 1024, 2048};

  PrintBenchHeader("Fig 14: WAL buffer sizes (fillrandom)",
                   "overhead decreases monotonically with buffer "
                   "size");

  BenchResult baseline;
  {
    Options options = MonolithOptions();
    auto db = OpenFresh(options, "fig14");
    WorkloadOptions workload;
    workload.num_ops = DefaultOps();
    workload.num_keys = DefaultKeys();
    baseline = FillRandomSettled(db.get(), workload, "unencrypted");
    PrintResult(baseline);
    db.reset();
    Cleanup(options, "fig14");
  }

  for (Engine engine : {Engine::kEncFsWalBuf, Engine::kShieldWalBuf}) {
    for (size_t buffer_size : kBufferSizes) {
      Options options = MonolithOptions();
      ApplyEngine(engine, &options, buffer_size);
      auto db = OpenFresh(options, "fig14");
      WorkloadOptions workload;
      workload.num_ops = DefaultOps();
      workload.num_keys = DefaultKeys();
      char label[64];
      snprintf(label, sizeof(label), "%s buf=%zuB",
               engine == Engine::kEncFsWalBuf ? "encfs" : "shield",
               buffer_size);
      BenchResult result = FillRandomSettled(db.get(), workload, label);
      PrintResult(result);
      PrintPercentVs(baseline, result);
      db.reset();
      Cleanup(options, "fig14");
    }
  }
  return 0;
}
