// Figure 9: YCSB A-F in the monolith (1 KiB values). Real-world mixes
// show small overheads; the lowest is YCSB-D (95% read-latest).

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  const YcsbKind kKinds[] = {YcsbKind::kA, YcsbKind::kB, YcsbKind::kC,
                             YcsbKind::kD, YcsbKind::kE, YcsbKind::kF};

  PrintBenchHeader("Fig 9: YCSB A-F (monolith, 1KiB values)",
                   "EncFS 2-15% overhead, SHIELD 1-23%; least on D");

  for (YcsbKind kind : kKinds) {
    printf("\n-- %s --\n", YcsbName(kind));
    BenchResult baseline;
    for (Engine engine : CoreEngines()) {
      Options options = MonolithOptions();
      ApplyEngine(engine, &options);
      auto db = OpenFresh(options, "fig9");

      WorkloadOptions workload;
      workload.num_keys = EnvInt("SHIELD_BENCH_YCSB_KEYS", 20'000);
      workload.value_size = 1024;
      workload.num_ops = EnvInt("SHIELD_BENCH_YCSB_OPS", 20'000);
      // YCSB-E is scan-heavy and far slower per op; trim it.
      if (kind == YcsbKind::kE) {
        workload.num_ops /= 4;
      }
      YcsbLoad(db.get(), workload);
      db->WaitForIdle();

      BenchResult result = RunYcsb(db.get(), kind, workload);
      result.label = EngineName(engine);
      PrintResult(result);
      if (engine == Engine::kUnencrypted) {
        baseline = result;
      } else {
        PrintPercentVs(baseline, result);
      }
      db.reset();
      Cleanup(options, "fig9");
    }
  }
  return 0;
}
