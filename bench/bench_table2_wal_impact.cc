// Table 2: Impact of Encryption for WAL-Writes. Three paper rows:
//   No Encryption | Encrypted SST only | Encrypted All (SST & WAL)
// The paper measures ~-3.9% for SST-only and ~-32.8% for all — the WAL
// write path is the bottleneck that motivates Section 5.3.
//
// On top of the paper's rows this bench measures the cost of WAL
// record padding (EncryptionOptions::wal_padding_buckets), the
// side-channel countermeasure that hides record sizes from a storage
// observer: encrypted-all is re-run with a single 4 KiB bucket
// (worst-case space overhead, strongest shaping) and with a graduated
// bucket ladder {64, 256, 1024, 4096}. The padding overhead in bytes
// is reported from the shield.wal.padding.* tickers, and every row
// lands in BENCH_table2.json for CI trend checks.
//
// Knobs: SHIELD_BENCH_OPS / SHIELD_BENCH_KEYS (bench_common.h)

#include <cinttypes>
#include <vector>

#include "bench_common.h"

namespace shield {
namespace bench {
namespace {

struct Config {
  const char* label;
  bool encrypt_sst;
  bool encrypt_wal;
  std::vector<uint32_t> padding_buckets;
};

void Run() {
  WorkloadOptions workload;
  workload.num_ops = DefaultOps();
  workload.num_keys = DefaultKeys();

  PrintBenchHeader("Table 2: Impact of Encryption for WAL-Writes",
                   "fillrandom; paper: SST-only -3.9%, SST+WAL -32.8%; "
                   "plus padded-WAL configurations");

  const Config configs[] = {
      {"no-encryption", false, false, {}},
      {"encrypted-sst-only", true, false, {}},
      {"encrypted-all (sst+wal)", true, true, {}},
      {"encrypted-all+pad4k", true, true, {4096}},
      {"encrypted-all+pad-ladder", true, true, {64, 256, 1024, 4096}},
  };

  std::shared_ptr<Statistics> stats = CreateDBStatistics();
  std::vector<BenchResult> results;
  for (const Config& config : configs) {
    Options options = MonolithOptions();
    options.statistics = stats;
    if (config.encrypt_sst) {
      ApplyEngine(Engine::kShield, &options, /*wal_buffer_size=*/0);
      options.encryption.encrypt_wal = config.encrypt_wal;
    }
    options.encryption.wal_padding_buckets = config.padding_buckets;

    const uint64_t pad_bytes_before =
        stats->GetTickerCount(Tickers::kShieldWalPaddingBytes);
    const uint64_t pad_records_before =
        stats->GetTickerCount(Tickers::kShieldWalPaddingRecords);
    const uint64_t wal_bytes_before =
        stats->GetTickerCount(Tickers::kIoWalWriteBytes);

    auto db = OpenFresh(options, "table2");
    results.push_back(FillRandomSettled(db.get(), workload, config.label));
    PrintResult(results.back());

    if (!config.padding_buckets.empty()) {
      const uint64_t pad_bytes =
          stats->GetTickerCount(Tickers::kShieldWalPaddingBytes) -
          pad_bytes_before;
      const uint64_t pad_records =
          stats->GetTickerCount(Tickers::kShieldWalPaddingRecords) -
          pad_records_before;
      const uint64_t wal_bytes =
          stats->GetTickerCount(Tickers::kIoWalWriteBytes) -
          wal_bytes_before;
      printf("   padding: %" PRIu64 " records, %" PRIu64
             " pad bytes (%.2f%% of %" PRIu64 " physical WAL bytes)\n",
             pad_records, pad_bytes,
             wal_bytes > 0 ? 100.0 * pad_bytes / wal_bytes : 0.0,
             wal_bytes);
    }
    db.reset();
    Cleanup(options, "table2");
  }

  for (size_t i = 1; i < results.size(); i++) {
    PrintPercentVs(results[0], results[i]);
  }
  // Padding overhead relative to the unpadded encrypted-all row: the
  // countermeasure's own cost, isolated from the encryption cost.
  PrintPercentVs(results[2], results[3]);
  PrintPercentVs(results[2], results[4]);

  const std::string json_path = "BENCH_table2.json";
  if (WriteBenchJson(json_path, "table2_wal_impact", results, stats.get())) {
    printf("\nwrote %s\n", json_path.c_str());
  } else {
    fprintf(stderr, "table2: cannot write %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace shield

int main() {
  shield::bench::Run();
  return 0;
}
