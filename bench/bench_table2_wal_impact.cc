// Table 2: Impact of Encryption for WAL-Writes. Three rows:
//   No Encryption | Encrypted SST only | Encrypted All (SST & WAL)
// The paper measures ~-3.9% for SST-only and ~-32.8% for all — the WAL
// write path is the bottleneck that motivates Section 5.3.

#include "bench_common.h"

using namespace shield;
using namespace shield::bench;

int main() {
  WorkloadOptions workload;
  workload.num_ops = DefaultOps();
  workload.num_keys = DefaultKeys();

  PrintBenchHeader("Table 2: Impact of Encryption for WAL-Writes",
                   "fillrandom; paper: SST-only -3.9%, SST+WAL -32.8%");

  BenchResult results[3];
  const char* labels[3] = {"no-encryption", "encrypted-sst-only",
                           "encrypted-all (sst+wal)"};
  for (int row = 0; row < 3; row++) {
    Options options = MonolithOptions();
    if (row > 0) {
      ApplyEngine(Engine::kShield, &options, /*wal_buffer_size=*/0);
      options.encryption.encrypt_wal = (row == 2);
    }
    auto db = OpenFresh(options, "table2");
    results[row] = FillRandomSettled(db.get(), workload, labels[row]);
    PrintResult(results[row]);
    db.reset();
    Cleanup(options, "table2");
  }
  PrintPercentVs(results[0], results[1]);
  PrintPercentVs(results[0], results[2]);
  return 0;
}
