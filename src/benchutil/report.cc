#include "benchutil/report.h"

#include <cstdio>
#include <cstdlib>

namespace shield {
namespace bench {

void PrintBenchHeader(const std::string& title,
                      const std::string& paper_note) {
  printf("\n=== %s ===\n", title.c_str());
  if (!paper_note.empty()) {
    printf("paper: %s\n", paper_note.c_str());
  }
  printf("%-40s %14s %12s %12s\n", "config", "ops/sec", "avg(us)",
         "p99(us)");
}

void PrintResult(const BenchResult& r) {
  printf("%-40s %14.0f %12.1f %12.1f\n", r.label.c_str(), r.ops_per_sec(),
         r.avg_micros(), r.p99_micros());
  fflush(stdout);
}

double PercentVs(const BenchResult& baseline, const BenchResult& x) {
  if (baseline.ops_per_sec() == 0) {
    return 0;
  }
  return (x.ops_per_sec() - baseline.ops_per_sec()) * 100.0 /
         baseline.ops_per_sec();
}

void PrintPercentVs(const BenchResult& baseline, const BenchResult& x) {
  printf("  -> %s vs %s: %+.1f%%\n", x.label.c_str(), baseline.label.c_str(),
         PercentVs(baseline, x));
}

uint64_t EnvInt(const char* name, uint64_t default_value) {
  const char* v = getenv(name);
  if (v == nullptr || *v == '\0') {
    return default_value;
  }
  return strtoull(v, nullptr, 10);
}

}  // namespace bench
}  // namespace shield
