#include "benchutil/report.h"

#include <cstdio>
#include <cstdlib>

namespace shield {
namespace bench {

void PrintBenchHeader(const std::string& title,
                      const std::string& paper_note) {
  printf("\n=== %s ===\n", title.c_str());
  if (!paper_note.empty()) {
    printf("paper: %s\n", paper_note.c_str());
  }
  printf("%-40s %14s %12s %12s\n", "config", "ops/sec", "avg(us)",
         "p99(us)");
}

void PrintResult(const BenchResult& r) {
  printf("%-40s %14.0f %12.1f %12.1f\n", r.label.c_str(), r.ops_per_sec(),
         r.avg_micros(), r.p99_micros());
  fflush(stdout);
}

double PercentVs(const BenchResult& baseline, const BenchResult& x) {
  if (baseline.ops_per_sec() == 0) {
    return 0;
  }
  return (x.ops_per_sec() - baseline.ops_per_sec()) * 100.0 /
         baseline.ops_per_sec();
}

void PrintPercentVs(const BenchResult& baseline, const BenchResult& x) {
  printf("  -> %s vs %s: %+.1f%%\n", x.label.c_str(), baseline.label.c_str(),
         PercentVs(baseline, x));
}

uint64_t EnvInt(const char* name, uint64_t default_value) {
  const char* v = getenv(name);
  if (v == nullptr || *v == '\0') {
    return default_value;
  }
  return strtoull(v, nullptr, 10);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<BenchResult>& results,
                    const Statistics* stats) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [",
          JsonEscape(bench_name).c_str());
  for (size_t i = 0; i < results.size(); i++) {
    const BenchResult& r = results[i];
    fprintf(f,
            "%s\n    {\"label\": \"%s\", \"ops\": %llu, "
            "\"ops_per_sec\": %.1f, \"avg_micros\": %.2f, "
            "\"p50_micros\": %.2f, \"p99_micros\": %.2f}",
            i == 0 ? "" : ",", JsonEscape(r.label).c_str(),
            static_cast<unsigned long long>(r.ops), r.ops_per_sec(),
            r.avg_micros(), r.p50_micros(), r.p99_micros());
  }
  fprintf(f, "\n  ],\n  \"tickers\": {");
  if (stats != nullptr) {
    for (size_t i = 0; i < kNumTickers; i++) {
      const Tickers t = static_cast<Tickers>(i);
      fprintf(f, "%s\n    \"%s\": %llu", i == 0 ? "" : ",", TickerName(t),
              static_cast<unsigned long long>(stats->GetTickerCount(t)));
    }
    fprintf(f, "\n  ");
  }
  fprintf(f, "},\n  \"histograms\": {");
  if (stats != nullptr) {
    bool first = true;
    for (size_t i = 0; i < kNumHistograms; i++) {
      const Histograms h = static_cast<Histograms>(i);
      const Histogram& hist = stats->GetHistogram(h);
      if (hist.Count() == 0) {
        continue;  // empty timers add noise, not information
      }
      fprintf(f,
              "%s\n    \"%s\": {\"count\": %llu, \"avg\": %.2f, "
              "\"p50\": %.2f, \"p99\": %.2f, \"max\": %llu}",
              first ? "" : ",", HistogramName(h),
              static_cast<unsigned long long>(hist.Count()), hist.Average(),
              hist.Percentile(50.0), hist.Percentile(99.0),
              static_cast<unsigned long long>(hist.Max()));
      first = false;
    }
    if (!first) {
      fprintf(f, "\n  ");
    }
  }
  fprintf(f, "}\n}\n");
  const bool ok = fflush(f) == 0 && ferror(f) == 0;
  fclose(f);
  return ok;
}

}  // namespace bench
}  // namespace shield
