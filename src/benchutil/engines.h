#ifndef SHIELD_BENCHUTIL_ENGINES_H_
#define SHIELD_BENCHUTIL_ENGINES_H_

#include <string>
#include <vector>

#include "lsm/options.h"

namespace shield {
namespace bench {

/// The engine configurations the paper compares throughout its
/// evaluation.
enum class Engine {
  kUnencrypted,    // out-of-box baseline ("unencrypted RocksDB")
  kEncFs,          // instance-level encryption, per-write encryption
  kEncFsWalBuf,    // instance-level + WAL-Buf optimization
  kShield,         // SHIELD without the WAL buffer
  kShieldWalBuf,   // SHIELD with the WAL buffer (the full design)
};

const char* EngineName(Engine engine);

/// Applies the engine's encryption configuration onto `options`.
/// SHIELD engines default to a private LocalKds unless
/// options->encryption.kds was already set (DS benches inject a SimKds
/// first).
void ApplyEngine(Engine engine, Options* options,
                 size_t wal_buffer_size = 512);

/// The standard five-way comparison, in paper order.
std::vector<Engine> AllEngines();
/// Baseline + the two full designs (for benches where the unbuffered
/// variants add nothing).
std::vector<Engine> CoreEngines();

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCHUTIL_ENGINES_H_
