#include "benchutil/ycsb.h"

#include <atomic>
#include <memory>

#include "util/random.h"

namespace shield {
namespace bench {

const char* YcsbName(YcsbKind kind) {
  switch (kind) {
    case YcsbKind::kA:
      return "YCSB-A";
    case YcsbKind::kB:
      return "YCSB-B";
    case YcsbKind::kC:
      return "YCSB-C";
    case YcsbKind::kD:
      return "YCSB-D";
    case YcsbKind::kE:
      return "YCSB-E";
    case YcsbKind::kF:
      return "YCSB-F";
  }
  return "YCSB-?";
}

namespace {

std::string YcsbValue(Random* rnd, size_t size) {
  std::string value(size, '\0');
  for (size_t i = 0; i < size; i++) {
    value[i] = static_cast<char>(' ' + rnd->Uniform(95));
  }
  return value;
}

struct OpMix {
  int read = 0;
  int update = 0;
  int insert = 0;
  int scan = 0;
  int rmw = 0;
  bool latest = false;  // latest vs zipfian request distribution
};

OpMix MixFor(YcsbKind kind) {
  switch (kind) {
    case YcsbKind::kA:
      return {50, 50, 0, 0, 0, false};
    case YcsbKind::kB:
      return {95, 5, 0, 0, 0, false};
    case YcsbKind::kC:
      return {100, 0, 0, 0, 0, false};
    case YcsbKind::kD:
      return {95, 0, 5, 0, 0, true};
    case YcsbKind::kE:
      return {0, 0, 5, 95, 0, false};
    case YcsbKind::kF:
      return {50, 0, 0, 0, 50, false};
  }
  return {};
}

}  // namespace

BenchResult YcsbLoad(DB* db, const WorkloadOptions& opts) {
  WorkloadOptions load = opts;
  load.num_ops = opts.num_keys;
  return FillSeq(db, load, "ycsb-load");
}

BenchResult RunYcsb(DB* db, YcsbKind kind, const WorkloadOptions& opts) {
  const OpMix mix = MixFor(kind);
  WriteOptions write_options;
  write_options.sync = opts.sync_writes;
  ReadOptions read_options;

  struct ThreadState {
    std::unique_ptr<ZipfianGenerator> zipf;
    Random rnd;
    ThreadState(uint64_t n, uint64_t seed)
        : zipf(std::make_unique<ZipfianGenerator>(n, 0.99, seed)),
          rnd(seed) {}
  };
  std::vector<std::unique_ptr<ThreadState>> states;
  for (int t = 0; t < opts.num_threads; t++) {
    states.push_back(
        std::make_unique<ThreadState>(opts.num_keys, opts.seed + 31 * t));
  }

  // Inserts extend the keyspace; D's "latest" reads cluster near the
  // newest inserted key.
  std::atomic<uint64_t> insert_cursor{opts.num_keys};

  auto pick_key = [&](ThreadState* state) -> uint64_t {
    const uint64_t bound = insert_cursor.load(std::memory_order_relaxed);
    if (mix.latest) {
      // latest distribution: zipfian offset back from the newest key.
      const uint64_t off = state->zipf->Next() % bound;
      return bound - 1 - off;
    }
    return state->zipf->NextScrambled() % bound;
  };

  return RunOps(
      YcsbName(kind), opts.num_ops, opts.num_threads,
      [&](int t, uint64_t /*i*/) {
        ThreadState* state = states[t].get();
        int op = static_cast<int>(state->rnd.Uniform(100));
        std::string value;
        if (op < mix.read) {
          db->Get(read_options, MakeKey(pick_key(state), opts.key_size),
                  &value);
        } else if (op < mix.read + mix.update) {
          db->Put(write_options, MakeKey(pick_key(state), opts.key_size),
                  YcsbValue(&state->rnd, opts.value_size));
        } else if (op < mix.read + mix.update + mix.insert) {
          const uint64_t k =
              insert_cursor.fetch_add(1, std::memory_order_relaxed);
          db->Put(write_options, MakeKey(k, opts.key_size),
                  YcsbValue(&state->rnd, opts.value_size));
        } else if (op < mix.read + mix.update + mix.insert + mix.scan) {
          // Scan: seek + up to 100 Next()s (YCSB uniform scan length).
          const uint64_t len = 1 + state->rnd.Uniform(100);
          std::unique_ptr<Iterator> iter(db->NewIterator(read_options));
          iter->Seek(MakeKey(pick_key(state), opts.key_size));
          for (uint64_t j = 0; j < len && iter->Valid(); j++) {
            iter->Next();
          }
        } else {
          // Read-modify-write.
          const std::string key = MakeKey(pick_key(state), opts.key_size);
          db->Get(read_options, key, &value);
          db->Put(write_options, key,
                  YcsbValue(&state->rnd, opts.value_size));
        }
      });
}

}  // namespace bench
}  // namespace shield
