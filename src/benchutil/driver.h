#ifndef SHIELD_BENCHUTIL_DRIVER_H_
#define SHIELD_BENCHUTIL_DRIVER_H_

#include <functional>
#include <string>

#include "benchutil/report.h"

namespace shield {
namespace bench {

/// Executes `op(thread_index, op_index)` `num_ops` times split across
/// `num_threads` worker threads, measuring per-op latency and total
/// wall time. `op_index` is globally unique in [0, num_ops).
BenchResult RunOps(const std::string& label, uint64_t num_ops,
                   int num_threads,
                   const std::function<void(int, uint64_t)>& op);

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCHUTIL_DRIVER_H_
