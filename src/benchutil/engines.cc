#include "benchutil/engines.h"

#include "crypto/secure_random.h"

namespace shield {
namespace bench {

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kUnencrypted:
      return "unencrypted";
    case Engine::kEncFs:
      return "encfs";
    case Engine::kEncFsWalBuf:
      return "encfs+walbuf";
    case Engine::kShield:
      return "shield";
    case Engine::kShieldWalBuf:
      return "shield+walbuf";
  }
  return "unknown";
}

void ApplyEngine(Engine engine, Options* options, size_t wal_buffer_size) {
  EncryptionOptions& enc = options->encryption;
  switch (engine) {
    case Engine::kUnencrypted:
      enc.mode = EncryptionMode::kNone;
      return;
    case Engine::kEncFs:
    case Engine::kEncFsWalBuf:
      enc.mode = EncryptionMode::kEncFS;
      enc.instance_key =
          crypto::SecureRandomString(crypto::CipherKeySize(enc.cipher));
      enc.wal_buffer_size =
          engine == Engine::kEncFsWalBuf ? wal_buffer_size : 0;
      return;
    case Engine::kShield:
    case Engine::kShieldWalBuf:
      enc.mode = EncryptionMode::kShield;
      enc.wal_buffer_size =
          engine == Engine::kShieldWalBuf ? wal_buffer_size : 0;
      // The paper engines pay the per-operation cipher initialization
      // the WAL buffer amortizes; the keystream pipeline would hide
      // it. Benches opt in explicitly (bench_fig11's parallel config).
      enc.wal_pipeline_window = 0;
      return;
  }
}

std::vector<Engine> AllEngines() {
  return {Engine::kUnencrypted, Engine::kEncFs, Engine::kEncFsWalBuf,
          Engine::kShield, Engine::kShieldWalBuf};
}

std::vector<Engine> CoreEngines() {
  return {Engine::kUnencrypted, Engine::kEncFsWalBuf, Engine::kShieldWalBuf};
}

}  // namespace bench
}  // namespace shield
