#ifndef SHIELD_BENCHUTIL_REPORT_H_
#define SHIELD_BENCHUTIL_REPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/histogram.h"
#include "util/statistics.h"

namespace shield {
namespace bench {

/// Outcome of one benchmark run: operation count, wall time, and the
/// per-operation latency distribution.
struct BenchResult {
  std::string label;
  uint64_t ops = 0;
  double elapsed_micros = 0;
  std::shared_ptr<Histogram> latency = std::make_shared<Histogram>();

  double ops_per_sec() const {
    return elapsed_micros > 0 ? ops * 1e6 / elapsed_micros : 0;
  }
  double p99_micros() const { return latency->Percentile(99.0); }
  double p50_micros() const { return latency->Percentile(50.0); }
  double avg_micros() const { return latency->Average(); }
};

/// Prints a section header for a reproduced table/figure.
void PrintBenchHeader(const std::string& title, const std::string& paper_note);

/// Prints one "label throughput p99" row.
void PrintResult(const BenchResult& r);

/// Throughput delta of `x` vs `baseline` in percent (negative =
/// slower than baseline).
double PercentVs(const BenchResult& baseline, const BenchResult& x);
void PrintPercentVs(const BenchResult& baseline, const BenchResult& x);

/// Reads an integer knob from the environment (e.g. SHIELD_BENCH_OPS)
/// with a default — benches scale to the machine without recompiling.
uint64_t EnvInt(const char* name, uint64_t default_value);

/// Escapes `s` for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& s);

/// Writes a machine-readable report with a stable schema:
///
///   {
///     "bench": "<name>",
///     "results": [ {"label", "ops", "ops_per_sec", "avg_micros",
///                   "p50_micros", "p99_micros"} ... ],
///     "tickers": { "<ticker name>": <count>, ... },      // all tickers
///     "histograms": { "<name>": {"count","avg","p50","p99","max"} }
///   }
///
/// `stats` may be null (tickers/histograms are emitted as empty
/// objects). Returns false when the file cannot be written.
bool WriteBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<BenchResult>& results,
                    const Statistics* stats);

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCHUTIL_REPORT_H_
