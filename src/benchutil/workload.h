#ifndef SHIELD_BENCHUTIL_WORKLOAD_H_
#define SHIELD_BENCHUTIL_WORKLOAD_H_

#include <string>

#include "benchutil/driver.h"
#include "benchutil/report.h"
#include "lsm/db.h"

namespace shield {
namespace bench {

/// Common knobs for db_bench-style drivers. Defaults follow the
/// paper's setup (16-byte keys, 100-byte values).
struct WorkloadOptions {
  uint64_t num_ops = 100'000;
  uint64_t num_keys = 100'000;  // key-space size
  size_t key_size = 16;
  size_t value_size = 100;
  int num_threads = 1;
  int read_percent = 50;  // for mixed workloads
  uint64_t seed = 42;
  bool sync_writes = false;
};

/// Formats key index `v` as a zero-padded decimal of `key_size` bytes
/// (db_bench key format).
std::string MakeKey(uint64_t v, size_t key_size);

/// db_bench fillrandom: random Puts over the keyspace.
BenchResult FillRandom(DB* db, const WorkloadOptions& opts,
                       const std::string& label);

/// db_bench fillseq: sequential Puts (used to preload).
BenchResult FillSeq(DB* db, const WorkloadOptions& opts,
                    const std::string& label);

/// db_bench readrandom: uniform random Gets.
BenchResult ReadRandom(DB* db, const WorkloadOptions& opts,
                       const std::string& label);

/// db_bench readrandomwriterandom: opts.read_percent% Gets, rest Puts.
BenchResult ReadWriteMix(DB* db, const WorkloadOptions& opts,
                         const std::string& label);

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCHUTIL_WORKLOAD_H_
