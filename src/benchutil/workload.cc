#include "benchutil/workload.h"

#include <cstdio>

#include "util/random.h"

namespace shield {
namespace bench {

std::string MakeKey(uint64_t v, size_t key_size) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%020llu", static_cast<unsigned long long>(v));
  std::string key(buf);
  if (key.size() > key_size) {
    key = key.substr(key.size() - key_size);
  } else {
    key.insert(0, key_size - key.size(), '0');
  }
  return key;
}

namespace {

std::string MakeValue(Random* rnd, size_t size) {
  std::string value(size, '\0');
  for (size_t i = 0; i < size; i++) {
    value[i] = static_cast<char>(' ' + rnd->Uniform(95));
  }
  return value;
}

}  // namespace

BenchResult FillRandom(DB* db, const WorkloadOptions& opts,
                       const std::string& label) {
  WriteOptions write_options;
  write_options.sync = opts.sync_writes;
  std::vector<Random> rngs;
  for (int t = 0; t < opts.num_threads; t++) {
    rngs.emplace_back(opts.seed + t);
  }
  return RunOps(label, opts.num_ops, opts.num_threads,
                [&](int t, uint64_t /*i*/) {
                  Random& rnd = rngs[t];
                  const std::string key =
                      MakeKey(rnd.Uniform(opts.num_keys), opts.key_size);
                  const std::string value = MakeValue(&rnd, opts.value_size);
                  db->Put(write_options, key, value);
                });
}

BenchResult FillSeq(DB* db, const WorkloadOptions& opts,
                    const std::string& label) {
  WriteOptions write_options;
  write_options.sync = opts.sync_writes;
  std::vector<Random> rngs;
  for (int t = 0; t < opts.num_threads; t++) {
    rngs.emplace_back(opts.seed + t);
  }
  return RunOps(label, opts.num_ops, opts.num_threads,
                [&](int t, uint64_t i) {
                  Random& rnd = rngs[t];
                  const std::string key = MakeKey(i, opts.key_size);
                  const std::string value = MakeValue(&rnd, opts.value_size);
                  db->Put(write_options, key, value);
                });
}

BenchResult ReadRandom(DB* db, const WorkloadOptions& opts,
                       const std::string& label) {
  ReadOptions read_options;
  std::vector<Random> rngs;
  for (int t = 0; t < opts.num_threads; t++) {
    rngs.emplace_back(opts.seed + 1000 + t);
  }
  return RunOps(label, opts.num_ops, opts.num_threads,
                [&](int t, uint64_t /*i*/) {
                  Random& rnd = rngs[t];
                  const std::string key =
                      MakeKey(rnd.Uniform(opts.num_keys), opts.key_size);
                  std::string value;
                  db->Get(read_options, key, &value);
                });
}

BenchResult ReadWriteMix(DB* db, const WorkloadOptions& opts,
                         const std::string& label) {
  WriteOptions write_options;
  write_options.sync = opts.sync_writes;
  ReadOptions read_options;
  std::vector<Random> rngs;
  for (int t = 0; t < opts.num_threads; t++) {
    rngs.emplace_back(opts.seed + 2000 + t);
  }
  return RunOps(label, opts.num_ops, opts.num_threads,
                [&](int t, uint64_t /*i*/) {
                  Random& rnd = rngs[t];
                  const std::string key =
                      MakeKey(rnd.Uniform(opts.num_keys), opts.key_size);
                  if (static_cast<int>(rnd.Uniform(100)) <
                      opts.read_percent) {
                    std::string value;
                    db->Get(read_options, key, &value);
                  } else {
                    const std::string value =
                        MakeValue(&rnd, opts.value_size);
                    db->Put(write_options, key, value);
                  }
                });
}

}  // namespace bench
}  // namespace shield
