#include "benchutil/mixgraph.h"

#include <memory>

#include "util/random.h"

namespace shield {
namespace bench {

BenchResult RunMixgraph(DB* db, const WorkloadOptions& opts) {
  WriteOptions write_options;
  write_options.sync = opts.sync_writes;
  ReadOptions read_options;

  struct ThreadState {
    ZipfianGenerator zipf;
    ParetoGenerator value_sizes;
    Random rnd;
    ThreadState(uint64_t n, uint64_t seed)
        // Pareto(xm=16, alpha=1.6) capped at 1 KiB has mean ~= 37
        // bytes, matching the FAST'20 value-size fit.
        : zipf(n, 0.99, seed),
          value_sizes(16.0, 1.6, 1024.0, seed + 1),
          rnd(seed + 2) {}
  };
  std::vector<std::unique_ptr<ThreadState>> states;
  for (int t = 0; t < opts.num_threads; t++) {
    states.push_back(
        std::make_unique<ThreadState>(opts.num_keys, opts.seed + 97 * t));
  }

  return RunOps(
      "mixgraph", opts.num_ops, opts.num_threads, [&](int t, uint64_t) {
        ThreadState* state = states[t].get();
        const uint64_t k = state->zipf.NextScrambled();
        const std::string key = MakeKey(k, opts.key_size);
        const int op = static_cast<int>(state->rnd.Uniform(100));
        if (op < 83) {
          std::string value;
          db->Get(read_options, key, &value);
        } else if (op < 97) {
          const size_t value_size =
              static_cast<size_t>(state->value_sizes.Next());
          std::string value(value_size, 'm');
          db->Put(write_options, key, value);
        } else {
          std::unique_ptr<Iterator> iter(db->NewIterator(read_options));
          iter->Seek(key);
          for (int j = 0; j < 10 && iter->Valid(); j++) {
            iter->Next();
          }
        }
      });
}

}  // namespace bench
}  // namespace shield
