#ifndef SHIELD_BENCHUTIL_YCSB_H_
#define SHIELD_BENCHUTIL_YCSB_H_

#include "benchutil/workload.h"

namespace shield {
namespace bench {

/// The six core YCSB workloads (Cooper et al., SoCC'10), as used in
/// the paper's macro benchmarks (1 KiB values, Zipfian request
/// distribution).
enum class YcsbKind {
  kA,  // 50% read / 50% update, zipfian
  kB,  // 95% read / 5% update, zipfian
  kC,  // 100% read, zipfian
  kD,  // 95% read / 5% insert, latest
  kE,  // 95% scan / 5% insert, zipfian
  kF,  // 50% read / 50% read-modify-write, zipfian
};

const char* YcsbName(YcsbKind kind);

/// Preloads num_keys records (the YCSB load phase).
BenchResult YcsbLoad(DB* db, const WorkloadOptions& opts);

/// Runs opts.num_ops operations of the given workload.
BenchResult RunYcsb(DB* db, YcsbKind kind, const WorkloadOptions& opts);

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCHUTIL_YCSB_H_
