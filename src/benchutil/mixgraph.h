#ifndef SHIELD_BENCHUTIL_MIXGRAPH_H_
#define SHIELD_BENCHUTIL_MIXGRAPH_H_

#include "benchutil/workload.h"

namespace shield {
namespace bench {

/// Approximation of db_bench's mixgraph workload, which models the
/// Facebook production key-value traffic characterized in Cao et al.
/// (FAST'20): highly skewed key popularity (Zipfian over a scrambled
/// keyspace), small Pareto-distributed value sizes (mean ~= 37 bytes),
/// and a GET/PUT/SEEK mix of roughly 0.83/0.14/0.03.
BenchResult RunMixgraph(DB* db, const WorkloadOptions& opts);

}  // namespace bench
}  // namespace shield

#endif  // SHIELD_BENCHUTIL_MIXGRAPH_H_
