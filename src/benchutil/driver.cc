#include "benchutil/driver.h"

#include <thread>
#include <vector>

#include "util/clock.h"

namespace shield {
namespace bench {

BenchResult RunOps(const std::string& label, uint64_t num_ops,
                   int num_threads,
                   const std::function<void(int, uint64_t)>& op) {
  BenchResult result;
  result.label = label;
  result.ops = num_ops;
  if (num_threads < 1) {
    num_threads = 1;
  }

  const uint64_t start = NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int t = 0; t < num_threads; t++) {
    threads.emplace_back([&, t] {
      // Interleave op indices so threads touch disjoint sequences.
      for (uint64_t i = t; i < num_ops; i += num_threads) {
        const uint64_t op_start = NowMicros();
        op(t, i);
        result.latency->Add(NowMicros() - op_start);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  result.elapsed_micros = static_cast<double>(NowMicros() - start);
  return result;
}

}  // namespace bench
}  // namespace shield
