#ifndef SHIELD_KDS_SIM_KDS_H_
#define SHIELD_KDS_SIM_KDS_H_

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "kds/kds.h"

namespace shield {

/// Configuration of the simulated Secure-Swarm-Toolkit-style KDS.
struct SimKdsOptions {
  /// Service latency applied to every request (generation + network).
  /// The paper measures SSToolkit at ~2750 us per DEK on a LAN.
  uint64_t request_latency_us = 2750;

  /// When true, a DEK may be fetched by GetDek at most once per server;
  /// later requests are denied even with a valid DEK-ID (the paper's
  /// one-time provisioning safeguard, Section 5.4). The creating
  /// server's CreateDek does not count as a fetch.
  bool one_time_provisioning = false;

  /// When true, only servers in the authorized set may talk to the
  /// KDS. Servers are added with AuthorizeServer().
  bool require_authorization = false;
};

/// SimKds emulates a decentralized KDS for disaggregated deployments:
/// per-request latency, per-server authorization with revocation, and
/// one-time DEK provisioning. Thread safe.
class SimKds : public Kds {
 public:
  explicit SimKds(SimKdsOptions options = {});

  Status CreateDek(const std::string& server_id, crypto::CipherKind kind,
                   Dek* out) override;
  Status GetDek(const std::string& server_id, const DekId& id,
                Dek* out) override;
  Status DeleteDek(const std::string& server_id, const DekId& id) override;
  Status RewrapDek(const std::string& server_id, const DekId& id,
                   const std::string& target_server_id, Dek* out) override;

  /// Grants `server_id` access to the KDS.
  void AuthorizeServer(const std::string& server_id);
  /// Revokes a (possibly breached) server; its future requests fail
  /// with PermissionDenied.
  void RevokeServer(const std::string& server_id);

  /// Changes the simulated service latency at runtime (Fig. 16 sweep).
  void set_request_latency_us(uint64_t us) {
    latency_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t request_latency_us() const {
    return latency_us_.load(std::memory_order_relaxed);
  }

  uint64_t num_requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  size_t NumDeks() const;

 private:
  Status CheckAuthorized(const std::string& server_id);
  void SimulateLatency();

  SimKdsOptions options_;
  std::atomic<uint64_t> latency_us_;
  std::atomic<uint64_t> requests_{0};

  mutable std::mutex mu_;
  std::map<DekId, Dek> deks_;
  std::set<std::string> authorized_;
  std::set<std::string> revoked_;
  // dek id -> set of servers that already fetched it (for one-time
  // provisioning).
  std::map<DekId, std::set<std::string>> provisioned_;
};

}  // namespace shield

#endif  // SHIELD_KDS_SIM_KDS_H_
