#ifndef SHIELD_KDS_DEK_H_
#define SHIELD_KDS_DEK_H_

#include <array>
#include <cstdint>
#include <string>

#include "crypto/cipher.h"
#include "util/slice.h"

namespace shield {

/// A 16-byte globally unique Data-Encryption-Key identifier. DEK-IDs
/// are embedded (in plaintext) in file metadata so any authorized
/// server can resolve the DEK from the KDS — the paper's
/// "metadata-enabled DEK sharing" (Section 5.4).
struct DekId {
  std::array<uint8_t, 16> bytes = {};

  static constexpr size_t kSize = 16;

  bool operator==(const DekId& other) const { return bytes == other.bytes; }
  bool operator<(const DekId& other) const { return bytes < other.bytes; }

  bool IsZero() const;

  /// Lowercase hex, e.g. "1f0a...".
  std::string ToHex() const;
  static bool FromHex(const std::string& hex, DekId* out);

  Slice AsSlice() const {
    return Slice(reinterpret_cast<const char*>(bytes.data()), kSize);
  }
  static DekId FromSlice(const Slice& s);

  /// A fresh random DEK-ID from the CSPRNG.
  static DekId Generate();
};

/// A data encryption key with its identity and algorithm.
struct Dek {
  DekId id;
  crypto::CipherKind cipher = crypto::CipherKind::kAes128Ctr;
  std::string key;  // CipherKeySize(cipher) bytes of secret key material
};

}  // namespace shield

#endif  // SHIELD_KDS_DEK_H_
