#include "kds/secure_dek_cache.h"

#include <cstring>

#include "crypto/cipher.h"
#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "crypto/secure_random.h"
#include "util/coding.h"
#include "util/retry.h"

namespace shield {

namespace {

constexpr char kMagicV1[8] = {'S', 'H', 'D', 'C', 'A', 'C', 'H', '1'};
constexpr char kMagicV2[8] = {'S', 'H', 'D', 'C', 'A', 'C', 'H', '2'};
constexpr size_t kMagicSize = 8;
constexpr size_t kSaltSize = 16;
constexpr size_t kNonceSize = 16;
constexpr size_t kCtLenSize = 8;
constexpr size_t kMacSize = 32;

/// Cache-file I/O retries transient storage faults; losing a persist
/// costs a KDS round-trip after restart, but riding out a blip keeps
/// the cache and the KDS view consistent.
const RetryPolicy& CacheIoRetryPolicy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts = 5;
    p.initial_backoff_micros = 200;
    p.max_backoff_micros = 10 * 1000;
    return p;
  }();
  return policy;
}

std::string DeriveEncKey(const std::string& passkey, const Slice& salt) {
  return crypto::HkdfSha256(passkey, salt, "shield-dek-cache-enc", 32);
}

std::string DeriveMacKey(const std::string& passkey, const Slice& salt) {
  return crypto::HkdfSha256(passkey, salt, "shield-dek-cache-mac", 32);
}

}  // namespace

SecureDekCache::SecureDekCache(Env* env, std::string path, std::string passkey)
    : env_(env), path_(std::move(path)), passkey_(std::move(passkey)) {}

Status SecureDekCache::Open(Env* env, const std::string& path,
                            const std::string& passkey,
                            std::unique_ptr<SecureDekCache>* out) {
  if (passkey.empty()) {
    return Status::InvalidArgument("secure DEK cache requires a passkey");
  }
  std::unique_ptr<SecureDekCache> cache(
      new SecureDekCache(env, path, passkey));
  // A stale .tmp is a persist that never reached its rename; the real
  // file (if any) is authoritative.
  if (env->FileExists(path + ".tmp")) {
    env->RemoveFile(path + ".tmp");
  }
  if (env->FileExists(path)) {
    Status s = cache->Load();
    if (s.IsCorruption()) {
      // Torn/truncated file (crash mid-write on a filesystem without
      // atomic rename, or media damage). Every cached DEK can be
      // re-fetched from the KDS, so quarantine the damaged file and
      // start empty rather than failing the open.
      cache->deks_.clear();
      cache->salt_ = crypto::SecureRandomString(kSaltSize);
      cache->recovered_ = true;
      env->RenameFile(path, path + ".corrupt");  // best effort
    } else if (!s.ok()) {
      // PermissionDenied (wrong passkey / tampering) and I/O errors
      // still fail the open: the file is intact, the caller is wrong.
      return s;
    }
  } else {
    cache->salt_ = crypto::SecureRandomString(kSaltSize);
  }
  *out = std::move(cache);
  return Status::OK();
}

std::string SecureDekCache::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(deks_.size()));
  for (const auto& [id, dek] : deks_) {
    out.append(reinterpret_cast<const char*>(id.bytes.data()), DekId::kSize);
    out.push_back(static_cast<char>(dek.cipher));
    PutLengthPrefixedSlice(&out, dek.key);
  }
  return out;
}

Status SecureDekCache::Deserialize(const Slice& data) {
  Slice input = data;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("bad DEK cache payload");
  }
  for (uint32_t i = 0; i < count; i++) {
    if (input.size() < DekId::kSize + 1) {
      return Status::Corruption("truncated DEK cache entry");
    }
    Dek dek;
    dek.id = DekId::FromSlice(input);
    input.remove_prefix(DekId::kSize);
    dek.cipher = static_cast<crypto::CipherKind>(input[0]);
    input.remove_prefix(1);
    Slice key;
    if (!GetLengthPrefixedSlice(&input, &key)) {
      return Status::Corruption("truncated DEK cache key");
    }
    dek.key = key.ToString();
    deks_[dek.id] = dek;
  }
  return Status::OK();
}

Status SecureDekCache::Load() {
  std::string contents;
  Status s = RunWithRetry(CacheIoRetryPolicy(), [&] {
    return ReadFileToString(env_, path_, &contents);
  });
  if (!s.ok()) {
    return s;
  }
  const bool v2 = contents.size() >= kMagicSize &&
                  memcmp(contents.data(), kMagicV2, kMagicSize) == 0;
  const bool v1 = !v2 && contents.size() >= kMagicSize &&
                  memcmp(contents.data(), kMagicV1, kMagicSize) == 0;
  const size_t header =
      kMagicSize + kSaltSize + kNonceSize + (v2 ? kCtLenSize : 0);
  if ((!v1 && !v2) || contents.size() < header + kMacSize) {
    return Status::Corruption("bad secure DEK cache file", path_);
  }
  salt_ = contents.substr(kMagicSize, kSaltSize);
  const std::string nonce =
      contents.substr(kMagicSize + kSaltSize, kNonceSize);
  size_t ct_len = contents.size() - header - kMacSize;
  if (v2) {
    // The declared length must match the bytes actually present;
    // anything else is a torn write, not a passkey problem.
    const uint64_t declared =
        DecodeFixed64(contents.data() + kMagicSize + kSaltSize + kNonceSize);
    if (declared != ct_len) {
      return Status::Corruption("truncated secure DEK cache file", path_);
    }
  }
  std::string ciphertext = contents.substr(header, ct_len);
  const Slice stored_mac(contents.data() + header + ct_len, kMacSize);

  // Authenticate before decrypting.
  const std::string mac_key = DeriveMacKey(passkey_, salt_);
  const std::string expected =
      crypto::HmacSha256(mac_key, Slice(contents.data(), header + ct_len));
  if (!crypto::ConstantTimeEqual(expected, stored_mac)) {
    return Status::PermissionDenied(
        "secure DEK cache authentication failed (wrong passkey or tampered)",
        path_);
  }

  const std::string enc_key = DeriveEncKey(passkey_, salt_);
  std::unique_ptr<crypto::StreamCipher> cipher;
  Status cs = crypto::NewStreamCipher(crypto::CipherKind::kAes256Ctr, enc_key,
                                      nonce, &cipher);
  if (!cs.ok()) {
    return cs;
  }
  cs = cipher->CryptAt(0, ciphertext.data(), ciphertext.size());
  if (!cs.ok()) {
    return cs;
  }
  return Deserialize(ciphertext);
}

Status SecureDekCache::Persist() {
  std::string plaintext = Serialize();

  const std::string nonce = crypto::SecureRandomString(kNonceSize);
  const std::string enc_key = DeriveEncKey(passkey_, salt_);
  std::unique_ptr<crypto::StreamCipher> cipher;
  Status s = crypto::NewStreamCipher(crypto::CipherKind::kAes256Ctr, enc_key,
                                     nonce, &cipher);
  if (!s.ok()) {
    return s;
  }
  s = cipher->CryptAt(0, plaintext.data(), plaintext.size());
  if (!s.ok()) {
    return s;
  }

  std::string file;
  file.append(kMagicV2, kMagicSize);
  file.append(salt_);
  file.append(nonce);
  PutFixed64(&file, plaintext.size());
  file.append(plaintext);  // now ciphertext
  const std::string mac_key = DeriveMacKey(passkey_, salt_);
  file.append(crypto::HmacSha256(mac_key, file));

  // Write-then-rename for atomicity against crashes mid-persist.
  const std::string tmp = path_ + ".tmp";
  return RunWithRetry(CacheIoRetryPolicy(), [&] {
    Status ws = WriteStringToFile(env_, file, tmp, /*sync=*/true);
    if (!ws.ok()) {
      return ws;
    }
    return env_->RenameFile(tmp, path_);
  });
}

Status SecureDekCache::Get(const DekId& id, Dek* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deks_.find(id);
  if (it == deks_.end()) {
    return Status::NotFound("DEK not in secure cache", id.ToHex());
  }
  *out = it->second;
  return Status::OK();
}

Status SecureDekCache::Put(const Dek& dek) {
  std::lock_guard<std::mutex> lock(mu_);
  deks_[dek.id] = dek;
  return Persist();
}

Status SecureDekCache::Erase(const DekId& id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (deks_.erase(id) == 0) {
    return Status::OK();  // idempotent
  }
  return Persist();
}

size_t SecureDekCache::NumDeks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deks_.size();
}

}  // namespace shield
