#include "kds/local_kds.h"

#include "crypto/secure_random.h"

namespace shield {

Status LocalKds::CreateDek(const std::string& server_id,
                           crypto::CipherKind kind, Dek* out) {
  (void)server_id;  // no policy at this layer
  Dek dek;
  dek.id = DekId::Generate();
  dek.cipher = kind;
  dek.key = crypto::SecureRandomString(crypto::CipherKeySize(kind));
  {
    std::lock_guard<std::mutex> lock(mu_);
    deks_[dek.id] = dek;
  }
  *out = std::move(dek);
  return Status::OK();
}

Status LocalKds::GetDek(const std::string& server_id, const DekId& id,
                        Dek* out) {
  (void)server_id;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deks_.find(id);
  if (it == deks_.end()) {
    return Status::NotFound("unknown DEK id", id.ToHex());
  }
  *out = it->second;
  return Status::OK();
}

Status LocalKds::DeleteDek(const std::string& server_id, const DekId& id) {
  (void)server_id;
  std::lock_guard<std::mutex> lock(mu_);
  if (deks_.erase(id) == 0) {
    return Status::NotFound("unknown DEK id", id.ToHex());
  }
  return Status::OK();
}

Status LocalKds::RewrapDek(const std::string& server_id, const DekId& id,
                           const std::string& target_server_id, Dek* out) {
  (void)server_id;
  (void)target_server_id;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = deks_.find(id);
  if (it == deks_.end()) {
    return Status::NotFound("unknown DEK id", id.ToHex());
  }
  Dek rewrapped;
  rewrapped.id = DekId::Generate();
  rewrapped.cipher = it->second.cipher;
  rewrapped.key = it->second.key;
  deks_[rewrapped.id] = rewrapped;
  *out = std::move(rewrapped);
  return Status::OK();
}

size_t LocalKds::NumDeks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deks_.size();
}

}  // namespace shield
