#ifndef SHIELD_KDS_SECURE_DEK_CACHE_H_
#define SHIELD_KDS_SECURE_DEK_CACHE_H_

#include <map>
#include <mutex>
#include <string>

#include "env/env.h"
#include "kds/dek.h"
#include "util/status.h"

namespace shield {

/// SHIELD's secure on-disk DEK cache (paper Section 5.2, "On-Demand Key
/// Retrieval with Secure Caching"). DEKs fetched from the KDS are
/// cached in a local file so database restarts do not pay a KDS
/// round-trip per file. The cache file is encrypted with keys derived
/// from a user passkey via HKDF-SHA256 and authenticated with
/// HMAC-SHA256; the passkey itself is never persisted. Multiple
/// LSM-KVS instances on the same server may share one cache as long as
/// they hold the passkey.
///
/// On-disk layout:
///   magic(8) | salt(16) | nonce(16) | ciphertext | hmac(32)
/// ciphertext = AES-256-CTR(serialized entries), HMAC over everything
/// before it.
class SecureDekCache {
 public:
  /// Opens (or creates) the cache at `path` using `passkey`. Fails with
  /// PermissionDenied if an existing cache does not authenticate under
  /// this passkey.
  static Status Open(Env* env, const std::string& path,
                     const std::string& passkey,
                     std::unique_ptr<SecureDekCache>* out);

  /// Looks up a DEK. Returns NotFound if absent.
  Status Get(const DekId& id, Dek* out);

  /// Inserts or overwrites a DEK and persists the cache.
  Status Put(const Dek& dek);

  /// Removes a DEK (its file was deleted / rotated away) and persists.
  Status Erase(const DekId& id);

  size_t NumDeks() const;

 private:
  SecureDekCache(Env* env, std::string path, std::string passkey);

  Status Load();
  Status Persist();  // mu_ held

  std::string Serialize() const;  // mu_ held
  Status Deserialize(const Slice& data);

  Env* env_;
  const std::string path_;
  const std::string passkey_;
  std::string salt_;

  mutable std::mutex mu_;
  std::map<DekId, Dek> deks_;
};

}  // namespace shield

#endif  // SHIELD_KDS_SECURE_DEK_CACHE_H_
