#ifndef SHIELD_KDS_SECURE_DEK_CACHE_H_
#define SHIELD_KDS_SECURE_DEK_CACHE_H_

#include <map>
#include <mutex>
#include <string>

#include "env/env.h"
#include "kds/dek.h"
#include "util/status.h"

namespace shield {

/// SHIELD's secure on-disk DEK cache (paper Section 5.2, "On-Demand Key
/// Retrieval with Secure Caching"). DEKs fetched from the KDS are
/// cached in a local file so database restarts do not pay a KDS
/// round-trip per file. The cache file is encrypted with keys derived
/// from a user passkey via HKDF-SHA256 and authenticated with
/// HMAC-SHA256; the passkey itself is never persisted. Multiple
/// LSM-KVS instances on the same server may share one cache as long as
/// they hold the passkey.
///
/// On-disk layout (v2):
///   magic(8) | salt(16) | nonce(16) | ct_len(8) | ciphertext | hmac(32)
/// ciphertext = AES-256-CTR(serialized entries), HMAC over everything
/// before it. The explicit ciphertext length makes a torn or truncated
/// file distinguishable from a wrong passkey: a size that does not add
/// up is Corruption (recoverable — every entry can be re-fetched from
/// the KDS), while an intact file whose MAC fails is PermissionDenied
/// (fatal — silently discarding a cache someone may rely on for
/// one-time-provisioned keys is not safe). v1 files (no length field)
/// are still readable.
class SecureDekCache {
 public:
  /// Opens (or creates) the cache at `path` using `passkey`. A
  /// structurally corrupt (torn) cache file is quarantined to
  /// `path.corrupt` and the cache starts empty, so resolution falls
  /// through to the KDS instead of failing the open. Fails with
  /// PermissionDenied if a structurally intact cache does not
  /// authenticate under this passkey.
  static Status Open(Env* env, const std::string& path,
                     const std::string& passkey,
                     std::unique_ptr<SecureDekCache>* out);

  /// Looks up a DEK. Returns NotFound if absent.
  Status Get(const DekId& id, Dek* out);

  /// Inserts or overwrites a DEK and persists the cache.
  Status Put(const Dek& dek);

  /// Removes a DEK (its file was deleted / rotated away) and persists.
  Status Erase(const DekId& id);

  size_t NumDeks() const;

  /// True when Open found a torn cache file and recovered by starting
  /// empty (the damaged file was quarantined).
  bool recovered_from_corruption() const { return recovered_; }

 private:
  SecureDekCache(Env* env, std::string path, std::string passkey);

  Status Load();
  Status Persist();  // mu_ held

  std::string Serialize() const;  // mu_ held
  Status Deserialize(const Slice& data);

  Env* env_;
  const std::string path_;
  const std::string passkey_;
  std::string salt_;
  bool recovered_ = false;

  mutable std::mutex mu_;
  std::map<DekId, Dek> deks_;
};

}  // namespace shield

#endif  // SHIELD_KDS_SECURE_DEK_CACHE_H_
