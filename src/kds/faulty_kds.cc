#include "kds/faulty_kds.h"

#include "util/clock.h"

namespace shield {

FaultyKds::FaultyKds(std::shared_ptr<Kds> base,
                     const FaultyKdsOptions& options)
    : base_(std::move(base)), options_(options), rnd_(options.seed) {}

FaultyKds::~FaultyKds() = default;

void FaultyKds::FailNextRequests(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_next_ = n;
}

void FaultyKds::StartOutageFor(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  outage_until_micros_ = NowMicros() + micros;
}

void FaultyKds::HealOutage() {
  std::lock_guard<std::mutex> lock(mu_);
  outage_until_micros_ = 0;
  fail_next_ = 0;
}

void FaultyKds::SetFaultsEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = enabled;
}

Status FaultyKds::MaybeFail(const char* what) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  uint64_t timeout_micros = 0;
  Status s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fail_next_ > 0) {
      fail_next_--;
      outage_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::Busy("KDS unavailable (injected outage)", what);
    }
    if (outage_until_micros_ != 0) {
      if (NowMicros() < outage_until_micros_) {
        outage_rejections_.fetch_add(1, std::memory_order_relaxed);
        return Status::Busy("KDS unavailable (injected outage)", what);
      }
      outage_until_micros_ = 0;  // window expired
    }
    if (!enabled_) {
      return Status::OK();
    }
    if (options_.timeout_probability > 0 &&
        rnd_.NextDouble() < options_.timeout_probability) {
      timeout_micros = options_.timeout_micros;
      injected_errors_.fetch_add(1, std::memory_order_relaxed);
      s = Status::TryAgain("KDS request timed out (injected)", what);
    } else if (options_.error_probability > 0 &&
               rnd_.NextDouble() < options_.error_probability) {
      injected_errors_.fetch_add(1, std::memory_order_relaxed);
      s = Status::TryAgain("KDS request failed (injected)", what);
    }
  }
  if (timeout_micros > 0) {
    SleepForMicros(timeout_micros);
  }
  return s;
}

Status FaultyKds::CreateDek(const std::string& server_id,
                            crypto::CipherKind kind, Dek* out) {
  Status s = MaybeFail("CreateDek");
  if (!s.ok()) {
    return s;
  }
  s = base_->CreateDek(server_id, kind, out);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    seen_[out->id] = *out;
  }
  return s;
}

Status FaultyKds::GetDek(const std::string& server_id, const DekId& id,
                         Dek* out) {
  Status s = MaybeFail("GetDek");
  if (!s.ok()) {
    return s;
  }
  s = base_->GetDek(server_id, id, out);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    seen_[id] = *out;
    return s;
  }
  if (s.IsNotFound()) {
    // Maybe answer from a stale replica that has not applied the
    // delete yet.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = deleted_.find(id);
    if (it != deleted_.end() && enabled_ && options_.stale_probability > 0 &&
        rnd_.NextDouble() < options_.stale_probability) {
      *out = it->second;
      stale_served_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }
  return s;
}

Status FaultyKds::RewrapDek(const std::string& server_id, const DekId& id,
                            const std::string& target_server_id, Dek* out) {
  Status s = MaybeFail("RewrapDek");
  if (!s.ok()) {
    return s;
  }
  s = base_->RewrapDek(server_id, id, target_server_id, out);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    seen_[out->id] = *out;
  }
  return s;
}

Status FaultyKds::DeleteDek(const std::string& server_id, const DekId& id) {
  Status s = MaybeFail("DeleteDek");
  if (!s.ok()) {
    return s;
  }
  s = base_->DeleteDek(server_id, id);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = seen_.find(id);
    if (it != seen_.end()) {
      deleted_[id] = it->second;
      seen_.erase(it);
    }
  }
  return s;
}

}  // namespace shield
