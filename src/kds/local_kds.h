#ifndef SHIELD_KDS_LOCAL_KDS_H_
#define SHIELD_KDS_LOCAL_KDS_H_

#include <map>
#include <mutex>

#include "kds/kds.h"

namespace shield {

/// An in-process KDS with no latency and no policy: every caller is
/// authorized, DEKs can be fetched any number of times. Suitable for
/// monolithic deployments and as the storage backend of SimKds.
class LocalKds : public Kds {
 public:
  Status CreateDek(const std::string& server_id, crypto::CipherKind kind,
                   Dek* out) override;
  Status GetDek(const std::string& server_id, const DekId& id,
                Dek* out) override;
  Status DeleteDek(const std::string& server_id, const DekId& id) override;
  Status RewrapDek(const std::string& server_id, const DekId& id,
                   const std::string& target_server_id, Dek* out) override;

  /// Number of DEKs currently held.
  size_t NumDeks() const;

 private:
  mutable std::mutex mu_;
  std::map<DekId, Dek> deks_;
};

}  // namespace shield

#endif  // SHIELD_KDS_LOCAL_KDS_H_
