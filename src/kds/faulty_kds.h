#ifndef SHIELD_KDS_FAULTY_KDS_H_
#define SHIELD_KDS_FAULTY_KDS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "kds/kds.h"
#include "util/random.h"

namespace shield {

/// Tuning knobs for FaultyKds. Probabilities are per request in [0, 1];
/// the fault schedule is deterministic given `seed` and the request
/// sequence.
struct FaultyKdsOptions {
  uint64_t seed = 1;

  /// Probability that a request fails with Status::TryAgain (a dropped
  /// or errored KDS round-trip).
  double error_probability = 0.0;

  /// Probability that a request times out: the caller blocks for
  /// timeout_micros, then gets Status::TryAgain.
  double timeout_probability = 0.0;
  uint64_t timeout_micros = 0;

  /// Probability that GetDek for a *deleted* DEK-ID is answered from a
  /// stale replica that has not yet seen the delete (returns the old
  /// key material with OK instead of NotFound). Models an eventually
  /// consistent, decentralized KDS.
  double stale_probability = 0.0;
};

/// FaultyKds decorates another Kds with injected failures: transient
/// errors, timeouts, bounded unavailability windows (by request count
/// or wall-clock), and stale responses for deleted DEKs. Used by the
/// fault-injection tests to prove that DEK resolution retries with
/// backoff instead of failing recovery or reads. Thread safe.
class FaultyKds : public Kds {
 public:
  FaultyKds(std::shared_ptr<Kds> base, const FaultyKdsOptions& options);
  ~FaultyKds() override;

  Status CreateDek(const std::string& server_id, crypto::CipherKind kind,
                   Dek* out) override;
  Status GetDek(const std::string& server_id, const DekId& id,
                Dek* out) override;
  Status DeleteDek(const std::string& server_id, const DekId& id) override;
  Status RewrapDek(const std::string& server_id, const DekId& id,
                   const std::string& target_server_id, Dek* out) override;

  /// The next `n` requests fail with Status::Busy (a deterministic
  /// outage window measured in requests, so tests can assert exactly
  /// how many retries an outage costs).
  void FailNextRequests(uint64_t n);

  /// All requests fail with Status::Busy until `micros` from now (a
  /// wall-clock outage window; callers with backoff ride it out).
  void StartOutageFor(uint64_t micros);
  /// Ends any active outage immediately.
  void HealOutage();

  void SetFaultsEnabled(bool enabled);

  // --- Counters ---
  uint64_t requests() const { return requests_.load(std::memory_order_relaxed); }
  uint64_t injected_errors() const {
    return injected_errors_.load(std::memory_order_relaxed);
  }
  uint64_t outage_rejections() const {
    return outage_rejections_.load(std::memory_order_relaxed);
  }
  uint64_t stale_served() const {
    return stale_served_.load(std::memory_order_relaxed);
  }

 private:
  /// Returns a non-OK status if a fault fires for this request.
  Status MaybeFail(const char* what);

  std::shared_ptr<Kds> base_;

  mutable std::mutex mu_;
  FaultyKdsOptions options_;
  Random rnd_;
  bool enabled_ = true;
  uint64_t fail_next_ = 0;
  uint64_t outage_until_micros_ = 0;
  /// DEKs seen by this decorator, retained after DeleteDek so a "stale
  /// replica" can keep serving them.
  std::map<DekId, Dek> seen_;
  std::map<DekId, Dek> deleted_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> injected_errors_{0};
  std::atomic<uint64_t> outage_rejections_{0};
  std::atomic<uint64_t> stale_served_{0};
};

}  // namespace shield

#endif  // SHIELD_KDS_FAULTY_KDS_H_
