#ifndef SHIELD_KDS_KDS_H_
#define SHIELD_KDS_KDS_H_

#include <string>

#include "kds/dek.h"
#include "util/status.h"

namespace shield {

/// Key Distribution Service interface. SHIELD requires a KDS that is
/// (1) decentralized / highly available and (2) provisions DEKs with
/// unique identifiers (paper Section 5.2). The paper uses the Secure
/// Swarm Toolkit; this repo provides LocalKds (monolith, zero latency)
/// and SimKds (emulates SSToolkit service latency, server
/// authorization, revocation, and one-time provisioning policies).
///
/// All methods identify the caller by `server_id` so the KDS can apply
/// per-server authorization, mirroring how SSToolkit authenticates
/// entities.
class Kds {
 public:
  virtual ~Kds() = default;

  /// Issues a brand-new DEK of the given cipher kind to `server_id`.
  virtual Status CreateDek(const std::string& server_id,
                           crypto::CipherKind kind, Dek* out) = 0;

  /// Resolves an existing DEK by id, subject to the KDS policy
  /// (authorization, one-time provisioning). Returns PermissionDenied
  /// when policy blocks the request and NotFound for unknown ids.
  virtual Status GetDek(const std::string& server_id, const DekId& id,
                        Dek* out) = 0;

  /// Permanently destroys a DEK (called when the file it protects is
  /// deleted, completing DEK rotation).
  virtual Status DeleteDek(const std::string& server_id, const DekId& id) = 0;

  /// Re-wraps an existing DEK for a different server identity: issues a
  /// brand-new DEK id carrying the *same* key material and cipher,
  /// provisioned to `target_server_id`. Used by encrypted
  /// backup/restore so an instance can be moved between servers — the
  /// source's ids can then be revoked and deleted without losing the
  /// data keys. The caller is `server_id` (must itself be able to
  /// resolve `id`). Implementations that cannot re-wrap return
  /// NotSupported.
  virtual Status RewrapDek(const std::string& server_id, const DekId& id,
                           const std::string& target_server_id, Dek* out) {
    (void)server_id;
    (void)id;
    (void)target_server_id;
    (void)out;
    return Status::NotSupported("RewrapDek not implemented by this KDS");
  }
};

}  // namespace shield

#endif  // SHIELD_KDS_KDS_H_
