#include "kds/dek.h"

#include <cstring>

#include "crypto/secure_random.h"

namespace shield {

bool DekId::IsZero() const {
  for (uint8_t b : bytes) {
    if (b != 0) {
      return false;
    }
  }
  return true;
}

std::string DekId::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(kSize * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

bool DekId::FromHex(const std::string& hex, DekId* out) {
  if (hex.size() != kSize * 2) {
    return false;
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (size_t i = 0; i < kSize; i++) {
    const int hi = nibble(hex[2 * i]);
    const int lo = nibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->bytes[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return true;
}

DekId DekId::FromSlice(const Slice& s) {
  DekId id;
  if (s.size() >= kSize) {
    memcpy(id.bytes.data(), s.data(), kSize);
  }
  return id;
}

DekId DekId::Generate() {
  DekId id;
  crypto::SecureRandomBytes(id.bytes.data(), kSize);
  return id;
}

}  // namespace shield
