#include "kds/sim_kds.h"

#include "crypto/secure_random.h"
#include "util/clock.h"

namespace shield {

SimKds::SimKds(SimKdsOptions options)
    : options_(options), latency_us_(options.request_latency_us) {}

void SimKds::SimulateLatency() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  SleepForMicros(latency_us_.load(std::memory_order_relaxed));
}

Status SimKds::CheckAuthorized(const std::string& server_id) {
  // mu_ held by caller.
  if (revoked_.count(server_id) > 0) {
    return Status::PermissionDenied("server revoked", server_id);
  }
  if (options_.require_authorization && authorized_.count(server_id) == 0) {
    return Status::PermissionDenied("server not authorized", server_id);
  }
  return Status::OK();
}

Status SimKds::CreateDek(const std::string& server_id,
                         crypto::CipherKind kind, Dek* out) {
  SimulateLatency();
  Dek dek;
  dek.id = DekId::Generate();
  dek.cipher = kind;
  dek.key = crypto::SecureRandomString(crypto::CipherKeySize(kind));
  {
    std::lock_guard<std::mutex> lock(mu_);
    Status s = CheckAuthorized(server_id);
    if (!s.ok()) {
      return s;
    }
    deks_[dek.id] = dek;
    // The creator implicitly holds the key; record it as provisioned to
    // that server so a one-time policy lets the creator re-fetch after
    // a restart be denied (it must use its secure cache instead).
    provisioned_[dek.id].insert(server_id);
  }
  *out = std::move(dek);
  return Status::OK();
}

Status SimKds::GetDek(const std::string& server_id, const DekId& id,
                      Dek* out) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  Status s = CheckAuthorized(server_id);
  if (!s.ok()) {
    return s;
  }
  auto it = deks_.find(id);
  if (it == deks_.end()) {
    return Status::NotFound("unknown DEK id", id.ToHex());
  }
  if (options_.one_time_provisioning) {
    auto& servers = provisioned_[id];
    if (servers.count(server_id) > 0) {
      return Status::PermissionDenied("DEK already provisioned to server",
                                      server_id);
    }
    servers.insert(server_id);
  }
  *out = it->second;
  return Status::OK();
}

Status SimKds::DeleteDek(const std::string& server_id, const DekId& id) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  Status s = CheckAuthorized(server_id);
  if (!s.ok()) {
    return s;
  }
  if (deks_.erase(id) == 0) {
    return Status::NotFound("unknown DEK id", id.ToHex());
  }
  provisioned_.erase(id);
  return Status::OK();
}

Status SimKds::RewrapDek(const std::string& server_id, const DekId& id,
                         const std::string& target_server_id, Dek* out) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  Status s = CheckAuthorized(server_id);
  if (!s.ok()) {
    return s;
  }
  if (revoked_.count(target_server_id) > 0) {
    return Status::PermissionDenied("target server revoked",
                                    target_server_id);
  }
  auto it = deks_.find(id);
  if (it == deks_.end()) {
    return Status::NotFound("unknown DEK id", id.ToHex());
  }
  Dek rewrapped;
  rewrapped.id = DekId::Generate();
  rewrapped.cipher = it->second.cipher;
  rewrapped.key = it->second.key;
  deks_[rewrapped.id] = rewrapped;
  // The rewrapped id belongs to the target identity: under a one-time
  // policy the target's first fetch must still succeed, so only the
  // *source* is recorded as having consumed it.
  provisioned_[rewrapped.id].insert(server_id);
  *out = std::move(rewrapped);
  return Status::OK();
}

void SimKds::AuthorizeServer(const std::string& server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  authorized_.insert(server_id);
  revoked_.erase(server_id);
}

void SimKds::RevokeServer(const std::string& server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  revoked_.insert(server_id);
  authorized_.erase(server_id);
}

size_t SimKds::NumDeks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deks_.size();
}

}  // namespace shield
