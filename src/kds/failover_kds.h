#ifndef SHIELD_KDS_FAILOVER_KDS_H_
#define SHIELD_KDS_FAILOVER_KDS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "kds/kds.h"

namespace shield {

class EventLogger;

/// Tuning for the per-endpoint circuit breaker in FailoverKds.
struct FailoverKdsOptions {
  /// Consecutive transient failures (TryAgain/Busy/IOError) before an
  /// endpoint's breaker opens and requests stop being sent to it.
  int failure_threshold = 3;

  /// How long an open breaker rejects requests before letting one
  /// probe through (half-open).
  uint64_t open_micros = 5 * 1000 * 1000;
};

/// FailoverKds fronts an ordered list of KDS endpoints (primary first)
/// with per-endpoint health tracking and a classic closed / open /
/// half-open circuit breaker:
///
///   closed    — requests flow; consecutive transient failures are
///               counted and reset on any definitive answer.
///   open      — after `failure_threshold` consecutive transient
///               failures the endpoint is skipped for `open_micros`
///               (no point hammering a dead KDS between retries).
///   half-open — once the cooldown elapses, exactly the next request
///               is let through as a probe; success closes the
///               breaker, failure re-opens it for another cooldown.
///
/// A request tries endpoints in order and returns the first definitive
/// answer (OK, NotFound, PermissionDenied, NotSupported, Corruption —
/// policy answers must not fail over, or a revoked server could just
/// ask the next replica). Only transient statuses advance to the next
/// endpoint. If every endpoint is open or fails transiently, the last
/// transient error is returned and the caller's RetryPolicy backoff
/// rides out the outage. Thread safe; time comes from the process
/// clock, so breakers behave deterministically under the simulator's
/// virtual clock.
class FailoverKds : public Kds {
 public:
  FailoverKds(std::vector<std::shared_ptr<Kds>> endpoints,
              FailoverKdsOptions options = {});
  ~FailoverKds() override;

  Status CreateDek(const std::string& server_id, crypto::CipherKind kind,
                   Dek* out) override;
  Status GetDek(const std::string& server_id, const DekId& id,
                Dek* out) override;
  Status DeleteDek(const std::string& server_id, const DekId& id) override;
  Status RewrapDek(const std::string& server_id, const DekId& id,
                   const std::string& target_server_id, Dek* out) override;

  /// Mirrors breaker transitions and failovers as "kds_failover"
  /// events. The logger must outlive this object; null disables.
  void SetEventLogger(EventLogger* event_logger);

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  static const char* BreakerStateName(BreakerState state);

  int num_endpoints() const { return static_cast<int>(endpoints_.size()); }
  /// Current breaker state of endpoint `i` (tests/observability).
  BreakerState endpoint_state(int i) const;

  // --- Counters ---
  /// Requests answered definitively by a non-primary endpoint.
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }
  /// closed/half-open -> open transitions across all endpoints.
  uint64_t breaker_opens() const {
    return breaker_opens_.load(std::memory_order_relaxed);
  }
  /// Requests skipped because an endpoint's breaker was open.
  uint64_t breaker_rejections() const {
    return breaker_rejections_.load(std::memory_order_relaxed);
  }

 private:
  struct Endpoint {
    std::shared_ptr<Kds> kds;
    BreakerState state = BreakerState::kClosed;
    int consecutive_failures = 0;
    uint64_t open_until_micros = 0;
  };

  /// Runs `op` against endpoints in order under the breaker protocol.
  Status Dispatch(const char* what,
                  const std::function<Status(Kds*)>& op);
  /// True when the breaker admits a request to endpoint `i` right now
  /// (possibly transitioning open -> half-open). mu_ must be held.
  bool AdmitLocked(size_t i, uint64_t now_micros);
  void RecordOutcomeLocked(size_t i, bool transient_failure,
                           uint64_t now_micros, const char* what);
  void EmitTransition(size_t i, BreakerState from, BreakerState to,
                      const char* what);

  const FailoverKdsOptions options_;
  std::vector<Endpoint> endpoints_;

  mutable std::mutex mu_;
  std::atomic<EventLogger*> event_logger_{nullptr};
  std::atomic<uint64_t> failovers_{0};
  std::atomic<uint64_t> breaker_opens_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
};

}  // namespace shield

#endif  // SHIELD_KDS_FAILOVER_KDS_H_
