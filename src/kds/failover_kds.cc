#include "kds/failover_kds.h"

#include <cassert>

#include "util/clock.h"
#include "util/event_logger.h"

namespace shield {

FailoverKds::FailoverKds(std::vector<std::shared_ptr<Kds>> endpoints,
                         FailoverKdsOptions options)
    : options_(options) {
  assert(!endpoints.empty());
  endpoints_.reserve(endpoints.size());
  for (auto& kds : endpoints) {
    Endpoint ep;
    ep.kds = std::move(kds);
    endpoints_.push_back(std::move(ep));
  }
}

FailoverKds::~FailoverKds() = default;

void FailoverKds::SetEventLogger(EventLogger* event_logger) {
  event_logger_.store(event_logger, std::memory_order_release);
}

const char* FailoverKds::BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

FailoverKds::BreakerState FailoverKds::endpoint_state(int i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_[static_cast<size_t>(i)].state;
}

void FailoverKds::EmitTransition(size_t i, BreakerState from, BreakerState to,
                                 const char* what) {
  EventLogger* elog = event_logger_.load(std::memory_order_acquire);
  if (elog == nullptr || !elog->enabled()) {
    return;
  }
  JsonWriter w = elog->NewEvent("kds_failover");
  w.Add("endpoint", static_cast<int>(i))
      .Add("from", BreakerStateName(from))
      .Add("to", BreakerStateName(to))
      .Add("op", what);
  elog->Emit(&w);
}

bool FailoverKds::AdmitLocked(size_t i, uint64_t now_micros) {
  Endpoint& ep = endpoints_[i];
  switch (ep.state) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      // A half-open endpoint admits probes; concurrent probes are
      // harmless (each outcome moves the breaker the same way).
      return true;
    case BreakerState::kOpen:
      if (now_micros >= ep.open_until_micros) {
        ep.state = BreakerState::kHalfOpen;
        return true;
      }
      breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      return false;
  }
  return false;
}

void FailoverKds::RecordOutcomeLocked(size_t i, bool transient_failure,
                                      uint64_t now_micros, const char* what) {
  Endpoint& ep = endpoints_[i];
  const BreakerState before = ep.state;
  if (!transient_failure) {
    ep.consecutive_failures = 0;
    ep.state = BreakerState::kClosed;
    ep.open_until_micros = 0;
  } else {
    ep.consecutive_failures++;
    if (before == BreakerState::kHalfOpen ||
        ep.consecutive_failures >= options_.failure_threshold) {
      ep.state = BreakerState::kOpen;
      ep.open_until_micros = now_micros + options_.open_micros;
      ep.consecutive_failures = 0;
      if (before != BreakerState::kOpen) {
        breaker_opens_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (ep.state != before) {
    EmitTransition(i, before, ep.state, what);
  }
}

Status FailoverKds::Dispatch(const char* what,
                             const std::function<Status(Kds*)>& op) {
  Status last = Status::Busy("all KDS endpoints unavailable (breaker open)",
                             what);
  for (size_t i = 0; i < endpoints_.size(); i++) {
    Kds* target = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!AdmitLocked(i, NowMicros())) {
        continue;
      }
      target = endpoints_[i].kds.get();
    }
    // The endpoint call happens outside mu_: a KDS round-trip sleeps
    // for simulated service latency and must not serialize unrelated
    // requests (or deadlock against a breaker inspection).
    Status s = op(target);
    const bool transient =
        s.IsTryAgain() || s.IsBusy() || s.IsIOError();
    {
      std::lock_guard<std::mutex> lock(mu_);
      RecordOutcomeLocked(i, transient, NowMicros(), what);
    }
    if (!transient) {
      // Definitive answer (including policy denials): never fail over
      // past it.
      if (i > 0) {
        failovers_.fetch_add(1, std::memory_order_relaxed);
      }
      return s;
    }
    last = s;
  }
  return last;
}

Status FailoverKds::CreateDek(const std::string& server_id,
                              crypto::CipherKind kind, Dek* out) {
  return Dispatch("CreateDek", [&](Kds* kds) {
    return kds->CreateDek(server_id, kind, out);
  });
}

Status FailoverKds::GetDek(const std::string& server_id, const DekId& id,
                           Dek* out) {
  return Dispatch("GetDek", [&](Kds* kds) {
    return kds->GetDek(server_id, id, out);
  });
}

Status FailoverKds::DeleteDek(const std::string& server_id, const DekId& id) {
  return Dispatch("DeleteDek", [&](Kds* kds) {
    return kds->DeleteDek(server_id, id);
  });
}

Status FailoverKds::RewrapDek(const std::string& server_id, const DekId& id,
                              const std::string& target_server_id, Dek* out) {
  return Dispatch("RewrapDek", [&](Kds* kds) {
    return kds->RewrapDek(server_id, id, target_server_id, out);
  });
}

}  // namespace shield
