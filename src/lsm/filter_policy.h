#ifndef SHIELD_LSM_FILTER_POLICY_H_
#define SHIELD_LSM_FILTER_POLICY_H_

#include <string>

#include "util/slice.h"

namespace shield {

/// Filter policy for SST data blocks (extension beyond the paper's
/// prototype; mirrors the RocksDB/LevelDB feature). A filter summarises
/// the user keys of a block range so point lookups can skip block
/// fetches — under SHIELD this also skips the block's decryption.
class FilterPolicy {
 public:
  virtual ~FilterPolicy() = default;

  /// Name persisted in table properties; readers ignore filters built
  /// by a policy with a different name.
  virtual const char* Name() const = 0;

  /// Appends a filter summarising keys[0..n-1] to *dst.
  virtual void CreateFilter(const Slice* keys, int n,
                            std::string* dst) const = 0;

  /// Must return true if `key` was in the filter's key set; may return
  /// true for other keys with some false-positive probability.
  virtual bool KeyMayMatch(const Slice& key, const Slice& filter) const = 0;
};

/// A Bloom filter with approximately `bits_per_key` bits per key
/// (~1% false positives at 10). Caller owns the result.
const FilterPolicy* NewBloomFilterPolicy(int bits_per_key);

}  // namespace shield

#endif  // SHIELD_LSM_FILTER_POLICY_H_
