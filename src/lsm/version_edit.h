#ifndef SHIELD_LSM_VERSION_EDIT_H_
#define SHIELD_LSM_VERSION_EDIT_H_

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lsm/format.h"
#include "util/status.h"

namespace shield {

/// Metadata for one SST file.
struct FileMetaData {
  int refs = 0;
  uint64_t number = 0;
  uint64_t file_size = 0;  // logical bytes
  InternalKey smallest;
  InternalKey largest;
  /// Highest sequence number contained in the file. Level-0 recency is
  /// keyed on THIS, not the file number: a compaction may finish after
  /// a newer memtable flush and then its (older-data) output would
  /// carry a higher file number.
  SequenceNumber largest_seq = 0;
};

/// A delta applied to the version state, serialized as one manifest
/// record.
class VersionEdit {
 public:
  VersionEdit() { Clear(); }

  void Clear();

  void SetComparatorName(const Slice& name) {
    has_comparator_ = true;
    comparator_ = name.ToString();
  }
  void SetLogNumber(uint64_t num) {
    has_log_number_ = true;
    log_number_ = num;
  }
  void SetNextFile(uint64_t num) {
    has_next_file_number_ = true;
    next_file_number_ = num;
  }
  void SetLastSequence(SequenceNumber seq) {
    has_last_sequence_ = true;
    last_sequence_ = seq;
  }

  void AddFile(int level, uint64_t number, uint64_t file_size,
               const InternalKey& smallest, const InternalKey& largest,
               SequenceNumber largest_seq) {
    FileMetaData f;
    f.number = number;
    f.file_size = file_size;
    f.smallest = smallest;
    f.largest = largest;
    f.largest_seq = largest_seq;
    new_files_.push_back(std::make_pair(level, f));
  }

  void RemoveFile(int level, uint64_t number) {
    deleted_files_.insert(std::make_pair(level, number));
  }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(const Slice& src);

  std::string DebugString() const;

 private:
  friend class VersionSet;

  using DeletedFileSet = std::set<std::pair<int, uint64_t>>;

  std::string comparator_;
  uint64_t log_number_ = 0;
  uint64_t next_file_number_ = 0;
  SequenceNumber last_sequence_ = 0;
  bool has_comparator_ = false;
  bool has_log_number_ = false;
  bool has_next_file_number_ = false;
  bool has_last_sequence_ = false;

  DeletedFileSet deleted_files_;
  std::vector<std::pair<int, FileMetaData>> new_files_;
};

}  // namespace shield

#endif  // SHIELD_LSM_VERSION_EDIT_H_
