#include "lsm/memtable.h"

#include "util/coding.h"

namespace shield {

namespace {

Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

// Encodes an internal-key slice into the memtable key format in *scratch.
const char* EncodeKey(std::string* scratch, const Slice& target) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(target.size()));
  scratch->append(target.data(), target.size());
  return scratch->data();
}

}  // namespace

MemTable::MemTable(const InternalKeyComparator& comparator)
    : comparator_(comparator), table_(comparator_, &arena_) {}

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  const Slice a = GetLengthPrefixedSliceAt(aptr);
  const Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override { iter_.Seek(EncodeKey(&tmp_, k)); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    const Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  table_.Insert(buf);
  num_entries_++;
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  const Slice memkey = key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (!iter.Valid()) {
    return false;
  }
  // The entry we found is the first with internal key >= lookup key.
  // Check that the user key matches.
  const char* entry = iter.key();
  uint32_t key_length;
  const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
  const Slice found_user_key(key_ptr, key_length - 8);
  if (comparator_.comparator.user_comparator()->Compare(
          found_user_key, key.user_key()) == 0) {
    const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
    switch (static_cast<ValueType>(tag & 0xff)) {
      case kTypeValue: {
        const Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
        value->assign(v.data(), v.size());
        *s = Status::OK();
        return true;
      }
      case kTypeDeletion:
        *s = Status::NotFound("");
        return true;
    }
  }
  return false;
}

}  // namespace shield
