#include "lsm/memtable.h"

#include "lsm/merger.h"
#include "util/coding.h"

namespace shield {

namespace {

Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = GetVarint32Ptr(data, data + 5, &len);
  return Slice(p, len);
}

// Encodes an internal-key slice into the memtable key format in *scratch.
const char* EncodeKey(std::string* scratch, const Slice& target) {
  scratch->clear();
  PutVarint32(scratch, static_cast<uint32_t>(target.size()));
  scratch->append(target.data(), target.size());
  return scratch->data();
}

}  // namespace

MemTable::MemTable(const InternalKeyComparator& comparator, int shards)
    : comparator_(comparator) {
  if (shards < 1) {
    shards = 1;
  }
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; i++) {
    shards_.emplace_back(new Shard(comparator_));
  }
}

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  const Slice a = GetLengthPrefixedSliceAt(aptr);
  const Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

size_t MemTable::ApproximateMemoryUsage() {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->arena.MemoryUsage();
  }
  return total;
}

uint64_t MemTable::NumEntries() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->num_entries.load(std::memory_order_relaxed);
  }
  return total;
}

class MemTableIterator final : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override { iter_.Seek(EncodeKey(&tmp_, k)); }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    const Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string tmp_;
};

Iterator* MemTable::NewIterator() {
  if (shards_.size() == 1) {
    return new MemTableIterator(&shards_[0]->table);
  }
  // Merge the shards back into one sorted internal-key stream. User
  // keys never repeat across shards (hash partitioning), so the merge
  // sees exactly the entries a single skiplist would hold.
  std::vector<Iterator*> children;
  children.reserve(shards_.size());
  for (const auto& shard : shards_) {
    children.push_back(new MemTableIterator(&shard->table));
  }
  return NewMergingIterator(&comparator_.comparator, children.data(),
                            static_cast<int>(children.size()));
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  Shard* shard = shards_[ShardIndex(key)].get();
  const size_t key_size = key.size();
  const size_t val_size = value.size();
  const size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = shard->arena.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  shard->table.Insert(buf);
  shard->num_entries.fetch_add(1, std::memory_order_release);
}

bool MemTable::Get(const LookupKey& key, std::string* value, Status* s) {
  const Slice memkey = key.memtable_key();
  Table::Iterator iter(&shards_[ShardIndex(key.user_key())]->table);
  iter.Seek(memkey.data());
  if (!iter.Valid()) {
    return false;
  }
  // The entry we found is the first with internal key >= lookup key.
  // Check that the user key matches.
  const char* entry = iter.key();
  uint32_t key_length;
  const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
  const Slice found_user_key(key_ptr, key_length - 8);
  if (comparator_.comparator.user_comparator()->Compare(
          found_user_key, key.user_key()) == 0) {
    const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
    switch (static_cast<ValueType>(tag & 0xff)) {
      case kTypeValue: {
        const Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
        value->assign(v.data(), v.size());
        *s = Status::OK();
        return true;
      }
      case kTypeDeletion:
        *s = Status::NotFound("");
        return true;
    }
  }
  return false;
}

}  // namespace shield
