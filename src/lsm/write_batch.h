#ifndef SHIELD_LSM_WRITE_BATCH_H_
#define SHIELD_LSM_WRITE_BATCH_H_

#include <string>

#include "lsm/format.h"
#include "util/slice.h"
#include "util/status.h"

namespace shield {

class MemTable;

/// A batch of updates applied atomically. Wire format (also the WAL
/// record payload):
///   fixed64 sequence | fixed32 count | records
///   record := kTypeValue varstring varstring | kTypeDeletion varstring
class WriteBatch {
 public:
  WriteBatch();

  void Put(const Slice& key, const Slice& value);
  void Delete(const Slice& key);
  void Clear();

  /// Bytes of the underlying representation.
  size_t ApproximateSize() const { return rep_.size(); }
  int Count() const;

  /// Callback interface for Iterate().
  class Handler {
   public:
    virtual ~Handler() = default;
    virtual void Put(const Slice& key, const Slice& value) = 0;
    virtual void Delete(const Slice& key) = 0;
  };
  Status Iterate(Handler* handler) const;

  // --- Internal helpers (used by the DB implementation) ---
  SequenceNumber Sequence() const;
  void SetSequence(SequenceNumber seq);
  Slice Contents() const { return rep_; }
  void SetContents(const Slice& contents) {
    rep_.assign(contents.data(), contents.size());
  }
  /// Appends the records of `src` onto this batch (count updated).
  void Append(const WriteBatch& src);
  /// Applies the batch into a memtable with its own sequence numbers.
  Status InsertInto(MemTable* memtable) const;
  /// Applies only the entries whose user key hashes to `shard` (see
  /// MemTable::ShardIndex), keeping each entry's per-batch sequence
  /// number identical to a full InsertInto. The parallel group-commit
  /// path runs one call per shard from distinct threads: the shard
  /// partitions are disjoint, so each shard still sees a single
  /// inserting thread.
  Status InsertIntoShard(MemTable* memtable, int shard) const;
  /// Dry-run structural validation: walks the records exactly like
  /// Iterate() without touching a memtable. Verification depends only
  /// on the rep bytes, so an OK batch cannot fail a later insert —
  /// this is what makes group application all-or-nothing (a malformed
  /// batch is rejected before it reaches the WAL or any shard).
  Status Verify() const;

 private:
  void SetCount(int n);

  std::string rep_;
};

}  // namespace shield

#endif  // SHIELD_LSM_WRITE_BATCH_H_
