#ifndef SHIELD_LSM_LOG_FORMAT_H_
#define SHIELD_LSM_LOG_FORMAT_H_

namespace shield {
namespace log {

// The WAL/manifest record-block format, identical to LevelDB/RocksDB:
// the file is a sequence of 32 KiB blocks; each record fragment carries
// a 7-byte header: crc32c(4) | length(2) | type(1).

enum RecordType {
  kZeroType = 0,  // reserved for preallocated files
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
  // Authenticated variants: same fragment semantics as (type - 4), but
  // the physical record is followed by a 16-byte truncated HMAC tag
  // computed over header|payload at the record's absolute file offset.
  // Writers emit these when the destination file carries a block
  // authenticator (SHIELD header format v2); readers map them back to
  // the base types after verifying the tag.
  kFullAuthType = 5,
  kFirstAuthType = 6,
  kMiddleAuthType = 7,
  kLastAuthType = 8,
  // Padded variants (WAL leakage countermeasure): the logical payload
  // is an envelope `fixed32 real_len | data | zeros`, padded up to a
  // configured bucket size before it reaches the block format, so the
  // ciphertext record sizes an adversary observes on the storage tier
  // come from a small fixed set instead of mirroring operation sizes.
  // Only the Full/First positions need padded variants: padded-ness is
  // a property of the whole logical record and is established at its
  // first fragment (continuation fragments reuse kMiddle/kLast). The
  // reader strips the envelope after reassembly, so callers above the
  // log layer never see padding.
  kPadFullType = 9,
  kPadFirstType = 10,
  // Authenticated + padded.
  kPadFullAuthType = 11,
  kPadFirstAuthType = 12,
};
static constexpr int kMaxRecordType = kPadFirstAuthType;
// Distance between an authenticated record type and its base type.
static constexpr int kAuthTypeOffset = kFullAuthType - kFullType;
// Same distance for the padded pair (which has no middle/last slots).
static constexpr int kPadAuthTypeOffset = kPadFullAuthType - kPadFullType;

static constexpr int kBlockSize = 32768;
static constexpr int kHeaderSize = 4 + 2 + 1;

// Bytes of the padded-record envelope that prefix the caller's data
// (the fixed32 real length).
static constexpr int kPadEnvelopeSize = 4;

}  // namespace log
}  // namespace shield

#endif  // SHIELD_LSM_LOG_FORMAT_H_
