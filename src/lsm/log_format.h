#ifndef SHIELD_LSM_LOG_FORMAT_H_
#define SHIELD_LSM_LOG_FORMAT_H_

namespace shield {
namespace log {

// The WAL/manifest record-block format, identical to LevelDB/RocksDB:
// the file is a sequence of 32 KiB blocks; each record fragment carries
// a 7-byte header: crc32c(4) | length(2) | type(1).

enum RecordType {
  kZeroType = 0,  // reserved for preallocated files
  kFullType = 1,
  kFirstType = 2,
  kMiddleType = 3,
  kLastType = 4,
};
static constexpr int kMaxRecordType = kLastType;

static constexpr int kBlockSize = 32768;
static constexpr int kHeaderSize = 4 + 2 + 1;

}  // namespace log
}  // namespace shield

#endif  // SHIELD_LSM_LOG_FORMAT_H_
