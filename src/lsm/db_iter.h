#ifndef SHIELD_LSM_DB_ITER_H_
#define SHIELD_LSM_DB_ITER_H_

#include <functional>

#include "lsm/format.h"
#include "lsm/iterator.h"
#include "util/statistics.h"

namespace shield {

/// Wraps an internal-key iterator (merged memtables + SSTs) into a
/// user-facing iterator at a given sequence: hides tombstones,
/// collapses duplicate versions, strips internal key trailers. Takes
/// ownership of `internal_iter`; invokes `cleanup` on destruction (may
/// be null). `stats` (optional, must outlive the iterator) receives
/// the db.seek.micros histogram for Seek/SeekToFirst/SeekToLast.
Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        std::function<void()> cleanup,
                        Statistics* stats = nullptr);

}  // namespace shield

#endif  // SHIELD_LSM_DB_ITER_H_
