#ifndef SHIELD_LSM_LOG_WRITER_H_
#define SHIELD_LSM_LOG_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/statistics.h"
#include "util/status.h"

namespace shield {

namespace crypto {
class BlockAuthenticator;
}  // namespace crypto

namespace log {

/// Normalizes a padding-bucket configuration: sorted ascending, zeros
/// and duplicates dropped, every bucket floored to kPadEnvelopeSize
/// (a bucket must at least hold the envelope). Returns an empty vector
/// (padding disabled) when no usable bucket remains.
std::vector<uint32_t> SanitizePaddingBuckets(
    const std::vector<uint32_t>& buckets);

/// Size the padded envelope of an `n`-byte payload occupies under
/// `buckets` (sorted, non-empty; see SanitizePaddingBuckets): the
/// smallest bucket >= n + kPadEnvelopeSize, or — beyond the largest
/// bucket — the next multiple of the largest bucket.
uint64_t PaddedEnvelopeSize(const std::vector<uint32_t>& buckets, uint64_t n);

/// Appends length-prefixed, checksummed records to a WritableFile.
/// Encryption is layered *under* this writer: SHIELD wraps the
/// destination file in a ShieldWritableFile, so the log format itself
/// is unchanged whether the bytes on disk are plaintext or ciphertext.
///
/// When the destination file exposes a block authenticator (header
/// format v2), every physical record is emitted as its authenticated
/// type (base + kAuthTypeOffset) and followed by a 16-byte truncated
/// HMAC tag over header|payload, keyed from the file DEK and bound to
/// the record's absolute offset in the file.
///
/// When padding buckets are configured, every logical record is
/// wrapped in a `fixed32 real_len | data | zeros` envelope padded up
/// to the next bucket boundary, and records that would straddle a
/// block edge start on a fresh block instead — so on-wire physical
/// record sizes come from the bucket set (plus a deterministic
/// full-block/tail pair for records beyond one block), not from the
/// workload's operation sizes.
class Writer {
 public:
  /// `dest` must remain live; does not take ownership.
  explicit Writer(WritableFile* dest);
  /// Resume appending to a file with `dest_length` bytes already
  /// written.
  Writer(WritableFile* dest, uint64_t dest_length);
  /// Full control: `padding_buckets` enables record padding when
  /// non-empty (sanitized internally); `stats` (optional, must outlive
  /// the writer) receives shield.wal.padding.* tickers.
  Writer(WritableFile* dest, uint64_t dest_length,
         const std::vector<uint32_t>& padding_buckets, Statistics* stats);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

  /// True when this writer pads records (buckets configured).
  bool padding_enabled() const { return !pad_buckets_.empty(); }

 private:
  Status AddRecordImpl(const Slice& slice, bool padded);
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);
  /// Zero-fills the remainder of the current block and rolls to the
  /// next one. No-op when already at a block start.
  Status FillBlockTrailer();

  WritableFile* dest_;
  // Borrowed from dest_; null for unauthenticated files.
  const crypto::BlockAuthenticator* auth_;
  int block_offset_ = 0;
  // Absolute logical offset of the next byte written; the HMAC tag of
  // each record is bound to this so records cannot be relocated.
  uint64_t logical_offset_ = 0;

  // Sorted bucket sizes for record padding; empty = disabled.
  const std::vector<uint32_t> pad_buckets_;
  Statistics* const stats_;

  // crc32c values for all supported record types, pre-computed over the
  // type byte to reduce overhead.
  uint32_t type_crc_[kMaxRecordType + 1];

  // Reused assembly buffer for header|payload|tag so each physical
  // record reaches the destination file as a single Append. For
  // encrypted destinations that matters: every Append pays a cipher
  // seek, so three appends per record tripled the fixed cost.
  std::string rec_scratch_;
  // Reused envelope buffer for padded records (fixed32 len|data|zeros).
  std::string pad_scratch_;
};

}  // namespace log
}  // namespace shield

#endif  // SHIELD_LSM_LOG_WRITER_H_
