#ifndef SHIELD_LSM_LOG_WRITER_H_
#define SHIELD_LSM_LOG_WRITER_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace shield {

namespace crypto {
class BlockAuthenticator;
}  // namespace crypto

namespace log {

/// Appends length-prefixed, checksummed records to a WritableFile.
/// Encryption is layered *under* this writer: SHIELD wraps the
/// destination file in a ShieldWritableFile, so the log format itself
/// is unchanged whether the bytes on disk are plaintext or ciphertext.
///
/// When the destination file exposes a block authenticator (header
/// format v2), every physical record is emitted as its authenticated
/// type (base + kAuthTypeOffset) and followed by a 16-byte truncated
/// HMAC tag over header|payload, keyed from the file DEK and bound to
/// the record's absolute offset in the file.
class Writer {
 public:
  /// `dest` must remain live; does not take ownership.
  explicit Writer(WritableFile* dest);
  /// Resume appending to a file with `dest_length` bytes already
  /// written.
  Writer(WritableFile* dest, uint64_t dest_length);

  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  Status AddRecord(const Slice& slice);

 private:
  Status EmitPhysicalRecord(RecordType type, const char* ptr, size_t length);

  WritableFile* dest_;
  // Borrowed from dest_; null for unauthenticated files.
  const crypto::BlockAuthenticator* auth_;
  int block_offset_ = 0;
  // Absolute logical offset of the next byte written; the HMAC tag of
  // each record is bound to this so records cannot be relocated.
  uint64_t logical_offset_ = 0;

  // crc32c values for all supported record types, pre-computed over the
  // type byte to reduce overhead.
  uint32_t type_crc_[kMaxRecordType + 1];

  // Reused assembly buffer for header|payload|tag so each physical
  // record reaches the destination file as a single Append. For
  // encrypted destinations that matters: every Append pays a cipher
  // seek, so three appends per record tripled the fixed cost.
  std::string rec_scratch_;
};

}  // namespace log
}  // namespace shield

#endif  // SHIELD_LSM_LOG_WRITER_H_
