#include <algorithm>

#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "lsm/sst_builder.h"
#include "util/clock.h"
#include "util/perf_context.h"
#include "util/retry.h"
#include "util/trace.h"

namespace shield {

struct DBImpl::CompactionState {
  explicit CompactionState(Compaction* c) : compaction(c) {}

  Compaction* const compaction;

  // Sequence number below which overwritten/deleted entries can be
  // dropped (oldest live snapshot).
  SequenceNumber smallest_snapshot = 0;

  struct Output {
    uint64_t number;
    uint64_t file_size;
    InternalKey smallest, largest;
    SequenceNumber largest_seq = 0;
  };
  std::vector<Output> outputs;

  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;

  uint64_t total_bytes = 0;

  Output* current_output() { return &outputs[outputs.size() - 1]; }
};

void DBImpl::MaybeScheduleFlush() {
  // mutex_ held.
  if (flush_scheduled_ || shutting_down_.load(std::memory_order_acquire) ||
      !error_handler_.ok() || imm_ == nullptr || bg_pool_ == nullptr) {
    return;
  }
  flush_scheduled_ = true;
  bg_pool_->Schedule([this] { BackgroundFlush(); });
}

void DBImpl::MaybeScheduleCompaction() {
  // mutex_ held.
  if (compaction_scheduled_ || shutting_down_.load(std::memory_order_acquire) ||
      !error_handler_.ok() || bg_pool_ == nullptr ||
      manual_compaction_running_ || !versions_->NeedsCompaction()) {
    return;
  }
  compaction_scheduled_ = true;
  bg_pool_->Schedule([this] { BackgroundCompaction(); });
}

void DBImpl::BackgroundFlush() {
  uint64_t backoff_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (imm_ != nullptr && error_handler_.ok() &&
        !shutting_down_.load(std::memory_order_acquire)) {
      BackgroundErrorReason reason = BackgroundErrorReason::kFlush;
      Status s = CompactMemTable(&reason);
      if (s.ok()) {
        // Clear every reason this job could have been retrying under;
        // the last clear completes recovery back to kActive.
        error_handler_.OnOperationSucceeded(BackgroundErrorReason::kFlush);
        error_handler_.OnOperationSucceeded(
            BackgroundErrorReason::kManifestWrite);
      } else if (!shutting_down_.load(std::memory_order_acquire)) {
        // Transient within budget: imm_ stays in place and the tail of
        // this function reschedules the flush after the backoff.
        // Otherwise the handler escalated and MaybeScheduleFlush is now
        // a no-op.
        backoff_micros = error_handler_.OnBackgroundError(reason, s);
      }
    }
  }
  if (backoff_micros > 0) {
    SleepForMicros(backoff_micros);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  flush_scheduled_ = false;
  MaybeScheduleFlush();
  MaybeScheduleCompaction();
  background_work_finished_signal_.notify_all();
}

// REQUIRES: mutex_ held, imm_ != nullptr.
Status DBImpl::CompactMemTable(BackgroundErrorReason* reason) {
  assert(imm_ != nullptr);

  VersionEdit edit;
  uint64_t pending_output = 0;
  Status s = WriteLevel0Table(imm_, &edit, &pending_output);

  if (s.ok() && shutting_down_.load(std::memory_order_acquire)) {
    s = Status::IOError("deleting DB during memtable compaction");
  }

  if (s.ok()) {
    edit.SetLogNumber(logfile_number_);  // earlier logs no longer needed
    s = versions_->LogAndApply(&edit, &mutex_);
    if (!s.ok()) {
      *reason = BackgroundErrorReason::kManifestWrite;
      // The manifest tail may already reference the new table (a
      // partially-appended but durable edit). Keep the file pinned and
      // on disk so a retry — or a recovery that salvages that tail —
      // never points at a GC'd table.
      return s;
    }
  }
  // Referenced by the installed version, or orphaned before any
  // manifest write (GC may collect it); unpin either way.
  pending_outputs_.erase(pending_output);

  if (s.ok()) {
    imm_->Unref();
    imm_ = nullptr;
    has_imm_.store(false, std::memory_order_release);
    RemoveObsoleteFiles();
  }
  return s;
}

void DBImpl::BackgroundCompaction() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (shutting_down_.load(std::memory_order_acquire) ||
      !error_handler_.ok()) {
    compaction_scheduled_ = false;
    background_work_finished_signal_.notify_all();
    return;
  }

  Compaction* c = versions_->PickCompaction();
  Status status;
  BackgroundErrorReason reason = BackgroundErrorReason::kCompaction;
  if (c == nullptr) {
    // Nothing to do (a concurrent flush may resolve this).
  } else if (c->is_deletion_only()) {
    // FIFO eviction: drop the oldest files.
    c->AddInputDeletions(c->edit());
    status = versions_->LogAndApply(c->edit(), &mutex_);
    if (status.ok()) {
      RemoveObsoleteFiles();
    } else {
      reason = BackgroundErrorReason::kManifestWrite;
    }
  } else if (c->IsTrivialMove()) {
    // Move the file to the next level without rewriting.
    assert(c->num_input_files(0) == 1);
    FileMetaData* f = c->input(0, 0);
    c->edit()->RemoveFile(c->level(), f->number);
    c->edit()->AddFile(c->output_level(), f->number, f->file_size,
                       f->smallest, f->largest, f->largest_seq);
    status = versions_->LogAndApply(c->edit(), &mutex_);
    if (!status.ok()) {
      reason = BackgroundErrorReason::kManifestWrite;
    }
  } else {
    CompactionState compact(c);
    compact.smallest_snapshot = snapshots_.empty()
                                    ? versions_->LastSequence()
                                    : snapshots_.oldest()->sequence();
    status = DoCompactionWork(&compact, &reason);
    c->ReleaseInputs();
    RemoveObsoleteFiles();
  }
  delete c;

  uint64_t backoff_micros = 0;
  if (status.ok()) {
    // Clear every reason a compaction job can retry under; the last
    // clear completes recovery back to kActive when no other job is
    // still mid-retry.
    error_handler_.OnOperationSucceeded(BackgroundErrorReason::kCompaction);
    error_handler_.OnOperationSucceeded(BackgroundErrorReason::kOffload);
    error_handler_.OnOperationSucceeded(
        BackgroundErrorReason::kManifestWrite);
  } else if (shutting_down_.load(std::memory_order_acquire)) {
    // Expected during shutdown.
  } else {
    // Transient within budget: the picked inputs are still live, so
    // the next scheduling pass re-picks the same work after backing
    // off. Otherwise the handler escalated (read-only or halted) and
    // scheduling stops.
    backoff_micros = error_handler_.OnBackgroundError(reason, status);
  }
  if (backoff_micros > 0) {
    lock.unlock();
    SleepForMicros(backoff_micros);
    lock.lock();
  }

  compaction_scheduled_ = false;
  // More work may have become available (or been created by this
  // compaction).
  MaybeScheduleCompaction();
  MaybeScheduleFlush();
  background_work_finished_signal_.notify_all();
}

Status DBImpl::OpenCompactionOutputFile(CompactionState* compact) {
  assert(compact != nullptr);
  assert(compact->builder == nullptr);
  uint64_t file_number;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    file_number = versions_->NewFileNumber();
    pending_outputs_.insert(file_number);
    CompactionState::Output out;
    out.number = file_number;
    out.file_size = 0;
    compact->outputs.push_back(out);
  }

  const std::string fname = TableFileName(dbname_, file_number);
  Status s = files_->NewWritableFile(fname, FileKind::kSst,
                                     &compact->outfile);
  if (s.ok()) {
    compact->builder = std::make_unique<TableBuilder>(
        options_, &internal_comparator_, compact->outfile.get());
  }
  return s;
}

Status DBImpl::FinishCompactionOutputFile(CompactionState* compact,
                                          Iterator* input) {
  assert(compact != nullptr);
  assert(compact->outfile != nullptr);
  assert(compact->builder != nullptr);

  const uint64_t output_number = compact->current_output()->number;
  assert(output_number != 0);

  Status s = input->status();
  const uint64_t current_entries = compact->builder->NumEntries();
  if (s.ok()) {
    s = compact->builder->Finish();
  } else {
    compact->builder->Abandon();
  }
  const uint64_t current_bytes = compact->builder->FileSize();
  compact->current_output()->file_size = current_bytes;
  compact->total_bytes += current_bytes;
  compact->builder.reset();

  if (s.ok()) {
    s = compact->outfile->Sync();
  }
  if (s.ok()) {
    s = compact->outfile->Close();
  }
  compact->outfile.reset();

  if (s.ok() && current_entries == 0) {
    // Empty output; drop it.
    files_->DeleteFile(TableFileName(dbname_, output_number));
    std::lock_guard<std::mutex> lock(mutex_);
    pending_outputs_.erase(output_number);
    compact->outputs.pop_back();
  }
  return s;
}

Status DBImpl::InstallCompactionResults(CompactionState* compact) {
  // mutex_ held.
  compact->compaction->AddInputDeletions(compact->compaction->edit());
  const int output_level = compact->compaction->output_level();
  for (const auto& out : compact->outputs) {
    compact->compaction->edit()->AddFile(output_level, out.number,
                                         out.file_size, out.smallest,
                                         out.largest, out.largest_seq);
  }
  Status s = versions_->LogAndApply(compact->compaction->edit(), &mutex_);
  if (s.ok()) {
    // Unpin only on success. On failure the manifest tail may already
    // reference the outputs (partially-appended durable edit), so they
    // must stay pinned — and on disk — until shutdown or a successful
    // retry.
    for (const auto& out : compact->outputs) {
      pending_outputs_.erase(out.number);
    }
  }
  return s;
}

// Performs the merge locally, or delegates to the configured
// compaction service (offloaded compaction). Called with mutex_ held;
// releases it during the heavy work.
Status DBImpl::DoCompactionWork(CompactionState* compact,
                                BackgroundErrorReason* reason) {
  const uint64_t start_micros = NowMicros();
  Compaction* c = compact->compaction;

  CompactionStats stats;
  stats.count = 1;

  ScopedTracerBinding trace_binding(&tracer_);
  TraceSpan comp_span(SpanType::kCompactionJob);
  comp_span.SetArgs(static_cast<uint64_t>(c->level()),
                    static_cast<uint64_t>(c->output_level()));
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("compaction_begin");
    w.Add("level", c->level());
    w.Add("output_level", c->output_level());
    w.Add("inputs_level", c->num_input_files(0));
    w.Add("inputs_output_level", c->num_input_files(1));
    w.Add("offloaded", options_.compaction_service != nullptr);
    event_logger_->Emit(&w);
  }
  // Every rewritten output gets a fresh DEK under SHIELD, so
  // output_files doubles as the DEK-rotation count for the job.
  auto emit_compaction_end = [this, c](const Status& s, int num_outputs,
                                       const CompactionStats& cs) {
    if (event_logger_ == nullptr) {
      return;
    }
    JsonWriter w = event_logger_->NewEvent("compaction_end");
    w.Add("level", c->level());
    w.Add("output_level", c->output_level());
    w.Add("output_files", num_outputs);
    if (options_.encryption.mode == EncryptionMode::kShield) {
      w.Add("dek_rotations", num_outputs);
    }
    w.Add("bytes_read", static_cast<uint64_t>(cs.bytes_read));
    w.Add("bytes_written", static_cast<uint64_t>(cs.bytes_written));
    w.Add("micros", static_cast<uint64_t>(cs.micros));
    w.Add("ok", s.ok());
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  };

  // Ticker + listener reporting for an installed compaction. Called
  // with mutex_ held, after LogAndApply succeeded.
  auto report_compaction = [this, c](const CompactionStats& cs, int nfiles) {
    RecordTick(options_.statistics.get(), Tickers::kLsmCompactionBytesRead,
               static_cast<uint64_t>(cs.bytes_read));
    RecordTick(options_.statistics.get(), Tickers::kLsmCompactionBytesWritten,
               static_cast<uint64_t>(cs.bytes_written));
    MeasureTime(options_.statistics.get(), Histograms::kCompactionMicros,
                static_cast<uint64_t>(cs.micros));
    CompactionJobInfo info;
    info.level = c->level();
    info.output_level = c->output_level();
    info.output_files = nfiles;
    info.bytes_read = static_cast<uint64_t>(cs.bytes_read);
    info.bytes_written = static_cast<uint64_t>(cs.bytes_written);
    info.micros = static_cast<uint64_t>(cs.micros);
    for (const auto& listener : options_.listeners) {
      listener->OnCompactionCompleted(info);
    }
  };

  if (options_.compaction_service != nullptr) {
    VersionEdit edit;
    Status s = DoOffloadedCompaction(c, &edit, &stats);
    if (s.ok()) {
      s = versions_->LogAndApply(&edit, &mutex_);
      if (s.ok()) {
        // Unpin the worker's outputs only after the edit is installed
        // — see WriteLevel0Table for the race this prevents. On a
        // manifest failure they stay pinned (the durable tail may
        // reference them).
        for (const uint64_t number : offload_pending_outputs_) {
          pending_outputs_.erase(number);
        }
      } else {
        *reason = BackgroundErrorReason::kManifestWrite;
      }
      const int num_outputs =
          static_cast<int>(offload_pending_outputs_.size());
      offload_pending_outputs_.clear();
      stats.micros = static_cast<int64_t>(NowMicros() - start_micros);
      stats_[c->output_level()].Add(stats);
      if (s.ok()) {
        report_compaction(stats, num_outputs);
      }
      comp_span.MarkStatus(s);
      emit_compaction_end(s, num_outputs, stats);
      return s;
    }
    // The remote service failed after its retry budget. Its outputs
    // were never referenced by any manifest edit, so unpin them and
    // let GC collect partial files.
    for (const uint64_t number : offload_pending_outputs_) {
      pending_outputs_.erase(number);
    }
    offload_pending_outputs_.clear();
    if (!options_.offload_fallback_to_local ||
        s.IsPermissionDenied() || s.IsCorruption() ||
        shutting_down_.load(std::memory_order_acquire)) {
      // Permission and corruption failures are deliberate rejections
      // (e.g. the KDS revoked the worker after a breach), not
      // unavailability; retrying the same bytes locally would mask the
      // alarm, so they always surface to the caller.
      *reason = BackgroundErrorReason::kOffload;
      stats.micros = static_cast<int64_t>(NowMicros() - start_micros);
      stats_[c->output_level()].Add(stats);
      comp_span.MarkStatus(s);
      emit_compaction_end(s, 0, stats);
      return s;
    }
    // Fall back to running the same compaction locally: an unreachable
    // or flaky storage service must not stall the LSM shape.
    offload_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    if (event_logger_ != nullptr) {
      JsonWriter w = event_logger_->NewEvent("offload_fallback");
      w.Add("level", c->level());
      w.Add("output_level", c->output_level());
      w.Add("error", s.ToString());
      event_logger_->Emit(&w);
    }
    stats = CompactionStats();
    stats.count = 1;
  }

  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      stats.bytes_read +=
          static_cast<int64_t>(c->input(which, i)->file_size);
    }
  }

  const bool leveled =
      options_.compaction_style == CompactionStyle::kLeveled;

  mutex_.unlock();

  std::unique_ptr<Iterator> input(versions_->MakeInputIterator(c));
  input->SeekToFirst();
  Status status;
  ParsedInternalKey ikey;
  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;

  while (input->Valid() && !shutting_down_.load(std::memory_order_acquire)) {
    // Give memtable flushes priority: they block writers.
    if (has_imm_.load(std::memory_order_relaxed)) {
      mutex_.lock();
      MaybeScheduleFlush();
      mutex_.unlock();
    }

    const Slice key = input->key();

    bool drop = false;
    if (!ParseInternalKey(key, &ikey)) {
      // Corrupted key: pass it through so it is not silently lost.
      current_user_key.clear();
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key ||
          internal_comparator_.user_comparator()->Compare(
              ikey.user_key, Slice(current_user_key)) != 0) {
        // First occurrence of this user key.
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }

      if (last_sequence_for_key <= compact->smallest_snapshot) {
        // Shadowed by a newer entry for the same user key that every
        // snapshot can already see.
        drop = true;
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= compact->smallest_snapshot &&
                 (c->bottommost() ||
                  (leveled && c->IsBaseLevelForKey(ikey.user_key)))) {
        // Tombstone with nothing underneath it to hide.
        drop = true;
      }

      last_sequence_for_key = ikey.sequence;
    }

    if (!drop) {
      if (compact->builder == nullptr) {
        status = OpenCompactionOutputFile(compact);
        if (!status.ok()) {
          break;
        }
      }
      if (compact->builder->NumEntries() == 0) {
        compact->current_output()->smallest.DecodeFrom(key);
      }
      compact->current_output()->largest.DecodeFrom(key);
      compact->current_output()->largest_seq = std::max(
          compact->current_output()->largest_seq, ExtractSequence(key));
      compact->builder->Add(key, input->value());

      if (compact->builder->FileSize() >= c->MaxOutputFileSize()) {
        status = FinishCompactionOutputFile(compact, input.get());
        if (!status.ok()) {
          break;
        }
      }
    }

    input->Next();
  }

  if (status.ok() && shutting_down_.load(std::memory_order_acquire)) {
    status = Status::IOError("deleting DB during compaction");
  }
  if (status.ok() && compact->builder != nullptr) {
    status = FinishCompactionOutputFile(compact, input.get());
  }
  if (status.ok()) {
    status = input->status();
  }
  input.reset();

  stats.micros = static_cast<int64_t>(NowMicros() - start_micros);
  stats.bytes_written += static_cast<int64_t>(compact->total_bytes);

  mutex_.lock();
  stats_[c->output_level()].Add(stats);

  if (status.ok()) {
    // InstallCompactionResults unpins the outputs on success and keeps
    // them pinned on a manifest failure (the durable tail may already
    // reference them).
    status = InstallCompactionResults(compact);
    if (status.ok()) {
      report_compaction(stats, static_cast<int>(compact->outputs.size()));
    } else {
      *reason = BackgroundErrorReason::kManifestWrite;
    }
  } else {
    // Failed before any manifest write: the outputs are unreferenced,
    // so unpin them and let GC collect the partial files.
    for (const auto& out : compact->outputs) {
      pending_outputs_.erase(out.number);
    }
  }
  comp_span.MarkStatus(status);
  emit_compaction_end(status, static_cast<int>(compact->outputs.size()),
                      stats);
  return status;
}

// Ships the compaction to the remote service and applies its results.
// mutex_ held on entry/exit; released during the remote call.
Status DBImpl::DoOffloadedCompaction(Compaction* c, VersionEdit* edit,
                                     CompactionStats* stats) {
  CompactionJobSpec job;
  job.dbname = dbname_;
  job.level = c->level();
  job.output_level = c->output_level();
  job.bottommost = c->bottommost();
  job.smallest_snapshot = snapshots_.empty()
                              ? versions_->LastSequence()
                              : snapshots_.oldest()->sequence();
  job.max_output_file_size = c->MaxOutputFileSize() == UINT64_MAX
                                 ? 0
                                 : c->MaxOutputFileSize();

  uint64_t input_bytes = 0;
  for (int which = 0; which < 2; which++) {
    for (int i = 0; i < c->num_input_files(which); i++) {
      const FileMetaData* f = c->input(which, i);
      (which == 0 ? job.inputs0 : job.inputs1)
          .push_back({f->number, f->file_size});
      input_bytes += f->file_size;
    }
  }
  stats->bytes_read += static_cast<int64_t>(input_bytes);

  // Pre-allocate output file numbers: worst case one output per
  // target_file_size_base of input, plus slack.
  size_t max_outputs = 4;
  if (job.max_output_file_size > 0) {
    max_outputs += input_bytes / job.max_output_file_size + 1;
  }
  for (size_t i = 0; i < max_outputs; i++) {
    const uint64_t number = versions_->NewFileNumber();
    job.output_numbers.push_back(number);
    pending_outputs_.insert(number);
  }

  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("offload_dispatch");
    w.Add("level", job.level);
    w.Add("output_level", job.output_level);
    w.Add("inputs", static_cast<uint64_t>(job.inputs0.size() +
                                          job.inputs1.size()));
    w.Add("input_bytes", input_bytes);
    event_logger_->Emit(&w);
  }

  CompactionJobResult result;
  Status s;
  {
    mutex_.unlock();
    TraceSpan rpc_span(SpanType::kOffloadRpc);
    rpc_span.SetArgs(input_bytes, 0);
    // Ship the dispatching span so the worker (possibly another node
    // with its own trace file) parents its RPC span to this one.
    job.trace = Tracer::CurrentContext();
    // Transient service failures (network faults, brief worker
    // unavailability) are retried with backoff before the job is
    // declared failed; each attempt restarts from the same spec and
    // rewrites the same output numbers from scratch.
    RetryPolicy policy;
    policy.max_attempts = std::max(1, options_.offload_max_attempts);
    policy.initial_backoff_micros = 2000;
    policy.max_backoff_micros = 200 * 1000;
    s = RunWithRetry(policy, [&] {
      result = CompactionJobResult();
      return options_.compaction_service->RunCompaction(job, &result);
    });
    rpc_span.MarkStatus(s);
    mutex_.lock();
  }

  if (s.ok()) {
    c->AddInputDeletions(edit);
    for (const auto& out : result.outputs) {
      InternalKey smallest, largest;
      smallest.DecodeFrom(out.smallest_internal_key);
      largest.DecodeFrom(out.largest_internal_key);
      edit->AddFile(c->output_level(), out.number, out.file_size, smallest,
                    largest, out.largest_seq);
    }
    stats->bytes_written += static_cast<int64_t>(result.bytes_written);
  }
  // The caller erases these from pending_outputs_ after LogAndApply.
  offload_pending_outputs_ = job.output_numbers;
  return s;
}

Status DBImpl::RunManualCompaction(int level, const InternalKey* begin,
                                   const InternalKey* end) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Exclude background compactions while the manual one runs.
  background_work_finished_signal_.wait(lock, [this] {
    return !compaction_scheduled_ || !error_handler_.ok();
  });
  if (!error_handler_.ok()) {
    return error_handler_.bg_error();
  }
  manual_compaction_running_ = true;

  Status status;
  Compaction* c = versions_->CompactRange(level, begin, end);
  if (c != nullptr) {
    // Manual compactions always rewrite — never trivial-move. Under
    // SHIELD, CompactRange doubles as the operator's forced
    // DEK-rotation tool: every byte in the range is re-encrypted under
    // fresh keys, and the old DEKs die with their files.
    CompactionState compact(c);
    compact.smallest_snapshot = snapshots_.empty()
                                    ? versions_->LastSequence()
                                    : snapshots_.oldest()->sequence();
    BackgroundErrorReason reason = BackgroundErrorReason::kCompaction;
    status = DoCompactionWork(&compact, &reason);
    c->ReleaseInputs();
    RemoveObsoleteFiles();
    delete c;
    if (!status.ok() && !status.IsTransient() &&
        !shutting_down_.load(std::memory_order_acquire)) {
      // The caller sees the error directly, but a non-transient
      // failure (e.g. a torn manifest) still leaves the DB in the
      // same dangerous state a background job would have: record it
      // so the state machine gates writes consistently. Transient
      // manual failures are simply surfaced — the caller can retry.
      error_handler_.OnBackgroundError(reason, status);
    }
  }

  manual_compaction_running_ = false;
  MaybeScheduleCompaction();
  background_work_finished_signal_.notify_all();
  return status;
}

Status DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  if (read_only_) {
    return Status::NotSupported("read-only instance");
  }
  ScopedTracerBinding trace_binding(&tracer_);
  PerfOpBoundary();
  TraceSpan span(SpanType::kDbCompactRange);
  StopWatch watch(options_.statistics.get(),
                  Histograms::kDbCompactRangeMicros);
  Status s = Flush();
  if (!s.ok()) {
    return s;
  }

  if (options_.compaction_style != CompactionStyle::kLeveled) {
    // Merge everything in one pass (all runs live at level 0).
    InternalKey begin_key, end_key;
    const InternalKey* b = nullptr;
    const InternalKey* e = nullptr;
    if (begin != nullptr) {
      begin_key = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
      b = &begin_key;
    }
    if (end != nullptr) {
      end_key = InternalKey(*end, 0, static_cast<ValueType>(0));
      e = &end_key;
    }
    return RunManualCompaction(0, b, e);
  }

  int max_level_with_files = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Version* base = versions_->current();
    for (int level = 1; level < versions_->num_levels(); level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  for (int level = 0;
       level < std::min(max_level_with_files + 1,
                        versions_->num_levels() - 1);
       level++) {
    InternalKey begin_key, end_key;
    const InternalKey* b = nullptr;
    const InternalKey* e = nullptr;
    if (begin != nullptr) {
      begin_key = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
      b = &begin_key;
    }
    if (end != nullptr) {
      end_key = InternalKey(*end, 0, static_cast<ValueType>(0));
      e = &end_key;
    }
    s = RunManualCompaction(level, b, e);
    if (!s.ok()) {
      return s;
    }
  }
  return s;
}

}  // namespace shield
