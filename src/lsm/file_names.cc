#include "lsm/file_names.h"

#include <cstdio>

namespace shield {

namespace {

std::string MakeFileName(const std::string& dbname, uint64_t number,
                         const char* suffix) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/%06llu.%s",
           static_cast<unsigned long long>(number), suffix);
  return dbname + buf;
}

}  // namespace

std::string LogFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "log");
}

std::string TableFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "sst");
}

std::string DescriptorFileName(const std::string& dbname, uint64_t number) {
  char buf[64];
  snprintf(buf, sizeof(buf), "/MANIFEST-%06llu",
           static_cast<unsigned long long>(number));
  return dbname + buf;
}

std::string CurrentFileName(const std::string& dbname) {
  return dbname + "/CURRENT";
}

std::string TempFileName(const std::string& dbname, uint64_t number) {
  return MakeFileName(dbname, number, "dbtmp");
}

std::string DekCacheFileName(const std::string& dbname) {
  return dbname + "/DEK_CACHE";
}

std::string InfoLogFileName(const std::string& dbname) {
  return dbname + "/LOG";
}

std::string RotationManifestFileName(const std::string& dbname) {
  return dbname + "/ROTATION";
}

std::string PendingDekDeletesFileName(const std::string& dbname) {
  return dbname + "/PENDING_DEK_DELETES";
}

bool ParseFileName(const std::string& filename, uint64_t* number,
                   DbFileType* type) {
  if (filename == "CURRENT") {
    *number = 0;
    *type = DbFileType::kCurrentFile;
    return true;
  }
  if (filename == "DEK_CACHE" || filename == "DEK_CACHE.tmp") {
    *number = 0;
    *type = DbFileType::kDekCacheFile;
    return true;
  }
  if (filename.compare(0, 9, "MANIFEST-") == 0) {
    const char* p = filename.c_str() + 9;
    char* end = nullptr;
    const unsigned long long num = strtoull(p, &end, 10);
    if (end == p || *end != '\0') {
      return false;
    }
    *number = num;
    *type = DbFileType::kDescriptorFile;
    return true;
  }
  // <number>.<suffix>
  char* end = nullptr;
  const unsigned long long num = strtoull(filename.c_str(), &end, 10);
  if (end == filename.c_str() || *end != '.') {
    return false;
  }
  const std::string suffix = end + 1;
  if (suffix == "log") {
    *type = DbFileType::kLogFile;
  } else if (suffix == "sst") {
    *type = DbFileType::kTableFile;
  } else if (suffix == "dbtmp") {
    *type = DbFileType::kTempFile;
  } else {
    return false;
  }
  *number = num;
  return true;
}

Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number) {
  std::string contents = DescriptorFileName("", descriptor_number);
  // Strip the leading '/' that MakeFileName-style helpers add.
  contents = contents.substr(1) + "\n";
  const std::string tmp = TempFileName(dbname, descriptor_number);
  Status s = WriteStringToFile(env, contents, tmp, /*sync=*/true);
  if (s.ok()) {
    s = env->RenameFile(tmp, CurrentFileName(dbname));
  }
  if (!s.ok()) {
    env->RemoveFile(tmp);
  }
  return s;
}

}  // namespace shield
