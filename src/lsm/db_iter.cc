#include "lsm/db_iter.h"

#include <memory>
#include <string>

#include "util/perf_context.h"
#include "util/trace.h"

namespace shield {

namespace {

// Translates the multi-version internal representation into a
// single-version user view as of `sequence_`: the newest visible
// version of each user key wins, and deletion tombstones hide older
// versions.
class DBIter final : public Iterator {
 public:
  DBIter(const Comparator* user_comparator, Iterator* internal_iter,
         SequenceNumber sequence, std::function<void()> cleanup,
         Statistics* stats)
      : user_comparator_(user_comparator),
        iter_(internal_iter),
        sequence_(sequence),
        cleanup_(std::move(cleanup)),
        stats_(stats) {}

  ~DBIter() override {
    iter_.reset();
    if (cleanup_) {
      cleanup_();
    }
  }

  bool Valid() const override { return valid_; }

  Slice key() const override {
    assert(valid_);
    return direction_ == kForward ? ExtractUserKey(iter_->key())
                                  : Slice(saved_key_);
  }
  Slice value() const override {
    assert(valid_);
    return direction_ == kForward ? iter_->value() : Slice(saved_value_);
  }
  Status status() const override {
    if (status_.ok()) {
      return iter_->status();
    }
    return status_;
  }

  void Next() override {
    assert(valid_);
    if (direction_ == kReverse) {
      direction_ = kForward;
      if (!iter_->Valid()) {
        iter_->SeekToFirst();
      } else {
        iter_->Next();
      }
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    } else {
      // Save current key so FindNextUserEntry skips its other
      // versions.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      iter_->Next();
      if (!iter_->Valid()) {
        valid_ = false;
        saved_key_.clear();
        return;
      }
    }
    FindNextUserEntry(true, &saved_key_);
  }

  void Prev() override {
    assert(valid_);
    if (direction_ == kForward) {
      // iter_ points at the current entry; back up to before all
      // entries for the current user key.
      SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
      while (true) {
        iter_->Prev();
        if (!iter_->Valid()) {
          valid_ = false;
          saved_key_.clear();
          ClearSavedValue();
          return;
        }
        if (user_comparator_->Compare(ExtractUserKey(iter_->key()),
                                      saved_key_) < 0) {
          break;
        }
      }
      direction_ = kReverse;
    }
    FindPrevUserEntry();
  }

  void Seek(const Slice& target) override {
    SeekAccounting seek(this);
    direction_ = kForward;
    ClearSavedValue();
    saved_key_.clear();
    AppendInternalKey(&saved_key_,
                      ParsedInternalKey(target, sequence_, kValueTypeForSeek));
    iter_->Seek(saved_key_);
    if (iter_->Valid()) {
      FindNextUserEntry(false, &saved_key_);
    } else {
      valid_ = false;
    }
  }

  void SeekToFirst() override {
    SeekAccounting seek(this);
    direction_ = kForward;
    ClearSavedValue();
    iter_->SeekToFirst();
    if (iter_->Valid()) {
      FindNextUserEntry(false, &saved_key_);
    } else {
      valid_ = false;
    }
  }

  void SeekToLast() override {
    SeekAccounting seek(this);
    direction_ = kReverse;
    ClearSavedValue();
    iter_->SeekToLast();
    FindPrevUserEntry();
  }

 private:
  enum Direction { kForward, kReverse };

  // Shared accounting for the three positioning calls: op boundary,
  // db.seek span, db.seek.micros histogram, iter_seek PerfContext
  // fields.
  class SeekAccounting {
   public:
    explicit SeekAccounting(DBIter* iter)
        : span_(SpanType::kDbSeek),
          watch_(iter->stats_, Histograms::kDbSeekMicros),
          timer_(SeekPerfField()) {}

   private:
    static uint64_t* SeekPerfField() {
      PerfOpBoundary();
      PerfAdd(&PerfContext::iter_seek_count, 1);
      return &GetPerfContext()->iter_seek_micros;
    }

    TraceSpan span_;
    StopWatch watch_;
    PerfTimer timer_;
  };

  bool ParseKey(ParsedInternalKey* ikey) {
    if (!ParseInternalKey(iter_->key(), ikey)) {
      status_ = Status::Corruption("corrupted internal key in DBIter");
      return false;
    }
    return true;
  }

  static void SaveKey(const Slice& k, std::string* dst) {
    dst->assign(k.data(), k.size());
  }

  void ClearSavedValue() {
    saved_value_.clear();
    saved_value_.shrink_to_fit();
  }

  // Positions at the first visible entry at or after the current
  // position. If skipping, entries with user key <= *skip are passed
  // over.
  void FindNextUserEntry(bool skipping, std::string* skip) {
    assert(iter_->Valid());
    assert(direction_ == kForward);
    do {
      ParsedInternalKey ikey;
      if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
        switch (ikey.type) {
          case kTypeDeletion:
            // All older versions of this key are shadowed.
            SaveKey(ikey.user_key, skip);
            skipping = true;
            break;
          case kTypeValue:
            if (skipping &&
                user_comparator_->Compare(ikey.user_key, *skip) <= 0) {
              // Older version of a key we already emitted (or a
              // deleted key); skip.
            } else {
              valid_ = true;
              saved_key_.clear();
              return;
            }
            break;
        }
      }
      iter_->Next();
    } while (iter_->Valid());
    saved_key_.clear();
    valid_ = false;
  }

  // Positions at the newest visible entry for the greatest user key at
  // or before the current position (reverse scan).
  void FindPrevUserEntry() {
    assert(direction_ == kReverse);
    ValueType value_type = kTypeDeletion;
    if (iter_->Valid()) {
      do {
        ParsedInternalKey ikey;
        if (ParseKey(&ikey) && ikey.sequence <= sequence_) {
          if ((value_type != kTypeDeletion) &&
              user_comparator_->Compare(ikey.user_key, saved_key_) < 0) {
            // We found a non-deleted value for saved_key_; done.
            break;
          }
          value_type = ikey.type;
          if (value_type == kTypeDeletion) {
            saved_key_.clear();
            ClearSavedValue();
          } else {
            const Slice raw_value = iter_->value();
            if (saved_value_.capacity() > raw_value.size() + 1048576) {
              std::string empty;
              swap(empty, saved_value_);
            }
            SaveKey(ExtractUserKey(iter_->key()), &saved_key_);
            saved_value_.assign(raw_value.data(), raw_value.size());
          }
        }
        iter_->Prev();
      } while (iter_->Valid());
    }

    if (value_type == kTypeDeletion) {
      // End of iteration.
      valid_ = false;
      saved_key_.clear();
      ClearSavedValue();
      direction_ = kForward;
    } else {
      valid_ = true;
    }
  }

  const Comparator* const user_comparator_;
  std::unique_ptr<Iterator> iter_;
  SequenceNumber const sequence_;
  std::function<void()> cleanup_;
  Statistics* const stats_;

  Status status_;
  std::string saved_key_;    // == current key when direction_==kReverse
  std::string saved_value_;  // == current value when direction_==kReverse
  Direction direction_ = kForward;
  bool valid_ = false;
};

}  // namespace

Iterator* NewDBIterator(const Comparator* user_comparator,
                        Iterator* internal_iter, SequenceNumber sequence,
                        std::function<void()> cleanup, Statistics* stats) {
  return new DBIter(user_comparator, internal_iter, sequence,
                    std::move(cleanup), stats);
}

}  // namespace shield
