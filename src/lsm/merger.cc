#include "lsm/merger.h"

#include <cassert>
#include <vector>

namespace shield {

namespace {

class MergingIterator final : public Iterator {
 public:
  MergingIterator(const Comparator* comparator, Iterator** children, int n)
      : comparator_(comparator), children_(children, children + n) {}

  ~MergingIterator() override {
    for (Iterator* child : children_) {
      delete child;
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (Iterator* child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (Iterator* child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (Iterator* child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    assert(Valid());
    if (direction_ != kForward) {
      // Position all non-current children after key().
      for (Iterator* child : children_) {
        if (child != current_) {
          child->Seek(key());
          if (child->Valid() &&
              comparator_->Compare(key(), child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    assert(Valid());
    if (direction_ != kReverse) {
      for (Iterator* child : children_) {
        if (child != current_) {
          child->Seek(key());
          if (child->Valid()) {
            child->Prev();
          } else {
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override {
    assert(Valid());
    return current_->key();
  }
  Slice value() const override {
    assert(Valid());
    return current_->value();
  }

  Status status() const override {
    for (Iterator* child : children_) {
      if (!child->status().ok()) {
        return child->status();
      }
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (Iterator* child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child;
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (Iterator* child : children_) {
      if (child->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare(child->key(), largest->key()) > 0) {
          largest = child;
        }
      }
    }
    current_ = largest;
  }

  const Comparator* comparator_;
  std::vector<Iterator*> children_;
  Iterator* current_ = nullptr;
  Direction direction_ = kForward;
};

}  // namespace

Iterator* NewMergingIterator(const Comparator* comparator,
                             Iterator** children, int n) {
  assert(n >= 0);
  if (n == 0) {
    return NewEmptyIterator();
  }
  if (n == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, children, n);
}

}  // namespace shield
