#include <algorithm>

#include "lsm/db_impl.h"
#include "lsm/db_iter.h"
#include "lsm/merger.h"
#include "util/perf_context.h"
#include "util/trace.h"

namespace shield {

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  ScopedTracerBinding trace_binding(&tracer_);
  PerfOpBoundary();
  TraceSpan span(SpanType::kDbGet);
  StopWatch get_watch(options_.statistics.get(), Histograms::kDbGetMicros);
  Status s;
  std::unique_lock<std::mutex> lock(mutex_);
  if (!error_handler_.reads_allowed()) {
    // Halted (hard error): persistent state may be inconsistent, so
    // even reads could return wrong answers. Soft errors (read-only
    // state) do not take this branch — immutable SSTs stay correct.
    return error_handler_.bg_error();
  }
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot = static_cast<const SnapshotImpl*>(options.snapshot)->sequence();
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) {
    imm->Ref();
  }
  current->Ref();

  {
    // Release the lock while probing files.
    lock.unlock();
    LookupKey lkey(key, snapshot);
    if (mem->Get(lkey, value, &s)) {
      // Served from the memtable.
    } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
      // Served from the immutable memtable.
    } else {
      s = current->Get(options, lkey, value);
    }
    lock.lock();
  }

  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }
  current->Unref();
  // NotFound is an answer, not an error.
  if (!s.ok() && !s.IsNotFound()) {
    span.SetError();
  }
  return s;
}

std::vector<Status> DBImpl::MultiGet(const ReadOptions& options,
                                     const std::vector<Slice>& keys,
                                     std::vector<std::string>* values) {
  ScopedTracerBinding trace_binding(&tracer_);
  PerfOpBoundary();
  TraceSpan span(SpanType::kDbMultiGet);
  span.SetArgs(keys.size(), 0);
  StopWatch watch(options_.statistics.get(), Histograms::kDbMultiGetMicros);
  values->clear();
  values->resize(keys.size());
  std::vector<Status> statuses(keys.size());
  if (keys.empty()) {
    return statuses;
  }
  RecordTick(options_.statistics.get(), Tickers::kLsmMultiGetKeys,
             keys.size());
  PerfAdd(&PerfContext::multiget_keys, keys.size());

  std::unique_lock<std::mutex> lock(mutex_);
  if (!error_handler_.reads_allowed()) {
    const Status err = error_handler_.bg_error();
    for (Status& s : statuses) {
      s = err;
    }
    return statuses;
  }
  // One snapshot for the whole batch: every key reads the same state,
  // as if N Gets ran back-to-back with no interleaved writes.
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot = static_cast<const SnapshotImpl*>(options.snapshot)->sequence();
  } else {
    snapshot = versions_->LastSequence();
  }
  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) {
    imm->Ref();
  }
  current->Ref();
  lock.unlock();

  // Memtable probes per key; the remainder goes to the version as one
  // sorted batch. (LookupKey is self-referential, hence the pointers.)
  std::vector<std::unique_ptr<LookupKey>> lkeys(keys.size());
  std::vector<VersionGetRequest> vreqs(keys.size());
  std::vector<VersionGetRequest*> misses;
  for (size_t i = 0; i < keys.size(); i++) {
    lkeys[i] = std::make_unique<LookupKey>(keys[i], snapshot);
    Status s;
    if (mem->Get(*lkeys[i], &(*values)[i], &s) ||
        (imm != nullptr && imm->Get(*lkeys[i], &(*values)[i], &s))) {
      statuses[i] = s;
      continue;
    }
    vreqs[i].key = lkeys[i].get();
    vreqs[i].value = &(*values)[i];
    misses.push_back(&vreqs[i]);
  }

  if (!misses.empty()) {
    // All lookup keys carry the same snapshot tag, so internal-key
    // order here is user-key order — the sortedness Table::MultiGet
    // relies on for block coalescing.
    std::sort(misses.begin(), misses.end(),
              [this](const VersionGetRequest* a, const VersionGetRequest* b) {
                return internal_comparator_.Compare(a->key->internal_key(),
                                                    b->key->internal_key()) < 0;
              });
    current->MultiGet(options, misses);
  }
  for (size_t i = 0; i < keys.size(); i++) {
    if (vreqs[i].key == nullptr) {
      continue;  // answered by a memtable above
    }
    statuses[i] = vreqs[i].done ? vreqs[i].status : Status::NotFound("");
  }

  lock.lock();
  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }
  current->Unref();
  return statuses;
}

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  *latest_snapshot = versions_->LastSequence();
  if (!error_handler_.reads_allowed()) {
    return NewErrorIterator(error_handler_.bg_error());
  }

  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* imm = imm_;
  if (imm != nullptr) {
    list.push_back(imm->NewIterator());
    imm->Ref();
  }
  Version* current = versions_->current();
  current->AddIterators(options, &list);
  current->Ref();

  Iterator* internal_iter =
      NewMergingIterator(&internal_comparator_, list.data(),
                         static_cast<int>(list.size()));

  // The cleanup callback drops the references the iterator pinned.
  MemTable* mem = mem_;
  DBImpl* db = this;
  return NewDBIterator(
      internal_comparator_.user_comparator(), internal_iter,
      options.snapshot != nullptr
          ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
          : *latest_snapshot,
      [db, mem, imm, current] {
        std::lock_guard<std::mutex> inner_lock(db->mutex_);
        mem->Unref();
        if (imm != nullptr) {
          imm->Unref();
        }
        current->Unref();
      },
      options_.statistics.get());
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  return NewInternalIterator(options, &latest_snapshot);
}

}  // namespace shield
