#include "lsm/db_impl.h"
#include "lsm/db_iter.h"
#include "lsm/merger.h"

namespace shield {

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  StopWatch get_watch(options_.statistics.get(), Histograms::kDbGetMicros);
  Status s;
  std::unique_lock<std::mutex> lock(mutex_);
  if (!error_handler_.reads_allowed()) {
    // Halted (hard error): persistent state may be inconsistent, so
    // even reads could return wrong answers. Soft errors (read-only
    // state) do not take this branch — immutable SSTs stay correct.
    return error_handler_.bg_error();
  }
  SequenceNumber snapshot;
  if (options.snapshot != nullptr) {
    snapshot = static_cast<const SnapshotImpl*>(options.snapshot)->sequence();
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) {
    imm->Ref();
  }
  current->Ref();

  {
    // Release the lock while probing files.
    lock.unlock();
    LookupKey lkey(key, snapshot);
    if (mem->Get(lkey, value, &s)) {
      // Served from the memtable.
    } else if (imm != nullptr && imm->Get(lkey, value, &s)) {
      // Served from the immutable memtable.
    } else {
      s = current->Get(options, lkey, value);
    }
    lock.lock();
  }

  mem->Unref();
  if (imm != nullptr) {
    imm->Unref();
  }
  current->Unref();
  return s;
}

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  *latest_snapshot = versions_->LastSequence();
  if (!error_handler_.reads_allowed()) {
    return NewErrorIterator(error_handler_.bg_error());
  }

  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  MemTable* imm = imm_;
  if (imm != nullptr) {
    list.push_back(imm->NewIterator());
    imm->Ref();
  }
  Version* current = versions_->current();
  current->AddIterators(options, &list);
  current->Ref();

  Iterator* internal_iter =
      NewMergingIterator(&internal_comparator_, list.data(),
                         static_cast<int>(list.size()));

  // The cleanup callback drops the references the iterator pinned.
  MemTable* mem = mem_;
  DBImpl* db = this;
  return NewDBIterator(
      internal_comparator_.user_comparator(), internal_iter,
      options.snapshot != nullptr
          ? static_cast<const SnapshotImpl*>(options.snapshot)->sequence()
          : *latest_snapshot,
      [db, mem, imm, current] {
        std::lock_guard<std::mutex> inner_lock(db->mutex_);
        mem->Unref();
        if (imm != nullptr) {
          imm->Unref();
        }
        current->Unref();
      });
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  return NewInternalIterator(options, &latest_snapshot);
}

}  // namespace shield
