#include "lsm/two_level_iterator.h"

#include <memory>
#include <string>

namespace shield {

namespace {

class TwoLevelIterator final : public Iterator {
 public:
  TwoLevelIterator(Iterator* index_iter,
                   std::function<Iterator*(const Slice&)> block_function)
      : index_iter_(index_iter), block_function_(std::move(block_function)) {}

  bool Valid() const override {
    return data_iter_ != nullptr && data_iter_->Valid();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->Seek(target);
    }
    SkipEmptyDataBlocksForward();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToFirst();
    }
    SkipEmptyDataBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (data_iter_ != nullptr) {
      data_iter_->SeekToLast();
    }
    SkipEmptyDataBlocksBackward();
  }

  void Next() override {
    assert(Valid());
    data_iter_->Next();
    SkipEmptyDataBlocksForward();
  }

  void Prev() override {
    assert(Valid());
    data_iter_->Prev();
    SkipEmptyDataBlocksBackward();
  }

  Slice key() const override {
    assert(Valid());
    return data_iter_->key();
  }
  Slice value() const override {
    assert(Valid());
    return data_iter_->value();
  }

  Status status() const override {
    if (!index_iter_->status().ok()) {
      return index_iter_->status();
    }
    if (data_iter_ != nullptr && !data_iter_->status().ok()) {
      return data_iter_->status();
    }
    return status_;
  }

 private:
  void SaveError(const Status& s) {
    if (status_.ok() && !s.ok()) {
      status_ = s;
    }
  }

  void SkipEmptyDataBlocksForward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToFirst();
      }
    }
  }

  void SkipEmptyDataBlocksBackward() {
    while (data_iter_ == nullptr || !data_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        SetDataIterator(nullptr);
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (data_iter_ != nullptr) {
        data_iter_->SeekToLast();
      }
    }
  }

  void SetDataIterator(Iterator* data_iter) {
    if (data_iter_ != nullptr) {
      SaveError(data_iter_->status());
    }
    data_iter_.reset(data_iter);
  }

  void InitDataBlock() {
    if (!index_iter_->Valid()) {
      SetDataIterator(nullptr);
      return;
    }
    const Slice handle = index_iter_->value();
    if (data_iter_ != nullptr && handle.compare(Slice(data_block_handle_)) == 0) {
      // Already at the right block.
      return;
    }
    Iterator* iter = block_function_(handle);
    data_block_handle_.assign(handle.data(), handle.size());
    SetDataIterator(iter);
  }

  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Iterator> data_iter_;
  std::function<Iterator*(const Slice&)> block_function_;
  std::string data_block_handle_;
  Status status_;
};

}  // namespace

Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const Slice& index_value)> block_function) {
  return new TwoLevelIterator(index_iter, std::move(block_function));
}

}  // namespace shield
