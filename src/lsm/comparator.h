#ifndef SHIELD_LSM_COMPARATOR_H_
#define SHIELD_LSM_COMPARATOR_H_

#include <string>

#include "util/slice.h"

namespace shield {

/// User-key ordering. The DB persists the comparator name in the
/// manifest and refuses to open with a mismatched comparator.
class Comparator {
 public:
  virtual ~Comparator() = default;

  virtual int Compare(const Slice& a, const Slice& b) const = 0;
  virtual const char* Name() const = 0;

  /// If *start < limit, change *start to a short string in
  /// [start, limit). Used to shrink index-block keys.
  virtual void FindShortestSeparator(std::string* start,
                                     const Slice& limit) const = 0;
  /// Change *key to a short string >= *key.
  virtual void FindShortSuccessor(std::string* key) const = 0;
};

/// The default lexicographic byte-wise comparator (never deleted).
const Comparator* BytewiseComparator();

}  // namespace shield

#endif  // SHIELD_LSM_COMPARATOR_H_
