#ifndef SHIELD_LSM_LOG_READER_H_
#define SHIELD_LSM_LOG_READER_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "lsm/log_format.h"
#include "util/slice.h"
#include "util/status.h"

namespace shield {

namespace crypto {
class BlockAuthenticator;
}  // namespace crypto

namespace log {

/// Replays records written by log::Writer, skipping corrupted tails
/// (crash recovery tolerates a torn final record).
///
/// Authenticated record types (written when the file carries a block
/// authenticator) are verified against their HMAC tag at the record's
/// absolute offset, then mapped back to the base types before being
/// returned, so callers never see the wire-level distinction.
class Reader {
 public:
  /// Interface for reporting corruption during replay.
  class Reporter {
   public:
    virtual ~Reporter() = default;
    virtual void Corruption(size_t bytes, const Status& status) = 0;
  };

  /// `file` must remain live; does not take ownership. If
  /// `checksum` is true, verifies CRCs.
  Reader(SequentialFile* file, Reporter* reporter, bool checksum);
  ~Reader();

  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  /// Reads the next complete record into *record (may point into
  /// *scratch). Returns false at EOF.
  bool ReadRecord(Slice* record, std::string* scratch);

 private:
  enum {
    kEof = kMaxRecordType + 1,
    kBadRecord = kMaxRecordType + 2,
  };

  unsigned int ReadPhysicalRecord(Slice* result);
  /// Strips the padded-record envelope (fixed32 real_len|data|zeros)
  /// from a reassembled record in place. Returns false (and reports
  /// corruption) on a malformed envelope.
  bool StripPadding(Slice* record);
  void ReportCorruption(uint64_t bytes, const char* reason);
  void ReportDrop(uint64_t bytes, const Status& reason);

  SequentialFile* const file_;
  Reporter* const reporter_;
  bool const checksum_;
  // Borrowed from file_; null for unauthenticated files.
  const crypto::BlockAuthenticator* const auth_;
  char* const backing_store_;
  Slice buffer_;
  bool eof_ = false;
  // File offset one past the last byte in buffer_; used to recover the
  // absolute offset of each record header for tag verification.
  uint64_t end_of_buffer_offset_ = 0;
};

}  // namespace log
}  // namespace shield

#endif  // SHIELD_LSM_LOG_READER_H_
