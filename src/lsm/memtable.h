#ifndef SHIELD_LSM_MEMTABLE_H_
#define SHIELD_LSM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "lsm/format.h"
#include "lsm/iterator.h"
#include "lsm/skiplist.h"
#include "util/arena.h"

namespace shield {

/// The in-memory self-sorting write buffer: arena-backed skiplists of
/// internal-key entries, hash-partitioned over `shards` sub-tables
/// (Options::memtable_shards). With one shard this is the classic
/// single-skiplist memtable. With N shards the group-commit leader can
/// apply a batch group to the shards from N threads concurrently, as
/// long as each shard has at most one inserting thread at a time (the
/// skiplist contract: one writer, lock-free concurrent readers).
/// NewIterator() merges the shards back into one sorted stream, so
/// flush, recovery and integrity checks see a single ordered memtable.
///
/// Reference counted because readers (Get, iterators) can hold an
/// immutable memtable after it has been swapped out for flushing.
///
/// Entry format in the arena:
///   varint32 internal_key_len | user_key | fixed64(seq|type) |
///   varint32 value_len | value
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator, int shards = 1);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { ++refs_; }
  void Unref() {
    --refs_;
    assert(refs_ >= 0);
    if (refs_ <= 0) {
      delete this;
    }
  }

  size_t ApproximateMemoryUsage();

  /// Number of entries added. 0 means nothing to flush.
  uint64_t NumEntries() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Which shard `user_key` lives in. Stable for the life of the
  /// process (FNV-1a over the user key), so a batch group can be
  /// partitioned once and applied shard-by-shard from parallel
  /// threads.
  int ShardIndex(const Slice& user_key) const {
    if (shards_.size() == 1) {
      return 0;
    }
    uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit
    for (size_t i = 0; i < user_key.size(); i++) {
      h ^= static_cast<unsigned char>(user_key.data()[i]);
      h *= 1099511628211ull;
    }
    return static_cast<int>(h % shards_.size());
  }

  /// Iterator over internal keys, merged across shards (caller
  /// deletes).
  Iterator* NewIterator();

  /// Routes to the key's shard. Callers adding concurrently must
  /// guarantee at most one inserting thread per shard (disjoint
  /// ShardIndex partitions).
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If the memtable contains the newest entry for key at or below the
  /// lookup sequence: returns true with *s OK and *value set (Put), or
  /// *s NotFound (Delete tombstone). Returns false when the key is not
  /// present at all.
  bool Get(const LookupKey& key, std::string* value, Status* s);

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  struct Shard {
    explicit Shard(const KeyComparator& cmp) : table(cmp, &arena) {}
    Arena arena;
    Table table;
    std::atomic<uint64_t> num_entries{0};
  };

  ~MemTable() = default;  // only via Unref()

  KeyComparator comparator_;
  int refs_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace shield

#endif  // SHIELD_LSM_MEMTABLE_H_
