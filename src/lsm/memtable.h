#ifndef SHIELD_LSM_MEMTABLE_H_
#define SHIELD_LSM_MEMTABLE_H_

#include <string>

#include "lsm/format.h"
#include "lsm/iterator.h"
#include "lsm/skiplist.h"
#include "util/arena.h"

namespace shield {

/// The in-memory self-sorting write buffer: an arena-backed skiplist of
/// internal-key entries. Reference counted because readers (Get,
/// iterators) can hold an immutable memtable after it has been swapped
/// out for flushing.
///
/// Entry format in the arena:
///   varint32 internal_key_len | user_key | fixed64(seq|type) |
///   varint32 value_len | value
class MemTable {
 public:
  explicit MemTable(const InternalKeyComparator& comparator);

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  void Ref() { ++refs_; }
  void Unref() {
    --refs_;
    assert(refs_ >= 0);
    if (refs_ <= 0) {
      delete this;
    }
  }

  size_t ApproximateMemoryUsage() { return arena_.MemoryUsage(); }

  /// Number of entries added. 0 means nothing to flush.
  uint64_t NumEntries() const { return num_entries_; }

  /// Iterator over internal keys (caller deletes).
  Iterator* NewIterator();

  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// If the memtable contains the newest entry for key at or below the
  /// lookup sequence: returns true with *s OK and *value set (Put), or
  /// *s NotFound (Delete tombstone). Returns false when the key is not
  /// present at all.
  bool Get(const LookupKey& key, std::string* value, Status* s);

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    const InternalKeyComparator comparator;
    explicit KeyComparator(const InternalKeyComparator& c) : comparator(c) {}
    int operator()(const char* a, const char* b) const;
  };

  using Table = SkipList<const char*, KeyComparator>;

  ~MemTable() = default;  // only via Unref()

  KeyComparator comparator_;
  int refs_ = 0;
  uint64_t num_entries_ = 0;
  Arena arena_;
  Table table_;
};

}  // namespace shield

#endif  // SHIELD_LSM_MEMTABLE_H_
