#ifndef SHIELD_LSM_TWO_LEVEL_ITERATOR_H_
#define SHIELD_LSM_TWO_LEVEL_ITERATOR_H_

#include <functional>

#include "lsm/iterator.h"

namespace shield {

/// Returns an iterator over the concatenation of the data produced by
/// `block_function(index_value)` for each entry of `index_iter`. Used
/// for SST (index block -> data blocks) and for level files (file list
/// -> table iterators). Takes ownership of `index_iter`.
Iterator* NewTwoLevelIterator(
    Iterator* index_iter,
    std::function<Iterator*(const Slice& index_value)> block_function);

}  // namespace shield

#endif  // SHIELD_LSM_TWO_LEVEL_ITERATOR_H_
