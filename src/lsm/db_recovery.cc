#include <algorithm>

#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "lsm/log_reader.h"
#include "lsm/sst_builder.h"
#include "util/clock.h"
#include "util/trace.h"

namespace shield {

// Replays one WAL into memtable(s), flushing overflow to level-0
// SSTs. In read-only mode everything stays in mem_.
Status DBImpl::RecoverLogFile(uint64_t log_number,
                              SequenceNumber* max_sequence,
                              VersionEdit* edit) {
  struct LogReporter : public log::Reader::Reporter {
    Status* status;
    void Corruption(size_t /*bytes*/, const Status& s) override {
      // Recovery tolerates a torn tail: record the first error but
      // keep consuming (the reader resynchronizes).
      if (status != nullptr && status->ok()) {
        *status = s;
      }
    }
  };

  const std::string fname = LogFileName(dbname_, log_number);
  std::unique_ptr<SequentialFile> file;
  Status status = files_->NewSequentialFile(fname, &file);
  if (!status.ok()) {
    return status;
  }

  LogReporter reporter;
  Status replay_corruption;
  reporter.status = &replay_corruption;
  log::Reader reader(file.get(), &reporter, /*checksum=*/true);

  Slice record;
  std::string scratch;
  MemTable* mem = nullptr;
  if (read_only_) {
    // Read-only instances accumulate all replayed WAL state in mem_.
    if (mem_ == nullptr) {
      mem_ = new MemTable(internal_comparator_, options_.memtable_shards);
      mem_->Ref();
    }
    mem = mem_;
  }
  while (reader.ReadRecord(&record, &scratch) && status.ok()) {
    if (record.size() < 12) {
      continue;  // malformed fragment already reported
    }
    WriteBatch batch;
    batch.SetContents(record);
    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_, options_.memtable_shards);
      mem->Ref();
    }
    status = batch.InsertInto(mem);
    if (!status.ok()) {
      break;
    }
    const SequenceNumber last_seq =
        batch.Sequence() + batch.Count() - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (!read_only_ &&
        mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      uint64_t pending_output = 0;
      status = WriteLevel0Table(mem, edit, &pending_output);
      // Single-threaded recovery: no concurrent GC, safe to unpin now.
      pending_outputs_.erase(pending_output);
      mem->Unref();
      mem = nullptr;
      if (!status.ok()) {
        break;
      }
    }
  }

  if (read_only_) {
    return status;  // everything stays in mem_
  }
  if (status.ok() && mem != nullptr && mem->NumEntries() > 0) {
    uint64_t pending_output = 0;
    status = WriteLevel0Table(mem, edit, &pending_output);
    pending_outputs_.erase(pending_output);
  }
  if (mem != nullptr) {
    mem->Unref();
  }
  if (status.ok() && options_.paranoid_checks && !replay_corruption.ok()) {
    // Default recovery treats in-log damage as a torn tail: the reader
    // already salvaged every record it could resynchronize to. Paranoid
    // mode surfaces the first error instead.
    return replay_corruption;
  }
  return status;
}

// Builds a level-0 SST from the contents of `mem` and records it in
// *edit. Under SHIELD the new file gets a fresh DEK automatically via
// the file factory. Called with mutex_ held (or during single-threaded
// recovery); the mutex is released for the duration of the build so
// foreground writes keep flowing — `mem` is immutable and referenced
// by the caller.
Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit,
                                uint64_t* pending_output) {
  *pending_output = 0;
  const uint64_t start_micros = NowMicros();
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);

  ScopedTracerBinding trace_binding(&tracer_);
  TraceSpan flush_span(SpanType::kFlushJob);
  flush_span.SetArgs(meta.number, mem->NumEntries());
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("flush_begin");
    w.Add("file_number", meta.number);
    w.Add("mem_entries", static_cast<uint64_t>(mem->NumEntries()));
    w.Add("mem_bytes",
          static_cast<uint64_t>(mem->ApproximateMemoryUsage()));
    event_logger_->Emit(&w);
  }

  mutex_.unlock();

  std::unique_ptr<Iterator> iter(mem->NewIterator());

  const std::string fname = TableFileName(dbname_, meta.number);
  std::unique_ptr<WritableFile> file;
  Status s = files_->NewWritableFile(fname, FileKind::kSst, &file);
  if (!s.ok()) {
    mutex_.lock();
    pending_outputs_.erase(meta.number);
    return s;
  }

  {
    TableBuilder builder(options_, &internal_comparator_, file.get());
    iter->SeekToFirst();
    if (iter->Valid()) {
      meta.smallest.DecodeFrom(iter->key());
      Slice key;
      for (; iter->Valid(); iter->Next()) {
        key = iter->key();
        meta.largest_seq = std::max(meta.largest_seq, ExtractSequence(key));
        builder.Add(key, iter->value());
      }
      meta.largest.DecodeFrom(key);
      s = builder.Finish();
      meta.file_size = builder.FileSize();
    } else {
      builder.Abandon();
    }
  }
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  file.reset();

  mutex_.lock();
  if (s.ok() && meta.file_size > 0) {
    // Keep meta.number in pending_outputs_ until the caller has
    // installed the edit (see header comment).
    *pending_output = meta.number;
    edit->AddFile(0, meta.number, meta.file_size, meta.smallest,
                  meta.largest, meta.largest_seq);
  } else {
    pending_outputs_.erase(meta.number);
    files_->DeleteFile(fname);
  }

  CompactionStats stats;
  stats.micros = static_cast<int64_t>(NowMicros() - start_micros);
  stats.bytes_written = static_cast<int64_t>(meta.file_size);
  stats.count = 1;
  stats_[0].Add(stats);
  flush_span.MarkStatus(s);
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("flush_end");
    w.Add("file_number", meta.number);
    w.Add("file_size", meta.file_size);
    w.Add("micros", static_cast<uint64_t>(stats.micros));
    w.Add("ok", s.ok());
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  }
  if (s.ok() && meta.file_size > 0) {
    RecordTick(options_.statistics.get(), Tickers::kLsmFlushBytesWritten,
               meta.file_size);
    MeasureTime(options_.statistics.get(), Histograms::kFlushMicros,
                static_cast<uint64_t>(stats.micros));
    FlushJobInfo info;
    info.file_number = meta.number;
    info.file_size = meta.file_size;
    info.micros = static_cast<uint64_t>(stats.micros);
    for (const auto& listener : options_.listeners) {
      listener->OnFlushCompleted(info);
    }
  }
  return s;
}

Status DBImpl::TryCatchUp() {
  if (!read_only_) {
    return Status::OK();
  }

  // Catch-up work records into this replica's tracer (per-node trace
  // files in the simulated cluster); the manifest/WAL reads it issues
  // nest under this span.
  ScopedTracerBinding trace_binding(&tracer_);
  TraceSpan span(SpanType::kRecovery, Slice("catchup"));

  std::unique_lock<std::mutex> lock(mutex_);

  // Rebuild version state from the manifest the primary most recently
  // published, then re-replay its WALs.
  auto new_versions = std::make_unique<VersionSet>(
      dbname_, options_, &internal_comparator_, table_cache_.get(),
      files_.get());
  Status s = new_versions->Recover();
  if (!s.ok()) {
    return s;
  }

  if (mem_ != nullptr) {
    mem_->Unref();
  }
  mem_ = new MemTable(internal_comparator_, options_.memtable_shards);
  mem_->Ref();

  versions_ = std::move(new_versions);

  SequenceNumber max_sequence = 0;
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = options_.env->GetChildren(dbname_, &filenames);
  if (s.ok()) {
    std::vector<uint64_t> logs;
    uint64_t number;
    DbFileType type;
    for (const std::string& filename : filenames) {
      if (ParseFileName(filename, &number, &type) &&
          type == DbFileType::kLogFile && number >= min_log) {
        logs.push_back(number);
      }
    }
    std::sort(logs.begin(), logs.end());
    VersionEdit unused_edit;
    for (uint64_t log_number : logs) {
      Status ls = RecoverLogFile(log_number, &max_sequence, &unused_edit);
      if (!ls.ok() && !ls.IsNotFound()) {
        // The primary may delete a WAL while we read: retry next time.
        s = ls;
        break;
      }
    }
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }
  if (s.ok()) {
    // This replica now reflects the primary's published state: reset
    // the catch-up lag baseline the health plane measures against.
    RecordCatchupApplied();
  }
  return s;
}

}  // namespace shield
