#ifndef SHIELD_LSM_SST_READER_H_
#define SHIELD_LSM_SST_READER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "env/env.h"
#include "lsm/cache.h"
#include "lsm/filter_block.h"
#include "lsm/format.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/table_format.h"

namespace shield {

class Block;

/// One key of a batched point lookup against a single table. The
/// callback contract matches Table::InternalGet; `status` receives
/// this key's outcome (a block-level failure poisons only the
/// requests that needed that block).
struct TableGetRequest {
  Slice internal_key;
  void* arg = nullptr;
  void (*handle_result)(void*, const Slice&, const Slice&) = nullptr;
  Status status;
};

/// An open, immutable SST file. Thread safe after Open.
class Table {
 public:
  /// Opens a table over `file` (logical, i.e. already-decrypted view)
  /// whose logical length is `file_size`. On success takes ownership
  /// of the file. `fname` is used only to name the file in corruption
  /// errors.
  static Status Open(const Options& options, const InternalKeyComparator* icmp,
                     const std::string& fname,
                     std::unique_ptr<RandomAccessFile> file,
                     uint64_t file_size, std::shared_ptr<Cache> block_cache,
                     std::unique_ptr<Table>* table);

  ~Table();

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  /// Iterator over internal keys (caller deletes; must not outlive the
  /// table).
  Iterator* NewIterator(const ReadOptions& options) const;

  /// Seeks internal_key and invokes handle_result(arg, key, value) on
  /// the first entry at or after it, if any.
  Status InternalGet(const ReadOptions& options, const Slice& internal_key,
                     void* arg,
                     void (*handle_result)(void*, const Slice&, const Slice&));

  /// Batched InternalGet: requests must be sorted by internal key.
  /// Shares one index probe pass, dedupes block handles across keys,
  /// and fetches adjacent uncached blocks as one coalesced span — a
  /// single storage round trip — carving and verifying each block from
  /// the span (table_format.h VerifyStoredBlock). Any span-level
  /// failure (short read, fault, carve mismatch) degrades that group
  /// to ordinary per-block reads, so results are bit-identical to N
  /// sequential InternalGets. Per-key outcomes land in each request's
  /// `status`.
  void MultiGet(const ReadOptions& options,
                const std::vector<TableGetRequest*>& requests);

  const TableProperties& properties() const { return properties_; }

  /// Re-reads every block referenced by the index (bypassing the block
  /// cache) and verifies its CRC and, on authenticated files, its HMAC
  /// tag. Returns the first Corruption encountered. `on_block`, when
  /// set, receives the stored size of each verified block (used by the
  /// scrubber for rate limiting).
  Status VerifyBlocks(const std::function<void(uint64_t)>& on_block) const;

  /// Best-effort extraction for local repair: iterates every entry of
  /// every *readable* data block in key order, skipping blocks that
  /// fail CRC/tag verification, and counts skipped blocks into
  /// `*dropped_blocks`. Entries in corrupt blocks are lost (their raw
  /// bytes survive in the quarantine copy).
  Status SalvageEntries(
      const std::function<void(const Slice&, const Slice&)>& fn,
      uint64_t* dropped_blocks) const;

 private:
  Table() = default;

  /// `file` lets iterator paths substitute a readahead-wrapped view of
  /// file_; all verification behaviour is identical.
  Iterator* BlockReader(const ReadOptions& options, const Slice& index_value,
                        RandomAccessFile* file) const;

  Options options_;
  const InternalKeyComparator* icmp_ = nullptr;
  std::string fname_;
  std::unique_ptr<RandomAccessFile> file_;
  std::unique_ptr<Block> index_block_;
  TableProperties properties_;
  std::shared_ptr<Cache> block_cache_;
  uint64_t cache_id_ = 0;

  // Bloom-filter support (present when the table was built with a
  // filter policy matching options_.filter_policy).
  std::string filter_data_;
  std::unique_ptr<FilterBlockReader> filter_;

  // Index and filter blocks are pinned in memory for the table's
  // lifetime (they are members above). This referenced high-priority
  // cache entry charges their footprint against the block-cache
  // budget so pinned metadata is accounted, not free; released in
  // ~Table.
  Cache::Handle* metadata_pin_ = nullptr;
};

}  // namespace shield

#endif  // SHIELD_LSM_SST_READER_H_
