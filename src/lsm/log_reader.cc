#include "lsm/log_reader.h"

#include "crypto/block_auth.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {
namespace log {

Reader::Reader(SequentialFile* file, Reporter* reporter, bool checksum)
    : file_(file),
      reporter_(reporter),
      checksum_(checksum),
      auth_(file->block_authenticator()),
      backing_store_(new char[kBlockSize]) {}

Reader::~Reader() { delete[] backing_store_; }

bool Reader::ReadRecord(Slice* record, std::string* scratch) {
  scratch->clear();
  record->clear();
  bool in_fragmented_record = false;
  // True when the record being reassembled carries the padded-envelope
  // wrapping (established by its first fragment's type; continuation
  // fragments are plain kMiddle/kLast).
  bool padded_record = false;

  Slice fragment;
  while (true) {
    const unsigned int record_type = ReadPhysicalRecord(&fragment);
    switch (record_type) {
      case kFullType:
      case kPadFullType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end(1)");
        }
        scratch->clear();
        *record = fragment;
        if (record_type == kPadFullType && !StripPadding(record)) {
          in_fragmented_record = false;
          break;
        }
        return true;

      case kFirstType:
      case kPadFirstType:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "partial record without end(2)");
        }
        scratch->assign(fragment.data(), fragment.size());
        in_fragmented_record = true;
        padded_record = (record_type == kPadFirstType);
        break;

      case kMiddleType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record(1)");
        } else {
          scratch->append(fragment.data(), fragment.size());
        }
        break;

      case kLastType:
        if (!in_fragmented_record) {
          ReportCorruption(fragment.size(),
                           "missing start of fragmented record(2)");
        } else {
          scratch->append(fragment.data(), fragment.size());
          *record = Slice(*scratch);
          if (padded_record && !StripPadding(record)) {
            in_fragmented_record = false;
            padded_record = false;
            scratch->clear();
            break;
          }
          return true;
        }
        break;

      case kEof:
        if (in_fragmented_record) {
          // The writer died mid-record; treat the tail as lost.
          scratch->clear();
        }
        return false;

      case kBadRecord:
        if (in_fragmented_record) {
          ReportCorruption(scratch->size(), "error in middle of record");
          in_fragmented_record = false;
          scratch->clear();
        }
        break;

      default: {
        char buf[40];
        snprintf(buf, sizeof(buf), "unknown record type %u", record_type);
        ReportCorruption(
            (fragment.size() + (in_fragmented_record ? scratch->size() : 0)),
            buf);
        in_fragmented_record = false;
        scratch->clear();
        break;
      }
    }
  }
}

bool Reader::StripPadding(Slice* record) {
  // Envelope: fixed32 real_len | data | zeros. A malformed envelope is
  // corruption — padding must never wedge recovery, so the record is
  // reported and dropped rather than returned mangled.
  if (record->size() < static_cast<size_t>(kPadEnvelopeSize)) {
    ReportCorruption(record->size(), "padded record shorter than envelope");
    record->clear();
    return false;
  }
  const uint32_t real_len = DecodeFixed32(record->data());
  if (static_cast<uint64_t>(real_len) + kPadEnvelopeSize > record->size()) {
    ReportCorruption(record->size(), "padded record length overflows envelope");
    record->clear();
    return false;
  }
  *record = Slice(record->data() + kPadEnvelopeSize, real_len);
  return true;
}

void Reader::ReportCorruption(uint64_t bytes, const char* reason) {
  ReportDrop(bytes, Status::Corruption(reason));
}

void Reader::ReportDrop(uint64_t bytes, const Status& reason) {
  if (reporter_ != nullptr) {
    reporter_->Corruption(static_cast<size_t>(bytes), reason);
  }
}

unsigned int Reader::ReadPhysicalRecord(Slice* result) {
  while (true) {
    if (buffer_.size() < static_cast<size_t>(kHeaderSize)) {
      if (!eof_) {
        // Skip the block trailer and read the next block. A transient
        // read error (momentary device/fabric failure) is retried a
        // few times before the rest of the log is abandoned: giving up
        // on a blip would silently drop synced records during replay.
        buffer_.clear();
        Status status;
        constexpr int kMaxReadAttempts = 5;
        for (int attempt = 1;; attempt++) {
          status = file_->Read(kBlockSize, &buffer_, backing_store_);
          if (status.ok() || !status.IsTransient() ||
              attempt >= kMaxReadAttempts) {
            break;
          }
          SleepForMicros(100ull << attempt);
        }
        if (!status.ok()) {
          buffer_.clear();
          ReportDrop(kBlockSize, status);
          eof_ = true;
          return kEof;
        }
        end_of_buffer_offset_ += buffer_.size();
        if (buffer_.size() < static_cast<size_t>(kBlockSize)) {
          eof_ = true;
        }
        continue;
      }
      // Truncated header at EOF: the writer crashed mid-header.
      buffer_.clear();
      return kEof;
    }

    // Parse the header.
    const char* header = buffer_.data();
    const uint32_t a = static_cast<uint32_t>(header[4]) & 0xff;
    const uint32_t b = static_cast<uint32_t>(header[5]) & 0xff;
    const unsigned int type = static_cast<unsigned int>(header[6]);
    const uint32_t length = a | (b << 8);
    const bool authenticated =
        (type >= static_cast<unsigned int>(kFullAuthType) &&
         type <= static_cast<unsigned int>(kLastAuthType)) ||
        type == static_cast<unsigned int>(kPadFullAuthType) ||
        type == static_cast<unsigned int>(kPadFirstAuthType);
    const size_t tag_size = authenticated ? crypto::kBlockAuthTagSize : 0;
    if (kHeaderSize + length + tag_size > buffer_.size()) {
      const size_t drop_size = buffer_.size();
      buffer_.clear();
      if (!eof_) {
        ReportCorruption(drop_size, "bad record length");
        return kBadRecord;
      }
      // Truncated record at EOF: the writer crashed mid-write.
      return kEof;
    }

    if (type == kZeroType && length == 0) {
      // Zero-filled padding (or preallocated space); skip the block.
      buffer_.clear();
      return kBadRecord;
    }

    if (checksum_) {
      const uint32_t expected_crc = crc32c::Unmask(DecodeFixed32(header));
      const uint32_t actual_crc = crc32c::Value(header + 6, 1 + length);
      if (actual_crc != expected_crc) {
        const size_t drop_size = buffer_.size();
        buffer_.clear();
        ReportCorruption(drop_size, "checksum mismatch");
        return kBadRecord;
      }
    }

    if (authenticated && auth_ != nullptr) {
      // Absolute offset of this record's header in the file: the
      // buffer always ends at end_of_buffer_offset_ regardless of how
      // much has been consumed from its front.
      const uint64_t record_offset = end_of_buffer_offset_ - buffer_.size();
      if (!auth_->VerifyTag(record_offset,
                            Slice(header, kHeaderSize + length),
                            Slice(header + kHeaderSize + length, tag_size))) {
        const size_t drop_size = buffer_.size();
        buffer_.clear();
        ReportCorruption(drop_size, "record authentication tag mismatch");
        return kBadRecord;
      }
    }

    buffer_.remove_prefix(kHeaderSize + length + tag_size);
    *result = Slice(header + kHeaderSize, length);
    // Callers only ever see the base fragment types; the authenticated
    // variants are a wire-level detail. (Padded-ness, by contrast, is
    // ReadRecord's business: it decides envelope stripping.)
    if (!authenticated) {
      return type;
    }
    return type >= static_cast<unsigned int>(kPadFullAuthType)
               ? type - kPadAuthTypeOffset
               : type - kAuthTypeOffset;
  }
}

}  // namespace log
}  // namespace shield
