#include <algorithm>
#include <thread>
#include <vector>

#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "util/clock.h"
#include "util/perf_context.h"
#include "util/trace.h"

namespace shield {

Status DBImpl::Put(const WriteOptions& options, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  if (read_only_) {
    return Status::NotSupported("read-only instance");
  }

  ScopedTracerBinding trace_binding(&tracer_);
  PerfOpBoundary();
  TraceSpan span(SpanType::kDbWrite);
  if (updates != nullptr) {
    span.SetArgs(updates->Count(), updates->ApproximateSize());
  }
  StopWatch write_watch(options_.statistics.get(),
                        Histograms::kDbWriteMicros);

  Writer w;
  w.batch = updates;
  w.sync = options.sync || options_.sync_wal;
  w.done = false;

  // The write queue has its own mutex, held only for queue edits: a
  // writer arriving while the leader works (which it does holding
  // mutex_ or no lock at all, never writers_mutex_) gets into the
  // queue immediately and rides the next group. Guarding the queue
  // with mutex_ itself would serialize arrivals behind the leader's
  // service time — every write becomes its own group (one futex
  // hand-off per op) and group commit never actually groups.
  std::unique_lock<std::mutex> qlock(writers_mutex_);
  writers_.push_back(&w);
  w.cv.wait(qlock, [&w, this] { return w.done || &w == writers_.front(); });
  if (w.done) {
    return w.status;
  }
  qlock.unlock();

  // Group-commit window: give runnable-but-unscheduled writers a
  // chance to enqueue before the group is sealed. Without this a
  // non-sync leader monopolizes the CPU on saturated machines and
  // every write degenerates into a group of one.
  if (updates != nullptr && options_.write_group_yields > 0) {
    for (int i = 0; i < options_.write_group_yields; i++) {
      std::this_thread::yield();
      std::lock_guard<std::mutex> qcheck(writers_mutex_);
      if (writers_.size() > 1) {
        break;
      }
    }
  }

  // We are the group leader. Lock order is mutex_ then writers_mutex_.
  std::unique_lock<std::mutex> lock(mutex_);
  Status status = MakeRoomForWrite(lock, updates == nullptr);
  SequenceNumber last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  // The group, leader first, in queue order. Members leave this vector
  // only via early release below; everyone still in it is completed by
  // the final loop.
  std::vector<Writer*> group;
  group.push_back(&w);
  if (status.ok() && updates != nullptr) {
    WriteBatch* write_batch = nullptr;
    {
      std::lock_guard<std::mutex> qguard(writers_mutex_);
      write_batch = BuildBatchGroup(&last_writer);
      if (last_writer != &w) {
        for (auto iter = writers_.begin() + 1; iter != writers_.end();
             ++iter) {
          group.push_back(*iter);
          if (*iter == last_writer) {
            break;
          }
        }
      }
    }
    write_batch->SetSequence(last_sequence + 1);
    const uint32_t group_count = static_cast<uint32_t>(write_batch->Count());
    last_sequence += group_count;
    RecordTick(options_.statistics.get(), Tickers::kLsmWriteGroups, 1);
    RecordTick(options_.statistics.get(), Tickers::kLsmWriteGroupSize,
               group_count);
    PerfAdd(&PerfContext::write_group_size, group_count);

    // Pipeline stages, mutex released (&w is the only awake writer and
    // memtable inserts happen only under the leader):
    //   verify -> WAL append -> shard apply -> publish -> Sync.
    // The keystream prefetcher (shield/file_crypto.cc) overlaps the
    // cipher work for this group with the previous group's Sync.
    mutex_.unlock();
    bool wal_error = false;
    bool sync_error = false;
    bool applied = false;
    // All-or-nothing: a malformed batch is rejected before it reaches
    // the WAL or any memtable shard. Verification depends only on the
    // rep bytes, so a batch that passes cannot fail the apply below —
    // the group is never left half-applied, and a corrupt record never
    // poisons WAL replay.
    status = write_batch->Verify();
    if (status.ok()) {
      TraceSpan wal_span(SpanType::kWalAppend);
      wal_span.SetArgs(write_batch->Count(), write_batch->Contents().size());
      PerfTimer wal_timer(&GetPerfContext()->wal_write_micros);
      status = log_->AddRecord(write_batch->Contents());
      wal_error = !status.ok();
      wal_span.MarkStatus(status);
    }
    bool apply_error = false;
    if (status.ok()) {
      PerfTimer mem_timer(&GetPerfContext()->memtable_insert_micros);
      status = ApplyGroupToMemTable(write_batch);
      applied = status.ok();
      // Unreachable after a successful Verify (the apply walks the
      // same bytes), but if it ever fires the WAL holds a record the
      // memtable only partially reflects — contain it like WAL damage
      // so the next write rolls to a fresh log + memtable.
      apply_error = !applied;
    }
    mutex_.lock();
    if (applied) {
      // Publish only after the group landed in both the WAL and the
      // memtable: a failed group must not advance the sequence (the
      // gap would stand for entries that never existed).
      versions_->SetLastSequence(last_sequence);
      if (w.sync) {
        // The group is applied and visible; followers that did not ask
        // for durability need not wait out the leader's Sync below.
        std::lock_guard<std::mutex> qguard(writers_mutex_);
        for (size_t i = 1; i < group.size();) {
          Writer* member = group[i];
          if (!member->sync) {
            auto pos = std::find(writers_.begin(), writers_.end(), member);
            assert(pos != writers_.end());
            writers_.erase(pos);
            group.erase(group.begin() + i);
            member->status = Status::OK();
            member->done = true;
            member->cv.notify_one();
          } else {
            ++i;
          }
        }
      }
    }
    if (status.ok() && w.sync) {
      mutex_.unlock();
      TraceSpan sync_span(SpanType::kWalAppend);
      sync_span.SetArgs(0, 0);
      PerfTimer wal_timer(&GetPerfContext()->wal_write_micros);
      status = logfile_->Sync();
      sync_error = !status.ok();
      sync_span.MarkStatus(status);
      mutex_.lock();
    }
    if (wal_error || sync_error || apply_error) {
      // The WAL may now end in a torn record; replay stops at the
      // first damage, so later appends to this file could vanish at
      // recovery even if synced. Roll it before the next write.
      log_tainted_ = true;
      // Surface the failure to listeners/counters; the state machine
      // is untouched because taint-and-roll already contains the
      // damage. A failed Sync after a successful apply keeps the
      // published sequence: the entries exist and stay visible; only
      // the durability promise failed, and every sync writer in the
      // group is told so below.
      error_handler_.OnForegroundError(
          sync_error ? BackgroundErrorReason::kWalSync
                     : BackgroundErrorReason::kWalAppend,
          status);
    }
    if (write_batch == &tmp_batch_) {
      tmp_batch_.Clear();
    }
  }
  lock.unlock();

  {
    std::lock_guard<std::mutex> qguard(writers_mutex_);
    for (Writer* ready : group) {
      assert(writers_.front() == ready);
      writers_.pop_front();
      if (ready != &w) {
        ready->status = status;
        ready->done = true;
        ready->cv.notify_one();
      }
    }
    if (!writers_.empty()) {
      writers_.front()->cv.notify_one();
    }
  }

  span.MarkStatus(status);
  return status;
}

Status DBImpl::ApplyGroupToMemTable(WriteBatch* write_batch) {
  // mem_ only changes under the leader itself (SwitchMemTable), so the
  // unlocked read is safe: no other thread writes it while we lead.
  MemTable* mem = mem_;
  const int shards = mem->shard_count();
  if (shards <= 1 || apply_pool_ == nullptr ||
      write_batch->Count() < shards * 4) {
    // Small groups do not amortize the dispatch; insert inline.
    return write_batch->InsertInto(mem);
  }
  struct ApplyState {
    std::mutex mu;
    std::condition_variable cv;
    int pending;
    Status status;
  } state;
  state.pending = shards - 1;
  for (int shard = 1; shard < shards; shard++) {
    apply_pool_->Schedule([write_batch, mem, shard, &state] {
      Status s = write_batch->InsertIntoShard(mem, shard);
      std::lock_guard<std::mutex> guard(state.mu);
      if (!s.ok() && state.status.ok()) {
        state.status = s;
      }
      if (--state.pending == 0) {
        state.cv.notify_one();
      }
    });
  }
  Status leader_status = write_batch->InsertIntoShard(mem, 0);
  std::unique_lock<std::mutex> guard(state.mu);
  state.cv.wait(guard, [&state] { return state.pending == 0; });
  return leader_status.ok() ? state.status : leader_status;
}

// REQUIRES: writers_mutex_ held, this thread is at the front of writers_.
WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = first->batch->ApproximateSize();

  // Allow the group to grow to a maximum, but limit growth when the
  // first batch is small so small writes keep low latency.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  // Batch shaping (WAL leakage countermeasure): with padding buckets
  // configured the group's WAL record is padded up to a bucket
  // boundary regardless of its exact size, so a follower whose bytes
  // fit inside the bucket this group already commits to rides in
  // would-be padding — admit it even past max_size. Coalescing real
  // payload into the pad both shrinks overhead and removes a
  // group-count channel (N small writes and one shaped group are
  // indistinguishable on the wire).
  const std::vector<uint32_t>& buckets =
      options_.encryption.wal_padding_buckets;

  *last_writer = first;
  for (auto iter = writers_.begin() + 1; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->sync && !first->sync) {
      // Do not include a sync write into a batch handled by a
      // non-sync write.
      break;
    }
    if (w->batch == nullptr) {
      break;  // a force-compaction marker; handle separately
    }
    const size_t new_size = size + w->batch->ApproximateSize();
    if (new_size > max_size &&
        (buckets.empty() ||
         log::PaddedEnvelopeSize(buckets, new_size) !=
             log::PaddedEnvelopeSize(buckets, size))) {
      break;
    }
    size = new_size;
    if (result == first->batch) {
      // Switch to the scratch batch instead of disturbing the caller's.
      result = &tmp_batch_;
      assert(result->Count() == 0);
      result->Append(*first->batch);
    }
    result->Append(*w->batch);
    *last_writer = w;
  }
  return result;
}

// REQUIRES: mutex_ held, this thread leads the write queue.
Status DBImpl::MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                                bool force) {
  bool allow_delay = !force;
  Status s;
  auto record_stall = [this](uint64_t micros) {
    stall_micros_.fetch_add(micros, std::memory_order_relaxed);
    RecordTick(options_.statistics.get(), Tickers::kLsmStallMicros, micros);
    PerfAdd(&PerfContext::write_stall_micros, micros);
  };
  const bool stalls_apply =
      options_.compaction_style != CompactionStyle::kFifo;
  while (true) {
    if (!error_handler_.ok()) {
      s = error_handler_.bg_error();
      break;
    }
    if (allow_delay && stalls_apply &&
        versions_->NumLevelFiles(0) >=
            options_.level0_slowdown_writes_trigger) {
      // Soft limit: back off 1ms to let compaction catch up, at most
      // once per write.
      mutex_.unlock();
      SleepForMicros(1000);
      record_stall(1000);
      allow_delay = false;
      mutex_.lock();
    } else if (log_tainted_) {
      if (imm_ != nullptr) {
        background_work_finished_signal_.wait(
            lock, [this] { return imm_ == nullptr || !error_handler_.ok(); });
      } else {
        // SwitchMemTable clears the taint only once a fresh WAL is
        // actually installed; if it fails before that (e.g. the new
        // file cannot be created), the taint persists and this write
        // fails rather than appending to the damaged log.
        s = SwitchMemTable(lock);
        if (!s.ok()) {
          break;
        }
        force = false;
      }
    } else if (!force &&
               mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      break;  // room available
    } else if (imm_ != nullptr) {
      // Previous memtable still flushing: wait.
      const uint64_t t0 = NowMicros();
      background_work_finished_signal_.wait(lock,
                                            [this] { return imm_ == nullptr ||
                                                            !error_handler_.ok(); });
      record_stall(NowMicros() - t0);
    } else if (stalls_apply && versions_->NumLevelFiles(0) >=
                                   options_.level0_stop_writes_trigger) {
      // Hard limit.
      const uint64_t t0 = NowMicros();
      background_work_finished_signal_.wait(lock, [this] {
        return versions_->NumLevelFiles(0) <
                   options_.level0_stop_writes_trigger ||
               !error_handler_.ok();
      });
      record_stall(NowMicros() - t0);
    } else {
      // Switch to a new memtable and WAL.
      s = SwitchMemTable(lock);
      if (!s.ok()) {
        break;
      }
      force = false;
    }
  }
  return s;
}

// REQUIRES: mutex_ held.
Status DBImpl::SwitchMemTable(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  assert(imm_ == nullptr);
  TraceSpan roll_span(SpanType::kWalRoll);
  const bool was_tainted = log_tainted_;
  const uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  Status s = files_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                     FileKind::kWal, &lfile);
  if (!s.ok()) {
    // Avoid chewing through file numbers in a tight loop on errors.
    versions_->MarkFileNumberUsed(new_log_number);
    roll_span.SetError();
    return s;
  }
  roll_span.SetArgs(logfile_number_, new_log_number);
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("wal_roll");
    w.Add("old_log_number", logfile_number_);
    w.Add("new_log_number", new_log_number);
    w.Add("tainted", was_tainted);
    event_logger_->Emit(&w);
  }
  log_.reset();
  Status close_status;
  if (logfile_ != nullptr) {
    // Drains any SHIELD WAL buffer. A failure loses only the unsynced
    // tail of the outgoing log — those entries live in imm_ below and
    // are persisted by the scheduled flush — but it must be surfaced
    // to the write that forced the switch, not swallowed.
    close_status = logfile_->Close();
  }
  logfile_ = std::move(lfile);
  logfile_number_ = new_log_number;
  log_ = std::make_unique<log::Writer>(
      logfile_.get(), 0, options_.encryption.wal_padding_buckets,
      options_.statistics.get());
  // Any damage recorded against the outgoing WAL stays with it: the
  // replacement is fresh even if closing the old file failed above.
  log_tainted_ = false;
  imm_ = mem_;
  has_imm_.store(true, std::memory_order_release);
  mem_ = new MemTable(internal_comparator_, options_.memtable_shards);
  mem_->Ref();
  MaybeScheduleFlush();
  return close_status;
}

Status DBImpl::Flush() {
  if (read_only_) {
    return Status::NotSupported("read-only instance");
  }
  ScopedTracerBinding trace_binding(&tracer_);
  PerfOpBoundary();
  TraceSpan span(SpanType::kDbFlush);
  StopWatch watch(options_.statistics.get(), Histograms::kDbFlushMicros);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (mem_->NumEntries() == 0 && imm_ == nullptr && !flush_scheduled_) {
      // Nothing to flush, but do not mask a standing background error:
      // the slow path below would have surfaced it, and callers use
      // Flush() as a durability barrier.
      return error_handler_.bg_error();
    }
  }
  // A null batch forces a memtable switch via MakeRoomForWrite.
  Status s = Write(WriteOptions(), nullptr);
  if (!s.ok()) {
    return s;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  background_work_finished_signal_.wait(lock, [this] {
    return (imm_ == nullptr && !flush_scheduled_) || !error_handler_.ok();
  });
  return error_handler_.bg_error();
}

}  // namespace shield
