#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "util/clock.h"
#include "util/perf_context.h"
#include "util/trace.h"

namespace shield {

Status DBImpl::Put(const WriteOptions& options, const Slice& key,
                   const Slice& value) {
  WriteBatch batch;
  batch.Put(key, value);
  return Write(options, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  if (read_only_) {
    return Status::NotSupported("read-only instance");
  }

  PerfOpBoundary();
  TraceSpan span(SpanType::kDbWrite);
  if (updates != nullptr) {
    span.SetArgs(updates->Count(), updates->ApproximateSize());
  }
  StopWatch write_watch(options_.statistics.get(),
                        Histograms::kDbWriteMicros);

  Writer w(&mutex_);
  w.batch = updates;
  w.sync = options.sync || options_.sync_wal;
  w.done = false;

  std::unique_lock<std::mutex> lock(mutex_);
  writers_.push_back(&w);
  w.cv.wait(lock, [&w, this] { return w.done || &w == writers_.front(); });
  if (w.done) {
    return w.status;
  }

  // We are the group leader.
  Status status = MakeRoomForWrite(lock, updates == nullptr);
  SequenceNumber last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  if (status.ok() && updates != nullptr) {
    WriteBatch* write_batch = BuildBatchGroup(&last_writer);
    write_batch->SetSequence(last_sequence + 1);
    last_sequence += write_batch->Count();

    // Append to the WAL and apply to the memtable. The mutex can be
    // released: &w is the only awake writer, and memtable inserts are
    // only performed by the group leader.
    {
      mutex_.unlock();
      bool sync_error = false;
      {
        TraceSpan wal_span(SpanType::kWalAppend);
        wal_span.SetArgs(write_batch->Count(),
                         write_batch->Contents().size());
        PerfTimer wal_timer(&GetPerfContext()->wal_write_micros);
        status = log_->AddRecord(write_batch->Contents());
        if (status.ok() && w.sync) {
          status = logfile_->Sync();
          sync_error = !status.ok();
        }
        wal_span.MarkStatus(status);
      }
      if (status.ok()) {
        PerfTimer mem_timer(&GetPerfContext()->memtable_insert_micros);
        status = write_batch->InsertInto(mem_);
      }
      mutex_.lock();
      if (!status.ok()) {
        // The WAL may now end in a torn record; replay stops at the
        // first damage, so later appends to this file could vanish at
        // recovery even if synced. Roll it before the next write.
        log_tainted_ = true;
        // Surface the failure to listeners/counters; the state machine
        // is untouched because taint-and-roll already contains the
        // damage (the failed write was never acknowledged).
        error_handler_.OnForegroundError(
            sync_error ? BackgroundErrorReason::kWalSync
                       : BackgroundErrorReason::kWalAppend,
            status);
      }
    }
    if (write_batch == &tmp_batch_) {
      tmp_batch_.Clear();
    }

    versions_->SetLastSequence(last_sequence);
  }

  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.notify_one();
    }
    if (ready == last_writer) {
      break;
    }
  }

  if (!writers_.empty()) {
    writers_.front()->cv.notify_one();
  }

  span.MarkStatus(status);
  return status;
}

// REQUIRES: mutex held, this thread is at the front of writers_.
WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer) {
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = first->batch->ApproximateSize();

  // Allow the group to grow to a maximum, but limit growth when the
  // first batch is small so small writes keep low latency.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  *last_writer = first;
  for (auto iter = writers_.begin() + 1; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->sync && !first->sync) {
      // Do not include a sync write into a batch handled by a
      // non-sync write.
      break;
    }
    if (w->batch == nullptr) {
      break;  // a force-compaction marker; handle separately
    }
    size += w->batch->ApproximateSize();
    if (size > max_size) {
      break;
    }
    if (result == first->batch) {
      // Switch to the scratch batch instead of disturbing the caller's.
      result = &tmp_batch_;
      assert(result->Count() == 0);
      result->Append(*first->batch);
    }
    result->Append(*w->batch);
    *last_writer = w;
  }
  return result;
}

// REQUIRES: mutex held, this thread is at the front of writers_.
Status DBImpl::MakeRoomForWrite(std::unique_lock<std::mutex>& lock,
                                bool force) {
  assert(!writers_.empty());
  bool allow_delay = !force;
  Status s;
  auto record_stall = [this](uint64_t micros) {
    stall_micros_.fetch_add(micros, std::memory_order_relaxed);
    RecordTick(options_.statistics.get(), Tickers::kLsmStallMicros, micros);
    PerfAdd(&PerfContext::write_stall_micros, micros);
  };
  const bool stalls_apply =
      options_.compaction_style != CompactionStyle::kFifo;
  while (true) {
    if (!error_handler_.ok()) {
      s = error_handler_.bg_error();
      break;
    }
    if (allow_delay && stalls_apply &&
        versions_->NumLevelFiles(0) >=
            options_.level0_slowdown_writes_trigger) {
      // Soft limit: back off 1ms to let compaction catch up, at most
      // once per write.
      mutex_.unlock();
      SleepForMicros(1000);
      record_stall(1000);
      allow_delay = false;
      mutex_.lock();
    } else if (log_tainted_) {
      if (imm_ != nullptr) {
        background_work_finished_signal_.wait(
            lock, [this] { return imm_ == nullptr || !error_handler_.ok(); });
      } else {
        // SwitchMemTable clears the taint only once a fresh WAL is
        // actually installed; if it fails before that (e.g. the new
        // file cannot be created), the taint persists and this write
        // fails rather than appending to the damaged log.
        s = SwitchMemTable(lock);
        if (!s.ok()) {
          break;
        }
        force = false;
      }
    } else if (!force &&
               mem_->ApproximateMemoryUsage() <= options_.write_buffer_size) {
      break;  // room available
    } else if (imm_ != nullptr) {
      // Previous memtable still flushing: wait.
      const uint64_t t0 = NowMicros();
      background_work_finished_signal_.wait(lock,
                                            [this] { return imm_ == nullptr ||
                                                            !error_handler_.ok(); });
      record_stall(NowMicros() - t0);
    } else if (stalls_apply && versions_->NumLevelFiles(0) >=
                                   options_.level0_stop_writes_trigger) {
      // Hard limit.
      const uint64_t t0 = NowMicros();
      background_work_finished_signal_.wait(lock, [this] {
        return versions_->NumLevelFiles(0) <
                   options_.level0_stop_writes_trigger ||
               !error_handler_.ok();
      });
      record_stall(NowMicros() - t0);
    } else {
      // Switch to a new memtable and WAL.
      s = SwitchMemTable(lock);
      if (!s.ok()) {
        break;
      }
      force = false;
    }
  }
  return s;
}

// REQUIRES: mutex held.
Status DBImpl::SwitchMemTable(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  assert(imm_ == nullptr);
  TraceSpan roll_span(SpanType::kWalRoll);
  const bool was_tainted = log_tainted_;
  const uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  Status s = files_->NewWritableFile(LogFileName(dbname_, new_log_number),
                                     FileKind::kWal, &lfile);
  if (!s.ok()) {
    // Avoid chewing through file numbers in a tight loop on errors.
    versions_->MarkFileNumberUsed(new_log_number);
    roll_span.SetError();
    return s;
  }
  roll_span.SetArgs(logfile_number_, new_log_number);
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("wal_roll");
    w.Add("old_log_number", logfile_number_);
    w.Add("new_log_number", new_log_number);
    w.Add("tainted", was_tainted);
    event_logger_->Emit(&w);
  }
  log_.reset();
  Status close_status;
  if (logfile_ != nullptr) {
    // Drains any SHIELD WAL buffer. A failure loses only the unsynced
    // tail of the outgoing log — those entries live in imm_ below and
    // are persisted by the scheduled flush — but it must be surfaced
    // to the write that forced the switch, not swallowed.
    close_status = logfile_->Close();
  }
  logfile_ = std::move(lfile);
  logfile_number_ = new_log_number;
  log_ = std::make_unique<log::Writer>(logfile_.get());
  // Any damage recorded against the outgoing WAL stays with it: the
  // replacement is fresh even if closing the old file failed above.
  log_tainted_ = false;
  imm_ = mem_;
  has_imm_.store(true, std::memory_order_release);
  mem_ = new MemTable(internal_comparator_);
  mem_->Ref();
  MaybeScheduleFlush();
  return close_status;
}

Status DBImpl::Flush() {
  if (read_only_) {
    return Status::NotSupported("read-only instance");
  }
  PerfOpBoundary();
  TraceSpan span(SpanType::kDbFlush);
  StopWatch watch(options_.statistics.get(), Histograms::kDbFlushMicros);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (mem_->NumEntries() == 0 && imm_ == nullptr && !flush_scheduled_) {
      return Status::OK();  // nothing to flush
    }
  }
  // A null batch forces a memtable switch via MakeRoomForWrite.
  Status s = Write(WriteOptions(), nullptr);
  if (!s.ok()) {
    return s;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  background_work_finished_signal_.wait(lock, [this] {
    return (imm_ == nullptr && !flush_scheduled_) || !error_handler_.ok();
  });
  return error_handler_.bg_error();
}

}  // namespace shield
