#ifndef SHIELD_LSM_SST_BUILDER_H_
#define SHIELD_LSM_SST_BUILDER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "env/env.h"
#include "lsm/block_builder.h"
#include "lsm/filter_block.h"
#include "lsm/format.h"
#include "lsm/options.h"
#include "lsm/table_format.h"
#include "util/status.h"

namespace shield {

/// Builds a block-based SST file: sorted data blocks with checksums,
/// an index block, a properties block and a footer. Keys are internal
/// keys and must be added in increasing order.
///
/// Encryption note: the builder writes to an abstract WritableFile.
/// Under SHIELD the file is a ShieldWritableFile that encrypts appended
/// chunks, so the builder — like RocksDB modified by the paper — never
/// sees ciphertext.
class TableBuilder {
 public:
  /// `file` is borrowed and must stay open until Finish()/Abandon().
  TableBuilder(const Options& options, const InternalKeyComparator* icmp,
               WritableFile* file);
  ~TableBuilder();

  TableBuilder(const TableBuilder&) = delete;
  TableBuilder& operator=(const TableBuilder&) = delete;

  void Add(const Slice& key, const Slice& value);

  /// Sets a free-form table property persisted in the properties block
  /// (e.g. SHIELD's DEK-ID). Must be called before Finish().
  void SetProperty(const std::string& key, const std::string& value);

  /// Flushes all pending blocks and writes index/properties/footer.
  Status Finish();
  /// Abandons the file contents (builder becomes unusable).
  void Abandon();

  uint64_t NumEntries() const { return num_entries_; }
  /// Size of the file generated so far.
  uint64_t FileSize() const { return offset_; }
  Status status() const { return status_; }

 private:
  void WriteDataBlock();
  Status WriteRawBlock(const Slice& contents, BlockHandle* handle);

  const Options options_;
  const InternalKeyComparator* icmp_;
  WritableFile* file_;
  uint64_t offset_ = 0;
  Status status_;
  BlockBuilder data_block_;
  BlockBuilder index_block_;
  std::string last_key_;
  uint64_t num_entries_ = 0;
  uint64_t raw_key_bytes_ = 0;
  uint64_t raw_value_bytes_ = 0;
  bool closed_ = false;
  TableProperties properties_;
  std::unique_ptr<FilterBlockBuilder> filter_block_;

  // Set when a data block is finished but its index entry is deferred
  // until the next key is known (enables shortened separators).
  bool pending_index_entry_ = false;
  BlockHandle pending_handle_;
};

}  // namespace shield

#endif  // SHIELD_LSM_SST_BUILDER_H_
