#include "lsm/cache.h"

#include <cassert>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace shield {

namespace {

// An entry is a variable length heap-allocated structure. Entries are
// kept in circular doubly linked lists ordered by access time, one
// list per eviction priority.
struct LRUHandle {
  void* value;
  void (*deleter)(const Slice&, void* value);
  LRUHandle* next;
  LRUHandle* prev;
  size_t charge;  // caller charge + per-entry metadata overhead
  size_t key_length;
  bool in_cache;     // whether the cache has a reference on the entry
  Cache::Priority priority;
  uint32_t refs;     // references, including the cache's own if in_cache
  char key_data[1];  // beginning of key

  Slice key() const { return Slice(key_data, key_length); }
};

// Memory the cache itself spends to hold one entry: the handle
// allocation (struct + inline key) plus the std::string key copy and
// node the hash table keeps. Short keys live inside the string's SSO
// buffer; longer ones cost a second heap copy. The hash node and
// bucket slot are approximated as four pointers.
size_t MetaCharge(size_t key_length) {
  constexpr size_t kSsoCapacity = 15;
  size_t meta = sizeof(LRUHandle) - 1 + key_length;  // handle malloc
  meta += sizeof(std::string);                       // table key object
  if (key_length > kSsoCapacity) meta += key_length + 1;
  meta += 4 * sizeof(void*);  // unordered_map node + bucket share
  return meta;
}

class LRUCacheShard {
 public:
  LRUCacheShard() {
    // Empty circular linked lists.
    lru_low_.next = &lru_low_;
    lru_low_.prev = &lru_low_;
    lru_high_.next = &lru_high_;
    lru_high_.prev = &lru_high_;
    in_use_.next = &in_use_;
    in_use_.prev = &in_use_;
  }

  ~LRUCacheShard() {
    assert(in_use_.next == &in_use_);  // all handles released
    for (LRUHandle* list : {&lru_low_, &lru_high_}) {
      for (LRUHandle* e = list->next; e != list;) {
        LRUHandle* next = e->next;
        assert(e->in_cache);
        e->in_cache = false;
        assert(e->refs == 1);
        Unref(e);
        e = next;
      }
    }
  }

  void SetCapacity(size_t capacity) { capacity_ = capacity; }

  Cache::Handle* Insert(const Slice& key, void* value, size_t charge,
                        void (*deleter)(const Slice& key, void* value),
                        Cache::Priority priority) {
    std::lock_guard<std::mutex> lock(mutex_);

    LRUHandle* e = reinterpret_cast<LRUHandle*>(
        malloc(sizeof(LRUHandle) - 1 + key.size()));
    e->value = value;
    e->deleter = deleter;
    e->charge = charge + MetaCharge(key.size());
    e->key_length = key.size();
    e->in_cache = false;
    e->priority = priority;
    e->refs = 1;  // for the returned handle
    memcpy(e->key_data, key.data(), key.size());

    if (capacity_ > 0) {
      e->refs++;  // for the cache's reference
      e->in_cache = true;
      LRU_Append(&in_use_, e);
      usage_ += e->charge;
      FinishErase(FindAndRemove(key));
    }  // else: caching disabled; still return a handle

    EvictUntilFits();
    if (e->in_cache) {
      table_[std::string(key.data(), key.size())] = e;
    }

    return reinterpret_cast<Cache::Handle*>(e);
  }

  Cache::Handle* Lookup(const Slice& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = table_.find(std::string(key.data(), key.size()));
    if (it == table_.end()) {
      return nullptr;
    }
    LRUHandle* e = it->second;
    Ref(e);
    return reinterpret_cast<Cache::Handle*>(e);
  }

  void Release(Cache::Handle* handle) {
    std::lock_guard<std::mutex> lock(mutex_);
    Unref(reinterpret_cast<LRUHandle*>(handle));
    // A release may have turned an entry evictable while the shard is
    // over budget (pinned entries can push usage past capacity);
    // reclaim now so TotalCharge() <= capacity holds whenever no
    // handles are outstanding.
    EvictUntilFits();
  }

  void Erase(const Slice& key) {
    std::lock_guard<std::mutex> lock(mutex_);
    FinishErase(FindAndRemove(key));
  }

  size_t TotalCharge() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return usage_;
  }

 private:
  // Evicts low-priority entries oldest-first, then high-priority ones
  // only once no low-priority entry remains evictable.
  void EvictUntilFits() {
    while (usage_ > capacity_) {
      LRUHandle* old = nullptr;
      if (lru_low_.next != &lru_low_) {
        old = lru_low_.next;
      } else if (lru_high_.next != &lru_high_) {
        old = lru_high_.next;
      } else {
        break;  // everything left is referenced; cannot evict
      }
      assert(old->refs == 1);
      table_.erase(std::string(old->key_data, old->key_length));
      FinishErase(old);
    }
  }

  // Removes from hash table and returns the entry (or nullptr).
  LRUHandle* FindAndRemove(const Slice& key) {
    auto it = table_.find(std::string(key.data(), key.size()));
    if (it == table_.end()) {
      return nullptr;
    }
    LRUHandle* e = it->second;
    table_.erase(it);
    return e;
  }

  // Finalizes removal of *e from the cache (already removed from the
  // hash table).
  void FinishErase(LRUHandle* e) {
    if (e != nullptr) {
      assert(e->in_cache);
      LRU_Remove(e);
      e->in_cache = false;
      usage_ -= e->charge;
      Unref(e);
    }
  }

  void Ref(LRUHandle* e) {
    if (e->refs == 1 && e->in_cache) {  // on an lru list; move to in_use_
      LRU_Remove(e);
      LRU_Append(&in_use_, e);
    }
    e->refs++;
  }

  void Unref(LRUHandle* e) {
    assert(e->refs > 0);
    e->refs--;
    if (e->refs == 0) {
      assert(!e->in_cache);
      (*e->deleter)(e->key(), e->value);
      free(e);
    } else if (e->in_cache && e->refs == 1) {
      // No longer in use; move to its priority's evictable list.
      LRU_Remove(e);
      LRU_Append(e->priority == Cache::Priority::kHigh ? &lru_high_ : &lru_low_,
                 e);
    }
  }

  static void LRU_Remove(LRUHandle* e) {
    e->next->prev = e->prev;
    e->prev->next = e->next;
  }

  static void LRU_Append(LRUHandle* list, LRUHandle* e) {
    // Make e the newest entry by inserting just before *list.
    e->next = list;
    e->prev = list->prev;
    e->prev->next = e;
    e->next->prev = e;
  }

  mutable std::mutex mutex_;
  size_t capacity_ = 0;
  size_t usage_ = 0;

  // Evictable entries (refs==1 and in_cache), oldest first, split by
  // priority: lru_low_ drains completely before lru_high_ is touched.
  LRUHandle lru_low_;
  LRUHandle lru_high_;
  // in_use_: entries the client holds references to.
  LRUHandle in_use_;

  std::unordered_map<std::string, LRUHandle*> table_;
};

constexpr int kNumShardBits = 4;
constexpr int kNumShards = 1 << kNumShardBits;

class ShardedLRUCache final : public Cache {
 public:
  explicit ShardedLRUCache(size_t capacity) {
    // Floor split with the remainder spread over the first shards so
    // the per-shard capacities sum to exactly `capacity`. (A ceil
    // split would let the shards jointly exceed the configured budget
    // by up to kNumShards-1 bytes times the shard count.)
    const size_t base = capacity / kNumShards;
    const size_t extra = capacity % kNumShards;
    for (int i = 0; i < kNumShards; i++) {
      shards_[i].SetCapacity(base + (static_cast<size_t>(i) < extra ? 1 : 0));
    }
  }

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 void (*deleter)(const Slice& key, void* value),
                 Priority priority) override {
    return shards_[Shard(key)].Insert(key, value, charge, deleter, priority);
  }
  Handle* Lookup(const Slice& key) override {
    return shards_[Shard(key)].Lookup(key);
  }
  void Release(Handle* handle) override {
    LRUHandle* h = reinterpret_cast<LRUHandle*>(handle);
    shards_[Shard(h->key())].Release(handle);
  }
  void* Value(Handle* handle) override {
    return reinterpret_cast<LRUHandle*>(handle)->value;
  }
  void Erase(const Slice& key) override { shards_[Shard(key)].Erase(key); }
  uint64_t NewId() override {
    std::lock_guard<std::mutex> lock(id_mutex_);
    return ++last_id_;
  }
  size_t TotalCharge() const override {
    size_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.TotalCharge();
    }
    return total;
  }

 private:
  static uint32_t HashSlice(const Slice& s) {
    // FNV-1a.
    uint32_t h = 2166136261u;
    for (size_t i = 0; i < s.size(); i++) {
      h ^= static_cast<uint8_t>(s[i]);
      h *= 16777619u;
    }
    return h;
  }

  static uint32_t Shard(const Slice& key) {
    return HashSlice(key) >> (32 - kNumShardBits);
  }

  LRUCacheShard shards_[kNumShards];
  std::mutex id_mutex_;
  uint64_t last_id_ = 0;
};

}  // namespace

std::shared_ptr<Cache> NewLRUCache(size_t capacity) {
  return std::make_shared<ShardedLRUCache>(capacity);
}

}  // namespace shield
