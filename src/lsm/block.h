#ifndef SHIELD_LSM_BLOCK_H_
#define SHIELD_LSM_BLOCK_H_

#include <cstddef>
#include <cstdint>

#include "lsm/comparator.h"
#include "lsm/iterator.h"
#include "util/slice.h"

namespace shield {

/// An immutable, parsed key/value block read from an SST file.
class Block {
 public:
  /// Takes ownership of `data` (heap allocated) when `owned` is true.
  Block(const char* data, size_t size, bool owned);
  ~Block();

  Block(const Block&) = delete;
  Block& operator=(const Block&) = delete;

  size_t size() const { return size_; }

  Iterator* NewIterator(const Comparator* comparator);

 private:
  class Iter;

  uint32_t NumRestarts() const;

  const char* data_;
  size_t size_;
  uint32_t restart_offset_ = 0;
  bool owned_;
  bool malformed_ = false;
};

}  // namespace shield

#endif  // SHIELD_LSM_BLOCK_H_
