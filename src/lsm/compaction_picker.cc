#include <algorithm>

#include "lsm/version_set.h"

namespace shield {

// Compaction-picking policies (paper Fig. 15 evaluates SHIELD across
// RocksDB's leveled, universal, and FIFO styles; the pickers below
// implement the corresponding behaviours on this engine).

Compaction* VersionSet::PickCompaction() {
  switch (options_.compaction_style) {
    case CompactionStyle::kLeveled:
      return PickLeveledCompaction();
    case CompactionStyle::kUniversal:
      return PickUniversalCompaction();
    case CompactionStyle::kFifo:
      return PickFifoCompaction();
  }
  return nullptr;
}

Compaction* VersionSet::PickLeveledCompaction() {
  if (current_->compaction_score_ < 1) {
    return nullptr;
  }
  const int level = current_->compaction_level_;
  assert(level >= 0);
  assert(level + 1 < num_levels_);

  Compaction* c = new Compaction(options_, level, level + 1);

  // Pick the first file past compact_pointer_[level] (round-robin over
  // the keyspace so every file is eventually compacted — and under
  // SHIELD, eventually re-keyed).
  for (FileMetaData* f : current_->files_[level]) {
    if (compact_pointer_[level].empty() ||
        icmp_->Compare(f->largest.Encode(),
                       Slice(compact_pointer_[level])) > 0) {
      c->inputs_[0].push_back(f);
      break;
    }
  }
  if (c->inputs_[0].empty() && !current_->files_[level].empty()) {
    // Wrap around.
    c->inputs_[0].push_back(current_->files_[level][0]);
  }
  if (c->inputs_[0].empty()) {
    delete c;
    return nullptr;
  }

  c->input_version_ = current_;
  c->input_version_->Ref();

  if (level == 0) {
    // Level-0 files may overlap each other; pull in all overlapping
    // ones.
    InternalKey smallest, largest;
    GetRange(c->inputs_[0], &smallest, &largest);
    current_->GetOverlappingInputs(0, &smallest, &largest, &c->inputs_[0]);
    assert(!c->inputs_[0].empty());
  }

  SetupOtherInputs(c);
  return c;
}

void VersionSet::SetupOtherInputs(Compaction* c) {
  const int level = c->level();
  InternalKey smallest, largest;
  GetRange(c->inputs_[0], &smallest, &largest);

  current_->GetOverlappingInputs(level + 1, &smallest, &largest,
                                 &c->inputs_[1]);

  InternalKey all_start, all_limit;
  GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);

  // Try to grow the level-`level` inputs without changing the
  // level+1 inputs (pulls more work into one pass when free).
  if (!c->inputs_[1].empty()) {
    std::vector<FileMetaData*> expanded0;
    current_->GetOverlappingInputs(level, &all_start, &all_limit, &expanded0);
    int64_t inputs0_size = 0, inputs1_size = 0, expanded0_size = 0;
    for (FileMetaData* f : c->inputs_[0]) inputs0_size += f->file_size;
    for (FileMetaData* f : c->inputs_[1]) inputs1_size += f->file_size;
    for (FileMetaData* f : expanded0) expanded0_size += f->file_size;
    const int64_t expansion_limit =
        25 * static_cast<int64_t>(options_.target_file_size_base);
    if (expanded0.size() > c->inputs_[0].size() &&
        inputs1_size + expanded0_size < expansion_limit) {
      InternalKey new_start, new_limit;
      GetRange(expanded0, &new_start, &new_limit);
      std::vector<FileMetaData*> expanded1;
      current_->GetOverlappingInputs(level + 1, &new_start, &new_limit,
                                     &expanded1);
      if (expanded1.size() == c->inputs_[1].size()) {
        c->inputs_[0] = expanded0;
        c->inputs_[1] = expanded1;
        GetRange2(c->inputs_[0], c->inputs_[1], &all_start, &all_limit);
      }
    }
  }

  // Mark bottommost: no data below the output level within the key
  // range means tombstones can be dropped.
  bool data_below = false;
  for (int lvl = c->output_level() + 1; lvl < num_levels_ && !data_below;
       lvl++) {
    Slice start_key = all_start.user_key();
    Slice limit_key = all_limit.user_key();
    data_below = SomeOverlap(lvl, start_key, limit_key);
  }
  c->bottommost_ = !data_below;

  GetRange(c->inputs_[0], &smallest, &largest);
  compact_pointer_[level] = largest.Encode().ToString();
  c->edit_.Clear();
}

bool VersionSet::SomeOverlap(int level, const Slice& smallest_user_key,
                             const Slice& largest_user_key) {
  return current_->OverlapInLevel(level, &smallest_user_key,
                                  &largest_user_key);
}

Compaction* VersionSet::PickUniversalCompaction() {
  // All sorted runs live in level 0 (each file is one run). When the
  // number of runs reaches the trigger, merge a prefix of the NEWEST
  // runs selected by the size-ratio rule into a single run — fewer,
  // larger I/Os than leveled (tiered compaction). Merging an
  // age-contiguous newest prefix preserves the level-0 recency
  // invariant: the merged output receives a fresh (highest) file
  // number and indeed holds the newest data.
  const std::vector<FileMetaData*>& files = current_->files_[0];
  const int trigger = options_.level0_file_num_compaction_trigger;
  if (static_cast<int>(files.size()) < trigger) {
    return nullptr;
  }

  std::vector<FileMetaData*> newest_first = files;
  std::sort(newest_first.begin(), newest_first.end(),
            [](FileMetaData* a, FileMetaData* b) {
              if (a->largest_seq != b->largest_seq) {
                return a->largest_seq > b->largest_seq;
              }
              return a->number > b->number;
            });

  std::vector<FileMetaData*> picked;
  int64_t accumulated = 0;
  for (FileMetaData* f : newest_first) {
    if (picked.empty()) {
      picked.push_back(f);
      accumulated = static_cast<int64_t>(f->file_size);
      continue;
    }
    const int64_t limit =
        accumulated * (100 + options_.universal_size_ratio_percent) / 100;
    if (static_cast<int64_t>(f->file_size) > limit) {
      break;  // next (older) run is too large relative to the prefix
    }
    picked.push_back(f);
    accumulated += static_cast<int64_t>(f->file_size);
  }

  // Bound the number of outstanding sorted runs: extend the merge past
  // the ratio rule until the post-merge run count fits.
  while (static_cast<int>(newest_first.size() - picked.size()) + 1 >
             options_.universal_max_sorted_runs &&
         picked.size() < newest_first.size()) {
    picked.push_back(newest_first[picked.size()]);
  }

  // Guarantee progress whenever the trigger fired (a null pick here
  // with NeedsCompaction() still true would spin the scheduler).
  if (picked.size() < 2) {
    picked.assign(newest_first.begin(), newest_first.begin() + 2);
  }

  Compaction* c = new Compaction(options_, 0, 0);
  // Universal outputs one large run; do not cap output file size.
  c->max_output_file_size_ = UINT64_MAX;
  c->inputs_[0] = picked;
  c->input_version_ = current_;
  c->input_version_->Ref();
  // Dropping tombstones is safe only when every run participates.
  c->bottommost_ = picked.size() == files.size();
  return c;
}

Compaction* VersionSet::PickFifoCompaction() {
  // FIFO: never merge; evict the oldest files once the total size
  // exceeds the budget.
  const std::vector<FileMetaData*>& files = current_->files_[0];
  int64_t total = 0;
  for (const FileMetaData* f : files) {
    total += static_cast<int64_t>(f->file_size);
  }
  if (total <= static_cast<int64_t>(options_.fifo_max_table_files_size) ||
      files.empty()) {
    return nullptr;
  }

  std::vector<FileMetaData*> sorted = files;
  std::sort(sorted.begin(), sorted.end(),
            [](FileMetaData* a, FileMetaData* b) {
              if (a->largest_seq != b->largest_seq) {
                return a->largest_seq < b->largest_seq;
              }
              return a->number < b->number;
            });

  Compaction* c = new Compaction(options_, 0, 0);
  c->deletion_only_ = true;
  c->input_version_ = current_;
  c->input_version_->Ref();
  for (FileMetaData* f : sorted) {
    if (total <= static_cast<int64_t>(options_.fifo_max_table_files_size)) {
      break;
    }
    c->inputs_[0].push_back(f);
    total -= static_cast<int64_t>(f->file_size);
  }
  return c;
}

Compaction* VersionSet::CompactRange(int level, const InternalKey* begin,
                                     const InternalKey* end) {
  std::vector<FileMetaData*> inputs;
  current_->GetOverlappingInputs(level, begin, end, &inputs);
  if (inputs.empty()) {
    return nullptr;
  }

  // Avoid one compaction rewriting too much at once for levels > 0.
  if (level > 0) {
    const uint64_t limit = 25 * options_.target_file_size_base;
    uint64_t total = 0;
    for (size_t i = 0; i < inputs.size(); i++) {
      total += inputs[i]->file_size;
      if (total >= limit) {
        inputs.resize(i + 1);
        break;
      }
    }
  }

  const int output_level =
      options_.compaction_style == CompactionStyle::kLeveled
          ? std::min(level + 1, num_levels_ - 1)
          : 0;
  Compaction* c = new Compaction(options_, level, output_level);
  c->input_version_ = current_;
  c->input_version_->Ref();
  c->inputs_[0] = inputs;
  if (options_.compaction_style == CompactionStyle::kLeveled) {
    SetupOtherInputs(c);
  } else {
    c->max_output_file_size_ = UINT64_MAX;
    c->bottommost_ = inputs.size() == current_->files_[0].size();
  }
  return c;
}

}  // namespace shield
