#ifndef SHIELD_LSM_ERROR_HANDLER_H_
#define SHIELD_LSM_ERROR_HANDLER_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lsm/options.h"
#include "util/event_logger.h"
#include "util/retry.h"
#include "util/status.h"

namespace shield {

/// Which background operation failed. Drives severity classification:
/// the same Status can be survivable from one source and fatal from
/// another (an IOError writing an SST leaves the old state intact; an
/// IOError writing the MANIFEST may leave the version log torn).
enum class BackgroundErrorReason {
  kFlush = 0,
  kCompaction,
  kWalAppend,
  kWalSync,
  kManifestWrite,
  kOffload,
  kScrub,
  kRotation,
};

constexpr int kNumBackgroundErrorReasons = 8;

/// How bad a background failure is.
///   kTransient — retry in place with backoff; no durable state lost.
///   kSoft      — writes stop (read-only mode); reads stay correct
///                because LSM files are immutable and the failed
///                output was discarded. Operator can Resume().
///   kHard      — persistent state may be inconsistent (manifest
///                damage, corruption): the DB halts; only re-opening
///                (which re-runs recovery) clears it.
enum class ErrorSeverity {
  kTransient = 0,
  kSoft,
  kHard,
};

/// The DB-wide state machine driven by classified background errors:
///
///   kActive ──transient──▶ kRecovering ──success──▶ kActive
///      │                        │
///      │                        └─attempts exhausted─┐
///      ├──────soft (IOError flush/compaction)────────▶ kReadOnly
///      │                                                  │
///      │                                       Resume()   │
///      │                                          ◀───────┘
///      └──────hard (manifest / corruption)──▶ kHalted  (reopen only)
enum class DbErrorState {
  kActive = 0,
  kRecovering,
  kReadOnly,
  kHalted,
};

const char* BackgroundErrorReasonName(BackgroundErrorReason reason);
const char* ErrorSeverityName(ErrorSeverity severity);
const char* DbErrorStateName(DbErrorState state);

/// Summary of one completed memtable flush (OnFlushCompleted).
struct FlushJobInfo {
  uint64_t file_number = 0;  // the new level-0 SST
  uint64_t file_size = 0;    // bytes written (post-encryption framing)
  uint64_t micros = 0;       // wall time of the table build
};

/// Summary of one completed compaction (OnCompactionCompleted).
struct CompactionJobInfo {
  int level = 0;         // input level
  int output_level = 0;
  int output_files = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t micros = 0;
};

/// Observer of background failures, recovery transitions and scrubber
/// activity. All callbacks run with the DB mutex held: implementations
/// must be fast and must not call back into the DB.
class EventListener {
 public:
  virtual ~EventListener() = default;

  /// A background operation failed. Fired for every classified
  /// failure, including transient ones that will be retried.
  virtual void OnBackgroundError(BackgroundErrorReason /*reason*/,
                                 const Status& /*status*/,
                                 ErrorSeverity /*severity*/) {}

  /// The DB entered kRecovering: a transient failure was observed and
  /// automatic retries begin.
  virtual void OnErrorRecoveryBegin(BackgroundErrorReason /*reason*/,
                                    const Status& /*status*/) {}

  /// Recovery finished. `final_status` is OK when the DB returned to
  /// kActive (auto-resume or manual Resume()); otherwise it is the
  /// error the DB escalated with.
  virtual void OnErrorRecoveryEnd(const Status& /*final_status*/) {}

  /// The scrubber (or a read) proved a file fails CRC/HMAC
  /// verification.
  virtual void OnIntegrityViolation(const std::string& /*fname*/,
                                    const Status& /*status*/) {}

  /// The scrubber replaced a corrupt file with a verified copy.
  /// `from_replica` distinguishes DS-replica re-fetch from local
  /// salvage.
  virtual void OnFileRepaired(const std::string& /*fname*/,
                              bool /*from_replica*/) {}

  /// A memtable flush produced (and installed) a new level-0 SST.
  /// Also fired for flushes performed during WAL-replay recovery.
  virtual void OnFlushCompleted(const FlushJobInfo& /*info*/) {}

  /// A compaction's outputs were installed in the manifest. Not fired
  /// for trivial moves or FIFO deletions (no bytes rewritten).
  virtual void OnCompactionCompleted(const CompactionJobInfo& /*info*/) {}
};

/// Classifies background failures by (reason, status), drives the
/// DbErrorState machine, and schedules bounded auto-resume retries for
/// transient errors via a RetryPolicy.
///
/// Thread-compatible, not thread-safe: DBImpl calls every method with
/// its mutex held.
class ErrorHandler {
 public:
  ErrorHandler() = default;

  /// `event_logger` (optional, not owned, must outlive the handler)
  /// receives an `error_state` JSON event on every DbErrorState
  /// transition.
  void Configure(const RetryPolicy& resume_policy,
                 std::vector<std::shared_ptr<EventListener>> listeners,
                 EventLogger* event_logger = nullptr);

  /// Pure classification; exposed for tests. `retries_exhausted` marks
  /// a transient status whose retry budget is spent.
  static ErrorSeverity Classify(BackgroundErrorReason reason, const Status& s,
                                bool retries_exhausted);

  /// Records a background failure. For transient errors within the
  /// retry budget, enters kRecovering and returns the backoff in
  /// microseconds before the job should run again. Otherwise escalates
  /// (kReadOnly or kHalted per Classify), sets the sticky background
  /// error, and returns 0.
  uint64_t OnBackgroundError(BackgroundErrorReason reason, const Status& s);

  /// Records a foreground (write-path) failure for listener visibility
  /// and counters. Does not change the DB state: WAL damage is handled
  /// by taint-and-roll in the write path itself.
  void OnForegroundError(BackgroundErrorReason reason, const Status& s);

  /// The given background operation completed cleanly: clears its
  /// retry counter and, if no other reason is mid-retry, completes
  /// recovery back to kActive.
  void OnOperationSucceeded(BackgroundErrorReason reason);

  /// Manual operator recovery from kReadOnly: clears the background
  /// error and returns to kActive. Refused (returns the sticky error)
  /// in kHalted — hard errors require a re-open. No-op when already
  /// active.
  Status Resume();

  /// True when background work may be scheduled and writes accepted
  /// (kActive or kRecovering).
  bool ok() const { return bg_error_.ok(); }

  /// True unless the DB is halted: soft errors keep reads available.
  bool reads_allowed() const { return state_ != DbErrorState::kHalted; }

  const Status& bg_error() const { return bg_error_; }
  DbErrorState state() const { return state_; }

  /// Completed recoveries (automatic + manual Resume()).
  uint64_t recoveries() const { return recoveries_; }

 private:
  void Escalate(BackgroundErrorReason reason, const Status& s,
                ErrorSeverity severity);
  bool AnyRetryPending() const;
  /// Emits an error_state event when the state actually changed.
  void TransitionTo(DbErrorState next, const char* cause);

  RetryPolicy policy_ = DefaultBackgroundResumePolicy();
  std::vector<std::shared_ptr<EventListener>> listeners_;
  EventLogger* event_logger_ = nullptr;

  DbErrorState state_ = DbErrorState::kActive;
  Status bg_error_;
  std::array<int, kNumBackgroundErrorReasons> attempts_{};
  uint64_t rnd_state_ = 0x5e7e7;
  uint64_t recoveries_ = 0;
};

}  // namespace shield

#endif  // SHIELD_LSM_ERROR_HANDLER_H_
