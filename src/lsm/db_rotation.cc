// Online DEK rotation: rewrites live SSTs to fresh DEKs through the
// table-rewrite path, with progress persisted in the ROTATION manifest
// after every file so a crash mid-rotation resumes instead of
// restarting. The old file's DEK is destroyed by garbage collection
// only after its replacement is durable in the version MANIFEST *and*
// the step is recorded in the rotation manifest, so no key is ever
// lost to a crash. Extends the paper's passive rotation-via-compaction
// (Section 5.2) into an on-demand / scheduled key-lifecycle job.

#include <algorithm>
#include <chrono>

#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "lsm/sst_builder.h"
#include "lsm/sst_reader.h"
#include "util/clock.h"
#include "util/trace.h"

namespace shield {

Status DBImpl::RotateDeks(const RotateOptions& rotate_options,
                          RotateResult* result) {
  RotateResult scratch;
  if (result == nullptr) {
    result = &scratch;
  }
  *result = RotateResult();
  if (read_only_) {
    return Status::NotSupported("read-only instances cannot rotate DEKs");
  }
  if (options_.encryption.mode != EncryptionMode::kShield) {
    return Status::NotSupported("DEK rotation requires SHIELD encryption");
  }

  // Serialize with the background rotation thread.
  std::lock_guard<std::mutex> pass_lock(rotation_pass_mutex_);

  RotationManifest manifest;
  bool resumed = true;
  Status s = RotationManifest::Load(raw_env_, dbname_, &manifest);
  if (s.IsCorruption() ||
      (s.ok() && manifest.state == RotationManifest::State::kDone)) {
    // A torn manifest (crash mid-save) or a completed rotation whose
    // cleanup crashed. Rotation is idempotent — entries for files no
    // longer in the live version are skipped as stale — so the safe
    // recovery is to drop it and plan afresh.
    RotationManifest::Remove(raw_env_, dbname_);
    s = Status::NotFound("restarting rotation");
  }
  if (s.IsNotFound()) {
    resumed = false;
    manifest = RotationManifest();
    std::vector<Version::LiveFileInfo> files;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_handler_.ok()) {
        return error_handler_.bg_error();
      }
      manifest.rotation_id = versions_->NewFileNumber();
      versions_->current()->GetAllFiles(&files);
    }
    for (const auto& f : files) {
      if (rotate_options.max_dek_age_micros > 0) {
        // Only rotate files whose DEK is old enough. Unknown ages
        // (DekAgeMicros returns UINT64_MAX — the DEK predates this
        // process) are at least as old as the process and eligible.
        ShieldFileHeader header;
        Status hs = ReadShieldFileHeader(
            raw_env_, TableFileName(dbname_, f.number), &header);
        if (hs.ok() && dek_manager_->DekAgeMicros(header.dek_id) <
                           rotate_options.max_dek_age_micros) {
          continue;
        }
      }
      manifest.pending.push_back(f.number);
    }
    if (!manifest.pending.empty()) {
      s = manifest.Save(raw_env_, dbname_);
      if (!s.ok()) {
        return s;
      }
    }
  } else if (!s.ok()) {
    return s;
  }

  Status rs;
  if (!manifest.pending.empty()) {
    if (event_logger_ != nullptr && event_logger_->enabled()) {
      JsonWriter w = event_logger_->NewEvent("rotation_begin");
      w.Add("rotation_id", manifest.rotation_id);
      w.Add("planned", static_cast<uint64_t>(manifest.pending.size()));
      w.Add("resumed", resumed);
      event_logger_->Emit(&w);
    }
    rs = RunRotation(&manifest, rotate_options, result);
  }
  // Opportunistic drain of deferred KDS deletes — even when there was
  // nothing to rotate, so operators can force a drain with a no-op
  // RotateDeks call.
  dek_manager_->TryDrainPendingDeletes();
  return rs;
}

Status DBImpl::RunRotation(RotationManifest* manifest,
                           const RotateOptions& opts, RotateResult* result) {
  ScopedTracerBinding trace_binding(&tracer_);
  TraceSpan span(SpanType::kRotationPass);
  rotation_running_.store(true, std::memory_order_release);
  rotation_passes_.fetch_add(1, std::memory_order_relaxed);
  Statistics* stats = options_.statistics.get();
  RecordTick(stats, Tickers::kShieldRotationPasses, 1);

  const uint64_t bps = opts.bytes_per_second != 0
                           ? opts.bytes_per_second
                           : options_.rotation_bytes_per_second;
  Status failure;
  uint64_t rotated_this_pass = 0;
  while (!manifest->pending.empty()) {
    if (shutting_down_.load(std::memory_order_acquire)) {
      failure = Status::IOError("shutting down");
      break;
    }
    {
      std::lock_guard<std::mutex> rl(rotation_mutex_);
      if (rotation_stop_) {
        failure = Status::IOError("shutting down");
        break;
      }
    }
    if (opts.max_files > 0 && rotated_this_pass >= opts.max_files) {
      break;
    }
    const uint64_t number = manifest->pending.front();
    uint64_t bytes = 0;
    bool skipped = false;
    Status s = RotateFile(number, &bytes, &skipped);
    if (!s.ok()) {
      failure = s;
      std::lock_guard<std::mutex> lock(mutex_);
      if (!s.IsTransient() && error_handler_.ok() &&
          !shutting_down_.load(std::memory_order_acquire)) {
        error_handler_.OnBackgroundError(BackgroundErrorReason::kRotation, s);
      }
      break;
    }
    // The replacement (if any) is durable in the version MANIFEST.
    // Record the step in the rotation manifest BEFORE garbage
    // collection destroys the old file's DEK, so a crash between the
    // two re-skips a finished file instead of re-rotating it, and
    // never forgets a key a pending file still needs.
    manifest->pending.erase(manifest->pending.begin());
    if (skipped) {
      result->files_skipped++;
      RecordTick(stats, Tickers::kShieldRotationSkippedStale, 1);
    } else {
      manifest->done.push_back(number);
      rotated_this_pass++;
      result->files_rotated++;
      result->bytes_rotated += bytes;
      rotation_files_rotated_.fetch_add(1, std::memory_order_relaxed);
      RecordTick(stats, Tickers::kShieldRotationFilesRewritten, 1);
      RecordTick(stats, Tickers::kShieldRotationBytesRewritten, bytes);
    }
    Status ps = manifest->Save(raw_env_, dbname_);
    if (!ps.ok()) {
      failure = ps;
      std::lock_guard<std::mutex> lock(mutex_);
      if (!ps.IsTransient() && error_handler_.ok() &&
          !shutting_down_.load(std::memory_order_acquire)) {
        error_handler_.OnBackgroundError(BackgroundErrorReason::kRotation,
                                         ps);
      }
      break;
    }
    if (!skipped) {
      // The old file is unreferenced and its rotation step is durable:
      // GC deletes it and destroys its DEK (ForgetDek).
      std::lock_guard<std::mutex> lock(mutex_);
      RemoveObsoleteFiles();
    }
    if (event_logger_ != nullptr && event_logger_->enabled()) {
      JsonWriter w = event_logger_->NewEvent("rotation_file");
      w.Add("rotation_id", manifest->rotation_id);
      w.Add("file_number", number);
      w.Add("bytes", bytes);
      w.Add("skipped", skipped);
      event_logger_->Emit(&w);
    }
    if (bps > 0 && bytes > 0) {
      SleepForMicros(bytes * 1000000 / bps);
    }
  }

  result->files_pending = manifest->pending.size();
  rotation_pending_files_.store(manifest->pending.size(),
                                std::memory_order_relaxed);
  if (failure.ok() && manifest->pending.empty()) {
    manifest->state = RotationManifest::State::kDone;
    RotationManifest::Remove(raw_env_, dbname_);
  }
  if (event_logger_ != nullptr && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("rotation_end");
    w.Add("rotation_id", manifest->rotation_id);
    w.Add("rotated", result->files_rotated);
    w.Add("skipped_stale", result->files_skipped);
    w.Add("pending", result->files_pending);
    w.Add("ok", failure.ok());
    if (!failure.ok()) {
      w.Add("error", failure.ToString());
    }
    event_logger_->Emit(&w);
  }
  span.MarkStatus(failure);
  rotation_running_.store(false, std::memory_order_release);
  return failure;
}

Status DBImpl::RotateFile(uint64_t number, uint64_t* bytes, bool* skipped) {
  *bytes = 0;
  *skipped = false;

  int level = -1;
  uint64_t file_size = 0;
  uint64_t new_number = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Exclude compactions: the rewrite swaps version state at this
    // level, and a concurrent compaction could be merging the very
    // file being replaced.
    background_work_finished_signal_.wait(lock, [this] {
      return (!compaction_scheduled_ && !manual_compaction_running_) ||
             shutting_down_.load(std::memory_order_acquire);
    });
    if (shutting_down_.load(std::memory_order_acquire)) {
      return Status::IOError("shutting down");
    }
    if (!error_handler_.ok()) {
      return error_handler_.bg_error();
    }
    std::vector<Version::LiveFileInfo> files;
    versions_->current()->GetAllFiles(&files);
    for (const auto& f : files) {
      if (f.number == number) {
        level = f.level;
        file_size = f.file_size;
        break;
      }
    }
    if (level < 0) {
      // Stale manifest entry: the file was compacted away (its DEK
      // died with it) since the plan was persisted. Nothing to do.
      *skipped = true;
      return Status::OK();
    }
    manual_compaction_running_ = true;  // keeps compactions out
    new_number = versions_->NewFileNumber();
    pending_outputs_.insert(new_number);
  }

  // Copy every entry into a fresh SST through the normal table-build
  // path; the SHIELD file factory gives the output a brand-new DEK.
  // Unlike scrub salvage, rotation runs on healthy files: any read
  // error aborts the rewrite and the old file stays live.
  const std::string fname = TableFileName(dbname_, number);
  Status s;
  InternalKey smallest, largest;
  SequenceNumber largest_seq = 0;
  uint64_t entries = 0;
  uint64_t new_size = 0;
  {
    std::unique_ptr<RandomAccessFile> file;
    s = files_->NewRandomAccessFile(fname, &file);
    std::unique_ptr<Table> table;
    if (s.ok()) {
      s = Table::Open(options_, &internal_comparator_, fname, std::move(file),
                      file_size, /*block_cache=*/nullptr, &table);
    }
    std::unique_ptr<WritableFile> outfile;
    if (s.ok()) {
      s = files_->NewWritableFile(TableFileName(dbname_, new_number),
                                  FileKind::kSst, &outfile);
    }
    if (s.ok()) {
      auto builder = std::make_unique<TableBuilder>(
          options_, &internal_comparator_, outfile.get());
      ReadOptions read_options;
      read_options.fill_cache = false;
      std::unique_ptr<Iterator> iter(table->NewIterator(read_options));
      bool first = true;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        const Slice key = iter->key();
        if (first) {
          smallest.DecodeFrom(key);
          first = false;
        }
        largest.DecodeFrom(key);
        largest_seq = std::max(largest_seq, ExtractSequence(key));
        builder->Add(key, iter->value());
        entries++;
      }
      s = iter->status();
      if (s.ok()) {
        s = builder->Finish();
      } else {
        builder->Abandon();
      }
      new_size = builder->FileSize();
      builder.reset();
      if (s.ok()) {
        s = outfile->Sync();
      }
      if (s.ok()) {
        s = outfile->Close();
      }
    }
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (s.ok()) {
    // Swap the rewritten file in at the same level. Level-0 recency is
    // keyed on largest_seq, which the copy preserves, so ordering
    // semantics survive the renumbering.
    VersionEdit edit;
    edit.RemoveFile(level, number);
    if (entries > 0) {
      edit.AddFile(level, new_number, new_size, smallest, largest,
                   largest_seq);
    }
    s = versions_->LogAndApply(&edit, &mutex_);
    if (!s.ok() && !s.IsTransient() &&
        !shutting_down_.load(std::memory_order_acquire)) {
      // Same hazard as any manifest failure: the version log may be
      // torn, so it halts the DB through the same path.
      error_handler_.OnBackgroundError(BackgroundErrorReason::kManifestWrite,
                                       s);
    }
  }
  pending_outputs_.erase(new_number);
  if (s.ok()) {
    table_cache_->Evict(number);
    *bytes = file_size;
  }
  manual_compaction_running_ = false;
  MaybeScheduleCompaction();
  background_work_finished_signal_.notify_all();
  return s;
}

bool DBImpl::ResumePendingRotation() {
  RotationManifest manifest;
  Status s = RotationManifest::Load(raw_env_, dbname_, &manifest);
  if (s.ok() && manifest.state == RotationManifest::State::kRunning &&
      !manifest.pending.empty()) {
    rotation_pending_files_.store(manifest.pending.size(),
                                  std::memory_order_relaxed);
    return true;
  }
  return false;
}

void DBImpl::RotationLoop() {
  if (rotation_pending_at_open_) {
    // Finish the rotation a crash interrupted before anything else.
    // Resume strictly from the persisted plan — never plan new work
    // here, so an interval-less one-shot resume touches exactly the
    // files the crashed rotation still owed.
    std::lock_guard<std::mutex> pass_lock(rotation_pass_mutex_);
    RotationManifest manifest;
    Status s = RotationManifest::Load(raw_env_, dbname_, &manifest);
    if (s.ok() && manifest.state == RotationManifest::State::kRunning &&
        !manifest.pending.empty()) {
      if (event_logger_ != nullptr && event_logger_->enabled()) {
        JsonWriter w = event_logger_->NewEvent("rotation_begin");
        w.Add("rotation_id", manifest.rotation_id);
        w.Add("planned", static_cast<uint64_t>(manifest.pending.size()));
        w.Add("resumed", true);
        event_logger_->Emit(&w);
      }
      RotateOptions opts;
      RotateResult result;
      RunRotation(&manifest, opts, &result);
      dek_manager_->TryDrainPendingDeletes();
    }
  }
  if (options_.dek_rotation_interval_micros == 0) {
    return;  // one-shot resume only
  }
  const auto interval =
      std::chrono::microseconds(options_.dek_rotation_interval_micros);
  std::unique_lock<std::mutex> rl(rotation_mutex_);
  while (!rotation_stop_) {
    if (rotation_cv_.wait_for(rl, interval, [this] { return rotation_stop_; })) {
      break;
    }
    rl.unlock();
    RotateOptions opts;
    opts.max_dek_age_micros = options_.max_dek_age_micros;
    RotateDeks(opts, nullptr);
    rl.lock();
  }
}

}  // namespace shield
