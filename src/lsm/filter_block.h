#ifndef SHIELD_LSM_FILTER_BLOCK_H_
#define SHIELD_LSM_FILTER_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lsm/filter_policy.h"
#include "util/slice.h"

namespace shield {

/// Builds the filter block of an SST: one filter per 2 KiB window of
/// data-block file offsets (LevelDB filter-block format).
///
/// Layout: [filter 0] .. [filter N-1]
///         [offset of filter 0 : fixed32] .. [offset of filter N-1]
///         [offset of offset array : fixed32]
///         [lg(base) : 1 byte]
class FilterBlockBuilder {
 public:
  explicit FilterBlockBuilder(const FilterPolicy* policy);

  FilterBlockBuilder(const FilterBlockBuilder&) = delete;
  FilterBlockBuilder& operator=(const FilterBlockBuilder&) = delete;

  /// Called when a data block starts at `block_offset`.
  void StartBlock(uint64_t block_offset);
  /// Adds a (user) key belonging to the current data block.
  void AddKey(const Slice& key);
  /// Finalizes and returns the filter block contents.
  Slice Finish();

 private:
  void GenerateFilter();

  static constexpr int kFilterBaseLg = 11;  // one filter per 2 KiB
  static constexpr size_t kFilterBase = 1 << kFilterBaseLg;

  const FilterPolicy* policy_;
  std::string keys_;
  std::vector<size_t> start_;
  std::string result_;
  std::vector<Slice> tmp_keys_;
  std::vector<uint32_t> filter_offsets_;
};

/// Reads a filter block and answers per-data-block membership queries.
class FilterBlockReader {
 public:
  /// `contents` must outlive the reader (it points into the pinned
  /// filter block).
  FilterBlockReader(const FilterPolicy* policy, const Slice& contents);

  /// May the data block starting at `block_offset` contain `key`?
  bool KeyMayMatch(uint64_t block_offset, const Slice& key);

 private:
  const FilterPolicy* policy_;
  const char* data_ = nullptr;    // filter data start
  const char* offset_ = nullptr;  // offset array start
  size_t num_ = 0;                // number of filters
  size_t base_lg_ = 0;
};

}  // namespace shield

#endif  // SHIELD_LSM_FILTER_BLOCK_H_
