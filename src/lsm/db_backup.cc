// Encrypted backup and restore. A backup is a directory holding the
// physical (encrypted) images of the current version's SSTs, the
// version MANIFEST, CURRENT and the live WAL, plus a BACKUP_MANIFEST
// that records an HMAC-SHA256 tag per file and is itself MAC'd under
// the backup key — a tampered or truncated backup is detected before a
// single byte lands in the restore target.
//
// Under SHIELD the files stay encrypted at rest in the backup, but
// every embedded DEK id is re-wrapped (Kds::RewrapDek) for the
// restore target's server identity and patched into the plaintext
// file header. Re-wrapping mints a new id over the SAME key material,
// so ciphertext and per-block authentication tags (keyed from DEK key
// and nonce, not the id) are byte-for-byte unchanged — which is what
// lets a backup restore on a fresh server even after the source
// identity's keys are revoked. The source's secure DEK cache is
// deliberately NOT backed up: it is bound to the source passkey, and
// the restore target rebuilds its own from the KDS.
//
// Consistency: CreateBackup pins the current version (its SSTs cannot
// be GC'd) and pauses manifest appends for the copy, so the MANIFEST
// image ends at a record boundary that exactly describes the pinned
// version. The WAL is copied live; a torn tail record is dropped by
// normal WAL recovery, so the backup captures at least everything
// acknowledged before the call (everything, when flush_before_backup
// emptied the memtable).

#include <sstream>

#include "crypto/hmac.h"
#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "shield/file_crypto.h"
#include "util/trace.h"

namespace shield {

namespace {

constexpr char kBackupMagic[] = "SHLDBAK1";
constexpr uint32_t kBackupFormatVersion = 1;

std::string BackupManifestName(const std::string& backup_dir) {
  return backup_dir + "/BACKUP_MANIFEST";
}

std::string ToHexString(const Slice& data) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); i++) {
    const uint8_t b = static_cast<uint8_t>(data[i]);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

struct BackupFileEntry {
  std::string name;  // basename within the backup directory
  uint64_t size = 0;
  std::string hmac_hex;
  std::string old_dek_hex = "-";  // "-" when the file carries no DEK
  std::string new_dek_hex = "-";
};

// The manifest is line-oriented text:
//   SHLDBAK1
//   format 1
//   target <server id or ->
//   file <name> <size> <hmac hex> <old dek hex|-> <new dek hex|->
//   ...
//   mac <hmac hex over every preceding byte>
std::string EncodeBackupManifest(const std::string& target_server_id,
                                 const std::vector<BackupFileEntry>& files,
                                 const std::string& hmac_key) {
  std::string out;
  out.append(kBackupMagic);
  out.append("\n");
  out.append("format " + std::to_string(kBackupFormatVersion) + "\n");
  out.append("target " +
             (target_server_id.empty() ? std::string("-") : target_server_id) +
             "\n");
  for (const auto& f : files) {
    out.append("file " + f.name + " " + std::to_string(f.size) + " " +
               f.hmac_hex + " " + f.old_dek_hex + " " + f.new_dek_hex + "\n");
  }
  out.append("mac " + ToHexString(crypto::HmacSha256(hmac_key, out)) + "\n");
  return out;
}

Status DecodeBackupManifest(const std::string& data,
                            const std::string& hmac_key, std::string* target,
                            std::vector<BackupFileEntry>* files) {
  // The MAC covers everything up to (and including) the newline before
  // the "mac " line.
  const size_t mac_pos = data.rfind("mac ");
  if (mac_pos == std::string::npos ||
      (mac_pos != 0 && data[mac_pos - 1] != '\n')) {
    return Status::Corruption("backup manifest missing MAC line");
  }
  const std::string body = data.substr(0, mac_pos);
  std::string mac_line = data.substr(mac_pos + 4);
  while (!mac_line.empty() &&
         (mac_line.back() == '\n' || mac_line.back() == '\r')) {
    mac_line.pop_back();
  }
  if (mac_line != ToHexString(crypto::HmacSha256(hmac_key, body))) {
    return Status::Corruption(
        "backup manifest MAC mismatch (tampered backup or wrong key)");
  }

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kBackupMagic) {
    return Status::Corruption("bad backup manifest magic");
  }
  if (!std::getline(in, line) ||
      line != "format " + std::to_string(kBackupFormatVersion)) {
    return Status::NotSupported("unsupported backup manifest format");
  }
  if (!std::getline(in, line) || line.rfind("target ", 0) != 0) {
    return Status::Corruption("backup manifest missing target line");
  }
  *target = line.substr(7);
  if (*target == "-") {
    target->clear();
  }
  files->clear();
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    BackupFileEntry entry;
    fields >> tag >> entry.name >> entry.size >> entry.hmac_hex >>
        entry.old_dek_hex >> entry.new_dek_hex;
    if (fields.fail() || tag != "file" || entry.name.empty() ||
        entry.name.find('/') != std::string::npos ||
        entry.name.find("..") != std::string::npos) {
      return Status::Corruption("bad backup manifest file entry: " + line);
    }
    files->push_back(std::move(entry));
  }
  return Status::OK();
}

}  // namespace

Status DBImpl::CreateBackup(const std::string& backup_dir,
                            const BackupOptions& backup_options) {
  if (read_only_) {
    return Status::NotSupported(
        "backups are created from the primary instance");
  }
  ScopedTracerBinding trace_binding(&tracer_);
  TraceSpan span(SpanType::kBackup);
  const bool shield_mode =
      options_.encryption.mode == EncryptionMode::kShield;
  if (!backup_options.target_server_id.empty() && !shield_mode) {
    return Status::InvalidArgument(
        "target_server_id requires SHIELD encryption");
  }

  Status s = raw_env_->CreateDirIfMissing(backup_dir);
  if (!s.ok()) {
    return s;
  }
  if (raw_env_->FileExists(BackupManifestName(backup_dir))) {
    return Status::InvalidArgument("backup_dir already contains a backup",
                                   backup_dir);
  }

  if (backup_options.flush_before_backup) {
    s = Flush();
    if (!s.ok()) {
      return s;
    }
  }

  // Freeze the consistency point: pin the current version and pause
  // manifest appends, so the descriptor log on disk exactly describes
  // the pinned version for the whole copy.
  Version* version = nullptr;
  std::vector<Version::LiveFileInfo> live_files;
  uint64_t wal_number = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_handler_.reads_allowed()) {
      return error_handler_.bg_error();
    }
    versions_->PauseManifestAppends(&mutex_);
    version = versions_->current();
    version->Ref();
    version->GetAllFiles(&live_files);
    wal_number = logfile_number_;
  }

  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("backup_begin");
    w.Add("path", backup_dir);
    w.Add("ssts", static_cast<uint64_t>(live_files.size()));
    w.Add("target",
          backup_options.target_server_id.empty()
              ? Slice("-")
              : Slice(backup_options.target_server_id));
    event_logger_->Emit(&w);
  }

  // Source paths, all copied as physical (already encrypted) bytes.
  std::vector<std::string> sources;
  for (const auto& f : live_files) {
    sources.push_back(TableFileName(dbname_, f.number));
  }
  std::string current_contents;
  s = ReadFileToString(raw_env_, CurrentFileName(dbname_), &current_contents);
  if (s.ok()) {
    std::string manifest_base = current_contents;
    while (!manifest_base.empty() && (manifest_base.back() == '\n' ||
                                      manifest_base.back() == '\r')) {
      manifest_base.pop_back();
    }
    if (manifest_base.empty()) {
      s = Status::Corruption("CURRENT file is empty");
    } else {
      sources.push_back(dbname_ + "/" + manifest_base);
      // CURRENT itself, so the restored directory opens without any
      // reconstruction step.
      sources.push_back(CurrentFileName(dbname_));
    }
  }
  if (s.ok() && wal_number != 0 &&
      raw_env_->FileExists(LogFileName(dbname_, wal_number))) {
    sources.push_back(LogFileName(dbname_, wal_number));
  }

  std::vector<BackupFileEntry> entries;
  uint64_t total_bytes = 0;
  for (const auto& src : sources) {
    if (!s.ok()) {
      break;
    }
    std::string contents;
    s = ReadFileToString(raw_env_, src, &contents);
    if (!s.ok()) {
      break;
    }
    BackupFileEntry entry;
    entry.name = src.substr(src.rfind('/') + 1);

    // Re-wrap the embedded DEK for the restore target. Non-SHIELD
    // files (and all files when no target identity was given) are
    // copied untouched.
    ShieldFileHeader header;
    if (shield_mode && !backup_options.target_server_id.empty() &&
        ParseShieldFileHeader(contents, &header).ok()) {
      Dek rewrapped;
      s = dek_manager_->RewrapDek(header.dek_id,
                                  backup_options.target_server_id,
                                  &rewrapped);
      if (!s.ok()) {
        break;
      }
      entry.old_dek_hex = header.dek_id.ToHex();
      entry.new_dek_hex = rewrapped.id.ToHex();
      // dek_id occupies bytes [12, 12 + DekId::kSize) of the plaintext
      // header (shield/file_crypto.cc). Ciphertext and block tags are
      // keyed from the key material and nonce, both unchanged.
      memcpy(contents.data() + 12, rewrapped.id.bytes.data(), DekId::kSize);
    }

    entry.size = contents.size();
    entry.hmac_hex = ToHexString(
        crypto::HmacSha256(backup_options.hmac_key, contents));
    s = WriteStringToFile(raw_env_, contents, backup_dir + "/" + entry.name,
                          /*sync=*/true);
    if (!s.ok()) {
      break;
    }
    total_bytes += contents.size();
    RecordTick(options_.statistics.get(), Tickers::kShieldBackupFiles, 1);
    RecordTick(options_.statistics.get(), Tickers::kShieldBackupBytes,
               contents.size());
    entries.push_back(std::move(entry));
  }

  if (s.ok()) {
    // The backup manifest is the commit point: a directory without one
    // (interrupted backup) never verifies, so it can never be restored.
    s = WriteStringToFile(
        raw_env_,
        EncodeBackupManifest(backup_options.target_server_id, entries,
                             backup_options.hmac_key),
        BackupManifestName(backup_dir), /*sync=*/true);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    versions_->ResumeManifestAppends();
    version->Unref();
  }

  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("backup_end");
    w.Add("path", backup_dir);
    w.Add("files", static_cast<uint64_t>(entries.size()));
    w.Add("bytes", total_bytes);
    w.Add("ok", s.ok());
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  }
  span.MarkStatus(s);
  return s;
}

namespace {

// Loads the manifest, checks its MAC, then reads and HMAC-verifies
// every listed file into *images (aligned with *entries).
Status LoadAndVerifyBackup(Env* env, const std::string& backup_dir,
                           const std::string& hmac_key,
                           std::vector<BackupFileEntry>* entries,
                           std::vector<std::string>* images) {
  std::string manifest_data;
  Status s =
      ReadFileToString(env, BackupManifestName(backup_dir), &manifest_data);
  if (!s.ok()) {
    return s;
  }
  std::string target;
  s = DecodeBackupManifest(manifest_data, hmac_key, &target, entries);
  if (!s.ok()) {
    return s;
  }
  images->resize(entries->size());
  for (size_t i = 0; i < entries->size(); i++) {
    const BackupFileEntry& entry = (*entries)[i];
    s = ReadFileToString(env, backup_dir + "/" + entry.name, &(*images)[i]);
    if (!s.ok()) {
      return s;
    }
    if ((*images)[i].size() != entry.size ||
        ToHexString(crypto::HmacSha256(hmac_key, (*images)[i])) !=
            entry.hmac_hex) {
      return Status::Corruption("backup file failed HMAC verification",
                                entry.name);
    }
  }
  return Status::OK();
}

}  // namespace

Status DB::VerifyBackup(const Options& options, const std::string& backup_dir,
                        const RestoreOptions& restore_options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::vector<BackupFileEntry> entries;
  std::vector<std::string> images;
  return LoadAndVerifyBackup(env, backup_dir, restore_options.hmac_key,
                             &entries, &images);
}

Status DB::RestoreBackup(const Options& options,
                         const std::string& backup_dir,
                         const std::string& dbname,
                         const RestoreOptions& restore_options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();

  if (env->FileExists(CurrentFileName(dbname))) {
    return Status::InvalidArgument("restore target already contains a DB",
                                   dbname);
  }

  // Verify everything BEFORE writing anything: a bad backup leaves the
  // target directory untouched.
  std::vector<BackupFileEntry> entries;
  std::vector<std::string> images;
  Status s = LoadAndVerifyBackup(env, backup_dir, restore_options.hmac_key,
                                 &entries, &images);
  if (!s.ok()) {
    return s;
  }

  s = env->CreateDirIfMissing(dbname);
  for (size_t i = 0; s.ok() && i < entries.size(); i++) {
    s = WriteStringToFile(env, images[i], dbname + "/" + entries[i].name,
                          /*sync=*/true);
  }
  return s;
}

}  // namespace shield
