#ifndef SHIELD_LSM_ITERATOR_H_
#define SHIELD_LSM_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace shield {

/// Iterator interface shared by memtable, block, table and DB
/// iterators. Same contract as leveldb::Iterator: position with one of
/// the Seek functions, then key()/value() are valid while Valid().
class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

/// An iterator that is empty (Valid() always false) with the given
/// status.
Iterator* NewEmptyIterator();
Iterator* NewErrorIterator(const Status& status);

}  // namespace shield

#endif  // SHIELD_LSM_ITERATOR_H_
