#include "lsm/table_cache.h"

#include "lsm/file_names.h"
#include "util/coding.h"

namespace shield {

namespace {

void DeleteTableEntry(const Slice& /*key*/, void* value) {
  delete reinterpret_cast<Table*>(value);
}

}  // namespace

TableCache::TableCache(std::string dbname, const Options& options,
                       const InternalKeyComparator* icmp,
                       DataFileFactory* files,
                       std::shared_ptr<Cache> block_cache,
                       int max_open_tables)
    : dbname_(std::move(dbname)),
      options_(options),
      icmp_(icmp),
      files_(files),
      block_cache_(std::move(block_cache)),
      cache_(NewLRUCache(static_cast<size_t>(max_open_tables))) {}

TableCache::~TableCache() = default;

Status TableCache::FindTable(uint64_t file_number, uint64_t file_size,
                             Cache::Handle** handle) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  const Slice key(buf, sizeof(buf));
  *handle = cache_->Lookup(key);
  if (*handle != nullptr) {
    return Status::OK();
  }

  const std::string fname = TableFileName(dbname_, file_number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = files_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<Table> table;
  s = Table::Open(options_, icmp_, fname, std::move(file), file_size,
                  block_cache_, &table);
  if (!s.ok()) {
    return s;
  }
  *handle = cache_->Insert(key, table.release(), 1, &DeleteTableEntry);
  return Status::OK();
}

Iterator* TableCache::NewIterator(const ReadOptions& options,
                                  uint64_t file_number, uint64_t file_size,
                                  Table** tableptr) {
  if (tableptr != nullptr) {
    *tableptr = nullptr;
  }

  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Table* table = reinterpret_cast<Table*>(cache_->Value(handle));
  Iterator* result = table->NewIterator(options);

  // Tie the cache handle's lifetime to the iterator via a wrapper.
  class HandleReleasingIterator final : public Iterator {
   public:
    HandleReleasingIterator(Iterator* iter, Cache* cache,
                            Cache::Handle* handle)
        : iter_(iter), cache_(cache), handle_(handle) {}
    ~HandleReleasingIterator() override {
      delete iter_;
      cache_->Release(handle_);
    }
    bool Valid() const override { return iter_->Valid(); }
    void Seek(const Slice& t) override { iter_->Seek(t); }
    void SeekToFirst() override { iter_->SeekToFirst(); }
    void SeekToLast() override { iter_->SeekToLast(); }
    void Next() override { iter_->Next(); }
    void Prev() override { iter_->Prev(); }
    Slice key() const override { return iter_->key(); }
    Slice value() const override { return iter_->value(); }
    Status status() const override { return iter_->status(); }

   private:
    Iterator* iter_;
    Cache* cache_;
    Cache::Handle* handle_;
  };

  if (tableptr != nullptr) {
    *tableptr = table;
  }
  return new HandleReleasingIterator(result, cache_.get(), handle);
}

Status TableCache::Get(const ReadOptions& options, uint64_t file_number,
                       uint64_t file_size, const Slice& internal_key,
                       void* arg,
                       void (*handle_result)(void*, const Slice&,
                                             const Slice&)) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    return s;
  }
  Table* table = reinterpret_cast<Table*>(cache_->Value(handle));
  s = table->InternalGet(options, internal_key, arg, handle_result);
  cache_->Release(handle);
  return s;
}

void TableCache::MultiGet(const ReadOptions& options, uint64_t file_number,
                          uint64_t file_size,
                          const std::vector<TableGetRequest*>& requests) {
  Cache::Handle* handle = nullptr;
  Status s = FindTable(file_number, file_size, &handle);
  if (!s.ok()) {
    for (TableGetRequest* req : requests) {
      req->status = s;
    }
    return;
  }
  Table* table = reinterpret_cast<Table*>(cache_->Value(handle));
  table->MultiGet(options, requests);
  cache_->Release(handle);
}

void TableCache::Evict(uint64_t file_number) {
  char buf[sizeof(file_number)];
  EncodeFixed64(buf, file_number);
  cache_->Erase(Slice(buf, sizeof(buf)));
}

}  // namespace shield
