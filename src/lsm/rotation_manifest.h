#ifndef SHIELD_LSM_ROTATION_MANIFEST_H_
#define SHIELD_LSM_ROTATION_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "env/env.h"
#include "util/status.h"

namespace shield {

/// Durable progress record of an online DEK rotation (the "ROTATION"
/// file in the db directory). The rotation job persists it after every
/// rewritten file, so a crash mid-rotation resumes from the next
/// pending file instead of restarting — and, critically, an old DEK is
/// only destroyed after its replacement file is durable in both the
/// version MANIFEST and this file's `done` list.
///
/// Contents are file *numbers* only (no key material, nothing secret),
/// so the manifest is plaintext and written through the raw Env:
///   magic(8) | version(u32) | rotation_id(u64) | state(u8)
///   | n_pending(u32) pending... | n_done(u32) done... | crc32c(u32)
/// Writes are atomic (temp file + fsync + rename); the CRC makes a
/// torn write detectable, in which case recovery restarts the rotation
/// from scratch — safe, because rewriting an already-rotated file is
/// idempotent (file numbers no longer in the live version are skipped
/// as stale).
struct RotationManifest {
  enum class State : uint8_t {
    kRunning = 1,
    kDone = 2,
  };

  static constexpr uint32_t kFormatVersion = 1;

  /// Unique id of this rotation (allocated from the version set's file
  /// number space, so it is unique without consulting a clock).
  uint64_t rotation_id = 0;
  State state = State::kRunning;
  /// Table-file numbers still to be rewritten, in rewrite order.
  std::vector<uint64_t> pending;
  /// Table-file numbers already rewritten (old numbers; their
  /// replacements live in the version MANIFEST).
  std::vector<uint64_t> done;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(const Slice& data);

  /// Atomically persists to RotationManifestFileName(dbname).
  Status Save(Env* env, const std::string& dbname) const;
  /// Loads the manifest; NotFound when no rotation is in progress,
  /// Corruption on a torn or damaged file.
  static Status Load(Env* env, const std::string& dbname,
                     RotationManifest* out);
  /// Removes the manifest file (rotation complete). Idempotent.
  static Status Remove(Env* env, const std::string& dbname);
};

}  // namespace shield

#endif  // SHIELD_LSM_ROTATION_MANIFEST_H_
