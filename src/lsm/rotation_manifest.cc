#include "lsm/rotation_manifest.h"

#include <cstring>

#include "lsm/file_names.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'R', 'O', 'T', 'M', 'F', '1'};
constexpr size_t kMagicSize = 8;

void PutFileList(std::string* out, const std::vector<uint64_t>& files) {
  PutFixed32(out, static_cast<uint32_t>(files.size()));
  for (uint64_t number : files) {
    PutFixed64(out, number);
  }
}

bool GetFileList(Slice* input, std::vector<uint64_t>* files) {
  if (input->size() < sizeof(uint32_t)) {
    return false;
  }
  const uint32_t count = DecodeFixed32(input->data());
  input->remove_prefix(sizeof(uint32_t));
  if (input->size() < static_cast<size_t>(count) * sizeof(uint64_t)) {
    return false;
  }
  files->clear();
  files->reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    files->push_back(DecodeFixed64(input->data()));
    input->remove_prefix(sizeof(uint64_t));
  }
  return true;
}

}  // namespace

void RotationManifest::EncodeTo(std::string* out) const {
  out->append(kMagic, kMagicSize);
  PutFixed32(out, kFormatVersion);
  PutFixed64(out, rotation_id);
  out->push_back(static_cast<char>(state));
  PutFileList(out, pending);
  PutFileList(out, done);
  PutFixed32(out, crc32c::Mask(crc32c::Value(out->data(), out->size())));
}

Status RotationManifest::DecodeFrom(const Slice& data) {
  if (data.size() < kMagicSize + sizeof(uint32_t) ||
      memcmp(data.data(), kMagic, kMagicSize) != 0) {
    return Status::Corruption("bad rotation manifest magic");
  }
  const size_t body_len = data.size() - sizeof(uint32_t);
  const uint32_t stored_crc =
      crc32c::Unmask(DecodeFixed32(data.data() + body_len));
  if (crc32c::Value(data.data(), body_len) != stored_crc) {
    return Status::Corruption("rotation manifest checksum mismatch");
  }
  Slice input(data.data() + kMagicSize, body_len - kMagicSize);
  if (input.size() < sizeof(uint32_t) + sizeof(uint64_t) + 1) {
    return Status::Corruption("rotation manifest too short");
  }
  const uint32_t format = DecodeFixed32(input.data());
  input.remove_prefix(sizeof(uint32_t));
  if (format == 0 || format > kFormatVersion) {
    return Status::Corruption("unsupported rotation manifest version");
  }
  rotation_id = DecodeFixed64(input.data());
  input.remove_prefix(sizeof(uint64_t));
  const uint8_t raw_state = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if (raw_state != static_cast<uint8_t>(State::kRunning) &&
      raw_state != static_cast<uint8_t>(State::kDone)) {
    return Status::Corruption("bad rotation manifest state");
  }
  state = static_cast<State>(raw_state);
  if (!GetFileList(&input, &pending) || !GetFileList(&input, &done)) {
    return Status::Corruption("truncated rotation manifest file list");
  }
  return Status::OK();
}

Status RotationManifest::Save(Env* env, const std::string& dbname) const {
  std::string data;
  EncodeTo(&data);
  const std::string fname = RotationManifestFileName(dbname);
  const std::string tmp = fname + ".tmp";
  Status s = WriteStringToFile(env, data, tmp, /*sync=*/true);
  if (s.ok()) {
    s = env->RenameFile(tmp, fname);
  }
  if (!s.ok()) {
    env->RemoveFile(tmp);
  }
  return s;
}

Status RotationManifest::Load(Env* env, const std::string& dbname,
                              RotationManifest* out) {
  const std::string fname = RotationManifestFileName(dbname);
  if (!env->FileExists(fname)) {
    return Status::NotFound("no rotation in progress", fname);
  }
  std::string data;
  Status s = ReadFileToString(env, fname, &data);
  if (!s.ok()) {
    return s;
  }
  return out->DecodeFrom(data);
}

Status RotationManifest::Remove(Env* env, const std::string& dbname) {
  const std::string fname = RotationManifestFileName(dbname);
  if (!env->FileExists(fname)) {
    return Status::OK();
  }
  return env->RemoveFile(fname);
}

}  // namespace shield
