#ifndef SHIELD_LSM_SNAPSHOT_H_
#define SHIELD_LSM_SNAPSHOT_H_

#include <cassert>

#include "lsm/format.h"

namespace shield {

/// Opaque handle to a consistent read view. Obtained from
/// DB::GetSnapshot(), released with DB::ReleaseSnapshot().
class Snapshot {
 public:
  virtual ~Snapshot() = default;
};

class SnapshotList;

class SnapshotImpl final : public Snapshot {
 public:
  explicit SnapshotImpl(SequenceNumber sequence) : sequence_(sequence) {}

  SequenceNumber sequence() const { return sequence_; }

 private:
  friend class SnapshotList;

  SequenceNumber sequence_;
  SnapshotImpl* prev_ = nullptr;
  SnapshotImpl* next_ = nullptr;
};

/// Doubly-linked list of snapshots, oldest first. Guarded by the DB
/// mutex.
class SnapshotList {
 public:
  SnapshotList() : head_(0) {
    head_.prev_ = &head_;
    head_.next_ = &head_;
  }

  bool empty() const { return head_.next_ == &head_; }
  SnapshotImpl* oldest() const {
    assert(!empty());
    return head_.next_;
  }
  SnapshotImpl* newest() const {
    assert(!empty());
    return head_.prev_;
  }

  SnapshotImpl* New(SequenceNumber sequence) {
    SnapshotImpl* snapshot = new SnapshotImpl(sequence);
    snapshot->next_ = &head_;
    snapshot->prev_ = head_.prev_;
    snapshot->prev_->next_ = snapshot;
    snapshot->next_->prev_ = snapshot;
    return snapshot;
  }

  void Delete(const SnapshotImpl* snapshot) {
    snapshot->prev_->next_ = snapshot->next_;
    snapshot->next_->prev_ = snapshot->prev_;
    delete snapshot;
  }

 private:
  SnapshotImpl head_;
};

}  // namespace shield

#endif  // SHIELD_LSM_SNAPSHOT_H_
