#include "lsm/log_writer.h"

#include "crypto/block_auth.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {
namespace log {

Writer::Writer(WritableFile* dest) : Writer(dest, 0) {}

Writer::Writer(WritableFile* dest, uint64_t dest_length)
    : dest_(dest),
      auth_(dest->block_authenticator()),
      block_offset_(dest_length % kBlockSize),
      logical_offset_(dest_length) {
  for (int i = 0; i <= kMaxRecordType; i++) {
    char t = static_cast<char>(i);
    type_crc_[i] = crc32c::Value(&t, 1);
  }
}

Status Writer::AddRecord(const Slice& slice) {
  const char* ptr = slice.data();
  size_t left = slice.size();

  // Authenticated records carry their tag inside the block, so the
  // trailer-fill threshold and the per-fragment payload budget both
  // shrink by the tag size.
  const size_t tag_size = auth_ != nullptr ? crypto::kBlockAuthTagSize : 0;
  const int min_record = kHeaderSize + static_cast<int>(tag_size);

  Status s;
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    assert(leftover >= 0);
    if (leftover < min_record) {
      // Fill the block trailer with zeros and switch blocks.
      if (leftover > 0) {
        static const char kZeroes[32] = {0};
        static_assert(
            sizeof(kZeroes) >= kHeaderSize + crypto::kBlockAuthTagSize,
            "zero filler must cover the largest trailer");
        s = dest_->Append(Slice(kZeroes, leftover));
        if (!s.ok()) {
          return s;
        }
        logical_offset_ += static_cast<uint64_t>(leftover);
      }
      block_offset_ = 0;
    }

    const size_t avail =
        static_cast<size_t>(kBlockSize - block_offset_) - kHeaderSize -
        tag_size;
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) {
      type = kFullType;
    } else if (begin) {
      type = kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType t, const char* ptr,
                                  size_t length) {
  assert(length <= 0xffff);

  // The wire type distinguishes authenticated records so a reader can
  // tell from the header alone whether a tag follows the payload.
  const RecordType wire_type =
      auth_ != nullptr ? static_cast<RecordType>(t + kAuthTypeOffset) : t;
  const size_t tag_size = auth_ != nullptr ? crypto::kBlockAuthTagSize : 0;
  assert(block_offset_ + kHeaderSize + static_cast<int>(length + tag_size) <=
         kBlockSize);

  char buf[kHeaderSize];
  buf[4] = static_cast<char>(length & 0xff);
  buf[5] = static_cast<char>(length >> 8);
  buf[6] = static_cast<char>(wire_type);

  uint32_t crc = crc32c::Extend(type_crc_[wire_type], ptr, length);
  crc = crc32c::Mask(crc);
  EncodeFixed32(buf, crc);

  // Assemble header|payload|tag and hand the destination ONE Append.
  // Encrypted destinations pay a cipher seek per Append, so the
  // previous three-append shape tripled that fixed cost; assembling
  // first also means a tag-computation failure writes nothing at all
  // instead of leaving a tagless partial record behind.
  rec_scratch_.clear();
  rec_scratch_.reserve(kHeaderSize + length + tag_size);
  rec_scratch_.append(buf, kHeaderSize);
  rec_scratch_.append(ptr, length);

  Status s;
  if (auth_ != nullptr) {
    // The tag covers the header and payload image at this record's
    // absolute offset, binding the record to its position in this
    // file (a record copied elsewhere fails verification).
    char tag[crypto::kBlockAuthTagSize];
    s = auth_->ComputeTag(
        logical_offset_,
        {Slice(rec_scratch_.data(), rec_scratch_.size())}, tag);
    if (s.ok()) {
      rec_scratch_.append(tag, sizeof(tag));
    }
  }
  if (s.ok()) {
    s = dest_->Append(Slice(rec_scratch_));
    if (s.ok()) {
      s = dest_->Flush();
    }
  }
  block_offset_ += kHeaderSize + static_cast<int>(length + tag_size);
  logical_offset_ += kHeaderSize + length + tag_size;
  return s;
}

}  // namespace log
}  // namespace shield
