#include "lsm/log_writer.h"

#include <algorithm>

#include "crypto/block_auth.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {
namespace log {

std::vector<uint32_t> SanitizePaddingBuckets(
    const std::vector<uint32_t>& buckets) {
  std::vector<uint32_t> out;
  out.reserve(buckets.size());
  for (uint32_t b : buckets) {
    if (b >= static_cast<uint32_t>(kPadEnvelopeSize)) {
      out.push_back(b);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

uint64_t PaddedEnvelopeSize(const std::vector<uint32_t>& buckets, uint64_t n) {
  assert(!buckets.empty());
  const uint64_t needed = n + kPadEnvelopeSize;
  auto it = std::lower_bound(buckets.begin(), buckets.end(), needed);
  if (it != buckets.end()) {
    return *it;
  }
  // Beyond the largest bucket: round up to its next multiple, so large
  // records still land on a coarse grid instead of their exact size.
  const uint64_t largest = buckets.back();
  return ((needed + largest - 1) / largest) * largest;
}

Writer::Writer(WritableFile* dest) : Writer(dest, 0) {}

Writer::Writer(WritableFile* dest, uint64_t dest_length)
    : Writer(dest, dest_length, {}, nullptr) {}

Writer::Writer(WritableFile* dest, uint64_t dest_length,
               const std::vector<uint32_t>& padding_buckets,
               Statistics* stats)
    : dest_(dest),
      auth_(dest->block_authenticator()),
      block_offset_(dest_length % kBlockSize),
      logical_offset_(dest_length),
      pad_buckets_(SanitizePaddingBuckets(padding_buckets)),
      stats_(stats) {
  for (int i = 0; i <= kMaxRecordType; i++) {
    char t = static_cast<char>(i);
    type_crc_[i] = crc32c::Value(&t, 1);
  }
}

Status Writer::AddRecord(const Slice& slice) {
  if (pad_buckets_.empty()) {
    return AddRecordImpl(slice, /*padded=*/false);
  }
  // Envelope: fixed32 real length | data | zeros up to the bucket
  // target. The zeros encrypt to ciphertext indistinguishable from
  // payload, so the storage tier observes only the bucket size.
  const uint64_t target = PaddedEnvelopeSize(pad_buckets_, slice.size());
  pad_scratch_.clear();
  pad_scratch_.reserve(target);
  PutFixed32(&pad_scratch_, static_cast<uint32_t>(slice.size()));
  pad_scratch_.append(slice.data(), slice.size());
  pad_scratch_.resize(target, '\0');
  RecordTick(stats_, Tickers::kShieldWalPaddingRecords, 1);
  RecordTick(stats_, Tickers::kShieldWalPaddingBytes,
             target - slice.size());
  return AddRecordImpl(Slice(pad_scratch_), /*padded=*/true);
}

Status Writer::FillBlockTrailer() {
  const int leftover = kBlockSize - block_offset_;
  if (leftover > 0 && leftover < kBlockSize) {
    // The reader skips any zero run inside a block (a kZeroType header
    // with length 0 abandons the rest of the block), so the fill size
    // does not matter to recovery.
    rec_scratch_.assign(static_cast<size_t>(leftover), '\0');
    Status s = dest_->Append(Slice(rec_scratch_));
    if (!s.ok()) {
      return s;
    }
    logical_offset_ += static_cast<uint64_t>(leftover);
  }
  block_offset_ = 0;
  return Status::OK();
}

Status Writer::AddRecordImpl(const Slice& slice, bool padded) {
  const char* ptr = slice.data();
  size_t left = slice.size();

  // Authenticated records carry their tag inside the block, so the
  // trailer-fill threshold and the per-fragment payload budget both
  // shrink by the tag size.
  const size_t tag_size = auth_ != nullptr ? crypto::kBlockAuthTagSize : 0;
  const int min_record = kHeaderSize + static_cast<int>(tag_size);

  if (padded) {
    // Start padded records on a fresh block when they would otherwise
    // straddle the edge: fragment shapes then depend only on the
    // bucket size, never on where the record happened to begin, so
    // the on-wire size set stays small. The skipped remainder is more
    // padding and is counted as such.
    const int leftover = kBlockSize - block_offset_;
    const size_t needed = static_cast<size_t>(min_record) + left;
    if (needed > static_cast<size_t>(leftover) && block_offset_ > 0) {
      Status s = FillBlockTrailer();
      if (!s.ok()) {
        return s;
      }
      RecordTick(stats_, Tickers::kShieldWalPaddingBytes,
                 static_cast<uint64_t>(leftover));
    }
  }

  Status s;
  bool begin = true;
  do {
    const int leftover = kBlockSize - block_offset_;
    assert(leftover >= 0);
    // Roll to the next block when the remainder cannot hold a header
    // (and tag), and also when it could hold only an EMPTY fragment
    // while payload bytes remain: emitting a zero-length kFirstType /
    // kMiddleType there would be legal but useless (the reader accepts
    // empty fragments), and with padding enabled such degenerate
    // fragments would add block-position-dependent sizes to the wire.
    if (leftover < min_record || (leftover == min_record && left > 0)) {
      // Fill the block trailer with zeros and switch blocks.
      if (leftover > 0) {
        static const char kZeroes[32] = {0};
        static_assert(
            sizeof(kZeroes) >= kHeaderSize + crypto::kBlockAuthTagSize,
            "zero filler must cover the largest trailer");
        s = dest_->Append(Slice(kZeroes, leftover));
        if (!s.ok()) {
          return s;
        }
        logical_offset_ += static_cast<uint64_t>(leftover);
      }
      block_offset_ = 0;
    }

    const size_t avail =
        static_cast<size_t>(kBlockSize - block_offset_) - kHeaderSize -
        tag_size;
    const size_t fragment_length = (left < avail) ? left : avail;

    RecordType type;
    const bool end = (left == fragment_length);
    if (begin && end) {
      type = padded ? kPadFullType : kFullType;
    } else if (begin) {
      type = padded ? kPadFirstType : kFirstType;
    } else if (end) {
      type = kLastType;
    } else {
      type = kMiddleType;
    }

    s = EmitPhysicalRecord(type, ptr, fragment_length);
    ptr += fragment_length;
    left -= fragment_length;
    begin = false;
  } while (s.ok() && left > 0);
  return s;
}

Status Writer::EmitPhysicalRecord(RecordType t, const char* ptr,
                                  size_t length) {
  assert(length <= 0xffff);

  // The wire type distinguishes authenticated records so a reader can
  // tell from the header alone whether a tag follows the payload.
  RecordType wire_type = t;
  if (auth_ != nullptr) {
    wire_type = static_cast<RecordType>(
        t + (t >= kPadFullType ? kPadAuthTypeOffset : kAuthTypeOffset));
  }
  const size_t tag_size = auth_ != nullptr ? crypto::kBlockAuthTagSize : 0;
  assert(block_offset_ + kHeaderSize + static_cast<int>(length + tag_size) <=
         kBlockSize);

  char buf[kHeaderSize];
  buf[4] = static_cast<char>(length & 0xff);
  buf[5] = static_cast<char>(length >> 8);
  buf[6] = static_cast<char>(wire_type);

  uint32_t crc = crc32c::Extend(type_crc_[wire_type], ptr, length);
  crc = crc32c::Mask(crc);
  EncodeFixed32(buf, crc);

  // Assemble header|payload|tag and hand the destination ONE Append.
  // Encrypted destinations pay a cipher seek per Append, so the
  // previous three-append shape tripled that fixed cost; assembling
  // first also means a tag-computation failure writes nothing at all
  // instead of leaving a tagless partial record behind.
  rec_scratch_.clear();
  rec_scratch_.reserve(kHeaderSize + length + tag_size);
  rec_scratch_.append(buf, kHeaderSize);
  rec_scratch_.append(ptr, length);

  Status s;
  if (auth_ != nullptr) {
    // The tag covers the header and payload image at this record's
    // absolute offset, binding the record to its position in this
    // file (a record copied elsewhere fails verification).
    char tag[crypto::kBlockAuthTagSize];
    s = auth_->ComputeTag(
        logical_offset_,
        {Slice(rec_scratch_.data(), rec_scratch_.size())}, tag);
    if (s.ok()) {
      rec_scratch_.append(tag, sizeof(tag));
    }
  }
  if (s.ok()) {
    s = dest_->Append(Slice(rec_scratch_));
    if (s.ok()) {
      // Advance only once the bytes were accepted by the destination:
      // a failed Append must leave the offsets where they were, so a
      // retry on this writer (e.g. after a transient fault, before the
      // taint/roll path replaces the file) computes its CRC-covered
      // header and its authentication tag at the offset where the
      // record will actually land — not one record-length beyond it.
      // A failed Flush after a successful Append still advances: the
      // destination owns those bytes (SHIELD's buffered WAL tracks its
      // own durability watermark for them).
      block_offset_ += kHeaderSize + static_cast<int>(length + tag_size);
      logical_offset_ += kHeaderSize + length + tag_size;
      s = dest_->Flush();
    }
  }
  return s;
}

}  // namespace log
}  // namespace shield
