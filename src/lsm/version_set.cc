#include "lsm/version_set.h"

#include <algorithm>
#include <cinttypes>

#include "lsm/file_names.h"
#include "lsm/log_reader.h"
#include "lsm/merger.h"
#include "lsm/two_level_iterator.h"
#include "util/coding.h"

namespace shield {

namespace {

// Binary search for the earliest file whose largest key >= key.
// REQUIRES: files sorted by increasing smallest key, non-overlapping.
int FindFile(const InternalKeyComparator& icmp,
             const std::vector<FileMetaData*>& files, const Slice& key) {
  uint32_t left = 0;
  uint32_t right = static_cast<uint32_t>(files.size());
  while (left < right) {
    const uint32_t mid = (left + right) / 2;
    const FileMetaData* f = files[mid];
    if (icmp.Compare(f->largest.Encode(), key) < 0) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  return static_cast<int>(right);
}

bool AfterFile(const Comparator* ucmp, const Slice* user_key,
               const FileMetaData* f) {
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->largest.user_key()) > 0);
}

bool BeforeFile(const Comparator* ucmp, const Slice* user_key,
                const FileMetaData* f) {
  return (user_key != nullptr &&
          ucmp->Compare(*user_key, f->smallest.user_key()) < 0);
}

bool SomeFileOverlapsRange(const InternalKeyComparator& icmp,
                           bool disjoint_sorted_files,
                           const std::vector<FileMetaData*>& files,
                           const Slice* smallest_user_key,
                           const Slice* largest_user_key) {
  const Comparator* ucmp = icmp.user_comparator();
  if (!disjoint_sorted_files) {
    // Check all files.
    for (const FileMetaData* f : files) {
      if (AfterFile(ucmp, smallest_user_key, f) ||
          BeforeFile(ucmp, largest_user_key, f)) {
        // No overlap.
      } else {
        return true;
      }
    }
    return false;
  }

  // Binary search over disjoint files.
  uint32_t index = 0;
  if (smallest_user_key != nullptr) {
    const InternalKey small_key(*smallest_user_key, kMaxSequenceNumber,
                                kValueTypeForSeek);
    index = FindFile(icmp, files, small_key.Encode());
  }
  if (index >= files.size()) {
    return false;
  }
  return !BeforeFile(ucmp, largest_user_key, files[index]);
}

// Iterates over the file list of one level, yielding
// (largest_key -> encoded file number+size) entries; used as the index
// stage of the concatenating iterator.
class LevelFileNumIterator final : public Iterator {
 public:
  LevelFileNumIterator(const InternalKeyComparator& icmp,
                       const std::vector<FileMetaData*>* flist)
      : icmp_(icmp), flist_(flist), index_(flist->size()) {}

  bool Valid() const override { return index_ < flist_->size(); }
  void Seek(const Slice& target) override {
    index_ = FindFile(icmp_, *flist_, target);
  }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override {
    index_ = flist_->empty() ? 0 : flist_->size() - 1;
  }
  void Next() override {
    assert(Valid());
    index_++;
  }
  void Prev() override {
    assert(Valid());
    if (index_ == 0) {
      index_ = flist_->size();  // invalid
    } else {
      index_--;
    }
  }
  Slice key() const override {
    assert(Valid());
    return (*flist_)[index_]->largest.Encode();
  }
  Slice value() const override {
    assert(Valid());
    EncodeFixed64(value_buf_, (*flist_)[index_]->number);
    EncodeFixed64(value_buf_ + 8, (*flist_)[index_]->file_size);
    return Slice(value_buf_, sizeof(value_buf_));
  }
  Status status() const override { return Status::OK(); }

 private:
  InternalKeyComparator icmp_;
  const std::vector<FileMetaData*>* const flist_;
  size_t index_;
  mutable char value_buf_[16];
};

}  // namespace

// --- Version ---------------------------------------------------------

Version::~Version() {
  assert(refs_ == 0);
  // Remove from linked list.
  prev_->next_ = next_;
  next_->prev_ = prev_;
  // Drop references to files.
  for (int level = 0; level < kMaxNumLevels; level++) {
    for (FileMetaData* f : files_[level]) {
      assert(f->refs > 0);
      f->refs--;
      if (f->refs <= 0) {
        delete f;
      }
    }
  }
}

void Version::Ref() { ++refs_; }

void Version::GetAllFiles(std::vector<LiveFileInfo>* files) const {
  for (int level = 0; level < vset_->num_levels_; level++) {
    for (const FileMetaData* f : files_[level]) {
      files->push_back({level, f->number, f->file_size});
    }
  }
}

bool Version::ContainsFile(int level, uint64_t number) const {
  for (const FileMetaData* f : files_[level]) {
    if (f->number == number) {
      return true;
    }
  }
  return false;
}

void Version::Unref() {
  assert(this != &vset_->dummy_versions_);
  assert(refs_ >= 1);
  --refs_;
  if (refs_ == 0) {
    delete this;
  }
}

Iterator* Version::NewConcatenatingIterator(const ReadOptions& options,
                                            int level) const {
  TableCache* table_cache = vset_->table_cache_;
  return NewTwoLevelIterator(
      new LevelFileNumIterator(*vset_->icmp_, &files_[level]),
      [table_cache, options](const Slice& file_value) -> Iterator* {
        if (file_value.size() != 16) {
          return NewErrorIterator(
              Status::Corruption("FileReader invoked with unexpected value"));
        }
        return table_cache->NewIterator(options,
                                        DecodeFixed64(file_value.data()),
                                        DecodeFixed64(file_value.data() + 8));
      });
}

void Version::AddIterators(const ReadOptions& options,
                           std::vector<Iterator*>* iters) {
  // Level-0 (and all universal/FIFO data): one iterator per file since
  // they may overlap; newest files last in files_[0], but merge order
  // does not matter for the merging iterator.
  for (FileMetaData* f : files_[0]) {
    iters->push_back(
        vset_->table_cache_->NewIterator(options, f->number, f->file_size));
  }
  for (int level = 1; level < vset_->num_levels_; level++) {
    if (!files_[level].empty()) {
      iters->push_back(NewConcatenatingIterator(options, level));
    }
  }
}

namespace {

enum SaverState {
  kNotFound,
  kFound,
  kDeleted,
  kCorrupt,
};

struct Saver {
  SaverState state;
  const Comparator* ucmp;
  Slice user_key;
  std::string* value;
};

void SaveValue(void* arg, const Slice& ikey, const Slice& v) {
  Saver* s = reinterpret_cast<Saver*>(arg);
  ParsedInternalKey parsed_key;
  if (!ParseInternalKey(ikey, &parsed_key)) {
    s->state = kCorrupt;
    return;
  }
  if (s->ucmp->Compare(parsed_key.user_key, s->user_key) == 0) {
    s->state = (parsed_key.type == kTypeValue) ? kFound : kDeleted;
    if (s->state == kFound) {
      s->value->assign(v.data(), v.size());
    }
  }
}

bool NewestFirst(FileMetaData* a, FileMetaData* b) {
  // Recency at level 0 is determined by data age (largest contained
  // sequence number), not file number: a universal compaction can
  // produce an older-data output with a higher number than a
  // concurrent flush.
  if (a->largest_seq != b->largest_seq) {
    return a->largest_seq > b->largest_seq;
  }
  return a->number > b->number;
}

}  // namespace

Status Version::Get(const ReadOptions& options, const LookupKey& k,
                    std::string* value) {
  const Slice ikey = k.internal_key();
  const Slice user_key = k.user_key();
  const Comparator* ucmp = vset_->icmp_->user_comparator();

  // Search level 0 newest-to-oldest, then deeper levels.
  std::vector<FileMetaData*> tmp;
  tmp.reserve(files_[0].size());
  for (FileMetaData* f : files_[0]) {
    if (ucmp->Compare(user_key, f->smallest.user_key()) >= 0 &&
        ucmp->Compare(user_key, f->largest.user_key()) <= 0) {
      tmp.push_back(f);
    }
  }
  std::sort(tmp.begin(), tmp.end(), NewestFirst);

  Saver saver;
  saver.ucmp = ucmp;
  saver.user_key = user_key;
  saver.value = value;

  for (FileMetaData* f : tmp) {
    saver.state = kNotFound;
    Status s = vset_->table_cache_->Get(options, f->number, f->file_size,
                                        ikey, &saver, SaveValue);
    if (!s.ok()) {
      return s;
    }
    switch (saver.state) {
      case kNotFound:
        break;  // keep searching
      case kFound:
        return Status::OK();
      case kDeleted:
        return Status::NotFound("");
      case kCorrupt:
        return Status::Corruption("corrupted key for ", user_key);
    }
  }

  for (int level = 1; level < vset_->num_levels_; level++) {
    const std::vector<FileMetaData*>& files = files_[level];
    if (files.empty()) {
      continue;
    }
    const int index = FindFile(*vset_->icmp_, files, ikey);
    if (index >= static_cast<int>(files.size())) {
      continue;
    }
    FileMetaData* f = files[index];
    if (ucmp->Compare(user_key, f->smallest.user_key()) < 0) {
      continue;
    }
    saver.state = kNotFound;
    Status s = vset_->table_cache_->Get(options, f->number, f->file_size,
                                        ikey, &saver, SaveValue);
    if (!s.ok()) {
      return s;
    }
    switch (saver.state) {
      case kNotFound:
        break;
      case kFound:
        return Status::OK();
      case kDeleted:
        return Status::NotFound("");
      case kCorrupt:
        return Status::Corruption("corrupted key for ", user_key);
    }
  }

  return Status::NotFound("");
}

void Version::MultiGet(const ReadOptions& options,
                       const std::vector<VersionGetRequest*>& requests) {
  const Comparator* ucmp = vset_->icmp_->user_comparator();

  // Saver state parallel to `requests`, reused across file probes.
  std::vector<Saver> savers(requests.size());
  for (size_t i = 0; i < requests.size(); i++) {
    savers[i].state = kNotFound;
    savers[i].ucmp = ucmp;
    savers[i].user_key = requests[i]->key->user_key();
    savers[i].value = requests[i]->value;
  }

  // Folds one probe's outcome into the request, mirroring the switch
  // in Version::Get. kNotFound keeps the key in play for older files.
  auto resolve = [&](size_t i, const Status& s) {
    VersionGetRequest* req = requests[i];
    if (!s.ok()) {
      req->status = s;
      req->done = true;
      return;
    }
    switch (savers[i].state) {
      case kNotFound:
        break;
      case kFound:
        req->status = Status::OK();
        req->done = true;
        break;
      case kDeleted:
        req->status = Status::NotFound("");
        req->done = true;
        break;
      case kCorrupt:
        req->status =
            Status::Corruption("corrupted key for ", savers[i].user_key);
        req->done = true;
        break;
    }
  };

  // Runs one file's batch. `batch` holds the per-table requests;
  // `batch_idx` maps them back into `requests`.
  auto probe_file = [&](FileMetaData* f, std::vector<TableGetRequest>& batch,
                        std::vector<size_t>& batch_idx) {
    if (batch.empty()) {
      return;
    }
    std::vector<TableGetRequest*> ptrs;
    ptrs.reserve(batch.size());
    for (TableGetRequest& b : batch) {
      ptrs.push_back(&b);
    }
    vset_->table_cache_->MultiGet(options, f->number, f->file_size, ptrs);
    for (size_t j = 0; j < batch.size(); j++) {
      resolve(batch_idx[j], batch[j].status);
    }
  };

  // Level 0: files overlap, so probe newest-to-oldest; each file sees
  // every still-unresolved key it covers in one batch.
  std::vector<FileMetaData*> level0(files_[0]);
  std::sort(level0.begin(), level0.end(), NewestFirst);
  for (FileMetaData* f : level0) {
    std::vector<TableGetRequest> batch;
    std::vector<size_t> batch_idx;
    for (size_t i = 0; i < requests.size(); i++) {
      if (requests[i]->done) {
        continue;
      }
      if (ucmp->Compare(savers[i].user_key, f->smallest.user_key()) < 0 ||
          ucmp->Compare(savers[i].user_key, f->largest.user_key()) > 0) {
        continue;
      }
      savers[i].state = kNotFound;
      TableGetRequest treq;
      treq.internal_key = requests[i]->key->internal_key();
      treq.arg = &savers[i];
      treq.handle_result = SaveValue;
      batch.push_back(treq);
      batch_idx.push_back(i);
    }
    probe_file(f, batch, batch_idx);
  }

  // Deeper levels: files are disjoint and sorted, and the requests are
  // sorted too, so FindFile maps consecutive unresolved keys to
  // non-decreasing file indices — group runs of equal indices.
  for (int level = 1; level < vset_->num_levels_; level++) {
    const std::vector<FileMetaData*>& files = files_[level];
    if (files.empty()) {
      continue;
    }
    size_t i = 0;
    while (i < requests.size()) {
      if (requests[i]->done) {
        i++;
        continue;
      }
      const int index =
          FindFile(*vset_->icmp_, files, requests[i]->key->internal_key());
      if (index >= static_cast<int>(files.size())) {
        i++;
        continue;
      }
      FileMetaData* f = files[index];
      std::vector<TableGetRequest> batch;
      std::vector<size_t> batch_idx;
      size_t j = i;
      while (j < requests.size()) {
        if (requests[j]->done) {
          j++;
          continue;
        }
        if (FindFile(*vset_->icmp_, files, requests[j]->key->internal_key()) !=
            index) {
          break;
        }
        const size_t cur = j++;
        if (ucmp->Compare(savers[cur].user_key, f->smallest.user_key()) < 0) {
          continue;  // falls in the gap before this file: not at this level
        }
        savers[cur].state = kNotFound;
        TableGetRequest treq;
        treq.internal_key = requests[cur]->key->internal_key();
        treq.arg = &savers[cur];
        treq.handle_result = SaveValue;
        batch.push_back(treq);
        batch_idx.push_back(cur);
      }
      probe_file(f, batch, batch_idx);
      i = j;
    }
  }
}

bool Version::OverlapInLevel(int level, const Slice* smallest_user_key,
                             const Slice* largest_user_key) {
  return SomeFileOverlapsRange(*vset_->icmp_, level > 0, files_[level],
                               smallest_user_key, largest_user_key);
}

void Version::GetOverlappingInputs(int level, const InternalKey* begin,
                                   const InternalKey* end,
                                   std::vector<FileMetaData*>* inputs) {
  assert(level >= 0);
  assert(level < vset_->num_levels_);
  inputs->clear();
  Slice user_begin, user_end;
  if (begin != nullptr) {
    user_begin = begin->user_key();
  }
  if (end != nullptr) {
    user_end = end->user_key();
  }
  const Comparator* user_cmp = vset_->icmp_->user_comparator();
  for (size_t i = 0; i < files_[level].size();) {
    FileMetaData* f = files_[level][i++];
    const Slice file_start = f->smallest.user_key();
    const Slice file_limit = f->largest.user_key();
    if (begin != nullptr && user_cmp->Compare(file_limit, user_begin) < 0) {
      // Entirely before range; skip.
    } else if (end != nullptr &&
               user_cmp->Compare(file_start, user_end) > 0) {
      // Entirely after range; skip.
    } else {
      inputs->push_back(f);
      if (level == 0) {
        // Level-0 files may overlap each other: grow the range and
        // restart to pull in transitively overlapping files.
        if (begin != nullptr &&
            user_cmp->Compare(file_start, user_begin) < 0) {
          user_begin = file_start;
          inputs->clear();
          i = 0;
        } else if (end != nullptr &&
                   user_cmp->Compare(file_limit, user_end) > 0) {
          user_end = file_limit;
          inputs->clear();
          i = 0;
        }
      }
    }
  }
}

std::string Version::DebugString() const {
  std::string r;
  for (int level = 0; level < vset_->num_levels_; level++) {
    r += "--- level " + std::to_string(level) + " ---\n";
    for (const FileMetaData* f : files_[level]) {
      r += "  " + std::to_string(f->number) + ":" +
           std::to_string(f->file_size) + "[" +
           f->smallest.user_key().ToString() + " .. " +
           f->largest.user_key().ToString() + "]\n";
    }
  }
  return r;
}

// --- VersionSet::Builder ----------------------------------------------

// Accumulates edits on top of a base version to produce a new one.
class VersionSet::Builder {
 public:
  Builder(VersionSet* vset, Version* base) : vset_(vset), base_(base) {
    base_->Ref();
    BySmallestKey cmp;
    cmp.internal_comparator = vset_->icmp_;
    for (int level = 0; level < kMaxNumLevels; level++) {
      levels_[level].added_files =
          std::make_shared<FileSet>(cmp);
    }
  }

  ~Builder() {
    for (int level = 0; level < kMaxNumLevels; level++) {
      std::vector<FileMetaData*> to_unref(levels_[level].added_files->begin(),
                                          levels_[level].added_files->end());
      for (FileMetaData* f : to_unref) {
        f->refs--;
        if (f->refs <= 0) {
          delete f;
        }
      }
    }
    base_->Unref();
  }

  void Apply(const VersionEdit* edit) {
    for (const auto& [level, number] : edit->deleted_files_) {
      levels_[level].deleted_files.insert(number);
    }
    for (const auto& [level, meta] : edit->new_files_) {
      FileMetaData* f = new FileMetaData(meta);
      f->refs = 1;
      levels_[level].deleted_files.erase(f->number);
      levels_[level].added_files->insert(f);
    }
  }

  void SaveTo(Version* v) {
    BySmallestKey cmp;
    cmp.internal_comparator = vset_->icmp_;
    for (int level = 0; level < kMaxNumLevels; level++) {
      // Merge base files with added files, keeping order.
      const std::vector<FileMetaData*>& base_files = base_->files_[level];
      auto base_iter = base_files.begin();
      auto base_end = base_files.end();
      const auto& added_files = *levels_[level].added_files;
      v->files_[level].reserve(base_files.size() + added_files.size());
      for (FileMetaData* added_file : added_files) {
        for (auto bpos = std::upper_bound(base_iter, base_end, added_file, cmp);
             base_iter != bpos; ++base_iter) {
          MaybeAddFile(v, level, *base_iter);
        }
        MaybeAddFile(v, level, added_file);
      }
      for (; base_iter != base_end; ++base_iter) {
        MaybeAddFile(v, level, *base_iter);
      }
    }
  }

 private:
  struct BySmallestKey {
    const InternalKeyComparator* internal_comparator;

    bool operator()(FileMetaData* f1, FileMetaData* f2) const {
      const int r = internal_comparator->Compare(f1->smallest.Encode(),
                                                 f2->smallest.Encode());
      if (r != 0) {
        return r < 0;
      }
      return f1->number < f2->number;
    }
  };

  using FileSet = std::set<FileMetaData*, BySmallestKey>;

  struct LevelState {
    std::set<uint64_t> deleted_files;
    std::shared_ptr<FileSet> added_files;
  };

  void MaybeAddFile(Version* v, int level, FileMetaData* f) {
    if (levels_[level].deleted_files.count(f->number) > 0) {
      return;  // deleted
    }
    std::vector<FileMetaData*>* files = &v->files_[level];
    if (level > 0 && !files->empty()) {
      // Must not overlap the previous file at this level.
      assert(vset_->icmp_->Compare(files->back()->largest.Encode(),
                                   f->smallest.Encode()) < 0);
    }
    f->refs++;
    files->push_back(f);
  }

  VersionSet* vset_;
  Version* base_;
  LevelState levels_[kMaxNumLevels];
};

// --- VersionSet --------------------------------------------------------

VersionSet::VersionSet(std::string dbname, const Options& options,
                       const InternalKeyComparator* icmp,
                       TableCache* table_cache, DataFileFactory* files)
    : dbname_(std::move(dbname)),
      options_(options),
      icmp_(icmp),
      table_cache_(table_cache),
      files_(files),
      num_levels_(std::min(options.num_levels, kMaxNumLevels)),
      dummy_versions_(this) {
  AppendVersion(new Version(this));
}

VersionSet::~VersionSet() {
  current_->Unref();
  assert(dummy_versions_.next_ == &dummy_versions_);  // all versions gone
}

void VersionSet::AppendVersion(Version* v) {
  assert(v->refs_ == 0);
  assert(v != current_);
  if (current_ != nullptr) {
    current_->Unref();
  }
  current_ = v;
  v->Ref();

  // Append to linked list.
  v->prev_ = dummy_versions_.prev_;
  v->next_ = &dummy_versions_;
  v->prev_->next_ = v;
  v->next_->prev_ = v;
}

Status VersionSet::LogAndApply(VersionEdit* edit, std::mutex* mu) {
  // Serialize manifest writers: a flush and a compaction can both call
  // in concurrently, and each releases *mu during the manifest append.
  {
    std::unique_lock<std::mutex> lock(*mu, std::adopt_lock);
    manifest_cv_.wait(lock, [this] { return !writing_manifest_; });
    lock.release();
  }
  writing_manifest_ = true;

  if (edit->has_log_number_) {
    assert(edit->log_number_ >= log_number_);
    assert(edit->log_number_ < next_file_number_);
  } else {
    edit->SetLogNumber(log_number_);
  }
  edit->SetNextFile(next_file_number_);
  edit->SetLastSequence(last_sequence_);

  Version* v = new Version(this);
  {
    Builder builder(this, current_);
    builder.Apply(edit);
    builder.SaveTo(v);
  }
  Finalize(v);

  // Initialize a new descriptor log if necessary.
  std::string new_manifest_file;
  Status s;
  if (descriptor_log_ == nullptr) {
    assert(descriptor_file_ == nullptr);
    if (manifest_file_number_ == 0) {
      manifest_file_number_ = NewFileNumber();
    }
    new_manifest_file = DescriptorFileName(dbname_, manifest_file_number_);
    s = files_->NewWritableFile(new_manifest_file, FileKind::kManifest,
                                &descriptor_file_);
    if (s.ok()) {
      descriptor_log_ = std::make_unique<log::Writer>(descriptor_file_.get());
      s = WriteSnapshot(descriptor_log_.get());
    }
  }

  // Write the edit to the manifest without holding the DB mutex.
  {
    mu->unlock();
    if (s.ok()) {
      std::string record;
      edit->EncodeTo(&record);
      s = descriptor_log_->AddRecord(record);
      if (s.ok()) {
        s = descriptor_file_->Sync();
      }
    }
    if (s.ok() && !new_manifest_file.empty()) {
      s = SetCurrentFile(files_->env(), dbname_, manifest_file_number_);
    }
    mu->lock();
  }

  if (s.ok()) {
    AppendVersion(v);
    log_number_ = edit->log_number_;
  } else {
    delete v;
    // The manifest tail is now suspect: the append (or its sync) may
    // have landed partially. Abandon this descriptor and roll to a
    // freshly numbered MANIFEST on the next LogAndApply; while
    // manifest_file_number_ is 0, RemoveObsoleteFiles keeps every
    // descriptor, including the one CURRENT still points to.
    descriptor_log_.reset();
    descriptor_file_.reset();
    if (!new_manifest_file.empty()) {
      files_->DeleteFile(new_manifest_file);
    }
    manifest_file_number_ = 0;
  }

  writing_manifest_ = false;
  manifest_cv_.notify_all();
  return s;
}

Status VersionSet::Recover() {
  // Read CURRENT.
  std::string current;
  Status s = ReadFileToString(files_->env(), CurrentFileName(dbname_),
                              &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current.back() != '\n') {
    return Status::Corruption("CURRENT file does not end with newline");
  }
  current.resize(current.size() - 1);

  const std::string dscname = dbname_ + "/" + current;
  std::unique_ptr<SequentialFile> file;
  s = files_->NewSequentialFile(dscname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      return Status::Corruption("CURRENT points to a non-existent MANIFEST",
                                dscname);
    }
    return s;
  }

  bool have_log_number = false;
  bool have_next_file = false;
  bool have_last_sequence = false;
  uint64_t next_file = 0;
  uint64_t log_number = 0;
  SequenceNumber last_sequence = 0;

  Builder builder(this, current_);

  {
    struct LogReporter : public log::Reader::Reporter {
      Status* status;
      void Corruption(size_t /*bytes*/, const Status& s) override {
        if (status->ok()) {
          *status = s;
        }
      }
    };
    LogReporter reporter;
    Status log_damage;
    reporter.status = &log_damage;
    log::Reader reader(file.get(), &reporter, /*checksum=*/true);
    Slice record;
    std::string scratch;
    while (reader.ReadRecord(&record, &scratch) && s.ok() &&
           log_damage.ok()) {
      VersionEdit edit;
      s = edit.DecodeFrom(record);
      if (s.ok() && edit.has_comparator_ &&
          edit.comparator_ != icmp_->user_comparator()->Name()) {
        s = Status::InvalidArgument(
            edit.comparator_ + " does not match existing comparator ",
            icmp_->user_comparator()->Name());
      }
      if (s.ok()) {
        builder.Apply(&edit);
      }
      if (edit.has_log_number_) {
        log_number = edit.log_number_;
        have_log_number = true;
      }
      if (edit.has_next_file_number_) {
        next_file = edit.next_file_number_;
        have_next_file = true;
      }
      if (edit.has_last_sequence_) {
        last_sequence = edit.last_sequence_;
        have_last_sequence = true;
      }
    }
    if (s.ok() && !log_damage.ok()) {
      if (options_.paranoid_checks) {
        s = log_damage;
      }
      // Otherwise the damage starts at the tail of the descriptor —
      // the writer crashed mid-append. Replay stopped there, so the
      // intact prefix is accepted; the mandatory-field checks below
      // still reject a prefix too short to describe a database.
    }
  }

  if (s.ok()) {
    if (!have_next_file) {
      s = Status::Corruption("no meta-nextfile entry in descriptor");
    } else if (!have_log_number) {
      s = Status::Corruption("no meta-lognumber entry in descriptor");
    } else if (!have_last_sequence) {
      s = Status::Corruption("no last-sequence-number entry in descriptor");
    }
  }

  if (s.ok()) {
    Version* v = new Version(this);
    builder.SaveTo(v);
    Finalize(v);
    AppendVersion(v);
    manifest_file_number_ = next_file;  // start a fresh manifest
    next_file_number_ = next_file + 1;
    last_sequence_ = last_sequence;
    log_number_ = log_number;
    MarkFileNumberUsed(log_number);
  }

  return s;
}

void VersionSet::Finalize(Version* v) {
  int best_level = -1;
  double best_score = -1;

  if (options_.compaction_style != CompactionStyle::kLeveled) {
    // Universal/FIFO keep everything in level 0; scoring happens in
    // the pickers.
    v->compaction_level_ = 0;
    v->compaction_score_ = 0;
    return;
  }

  for (int level = 0; level < num_levels_ - 1; level++) {
    double score;
    if (level == 0) {
      score = v->files_[level].size() /
              static_cast<double>(options_.level0_file_num_compaction_trigger);
    } else {
      int64_t level_bytes = 0;
      for (const FileMetaData* f : v->files_[level]) {
        level_bytes += static_cast<int64_t>(f->file_size);
      }
      score = static_cast<double>(level_bytes) / MaxBytesForLevel(level);
    }
    if (score > best_score) {
      best_level = level;
      best_score = score;
    }
  }

  v->compaction_level_ = best_level;
  v->compaction_score_ = best_score;
}

double VersionSet::MaxBytesForLevel(int level) const {
  double result = static_cast<double>(options_.max_bytes_for_level_base);
  for (int i = 1; i < level; i++) {
    result *= options_.max_bytes_for_level_multiplier;
  }
  return result;
}

Status VersionSet::WriteSnapshot(log::Writer* log) {
  VersionEdit edit;
  edit.SetComparatorName(icmp_->user_comparator()->Name());
  for (int level = 0; level < num_levels_; level++) {
    for (const FileMetaData* f : current_->files_[level]) {
      edit.AddFile(level, f->number, f->file_size, f->smallest, f->largest,
                   f->largest_seq);
    }
  }
  std::string record;
  edit.EncodeTo(&record);
  return log->AddRecord(record);
}

int VersionSet::NumLevelFiles(int level) const {
  return static_cast<int>(current_->files_[level].size());
}

int64_t VersionSet::NumLevelBytes(int level) const {
  int64_t sum = 0;
  for (const FileMetaData* f : current_->files_[level]) {
    sum += static_cast<int64_t>(f->file_size);
  }
  return sum;
}

void VersionSet::AddLiveFiles(std::set<uint64_t>* live) {
  for (Version* v = dummy_versions_.next_; v != &dummy_versions_;
       v = v->next_) {
    for (int level = 0; level < num_levels_; level++) {
      for (const FileMetaData* f : v->files_[level]) {
        live->insert(f->number);
      }
    }
  }
}

void VersionSet::GetRange(const std::vector<FileMetaData*>& inputs,
                          InternalKey* smallest, InternalKey* largest) {
  assert(!inputs.empty());
  smallest->Clear();
  largest->Clear();
  for (size_t i = 0; i < inputs.size(); i++) {
    FileMetaData* f = inputs[i];
    if (i == 0) {
      *smallest = f->smallest;
      *largest = f->largest;
    } else {
      if (icmp_->Compare(f->smallest.Encode(), smallest->Encode()) < 0) {
        *smallest = f->smallest;
      }
      if (icmp_->Compare(f->largest.Encode(), largest->Encode()) > 0) {
        *largest = f->largest;
      }
    }
  }
}

void VersionSet::GetRange2(const std::vector<FileMetaData*>& inputs1,
                           const std::vector<FileMetaData*>& inputs2,
                           InternalKey* smallest, InternalKey* largest) {
  std::vector<FileMetaData*> all = inputs1;
  all.insert(all.end(), inputs2.begin(), inputs2.end());
  GetRange(all, smallest, largest);
}

Iterator* VersionSet::MakeInputIterator(Compaction* c) {
  ReadOptions options;
  options.verify_checksums = true;
  options.fill_cache = false;
  // Compaction scans every input block exactly once in order: the
  // ideal readahead consumer. Large prefetched spans replace
  // block-sized round trips (and decrypt in parallel shards under
  // SHIELD's multi-threaded chunk decryptor).
  options.readahead_size = options_.compaction_readahead_size;

  // Level-0 files must be iterated individually (they overlap); other
  // levels use a concatenating iterator.
  const int space =
      (c->level() == 0 ? c->num_input_files(0) + 1 : 2);
  Iterator** list = new Iterator*[space];
  int num = 0;
  for (int which = 0; which < 2; which++) {
    if (!c->inputs_[which].empty()) {
      if (c->level() + which == 0) {
        for (FileMetaData* f : c->inputs_[which]) {
          list[num++] = table_cache_->NewIterator(options, f->number,
                                                  f->file_size);
        }
      } else {
        TableCache* table_cache = table_cache_;
        list[num++] = NewTwoLevelIterator(
            new LevelFileNumIterator(*icmp_, &c->inputs_[which]),
            [table_cache, options](const Slice& file_value) -> Iterator* {
              if (file_value.size() != 16) {
                return NewErrorIterator(Status::Corruption(
                    "FileReader invoked with unexpected value"));
              }
              return table_cache->NewIterator(
                  options, DecodeFixed64(file_value.data()),
                  DecodeFixed64(file_value.data() + 8));
            });
      }
    }
  }
  assert(num <= space);
  Iterator* result = NewMergingIterator(icmp_, list, num);
  delete[] list;
  return result;
}

bool VersionSet::NeedsCompaction() const {
  switch (options_.compaction_style) {
    case CompactionStyle::kLeveled:
      return current_->compaction_score_ >= 1;
    case CompactionStyle::kUniversal:
      return NumLevelFiles(0) >= options_.level0_file_num_compaction_trigger;
    case CompactionStyle::kFifo: {
      int64_t total = 0;
      for (const FileMetaData* f : current_->files_[0]) {
        total += static_cast<int64_t>(f->file_size);
      }
      return total > static_cast<int64_t>(options_.fifo_max_table_files_size);
    }
  }
  return false;
}

// --- Compaction --------------------------------------------------------

Compaction::Compaction(const Options& options, int level, int output_level)
    : level_(level),
      output_level_(output_level),
      max_output_file_size_(options.target_file_size_base),
      input_version_(nullptr) {}

Compaction::~Compaction() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
  }
}

bool Compaction::IsTrivialMove() const {
  if (deletion_only_) {
    return false;
  }
  // A single input file with no overlap at the next level can be moved.
  return num_input_files(0) == 1 && num_input_files(1) == 0 &&
         level_ != output_level_;
}

void Compaction::AddInputDeletions(VersionEdit* edit) {
  for (int which = 0; which < 2; which++) {
    for (FileMetaData* f : inputs_[which]) {
      edit->RemoveFile(level_ + which, f->number);
    }
  }
}

bool Compaction::IsBaseLevelForKey(const Slice& user_key) {
  const Comparator* user_cmp =
      input_version_->vset_->icmp_->user_comparator();
  const int num_levels = input_version_->vset_->num_levels_;
  for (int lvl = output_level_ + 1; lvl < num_levels; lvl++) {
    const std::vector<FileMetaData*>& files = input_version_->files_[lvl];
    while (level_ptrs_[lvl] < files.size()) {
      FileMetaData* f = files[level_ptrs_[lvl]];
      if (user_cmp->Compare(user_key, f->largest.user_key()) <= 0) {
        if (user_cmp->Compare(user_key, f->smallest.user_key()) >= 0) {
          return false;  // key may be present in a deeper level
        }
        break;
      }
      level_ptrs_[lvl]++;
    }
  }
  return true;
}

void Compaction::ReleaseInputs() {
  if (input_version_ != nullptr) {
    input_version_->Unref();
    input_version_ = nullptr;
  }
}

}  // namespace shield
