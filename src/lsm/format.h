#ifndef SHIELD_LSM_FORMAT_H_
#define SHIELD_LSM_FORMAT_H_

#include <cstdint>
#include <string>

#include "lsm/comparator.h"
#include "util/coding.h"
#include "util/slice.h"

namespace shield {

using SequenceNumber = uint64_t;

/// Sequence numbers are packed with a value type into the trailing 8
/// bytes of an internal key, so the top 8 bits must stay free.
static constexpr SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};

/// kValueTypeForSeek must be the highest-numbered type so Seek() on an
/// internal key positions at the newest entry for a user key.
static constexpr ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

/// internal_key := user_key | fixed64(seq << 8 | type)
void AppendInternalKey(std::string* result, const ParsedInternalKey& key);

/// Returns false on malformed input.
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  const uint64_t num =
      DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  return num >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  const uint64_t num =
      DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  return static_cast<ValueType>(num & 0xff);
}

/// Orders internal keys by increasing user key, then decreasing
/// sequence, then decreasing type — so the newest entry for a user key
/// sorts first.
class InternalKeyComparator final : public Comparator {
 public:
  explicit InternalKeyComparator(const Comparator* user_comparator)
      : user_comparator_(user_comparator) {}

  int Compare(const Slice& a, const Slice& b) const override;
  const char* Name() const override {
    return "shield.InternalKeyComparator";
  }
  void FindShortestSeparator(std::string* start,
                             const Slice& limit) const override;
  void FindShortSuccessor(std::string* key) const override;

  const Comparator* user_comparator() const { return user_comparator_; }

 private:
  const Comparator* user_comparator_;
};

/// An owned internal key (used in file metadata).
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  bool Valid() const { return rep_.size() >= 8; }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return rep_; }

  Slice user_key() const { return ExtractUserKey(rep_); }

  void SetFrom(const ParsedInternalKey& p) {
    rep_.clear();
    AppendInternalKey(&rep_, p);
  }

  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

/// A helper for DB Get lookups: wraps a user key into the formats
/// needed by memtable lookups (length-prefixed) and SST lookups
/// (internal key).
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  /// varint32(klen+8) | user_key | fixed64(seq|type) — the memtable
  /// entry key format.
  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  /// user_key | fixed64(seq|type)
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // avoids allocation for short keys
};

}  // namespace shield

#endif  // SHIELD_LSM_FORMAT_H_
