#include "lsm/write_batch.h"

#include "lsm/memtable.h"
#include "util/coding.h"

namespace shield {

namespace {
// sequence(8) + count(4)
constexpr size_t kHeader = 12;
}  // namespace

WriteBatch::WriteBatch() { Clear(); }

void WriteBatch::Clear() {
  rep_.clear();
  rep_.resize(kHeader);
}

int WriteBatch::Count() const {
  return static_cast<int>(DecodeFixed32(rep_.data() + 8));
}

void WriteBatch::SetCount(int n) {
  EncodeFixed32(rep_.data() + 8, static_cast<uint32_t>(n));
}

SequenceNumber WriteBatch::Sequence() const {
  return DecodeFixed64(rep_.data());
}

void WriteBatch::SetSequence(SequenceNumber seq) {
  EncodeFixed64(rep_.data(), seq);
}

void WriteBatch::Put(const Slice& key, const Slice& value) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeValue));
  PutLengthPrefixedSlice(&rep_, key);
  PutLengthPrefixedSlice(&rep_, value);
}

void WriteBatch::Delete(const Slice& key) {
  SetCount(Count() + 1);
  rep_.push_back(static_cast<char>(kTypeDeletion));
  PutLengthPrefixedSlice(&rep_, key);
}

Status WriteBatch::Iterate(Handler* handler) const {
  Slice input(rep_);
  if (input.size() < kHeader) {
    return Status::Corruption("malformed WriteBatch (too small)");
  }
  input.remove_prefix(kHeader);
  Slice key, value;
  int found = 0;
  while (!input.empty()) {
    found++;
    const char tag = input[0];
    input.remove_prefix(1);
    switch (tag) {
      case kTypeValue:
        if (GetLengthPrefixedSlice(&input, &key) &&
            GetLengthPrefixedSlice(&input, &value)) {
          handler->Put(key, value);
        } else {
          return Status::Corruption("bad WriteBatch Put");
        }
        break;
      case kTypeDeletion:
        if (GetLengthPrefixedSlice(&input, &key)) {
          handler->Delete(key);
        } else {
          return Status::Corruption("bad WriteBatch Delete");
        }
        break;
      default:
        return Status::Corruption("unknown WriteBatch tag");
    }
  }
  if (found != Count()) {
    return Status::Corruption("WriteBatch has wrong count");
  }
  return Status::OK();
}

void WriteBatch::Append(const WriteBatch& src) {
  SetCount(Count() + src.Count());
  rep_.append(src.rep_.data() + kHeader, src.rep_.size() - kHeader);
}

namespace {

class MemTableInserter final : public WriteBatch::Handler {
 public:
  SequenceNumber sequence;
  MemTable* mem;
  // < 0: apply everything; otherwise apply only this shard's keys.
  // Sequence numbers advance for skipped entries too, so every entry
  // lands with the same number regardless of how the work is split.
  int shard = -1;

  void Put(const Slice& key, const Slice& value) override {
    if (shard < 0 || mem->ShardIndex(key) == shard) {
      mem->Add(sequence, kTypeValue, key, value);
    }
    sequence++;
  }
  void Delete(const Slice& key) override {
    if (shard < 0 || mem->ShardIndex(key) == shard) {
      mem->Add(sequence, kTypeDeletion, key, Slice());
    }
    sequence++;
  }
};

class NoopHandler final : public WriteBatch::Handler {
 public:
  void Put(const Slice& key, const Slice& value) override {
    (void)key;
    (void)value;
  }
  void Delete(const Slice& key) override { (void)key; }
};

}  // namespace

Status WriteBatch::InsertInto(MemTable* memtable) const {
  MemTableInserter inserter;
  inserter.sequence = Sequence();
  inserter.mem = memtable;
  return Iterate(&inserter);
}

Status WriteBatch::InsertIntoShard(MemTable* memtable, int shard) const {
  MemTableInserter inserter;
  inserter.sequence = Sequence();
  inserter.mem = memtable;
  inserter.shard = shard;
  return Iterate(&inserter);
}

Status WriteBatch::Verify() const {
  NoopHandler handler;
  return Iterate(&handler);
}

}  // namespace shield
