#ifndef SHIELD_LSM_CACHE_H_
#define SHIELD_LSM_CACHE_H_

#include <cstdint>
#include <memory>

#include "util/slice.h"

namespace shield {

/// A sharded LRU cache with reference-counted handles (LevelDB Cache
/// interface). Used for decrypted data blocks and open table readers.
/// Thread safe.
class Cache {
 public:
  Cache() = default;
  virtual ~Cache() = default;

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  struct Handle {};

  /// Eviction priority. Under capacity pressure, low-priority entries
  /// (bulk data blocks) are reclaimed before high-priority ones (hot
  /// metadata such as index/filter charges) regardless of recency, so
  /// a scan's block churn cannot push table metadata out to the fabric.
  enum class Priority { kLow, kHigh };

  /// Inserts key->value with the given charge (the cache adds its own
  /// per-entry bookkeeping overhead on top — see TotalCharge()). The
  /// returned handle is referenced; callers must Release() it.
  /// `deleter` runs when the entry is evicted and unreferenced.
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value),
                         Priority priority = Priority::kLow) = 0;

  /// Returns a referenced handle or nullptr.
  virtual Handle* Lookup(const Slice& key) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;
  virtual void Erase(const Slice& key) = 0;

  /// A unique id for key-space partitioning among cache clients.
  virtual uint64_t NewId() = 0;

  /// Total memory accounted to resident entries: caller-supplied
  /// charges plus the cache's own per-entry overhead (handle struct,
  /// key copies, hash-table node). Stays <= the configured capacity
  /// whenever no handles are outstanding (referenced entries cannot be
  /// evicted, so pinning can push usage above capacity until release).
  virtual size_t TotalCharge() const = 0;
};

std::shared_ptr<Cache> NewLRUCache(size_t capacity);

}  // namespace shield

#endif  // SHIELD_LSM_CACHE_H_
