#ifndef SHIELD_LSM_TABLE_CACHE_H_
#define SHIELD_LSM_TABLE_CACHE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "lsm/cache.h"
#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/sst_reader.h"
#include "shield/file_crypto.h"

namespace shield {

/// Caches open Table readers keyed by file number. Opening an SST is
/// expensive (footer + index read, and under SHIELD a DEK resolution),
/// so readers are shared and kept hot.
class TableCache {
 public:
  TableCache(std::string dbname, const Options& options,
             const InternalKeyComparator* icmp, DataFileFactory* files,
             std::shared_ptr<Cache> block_cache, int max_open_tables);
  ~TableCache();

  /// Iterator over internal keys of the given file. If `tableptr` is
  /// non-null, also returns the underlying Table (owned by the cache,
  /// valid while the iterator lives).
  Iterator* NewIterator(const ReadOptions& options, uint64_t file_number,
                        uint64_t file_size, Table** tableptr = nullptr);

  Status Get(const ReadOptions& options, uint64_t file_number,
             uint64_t file_size, const Slice& internal_key, void* arg,
             void (*handle_result)(void*, const Slice&, const Slice&));

  /// Batched Get against one file: requests (sorted by internal key)
  /// are answered by Table::MultiGet, which coalesces block fetches.
  /// A failure to open the table poisons every request's status.
  void MultiGet(const ReadOptions& options, uint64_t file_number,
                uint64_t file_size,
                const std::vector<TableGetRequest*>& requests);

  /// Drops the cached reader for a deleted file.
  void Evict(uint64_t file_number);

 private:
  Status FindTable(uint64_t file_number, uint64_t file_size,
                   Cache::Handle** handle);

  const std::string dbname_;
  const Options options_;
  const InternalKeyComparator* icmp_;
  DataFileFactory* files_;
  std::shared_ptr<Cache> block_cache_;
  std::shared_ptr<Cache> cache_;
};

}  // namespace shield

#endif  // SHIELD_LSM_TABLE_CACHE_H_
