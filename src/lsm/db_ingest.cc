// Bulk data lifecycle: external-SST ingest and range dump/restore.
//
// IngestExternalFile installs an externally produced table as a
// level-0 file. Two source shapes are accepted:
//   - A SHIELD-encrypted SST (e.g. a DumpRange output) is adopted
//     byte-for-byte: its embedded DEK id is re-wrapped onto THIS
//     instance's identity (Kds::RewrapDek mints a fresh id over the
//     same key material, so ciphertext and block tags are unchanged),
//     the plaintext header copy is patched, and the key is registered
//     with the DekManager. Revoking the source's ids afterwards does
//     not affect the ingested file.
//   - A plaintext SST is re-built through the DB's own encryption
//     path, so under kShield it lands encrypted with a fresh DEK.
// Both paths fail closed: a malformed SHIELD header, an unresolvable
// DEK or a table that does not parse rejects the file before any DB
// state changes. Installation follows the flush protocol — the file
// number stays in pending_outputs_ until the version edit is applied,
// and the sequence horizon is bumped past the table's entries so they
// are visible to reads.
//
// DumpRange is the export side: the latest visible versions in
// [begin, end] are written as freshly built SSTs (cut at
// DumpOptions::max_file_bytes) plus a DUMP_MANIFEST that records an
// HMAC-SHA256 tag per file and is itself MAC'd, mirroring the backup
// manifest. With a target_server_id every dump file's DEK is
// re-wrapped for the target identity, so DumpRange + RestoreDump
// migrates data between KDS identities without copying a DB
// directory — and without the source's keys surviving revocation.

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "crypto/hmac.h"
#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "lsm/sst_builder.h"
#include "lsm/sst_reader.h"
#include "shield/file_crypto.h"

namespace shield {

namespace {

constexpr char kDumpMagic[] = "SHLDDMP1";
constexpr uint32_t kDumpFormatVersion = 1;

std::string DumpManifestName(const std::string& dump_dir) {
  return dump_dir + "/DUMP_MANIFEST";
}

std::string ToHexString(const Slice& data) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (size_t i = 0; i < data.size(); i++) {
    const uint8_t b = static_cast<uint8_t>(data[i]);
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

struct DumpFileEntry {
  std::string name;  // basename within the dump directory
  uint64_t size = 0;
  std::string hmac_hex;
  std::string old_dek_hex = "-";  // "-" when the file carries no DEK
  std::string new_dek_hex = "-";
};

// Same line-oriented shape as the backup manifest:
//   SHLDDMP1
//   format 1
//   target <server id or ->
//   file <name> <size> <hmac hex> <old dek hex|-> <new dek hex|->
//   ...
//   mac <hmac hex over every preceding byte>
std::string EncodeDumpManifest(const std::string& target_server_id,
                               const std::vector<DumpFileEntry>& files,
                               const std::string& hmac_key) {
  std::string out;
  out.append(kDumpMagic);
  out.append("\n");
  out.append("format " + std::to_string(kDumpFormatVersion) + "\n");
  out.append("target " +
             (target_server_id.empty() ? std::string("-") : target_server_id) +
             "\n");
  for (const auto& f : files) {
    out.append("file " + f.name + " " + std::to_string(f.size) + " " +
               f.hmac_hex + " " + f.old_dek_hex + " " + f.new_dek_hex + "\n");
  }
  out.append("mac " + ToHexString(crypto::HmacSha256(hmac_key, out)) + "\n");
  return out;
}

Status DecodeDumpManifest(const std::string& data,
                          const std::string& hmac_key, std::string* target,
                          std::vector<DumpFileEntry>* files) {
  const size_t mac_pos = data.rfind("mac ");
  if (mac_pos == std::string::npos ||
      (mac_pos != 0 && data[mac_pos - 1] != '\n')) {
    return Status::Corruption("dump manifest missing MAC line");
  }
  const std::string body = data.substr(0, mac_pos);
  std::string mac_line = data.substr(mac_pos + 4);
  while (!mac_line.empty() &&
         (mac_line.back() == '\n' || mac_line.back() == '\r')) {
    mac_line.pop_back();
  }
  if (mac_line != ToHexString(crypto::HmacSha256(hmac_key, body))) {
    return Status::Corruption(
        "dump manifest MAC mismatch (tampered dump or wrong key)");
  }

  std::istringstream in(body);
  std::string line;
  if (!std::getline(in, line) || line != kDumpMagic) {
    return Status::Corruption("bad dump manifest magic");
  }
  if (!std::getline(in, line) ||
      line != "format " + std::to_string(kDumpFormatVersion)) {
    return Status::NotSupported("unsupported dump manifest format");
  }
  if (!std::getline(in, line) || line.rfind("target ", 0) != 0) {
    return Status::Corruption("dump manifest missing target line");
  }
  *target = line.substr(7);
  if (*target == "-") {
    target->clear();
  }
  files->clear();
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string tag;
    DumpFileEntry entry;
    fields >> tag >> entry.name >> entry.size >> entry.hmac_hex >>
        entry.old_dek_hex >> entry.new_dek_hex;
    if (fields.fail() || tag != "file" || entry.name.empty() ||
        entry.name.find('/') != std::string::npos ||
        entry.name.find("..") != std::string::npos) {
      return Status::Corruption("bad dump manifest file entry: " + line);
    }
    files->push_back(std::move(entry));
  }
  return Status::OK();
}

// Loads the dump manifest, checks its MAC, then reads and
// HMAC-verifies every listed file. Restore runs this before touching
// the target: a bad dump never installs anything.
Status LoadAndVerifyDump(Env* env, const std::string& dump_dir,
                         const std::string& hmac_key,
                         std::vector<DumpFileEntry>* entries) {
  std::string manifest_data;
  Status s =
      ReadFileToString(env, DumpManifestName(dump_dir), &manifest_data);
  if (!s.ok()) {
    return s;
  }
  std::string target;
  s = DecodeDumpManifest(manifest_data, hmac_key, &target, entries);
  if (!s.ok()) {
    return s;
  }
  for (const auto& entry : *entries) {
    std::string contents;
    s = ReadFileToString(env, dump_dir + "/" + entry.name, &contents);
    if (!s.ok()) {
      return s;
    }
    if (contents.size() != entry.size ||
        ToHexString(crypto::HmacSha256(hmac_key, contents)) !=
            entry.hmac_hex) {
      return Status::Corruption("dump file failed HMAC verification",
                                entry.name);
    }
  }
  return Status::OK();
}

}  // namespace

Status DBImpl::PrepareEncryptedIngest(const std::string& file_path,
                                      std::string* contents,
                                      bool* rewrapped) {
  *rewrapped = false;
  if (options_.encryption.mode != EncryptionMode::kShield) {
    return Status::InvalidArgument(
        "SHIELD-encrypted ingest requires EncryptionMode::kShield",
        file_path);
  }
  Status s = ReadFileToString(raw_env_, file_path, contents);
  if (!s.ok()) {
    return s;
  }
  // Full header validation (nonce length, cipher id, reserved byte):
  // a magic-bearing file that fails here is corrupt, never adopted.
  ShieldFileHeader header;
  s = ParseShieldFileHeader(*contents, &header);
  if (!s.ok()) {
    return s;
  }
  // Always re-wrap — even a DEK already provisioned to us gets a fresh
  // id owned by this instance, so revoking the SOURCE's ids later
  // cannot orphan the ingested file.
  Dek adopted;
  s = dek_manager_->RewrapDek(header.dek_id, dek_manager_->server_id(),
                              &adopted);
  if (!s.ok()) {
    return s;
  }
  // dek_id occupies bytes [12, 12 + DekId::kSize) of the plaintext
  // header (shield/file_crypto.cc). Ciphertext and block tags are
  // keyed from the key material and nonce, both unchanged.
  memcpy(contents->data() + 12, adopted.id.bytes.data(), DekId::kSize);
  dek_manager_->AdoptDek(adopted);
  *rewrapped = true;
  return Status::OK();
}

Status DBImpl::RebuildPlaintextIngest(const std::string& file_path,
                                      const std::string& fname,
                                      uint64_t* file_size) {
  *file_size = 0;
  uint64_t src_size = 0;
  Status s = raw_env_->GetFileSize(file_path, &src_size);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<RandomAccessFile> src;
  s = raw_env_->NewRandomAccessFile(file_path, &src);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<Table> table;
  s = Table::Open(options_, &internal_comparator_, file_path, std::move(src),
                  src_size, nullptr, &table);
  if (!s.ok()) {
    return s;
  }
  ReadOptions read_options;
  read_options.fill_cache = false;
  std::unique_ptr<Iterator> iter(table->NewIterator(read_options));

  std::unique_ptr<WritableFile> file;
  s = files_->NewWritableFile(fname, FileKind::kSst, &file);
  if (!s.ok()) {
    return s;
  }
  TableBuilder builder(options_, &internal_comparator_, file.get());
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    if (iter->key().size() < 8) {
      s = Status::Corruption("ingest source key is not an internal key",
                             file_path);
      break;
    }
    builder.Add(iter->key(), iter->value());
    if (!builder.status().ok()) {
      s = builder.status();
      break;
    }
  }
  if (s.ok()) {
    s = iter->status();
  }
  if (s.ok() && builder.NumEntries() == 0) {
    s = Status::InvalidArgument("ingest source table is empty", file_path);
  }
  if (!s.ok()) {
    builder.Abandon();
    return s;
  }
  s = builder.Finish();
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  if (!s.ok()) {
    return s;
  }
  *file_size = builder.FileSize();
  return Status::OK();
}

Status DBImpl::InstallIngestedFile(uint64_t file_number, uint64_t file_size,
                                   IngestResult* result) {
  // Scan the installed image through the table cache: recovers the key
  // range and max sequence, and doubles as end-to-end verification —
  // every block's CRC (and authentication tag, under v2 headers) is
  // checked with the re-wrapped DEK before the file is published.
  ReadOptions read_options;
  read_options.fill_cache = false;
  InternalKey smallest, largest;
  SequenceNumber max_seq = 0;
  uint64_t entries = 0;
  {
    std::unique_ptr<Iterator> iter(
        table_cache_->NewIterator(read_options, file_number, file_size));
    iter->SeekToFirst();
    if (!iter->Valid()) {
      Status s = iter->status();
      return s.ok() ? Status::InvalidArgument("ingested table is empty") : s;
    }
    smallest.DecodeFrom(iter->key());
    std::string last_key;
    for (; iter->Valid(); iter->Next()) {
      const Slice key = iter->key();
      if (key.size() < 8) {
        return Status::Corruption(
            "ingested table key is not an internal key");
      }
      max_seq = std::max(max_seq, ExtractSequence(key));
      last_key.assign(key.data(), key.size());
      entries++;
    }
    Status s = iter->status();
    if (!s.ok()) {
      return s;
    }
    largest.DecodeFrom(last_key);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!error_handler_.ok()) {
    return error_handler_.bg_error();
  }
  // Entries above the sequence horizon are invisible to reads; lift it
  // over the ingested table (dump outputs carry the source's snapshot
  // sequence, which may be far ahead of ours). Before LogAndApply: the
  // manifest edit is stamped with the current horizon, and a reopen
  // must not recover a horizon that hides the ingested entries. An
  // unused bump from a failed apply only leaves a gap in the sequence
  // space.
  if (versions_->LastSequence() < max_seq) {
    versions_->SetLastSequence(max_seq);
  }
  VersionEdit edit;
  edit.AddFile(0, file_number, file_size, smallest, largest, max_seq);
  Status s = versions_->LogAndApply(&edit, &mutex_);
  if (!s.ok()) {
    return s;
  }
  pending_outputs_.erase(file_number);
  if (result != nullptr) {
    result->entries = entries;
  }
  return Status::OK();
}

Status DBImpl::IngestExternalFile(const std::string& file_path,
                                  const IngestOptions& ingest_options,
                                  IngestResult* result) {
  if (read_only_) {
    return Status::NotSupported(
        "ingest requires the primary instance");
  }
  // Classify the source by its physical first bytes: SHIELD files are
  // adopted, everything else goes through the plaintext rebuild (and
  // fails there if it is not a parseable table).
  bool shield_source = false;
  {
    std::unique_ptr<RandomAccessFile> src;
    Status ps = raw_env_->NewRandomAccessFile(file_path, &src);
    if (!ps.ok()) {
      return ps;
    }
    char scratch[8];
    Slice prefix;
    ps = src->Read(0, sizeof(scratch), &prefix, scratch);
    if (!ps.ok()) {
      return ps;
    }
    shield_source = LooksLikeShieldFile(prefix);
  }

  uint64_t number = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_handler_.ok()) {
      return error_handler_.bg_error();
    }
    number = versions_->NewFileNumber();
    pending_outputs_.insert(number);
  }
  const std::string fname = TableFileName(dbname_, number);

  Status s;
  bool rewrapped = false;
  uint64_t file_size = 0;
  if (shield_source) {
    std::string contents;
    s = PrepareEncryptedIngest(file_path, &contents, &rewrapped);
    if (s.ok()) {
      file_size = contents.size() - kShieldHeaderSize;
      s = WriteStringToFile(raw_env_, contents, fname, /*sync=*/true);
    }
  } else {
    s = RebuildPlaintextIngest(file_path, fname, &file_size);
  }

  IngestResult local;
  if (s.ok()) {
    local.file_number = number;
    local.bytes = file_size;
    local.dek_rewrapped = rewrapped;
    s = InstallIngestedFile(number, file_size, &local);
  }

  if (s.ok()) {
    RecordTick(options_.statistics.get(), Tickers::kLsmIngestFiles, 1);
    RecordTick(options_.statistics.get(), Tickers::kLsmIngestBytes,
               file_size);
    if (ingest_options.move_file) {
      raw_env_->RemoveFile(file_path);  // best effort: the DB owns fname
    }
    if (result != nullptr) {
      *result = local;
    }
  } else {
    std::lock_guard<std::mutex> lock(mutex_);
    pending_outputs_.erase(number);
    // Best effort: also releases any DEK bound to the partial file.
    files_->DeleteFile(fname);
  }

  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("ingest_file");
    w.Add("path", file_path);
    w.Add("file_number", number);
    w.Add("entries", local.entries);
    w.Add("bytes", file_size);
    w.Add("dek_rewrapped", rewrapped);
    w.Add("ok", s.ok());
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  }
  return s;
}

Status DBImpl::DumpRange(const std::string& dump_dir, const Slice* begin,
                         const Slice* end, const DumpOptions& dump_options) {
  if (read_only_) {
    return Status::NotSupported("dumps are created from the primary instance");
  }
  const bool shield_mode =
      options_.encryption.mode == EncryptionMode::kShield;
  if (!dump_options.target_server_id.empty() && !shield_mode) {
    return Status::InvalidArgument(
        "target_server_id requires SHIELD encryption");
  }
  if (options_.encryption.mode == EncryptionMode::kEncFS) {
    // EncFS output would be bound to this instance's directory key and
    // unreadable anywhere else; there is nothing portable to dump.
    return Status::NotSupported("DumpRange is not supported under EncFS");
  }

  Status s = raw_env_->CreateDirIfMissing(dump_dir);
  if (!s.ok()) {
    return s;
  }
  if (raw_env_->FileExists(DumpManifestName(dump_dir))) {
    return Status::InvalidArgument("dump_dir already contains a dump",
                                   dump_dir);
  }

  // Pin one consistent cut: every dumped entry is the latest version
  // visible at this sequence, written back out at exactly that
  // sequence so restore preserves point-in-time semantics.
  const Snapshot* snapshot = GetSnapshot();
  const SequenceNumber dump_seq =
      static_cast<const SnapshotImpl*>(snapshot)->sequence();

  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("dump_begin");
    w.Add("path", dump_dir);
    w.Add("sequence", dump_seq);
    w.Add("target",
          dump_options.target_server_id.empty()
              ? Slice("-")
              : Slice(dump_options.target_server_id));
    event_logger_->Emit(&w);
  }

  ReadOptions read_options;
  read_options.snapshot = snapshot;
  read_options.fill_cache = false;
  std::unique_ptr<Iterator> iter(NewIterator(read_options));

  const Comparator* user_cmp = internal_comparator_.user_comparator();
  std::vector<std::string> outputs;
  std::unique_ptr<WritableFile> file;
  std::unique_ptr<TableBuilder> builder;
  uint64_t local_number = 0;
  uint64_t total_entries = 0;

  auto finish_current = [&]() -> Status {
    if (builder == nullptr) {
      return Status::OK();
    }
    Status fs = builder->Finish();
    if (fs.ok()) {
      fs = file->Sync();
    }
    if (fs.ok()) {
      fs = file->Close();
    }
    builder.reset();
    file.reset();
    return fs;
  };

  if (begin != nullptr) {
    iter->Seek(*begin);
  } else {
    iter->SeekToFirst();
  }
  for (; s.ok() && iter->Valid(); iter->Next()) {
    const Slice user_key = iter->key();
    if (end != nullptr && user_cmp->Compare(user_key, *end) > 0) {
      break;
    }
    if (builder == nullptr) {
      const std::string out = TableFileName(dump_dir, ++local_number);
      s = files_->NewWritableFile(out, FileKind::kSst, &file);
      if (!s.ok()) {
        break;
      }
      builder = std::make_unique<TableBuilder>(options_,
                                               &internal_comparator_,
                                               file.get());
      outputs.push_back(out);
    }
    InternalKey ikey(user_key, dump_seq, kTypeValue);
    builder->Add(ikey.Encode(), iter->value());
    total_entries++;
    if (!builder->status().ok()) {
      s = builder->status();
      break;
    }
    if (builder->FileSize() >= dump_options.max_file_bytes) {
      s = finish_current();
    }
  }
  if (s.ok()) {
    s = iter->status();
  }
  if (s.ok()) {
    s = finish_current();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    file.reset();
  }
  iter.reset();
  ReleaseSnapshot(snapshot);

  // Re-wrap each output's DEK for the target identity and record the
  // integrity entries over the final physical bytes.
  std::vector<DumpFileEntry> entries;
  uint64_t total_bytes = 0;
  for (const auto& path : outputs) {
    if (!s.ok()) {
      break;
    }
    std::string contents;
    s = ReadFileToString(raw_env_, path, &contents);
    if (!s.ok()) {
      break;
    }
    DumpFileEntry entry;
    entry.name = path.substr(path.rfind('/') + 1);
    if (shield_mode && !dump_options.target_server_id.empty()) {
      ShieldFileHeader header;
      s = ParseShieldFileHeader(contents, &header);
      if (!s.ok()) {
        break;
      }
      Dek rewrapped;
      s = dek_manager_->RewrapDek(header.dek_id,
                                  dump_options.target_server_id, &rewrapped);
      if (!s.ok()) {
        break;
      }
      entry.old_dek_hex = header.dek_id.ToHex();
      entry.new_dek_hex = rewrapped.id.ToHex();
      memcpy(contents.data() + 12, rewrapped.id.bytes.data(), DekId::kSize);
      s = WriteStringToFile(raw_env_, contents, path, /*sync=*/true);
      if (!s.ok()) {
        break;
      }
    }
    entry.size = contents.size();
    entry.hmac_hex =
        ToHexString(crypto::HmacSha256(dump_options.hmac_key, contents));
    total_bytes += contents.size();
    RecordTick(options_.statistics.get(), Tickers::kShieldDumpFiles, 1);
    RecordTick(options_.statistics.get(), Tickers::kShieldDumpBytes,
               contents.size());
    entries.push_back(std::move(entry));
  }

  if (s.ok()) {
    // The dump manifest is the commit point: a directory without one
    // (interrupted dump) never verifies and never restores.
    s = WriteStringToFile(
        raw_env_,
        EncodeDumpManifest(dump_options.target_server_id, entries,
                           dump_options.hmac_key),
        DumpManifestName(dump_dir), /*sync=*/true);
  }

  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("dump_end");
    w.Add("path", dump_dir);
    w.Add("files", static_cast<uint64_t>(entries.size()));
    w.Add("entries", total_entries);
    w.Add("bytes", total_bytes);
    w.Add("ok", s.ok());
    if (!s.ok()) {
      w.Add("error", s.ToString());
    }
    event_logger_->Emit(&w);
  }
  return s;
}

Status DB::VerifyDump(const Options& options, const std::string& dump_dir,
                      const RestoreOptions& restore_options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::vector<DumpFileEntry> entries;
  return LoadAndVerifyDump(env, dump_dir, restore_options.hmac_key, &entries);
}

Status DB::RestoreDump(const Options& options, const std::string& dump_dir,
                       const std::string& dbname,
                       const RestoreOptions& restore_options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();

  // Verify everything BEFORE touching the target: a bad dump never
  // installs a single file.
  std::vector<DumpFileEntry> entries;
  Status s =
      LoadAndVerifyDump(env, dump_dir, restore_options.hmac_key, &entries);
  if (!s.ok()) {
    return s;
  }

  DB* raw = nullptr;
  s = DB::Open(options, dbname, &raw);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<DB> db(raw);
  for (const auto& entry : entries) {
    s = db->IngestExternalFile(dump_dir + "/" + entry.name, IngestOptions(),
                               nullptr);
    if (!s.ok()) {
      return s;
    }
  }
  return db->VerifyIntegrity();
}

}  // namespace shield
