// Cluster health plane: detector registration, catch-up lag probes and
// the labeled-gauge refresh behind the "shield.metrics" property
// (util/health.h has the state machine, util/metrics.h the registry).

#include <algorithm>
#include <memory>

#include "env/env.h"
#include "kds/failover_kds.h"
#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "util/clock.h"

namespace shield {

namespace {

// Detector thresholds (the table in DESIGN.md "Cluster health plane"
// mirrors these). Stalls and pipeline ratios are measured between two
// consecutive evaluations, so thresholds are per-interval.
constexpr uint64_t kStallCriticalMicros = 1 * 1000 * 1000;
constexpr double kWalPipelineWarnRatio = 0.05;
constexpr double kWalPipelineCriticalRatio = 0.25;

}  // namespace

void DBImpl::SetupHealthPlane() {
  // Mirror the Statistics tickers/histograms into this DB's labeled
  // registry so "shield.metrics" is encoded by one well-formed encoder.
  // First DB wins when a Statistics object is shared across instances.
  if (options_.statistics != nullptr &&
      options_.statistics->registry() == nullptr) {
    options_.statistics->AttachRegistry(&metrics_, options_.node_name);
  }

  health_monitor_.SetTransitionSink([this](const HealthTransition& t) {
    if (event_logger_ != nullptr && event_logger_->enabled()) {
      JsonWriter w = event_logger_->NewEvent("health_transition");
      if (!options_.node_name.empty()) {
        w.Add("node", options_.node_name);
      }
      w.Add("detector", t.detector);
      w.Add("from", HealthLevelName(t.from));
      w.Add("to", HealthLevelName(t.to));
      w.Add("value", t.value);
      if (!t.detail.empty()) {
        w.Add("detail", t.detail);
      }
      event_logger_->Emit(&w);
    }
  });

  // Write stalls the foreground path actually paid since the last
  // evaluation.
  auto last_stall = std::make_shared<uint64_t>(
      stall_micros_.load(std::memory_order_relaxed));
  health_monitor_.RegisterDetector("write.stall", [this, last_stall] {
    HealthSample s;
    const uint64_t now = stall_micros_.load(std::memory_order_relaxed);
    const uint64_t delta = now >= *last_stall ? now - *last_stall : 0;
    *last_stall = now;
    s.value = static_cast<double>(delta);
    if (delta >= kStallCriticalMicros) {
      s.level = HealthLevel::kCritical;
      s.detail = "writers stalled >= 1s since last evaluation";
    } else if (delta > 0) {
      s.level = HealthLevel::kWarn;
      s.detail = "writers stalled since last evaluation";
    }
    return s;
  });

  // Level-0 / compaction debt against the stall ladder the write path
  // enforces.
  health_monitor_.RegisterDetector("lsm.l0", [this] {
    HealthSample s;
    int files = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (versions_ != nullptr) {
        files = versions_->NumLevelFiles(0);
      }
    }
    s.value = files;
    if (files >= options_.level0_stop_writes_trigger) {
      s.level = HealthLevel::kCritical;
      s.detail = "level-0 at stop-writes trigger";
    } else if (files >= options_.level0_slowdown_writes_trigger) {
      s.level = HealthLevel::kWarn;
      s.detail = "level-0 at slowdown trigger";
    }
    return s;
  });

  // Keystream-pipeline stalls: fraction of the evaluation interval the
  // WAL append path spent waiting for keystream blocks.
  auto pipeline_state = std::make_shared<std::pair<uint64_t, uint64_t>>(
      options_.statistics != nullptr
          ? options_.statistics->GetTickerCount(
                Tickers::kLsmWalPipelineStallMicros)
          : 0,
      NowMicros());
  health_monitor_.RegisterDetector("wal.pipeline", [this, pipeline_state] {
    HealthSample s;
    if (options_.statistics == nullptr) {
      s.detail = "no statistics configured";
      return s;
    }
    const uint64_t stall = options_.statistics->GetTickerCount(
        Tickers::kLsmWalPipelineStallMicros);
    const uint64_t now = NowMicros();
    const uint64_t stall_delta =
        stall >= pipeline_state->first ? stall - pipeline_state->first : 0;
    const uint64_t wall_delta =
        now > pipeline_state->second ? now - pipeline_state->second : 1;
    *pipeline_state = {stall, now};
    const double ratio =
        static_cast<double>(stall_delta) / static_cast<double>(wall_delta);
    s.value = ratio;
    if (ratio >= kWalPipelineCriticalRatio) {
      s.level = HealthLevel::kCritical;
      s.detail = "WAL keystream pipeline saturated";
    } else if (ratio >= kWalPipelineWarnRatio) {
      s.level = HealthLevel::kWarn;
      s.detail = "WAL keystream pipeline stalling";
    }
    return s;
  });

  // Scrub backlog: corruptions detected that repair has not resolved.
  health_monitor_.RegisterDetector("scrub.backlog", [this] {
    HealthSample s;
    const uint64_t detected =
        scrub_corruptions_detected_.load(std::memory_order_relaxed);
    const uint64_t repaired =
        scrub_repaired_files_.load(std::memory_order_relaxed);
    const uint64_t quarantined =
        scrub_quarantined_files_.load(std::memory_order_relaxed);
    const uint64_t backlog = detected >= repaired ? detected - repaired : 0;
    s.value = static_cast<double>(backlog);
    if (backlog > 0 && quarantined > repaired) {
      s.level = HealthLevel::kCritical;
      s.detail = "quarantined files outstanding";
    } else if (backlog > 0) {
      s.level = HealthLevel::kWarn;
      s.detail = "corruptions awaiting repair";
    }
    return s;
  });

  // KDS reachability: one single-attempt probe for a DEK id that never
  // exists. A definitive answer (NotFound above all) proves the key
  // plane is answering; a transient failure means new DEKs cannot be
  // created — flushes and compactions are about to wedge. The breaker
  // state of a FailoverKds front end downgrades to warn once requests
  // flow again but an endpoint is still open.
  health_monitor_.RegisterDetector("kds", [this] {
    HealthSample s;
    if (kds_ == nullptr) {
      s.detail = "no KDS configured";
      return s;
    }
    Dek dek;
    const Status probe =
        kds_->GetDek(options_.encryption.server_id, DekId(), &dek);
    const bool definitive = probe.ok() || probe.IsNotFound() ||
                            probe.IsPermissionDenied() ||
                            probe.IsNotSupported() || probe.IsCorruption();
    if (!definitive) {
      s.level = HealthLevel::kCritical;
      s.value = 1;
      s.detail = "KDS probe failed: " + probe.ToString();
      return s;
    }
    if (auto* failover = dynamic_cast<FailoverKds*>(kds_.get())) {
      int open = 0;
      for (int i = 0; i < failover->num_endpoints(); i++) {
        if (failover->endpoint_state(i) !=
            FailoverKds::BreakerState::kClosed) {
          open++;
        }
      }
      s.value = open;
      if (open == failover->num_endpoints()) {
        s.level = HealthLevel::kCritical;
        s.detail = "every KDS endpoint breaker is open";
      } else if (open > 0) {
        s.level = HealthLevel::kWarn;
        s.detail = "KDS endpoint breaker open";
      }
    }
    return s;
  });

  // DEK rotation stuck: a persisted rotation manifest still owes files
  // but no pass is running to finish it.
  health_monitor_.RegisterDetector("dek.rotation", [this] {
    HealthSample s;
    const uint64_t pending =
        rotation_pending_files_.load(std::memory_order_relaxed);
    s.value = static_cast<double>(pending);
    if (pending > 0 &&
        !rotation_running_.load(std::memory_order_acquire)) {
      s.level = HealthLevel::kWarn;
      s.detail = "rotation manifest pending with no active pass";
    }
    return s;
  });

  // Replica catch-up: how far behind the primary's published manifest
  // this read-only instance is. Failing to even read the shared
  // CURRENT file (partitioned from storage) is the critical edge.
  health_monitor_.RegisterDetector("replica.catchup", [this] {
    HealthSample s;
    if (!read_only_) {
      return s;
    }
    uint64_t lag_bytes = 0;
    uint64_t lag_generations = 0;
    const Status probe = ComputeCatchupLag(&lag_bytes, &lag_generations);
    if (!probe.ok()) {
      s.level = HealthLevel::kCritical;
      s.value = 1;
      s.detail = "shared storage unreachable: " + probe.ToString();
      return s;
    }
    s.value = static_cast<double>(lag_bytes);
    if (lag_generations > 0) {
      s.level = HealthLevel::kWarn;
      s.detail = "behind primary manifest";
    }
    return s;
  });

  if (options_.health_interval_micros > 0) {
    health_monitor_.StartBackground(options_.health_interval_micros);
  }
}

Status DBImpl::EvaluateHealth(std::vector<HealthTransition>* transitions) {
  std::vector<HealthTransition> t = health_monitor_.Evaluate();
  if (transitions != nullptr) {
    *transitions = std::move(t);
  }
  return Status::OK();
}

Status DBImpl::ComputeCatchupLag(uint64_t* lag_bytes,
                                 uint64_t* lag_generations) {
  *lag_bytes = 0;
  *lag_generations = 0;
  if (!read_only_ || files_ == nullptr) {
    return Status::OK();
  }
  Env* env = files_->env();
  std::string current;
  Status s = ReadFileToString(env, CurrentFileName(dbname_), &current);
  if (!s.ok()) {
    return s;
  }
  if (current.empty() || current.back() != '\n') {
    // The primary is mid-publish; report no measurable lag this probe.
    return Status::OK();
  }
  current.resize(current.size() - 1);
  uint64_t number = 0;
  DbFileType type;
  if (!ParseFileName(current, &number, &type) ||
      type != DbFileType::kDescriptorFile) {
    return Status::OK();
  }
  uint64_t size = 0;
  s = env->GetFileSize(dbname_ + "/" + current, &size);
  if (!s.ok()) {
    return s;
  }
  const uint64_t applied =
      catchup_applied_manifest_.load(std::memory_order_acquire);
  const uint64_t applied_bytes =
      catchup_applied_manifest_bytes_.load(std::memory_order_acquire);
  if (number != applied) {
    // The primary rolled to a fresh manifest we have not applied: the
    // whole new descriptor is unapplied state.
    *lag_generations = number > applied ? number - applied : 1;
    *lag_bytes = size;
  } else if (size > applied_bytes) {
    // Same manifest, grown: the primary appended version edits (flush
    // or compaction publishes) past our applied prefix.
    *lag_generations = 1;
    *lag_bytes = size - applied_bytes;
  }
  catchup_lag_bytes_.store(*lag_bytes, std::memory_order_release);
  catchup_lag_generations_.store(*lag_generations, std::memory_order_release);
  return Status::OK();
}

void DBImpl::RecordCatchupApplied() {
  if (!read_only_ || files_ == nullptr) {
    return;
  }
  Env* env = files_->env();
  std::string current;
  if (!ReadFileToString(env, CurrentFileName(dbname_), &current).ok() ||
      current.empty() || current.back() != '\n') {
    return;
  }
  current.resize(current.size() - 1);
  uint64_t number = 0;
  DbFileType type;
  if (!ParseFileName(current, &number, &type) ||
      type != DbFileType::kDescriptorFile) {
    return;
  }
  uint64_t size = 0;
  if (!env->GetFileSize(dbname_ + "/" + current, &size).ok()) {
    return;
  }
  catchup_applied_manifest_.store(number, std::memory_order_release);
  catchup_applied_manifest_bytes_.store(size, std::memory_order_release);
  catchup_lag_bytes_.store(0, std::memory_order_release);
  catchup_lag_generations_.store(0, std::memory_order_release);
}

void DBImpl::RefreshMetricsGauges() {
  MetricLabels base;
  if (!options_.node_name.empty()) {
    base.Set("node", options_.node_name);
  }
  for (int level = 0; level < versions_->num_levels(); level++) {
    MetricLabels labels = base;
    labels.Set("level", std::to_string(level));
    metrics_
        .GetGauge("shield_level_files", "Live SST files per LSM level",
                  labels)
        ->Set(static_cast<double>(versions_->NumLevelFiles(level)));
    metrics_
        .GetGauge("shield_level_bytes", "Live SST bytes per LSM level",
                  labels)
        ->Set(static_cast<double>(versions_->NumLevelBytes(level)));
  }
  if (read_only_) {
    metrics_
        .GetGauge("shield_replica_catchup_lag_bytes",
                  "Manifest bytes published by the primary but not yet "
                  "applied by this replica",
                  base)
        ->Set(static_cast<double>(
            catchup_lag_bytes_.load(std::memory_order_relaxed)));
    metrics_
        .GetGauge("shield_replica_catchup_lag_generations",
                  "Manifest generations this replica is behind the primary",
                  base)
        ->Set(static_cast<double>(
            catchup_lag_generations_.load(std::memory_order_relaxed)));
  }
  health_monitor_.ExportGauges(&metrics_, base);
}

}  // namespace shield
