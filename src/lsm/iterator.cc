#include "lsm/iterator.h"

namespace shield {

namespace {

class EmptyIterator final : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}

  bool Valid() const override { return false; }
  void Seek(const Slice& /*target*/) override {}
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Next() override { assert(false); }
  void Prev() override { assert(false); }
  Slice key() const override {
    assert(false);
    return Slice();
  }
  Slice value() const override {
    assert(false);
    return Slice();
  }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace shield
