#ifndef SHIELD_LSM_MERGER_H_
#define SHIELD_LSM_MERGER_H_

#include "lsm/comparator.h"
#include "lsm/iterator.h"

namespace shield {

/// Merges `n` sorted children into one sorted stream (duplicates
/// preserved). Takes ownership of the child iterators.
Iterator* NewMergingIterator(const Comparator* comparator,
                             Iterator** children, int n);

}  // namespace shield

#endif  // SHIELD_LSM_MERGER_H_
