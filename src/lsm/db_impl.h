#ifndef SHIELD_LSM_DB_IMPL_H_
#define SHIELD_LSM_DB_IMPL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "env/io_stats.h"
#include "lsm/compaction_service.h"
#include "lsm/db.h"
#include "lsm/error_handler.h"
#include "lsm/log_writer.h"
#include "lsm/memtable.h"
#include "lsm/rotation_manifest.h"
#include "lsm/snapshot.h"
#include "lsm/version_set.h"
#include "shield/dek_manager.h"
#include "shield/file_crypto.h"
#include "util/event_logger.h"
#include "util/health.h"
#include "util/histogram.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace shield {

class DBImpl final : public DB {
 public:
  DBImpl(const Options& raw_options, const std::string& dbname,
         bool read_only);
  ~DBImpl() override;

  DBImpl(const DBImpl&) = delete;
  DBImpl& operator=(const DBImpl&) = delete;

  // DB interface.
  Status Put(const WriteOptions& options, const Slice& key,
             const Slice& value) override;
  Status Delete(const WriteOptions& options, const Slice& key) override;
  Status Write(const WriteOptions& options, WriteBatch* updates) override;
  Status Get(const ReadOptions& options, const Slice& key,
             std::string* value) override;
  std::vector<Status> MultiGet(const ReadOptions& options,
                               const std::vector<Slice>& keys,
                               std::vector<std::string>* values) override;
  Iterator* NewIterator(const ReadOptions& options) override;
  const Snapshot* GetSnapshot() override;
  void ReleaseSnapshot(const Snapshot* snapshot) override;
  Status Flush() override;
  Status CompactRange(const Slice* begin, const Slice* end) override;
  bool GetProperty(const Slice& property, std::string* value) override;
  Status TryCatchUp() override;
  void WaitForIdle() override;
  Status VerifyIntegrity() override;
  Status Resume() override;
  Status StartTrace(const TraceOptions& trace_options,
                    const std::string& trace_path) override;
  Status EndTrace() override;
  Status EvaluateHealth(std::vector<HealthTransition>* transitions) override;
  Status RotateDeks(const RotateOptions& options,
                    RotateResult* result) override;
  Status CreateBackup(const std::string& backup_dir,
                      const BackupOptions& options) override;
  Status IngestExternalFile(const std::string& file_path,
                            const IngestOptions& options,
                            IngestResult* result) override;
  Status DumpRange(const std::string& dump_dir, const Slice* begin,
                   const Slice* end, const DumpOptions& options) override;

  /// Startup: recover manifest + WALs. Called by DB::Open.
  Status Recover();

  DekManager* dek_manager() { return dek_manager_.get(); }

 private:
  friend class DB;

  struct CompactionState;
  struct LogWriterBatch;

  // A queued writer (group commit).
  struct Writer {
    Writer() = default;
    Status status;
    WriteBatch* batch = nullptr;
    bool sync = false;
    bool done = false;
    std::condition_variable cv;
  };

  struct CompactionStats {
    int64_t micros = 0;
    int64_t bytes_read = 0;
    int64_t bytes_written = 0;
    int64_t count = 0;

    void Add(const CompactionStats& c) {
      micros += c.micros;
      bytes_read += c.bytes_read;
      bytes_written += c.bytes_written;
      count += c.count;
    }
  };

  // Setup helpers (db_impl.cc).
  Status SetupEncryption();
  Status NewDb();
  void RemoveObsoleteFiles();  // mutex_ held
  /// Creates the info LOG (unless Options supplied one) and emits the
  /// db_open event with sanitized options + build info.
  void SetupInfoLog();

  // Write path (db_write.cc).
  Status MakeRoomForWrite(std::unique_lock<std::mutex>& lock, bool force);
  WriteBatch* BuildBatchGroup(Writer** last_writer);
  Status SwitchMemTable(std::unique_lock<std::mutex>& lock);
  /// Applies a verified batch group to mem_, one thread per memtable
  /// shard for large groups (the shard partitions are disjoint, so
  /// each shard keeps a single inserting thread). REQUIRES: mutex_
  /// NOT held; calling thread is the group-commit leader.
  Status ApplyGroupToMemTable(WriteBatch* write_batch);

  // Read path (db_read.cc).
  Iterator* NewInternalIterator(const ReadOptions& options,
                                SequenceNumber* latest_snapshot);

  // Recovery (db_recovery.cc).
  Status RecoverLogFile(uint64_t log_number, SequenceNumber* max_sequence,
                        VersionEdit* edit);
  /// On success with a non-empty output, *pending_output is the new
  /// file's number, still registered in pending_outputs_: the caller
  /// must erase it only AFTER the edit has been installed, or a
  /// concurrent RemoveObsoleteFiles from another background job could
  /// delete the not-yet-referenced file.
  Status WriteLevel0Table(MemTable* mem, VersionEdit* edit,
                          uint64_t* pending_output);

  // Background work (db_compaction.cc). The jobs report failures to
  // error_handler_ with a BackgroundErrorReason attributing the failed
  // layer; `*reason` out-params refine the default attribution (e.g. a
  // flush whose manifest install failed reports kManifestWrite).
  void MaybeScheduleFlush();    // mutex_ held
  void MaybeScheduleCompaction();  // mutex_ held
  void BackgroundFlush();
  void BackgroundCompaction();
  Status CompactMemTable(BackgroundErrorReason* reason);  // mutex_ held
  Status DoCompactionWork(CompactionState* compact,
                          BackgroundErrorReason* reason);
  Status DoOffloadedCompaction(Compaction* c, VersionEdit* edit,
                               CompactionStats* stats);
  Status OpenCompactionOutputFile(CompactionState* compact);
  Status FinishCompactionOutputFile(CompactionState* compact,
                                    Iterator* input);
  Status InstallCompactionResults(CompactionState* compact);
  Status RunManualCompaction(int level, const InternalKey* begin,
                             const InternalKey* end);

  // Integrity scrubbing (db_scrub.cc).
  struct ScrubStats {
    uint64_t files_scanned = 0;
    uint64_t corrupt_files = 0;
    uint64_t repaired_files = 0;
  };
  /// One full pass over the live SSTs. `throttle` enables the
  /// scrub_bytes_per_second budget (background passes only).
  Status ScrubPass(bool throttle, ScrubStats* stats);
  Status ScrubFile(int level, uint64_t number, uint64_t file_size,
                   bool throttle);
  /// Quarantine + repair pipeline for one corrupt file.
  Status HandleCorruptFile(int level, uint64_t number, uint64_t file_size,
                           const Status& corruption);
  Status RepairFromReplica(int level, uint64_t number, uint64_t file_size);
  Status SalvageLocally(int level, uint64_t number, uint64_t file_size);
  Status QuarantineFile(uint64_t number);
  void ScrubLoop();

  // Bulk ingest/dump (db_ingest.cc).
  /// Adopts a SHIELD-encrypted SST byte-for-byte: re-wraps the
  /// embedded DEK onto our identity, patches the header copy and
  /// registers the key. On success *contents holds the patched
  /// physical image to install.
  Status PrepareEncryptedIngest(const std::string& file_path,
                                std::string* contents, bool* rewrapped);
  /// Re-builds a plaintext SST through the DB's own encryption path
  /// into `fname` (already-reserved table file name). *file_size is
  /// the logical size of the rebuilt table.
  Status RebuildPlaintextIngest(const std::string& file_path,
                                const std::string& fname,
                                uint64_t* file_size);
  /// Opens the freshly installed table (logical size `file_size`) to
  /// recover its key range and max sequence, then publishes it at
  /// level 0 and bumps the sequence horizon past its entries.
  Status InstallIngestedFile(uint64_t file_number, uint64_t file_size,
                             IngestResult* result);

  // Cluster health plane (db_health.cc).
  /// Registers the stall/L0/WAL-pipeline/scrub/KDS/rotation/catch-up
  /// detectors with health_monitor_ and wires the transition sink to
  /// the event logger. Called once at the end of Recover().
  void SetupHealthPlane();
  /// Refreshes the DB-level gauges (levels, health, catch-up lag) in
  /// metrics_ — called while serving the "shield.metrics" property.
  /// REQUIRES: mutex_ held.
  void RefreshMetricsGauges();
  /// Replica catch-up lag versus the primary's published state: bytes
  /// of manifest not yet applied and manifest generations behind.
  /// Writers report zero. Returns non-OK when the shared storage is
  /// unreachable (partition) — the catch-up detector's critical edge.
  Status ComputeCatchupLag(uint64_t* lag_bytes, uint64_t* lag_generations);
  /// Records the manifest state a successful Recover/TryCatchUp
  /// applied, the baseline ComputeCatchupLag compares against.
  void RecordCatchupApplied();

  // Online DEK rotation (db_rotation.cc).
  /// Executes (or resumes) the rotation described by `manifest`,
  /// persisting progress after every file. rotation_pass_mutex_ held.
  Status RunRotation(RotationManifest* manifest, const RotateOptions& opts,
                     RotateResult* result);
  /// Rewrites one live SST to a fresh DEK via the table-rewrite path.
  /// Returns OK with *skipped=true when `number` already left the live
  /// version (stale manifest entry).
  Status RotateFile(uint64_t number, uint64_t* bytes, bool* skipped);
  /// Background rotation job: resumes a pending rotation at open, then
  /// runs age-based passes every dek_rotation_interval_micros.
  void RotationLoop();
  /// True when a rotation manifest is pending on disk at open time
  /// (set by Recover, consumed by RotationLoop).
  bool ResumePendingRotation();

  // State below.
  const std::string dbname_;
  Options options_;  // env_ may be rewritten to the EncFS wrapper
  bool read_only_;
  const InternalKeyComparator internal_comparator_;

  // The physical (pre-encryption) view of the DB directory, captured
  // before SetupEncryption may rewrite options_.env: quarantine and
  // repair move on-disk images around byte-for-byte, without any
  // encryption layer transforming them.
  Env* raw_env_ = nullptr;

  // Observability plane. The LOG and trace files are written through
  // raw_env_ (deliberately plaintext; no keys or user data ever reach
  // them). event_logger_ wraps the LOG for JSON-lines engine events;
  // tracer_ owns the active trace started via StartTrace.
  // Declared before the env/crypto members that may reference the
  // event logger so it destructs after them.
  std::unique_ptr<EventLogger> event_logger_;
  // I/O tracing env interposed directly above the physical env (below
  // counting + encryption) so io.* spans describe ciphertext traffic.
  std::unique_ptr<Env> owned_tracing_env_;
  Tracer tracer_;
  std::mutex trace_mutex_;  // serializes StartTrace/EndTrace

  // Physical I/O accounting: a counting Env interposed below the
  // encryption layer, so it sees ciphertext traffic (what actually
  // hits storage). Mirrored into options_.statistics when configured.
  // Declared before owned_encrypted_env_: the EncFS wrapper holds a
  // pointer to the counting env, so it must be destroyed first
  // (members destruct in reverse declaration order).
  IoStats io_stats_;
  std::unique_ptr<Env> owned_counting_env_;

  // Encryption plumbing. Order matters for destruction: factory before
  // dek manager before cache/kds.
  std::unique_ptr<Env> owned_encrypted_env_;  // EncFS wrapper, if any
  std::shared_ptr<Kds> kds_;                  // SHIELD (owned or shared)
  std::unique_ptr<SecureDekCache> secure_dek_cache_;
  std::unique_ptr<DekManager> dek_manager_;
  std::unique_ptr<ThreadPool> encryption_pool_;
  std::unique_ptr<DataFileFactory> files_;

  std::shared_ptr<Cache> block_cache_;
  std::unique_ptr<TableCache> table_cache_;

  std::mutex mutex_;
  std::atomic<bool> shutting_down_{false};
  std::condition_variable background_work_finished_signal_;

  MemTable* mem_ = nullptr;
  MemTable* imm_ = nullptr;  // being flushed
  std::atomic<bool> has_imm_{false};

  std::unique_ptr<WritableFile> logfile_;
  uint64_t logfile_number_ = 0;
  std::unique_ptr<log::Writer> log_;
  // True after a failed WAL append/sync: the tail may hold a torn
  // record, and log replay stops at the first damaged record, so any
  // further appends to this file could be silently lost at recovery.
  // MakeRoomForWrite rolls to a fresh WAL before the next write.
  bool log_tainted_ = false;  // guarded by mutex_

  // The write queue has a dedicated mutex so arriving writers can
  // enqueue while the leader works under mutex_ (or no lock): groups
  // only form when the queue is reachable during the leader's service
  // time. Lock order: mutex_ before writers_mutex_.
  std::mutex writers_mutex_;
  std::deque<Writer*> writers_;  // guarded by writers_mutex_
  WriteBatch tmp_batch_;         // touched only by the group leader

  SnapshotList snapshots_;
  std::set<uint64_t> pending_outputs_;
  // Output numbers of the in-flight offloaded compaction; unpinned by
  // DoCompactionWork after the edit is installed.
  std::vector<uint64_t> offload_pending_outputs_;

  std::unique_ptr<ThreadPool> bg_pool_;
  // Workers for the parallel shard apply in the write path; non-null
  // only when options_.memtable_shards > 1. Kept separate from
  // bg_pool_ so a long compaction can never starve a committed group's
  // memtable apply.
  std::unique_ptr<ThreadPool> apply_pool_;
  bool flush_scheduled_ = false;
  bool compaction_scheduled_ = false;
  bool manual_compaction_running_ = false;

  std::unique_ptr<VersionSet> versions_;

  // Classifies background failures, drives the DB error state machine
  // and schedules auto-resume retries. All access under mutex_.
  ErrorHandler error_handler_;

  // Background scrubber (db_scrub.cc). The thread sleeps on scrub_cv_
  // between passes; scrub_pass_mutex_ serializes passes (the thread vs
  // on-demand VerifyIntegrity).
  std::thread scrub_thread_;
  std::mutex scrub_mutex_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;  // guarded by scrub_mutex_
  std::mutex scrub_pass_mutex_;

  // Background DEK rotation (db_rotation.cc). Same shape as the
  // scrubber: the thread sleeps on rotation_cv_ between passes;
  // rotation_pass_mutex_ serializes passes (the thread vs on-demand
  // RotateDeks).
  std::thread rotation_thread_;
  std::mutex rotation_mutex_;
  std::condition_variable rotation_cv_;
  bool rotation_stop_ = false;  // guarded by rotation_mutex_
  std::mutex rotation_pass_mutex_;
  // True when Recover found a ROTATION manifest on disk; the rotation
  // thread (or, with no thread configured, a one-shot resume) finishes
  // that rotation before anything else.
  bool rotation_pending_at_open_ = false;
  std::atomic<bool> rotation_running_{false};
  std::atomic<uint64_t> rotation_files_rotated_{0};
  std::atomic<uint64_t> rotation_passes_{0};
  // Files still owed by the persisted rotation manifest (for the
  // "shield.rotation-state" property).
  std::atomic<uint64_t> rotation_pending_files_{0};

  std::atomic<uint64_t> scrub_corruptions_detected_{0};
  std::atomic<uint64_t> scrub_repaired_files_{0};
  std::atomic<uint64_t> scrub_quarantined_files_{0};
  // Offloaded compactions that fell back to local execution after the
  // service exhausted its retries ("shield.offload-fallbacks").
  std::atomic<uint64_t> offload_fallbacks_{0};
  // WALs whose replay was cut short by damage that crash semantics
  // explain, tolerated because paranoid_checks is off
  // ("shield.recovery-salvaged-logs").
  std::atomic<uint64_t> recovery_salvaged_logs_{0};
  CompactionStats stats_[kMaxNumLevels];
  std::atomic<uint64_t> stall_micros_{0};

  // Cluster health plane (db_health.cc). metrics_ is this DB's labeled
  // registry: Options::statistics mirrors its tickers/histograms into
  // it (AttachRegistry), and DB-level gauges (levels, health, catch-up
  // lag) are refreshed on property reads. health_monitor_ owns the
  // detector state machines; transitions are emitted as
  // "health_transition" events.
  MetricsRegistry metrics_;
  HealthMonitor health_monitor_;
  // Manifest state the last successful Recover/TryCatchUp applied
  // (read-only instances): baseline for catch-up lag.
  std::atomic<uint64_t> catchup_applied_manifest_{0};
  std::atomic<uint64_t> catchup_applied_manifest_bytes_{0};
  // Last published catch-up lag, mirrored into gauges and the
  // replica.catchup detector.
  std::atomic<uint64_t> catchup_lag_bytes_{0};
  std::atomic<uint64_t> catchup_lag_generations_{0};
};

}  // namespace shield

#endif  // SHIELD_LSM_DB_IMPL_H_
