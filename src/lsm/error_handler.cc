#include "lsm/error_handler.h"

namespace shield {

const char* BackgroundErrorReasonName(BackgroundErrorReason reason) {
  switch (reason) {
    case BackgroundErrorReason::kFlush:
      return "flush";
    case BackgroundErrorReason::kCompaction:
      return "compaction";
    case BackgroundErrorReason::kWalAppend:
      return "wal-append";
    case BackgroundErrorReason::kWalSync:
      return "wal-sync";
    case BackgroundErrorReason::kManifestWrite:
      return "manifest-write";
    case BackgroundErrorReason::kOffload:
      return "offload";
    case BackgroundErrorReason::kScrub:
      return "scrub";
    case BackgroundErrorReason::kRotation:
      return "rotation";
  }
  return "unknown";
}

const char* ErrorSeverityName(ErrorSeverity severity) {
  switch (severity) {
    case ErrorSeverity::kTransient:
      return "transient";
    case ErrorSeverity::kSoft:
      return "soft";
    case ErrorSeverity::kHard:
      return "hard";
  }
  return "unknown";
}

const char* DbErrorStateName(DbErrorState state) {
  switch (state) {
    case DbErrorState::kActive:
      return "active";
    case DbErrorState::kRecovering:
      return "recovering";
    case DbErrorState::kReadOnly:
      return "read-only";
    case DbErrorState::kHalted:
      return "halted";
  }
  return "unknown";
}

void ErrorHandler::Configure(
    const RetryPolicy& resume_policy,
    std::vector<std::shared_ptr<EventListener>> listeners,
    EventLogger* event_logger) {
  policy_ = resume_policy;
  listeners_ = std::move(listeners);
  event_logger_ = event_logger;
  rnd_state_ = policy_.seed == 0 ? 0x5e7e7 : policy_.seed;
}

void ErrorHandler::TransitionTo(DbErrorState next, const char* cause) {
  if (next == state_) {
    return;
  }
  const DbErrorState prev = state_;
  state_ = next;
  if (event_logger_ != nullptr && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("error_state");
    w.Add("from", DbErrorStateName(prev));
    w.Add("to", DbErrorStateName(next));
    w.Add("cause", cause);
    if (!bg_error_.ok()) {
      w.Add("bg_error", bg_error_.ToString());
    }
    event_logger_->Emit(&w);
  }
}

ErrorSeverity ErrorHandler::Classify(BackgroundErrorReason reason,
                                     const Status& s,
                                     bool retries_exhausted) {
  if (s.IsTransient() && !retries_exhausted) {
    return ErrorSeverity::kTransient;
  }
  // Detected corruption is never retried or masked: the damage is in
  // persistent state, so degraded-but-writable operation could compact
  // bad data forward.
  if (s.IsCorruption()) {
    return ErrorSeverity::kHard;
  }
  // Manifest damage may leave the version log torn: later LogAndApply
  // calls would append after a half-written record. Everything short of
  // a re-open (which re-runs manifest recovery) is unsafe.
  if (reason == BackgroundErrorReason::kManifestWrite) {
    return ErrorSeverity::kHard;
  }
  // Flush/compaction/offload failures discard their outputs; the
  // pre-failure state is intact and immutable, so reads stay correct:
  // stop writes only.
  return ErrorSeverity::kSoft;
}

uint64_t ErrorHandler::OnBackgroundError(BackgroundErrorReason reason,
                                         const Status& s) {
  const int idx = static_cast<int>(reason);
  if (s.IsTransient() && attempts_[idx] < policy_.max_attempts) {
    attempts_[idx]++;
    if (state_ == DbErrorState::kActive) {
      TransitionTo(DbErrorState::kRecovering, BackgroundErrorReasonName(reason));
      for (const auto& l : listeners_) {
        l->OnErrorRecoveryBegin(reason, s);
      }
    }
    for (const auto& l : listeners_) {
      l->OnBackgroundError(reason, s, ErrorSeverity::kTransient);
    }
    // attempts_ is the number of failures so far; BackoffMicros treats
    // attempt 1 as the initial try (no wait), so shift by one.
    return policy_.BackoffMicros(attempts_[idx] + 1, &rnd_state_);
  }
  Escalate(reason, s, Classify(reason, s, /*retries_exhausted=*/true));
  return 0;
}

void ErrorHandler::OnForegroundError(BackgroundErrorReason reason,
                                     const Status& s) {
  for (const auto& l : listeners_) {
    l->OnBackgroundError(reason, s, Classify(reason, s, false));
  }
}

void ErrorHandler::OnOperationSucceeded(BackgroundErrorReason reason) {
  attempts_[static_cast<int>(reason)] = 0;
  if (state_ == DbErrorState::kRecovering && !AnyRetryPending()) {
    TransitionTo(DbErrorState::kActive, "auto-resume");
    recoveries_++;
    for (const auto& l : listeners_) {
      l->OnErrorRecoveryEnd(Status::OK());
    }
  }
}

Status ErrorHandler::Resume() {
  switch (state_) {
    case DbErrorState::kActive:
    case DbErrorState::kRecovering:
      return Status::OK();
    case DbErrorState::kHalted:
      return bg_error_;
    case DbErrorState::kReadOnly:
      break;
  }
  bg_error_ = Status::OK();
  attempts_.fill(0);
  TransitionTo(DbErrorState::kActive, "manual-resume");
  recoveries_++;
  for (const auto& l : listeners_) {
    l->OnErrorRecoveryEnd(Status::OK());
  }
  return Status::OK();
}

void ErrorHandler::Escalate(BackgroundErrorReason reason, const Status& s,
                            ErrorSeverity severity) {
  const bool was_recovering = state_ == DbErrorState::kRecovering;
  if (bg_error_.ok()) {
    bg_error_ = s;
  }
  // A hard error dominates an earlier soft one; never downgrade.
  if (severity == ErrorSeverity::kHard) {
    TransitionTo(DbErrorState::kHalted, BackgroundErrorReasonName(reason));
  } else if (state_ != DbErrorState::kHalted) {
    TransitionTo(DbErrorState::kReadOnly, BackgroundErrorReasonName(reason));
  }
  for (const auto& l : listeners_) {
    l->OnBackgroundError(reason, s, severity);
  }
  if (was_recovering) {
    for (const auto& l : listeners_) {
      l->OnErrorRecoveryEnd(s);
    }
  }
}

bool ErrorHandler::AnyRetryPending() const {
  for (int pending : attempts_) {
    if (pending > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace shield
