#include "lsm/db_impl.h"

#include <algorithm>
#include <cstdio>

#include "crypto/cipher.h"
#include "encfs/encrypted_env.h"
#include "env/trace_env.h"
#include "kds/local_kds.h"
#include "lsm/db_iter.h"
#include "lsm/file_names.h"
#include "lsm/merger.h"
#include "util/clock.h"
#include "util/logger.h"

namespace shield {

namespace {

Options SanitizeOptions(const Options& src) {
  Options result = src;
  if (result.comparator == nullptr) {
    result.comparator = BytewiseComparator();
  }
  if (result.env == nullptr) {
    result.env = Env::Default();
  }
  result.num_levels = std::max(1, std::min(result.num_levels, kMaxNumLevels));
  if (result.max_background_jobs < 1) {
    result.max_background_jobs = 1;
  }
  if (result.encryption.encryption_threads < 1) {
    result.encryption.encryption_threads = 1;
  }
  // Normalized once here so the WAL writer and the group-commit batch
  // shaping agree on the exact bucket set.
  result.encryption.wal_padding_buckets =
      log::SanitizePaddingBuckets(result.encryption.wal_padding_buckets);
  result.memtable_shards = std::max(1, std::min(result.memtable_shards, 64));
  // A freshly-created memtable already holds one arena block per shard
  // (each shard's skiplist head), so a write buffer at or below that
  // baseline would make MakeRoomForWrite switch empty memtables
  // forever without ever finding room. Keep the floor a few blocks
  // above the baseline, scaled with the shard count.
  result.write_buffer_size = std::max<size_t>(
      result.write_buffer_size,
      static_cast<size_t>(result.memtable_shards) * 16 * 1024);
  // Keep the stall ladder consistent: writers must never stop on a
  // level-0 count that compaction is not even trying to reduce.
  if (result.level0_slowdown_writes_trigger <
      result.level0_file_num_compaction_trigger) {
    result.level0_slowdown_writes_trigger =
        result.level0_file_num_compaction_trigger + 4;
  }
  if (result.level0_stop_writes_trigger <=
      result.level0_slowdown_writes_trigger) {
    result.level0_stop_writes_trigger =
        result.level0_slowdown_writes_trigger + 4;
  }
  return result;
}

}  // namespace

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname,
               bool read_only)
    : dbname_(dbname),
      options_(SanitizeOptions(raw_options)),
      read_only_(read_only),
      internal_comparator_(options_.comparator) {}

DBImpl::~DBImpl() {
  // Stop the health evaluator before anything it probes is torn down,
  // and detach the shared Statistics from our registry (the Statistics
  // object may outlive this DB).
  health_monitor_.StopBackground();
  if (options_.statistics != nullptr &&
      options_.statistics->registry() == &metrics_) {
    options_.statistics->AttachRegistry(nullptr, std::string());
  }

  // Stop the rotation job first: a pass rewrites files through the
  // manifest, and RunRotation checks rotation_stop_ between files so
  // this returns promptly (leaving the remainder persisted in the
  // rotation manifest for resume-at-reopen).
  if (rotation_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(rotation_mutex_);
      rotation_stop_ = true;
    }
    rotation_cv_.notify_all();
    rotation_thread_.join();
  }

  // Stop the scrubber next: a scrub pass holds version references and
  // may schedule repairs that touch the manifest.
  if (scrub_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(scrub_mutex_);
      scrub_stop_ = true;
    }
    scrub_cv_.notify_all();
    scrub_thread_.join();
  }

  // Wait for background work, then tear down.
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_.store(true, std::memory_order_release);
    background_work_finished_signal_.wait(lock, [this] {
      return !flush_scheduled_ && !compaction_scheduled_;
    });
  }
  bg_pool_.reset();     // joins workers
  apply_pool_.reset();  // idle by now: no leader outlives Write()

  {
    // Fail any queued writers.
    std::lock_guard<std::mutex> lock(writers_mutex_);
    for (Writer* w : writers_) {
      w->status = Status::IOError("db closed");
      w->done = true;
      w->cv.notify_one();
    }
    writers_.clear();
  }

  if (mem_ != nullptr) {
    mem_->Unref();
  }
  if (imm_ != nullptr) {
    imm_->Unref();
  }
  log_.reset();
  if (logfile_ != nullptr) {
    // Best effort: the destructor has no status channel, and unsynced
    // WAL data carries no durability promise anyway.
    (void)logfile_->Close();
    logfile_.reset();
  }
  versions_.reset();
  table_cache_.reset();
}

void DBImpl::SetupInfoLog() {
  // mutex_ held; raw_env_ captured. The LOG goes through the physical
  // env on purpose: it is plaintext-by-design and must survive (and
  // help debug) encryption-layer failures. No keys, passkeys or user
  // data are ever written to it.
  if (options_.info_log == nullptr) {
    Status s = NewFileLogger(raw_env_, InfoLogFileName(dbname_),
                             options_.max_log_file_size,
                             options_.keep_log_file_num,
                             options_.info_log_level, &options_.info_log);
    if (!s.ok()) {
      // A DB without a LOG is fully functional; don't fail Open.
      options_.info_log = NewNullLogger();
    }
  } else {
    options_.info_log->SetInfoLogLevel(options_.info_log_level);
  }
  event_logger_ = std::make_unique<EventLogger>(options_.info_log.get(),
                                                options_.statistics.get());

  const EncryptionOptions& enc = options_.encryption;
  const char* mode = "none";
  switch (enc.mode) {
    case EncryptionMode::kNone:
      mode = "none";
      break;
    case EncryptionMode::kEncFS:
      mode = "encfs";
      break;
    case EncryptionMode::kShield:
      mode = "shield";
      break;
  }
  JsonWriter w = event_logger_->NewEvent("db_open");
  w.Add("db", dbname_);
  w.Add("read_only", read_only_);
  w.Add("format_version_base",
        static_cast<uint64_t>(kShieldFormatVersionBase));
  w.Add("format_version_auth",
        static_cast<uint64_t>(kShieldFormatVersionAuth));
  w.Add("encryption_mode", mode);
  w.Add("cipher", crypto::CipherKindName(enc.cipher));
  w.Add("authenticate_blocks", enc.authenticate_blocks);
  w.Add("encrypt_wal", enc.encrypt_wal);
  w.Add("wal_buffer_size", static_cast<uint64_t>(enc.wal_buffer_size));
  w.Add("sst_chunk_size", static_cast<uint64_t>(enc.sst_chunk_size));
  w.Add("encryption_threads", enc.encryption_threads);
  w.Add("secure_dek_cache", enc.use_secure_dek_cache);
  w.Add("offloaded_compaction", options_.compaction_service != nullptr);
  w.Add("replica_source", options_.replica_source != nullptr);
  w.Add("write_buffer_size",
        static_cast<uint64_t>(options_.write_buffer_size));
  w.Add("block_cache_size",
        static_cast<uint64_t>(options_.block_cache_size));
  w.Add("num_levels", options_.num_levels);
  w.Add("compaction_style",
        options_.compaction_style == CompactionStyle::kLeveled ? "leveled"
        : options_.compaction_style == CompactionStyle::kUniversal
            ? "universal"
            : "fifo");
  w.Add("max_background_jobs", options_.max_background_jobs);
  w.Add("sync_wal", options_.sync_wal);
  w.Add("paranoid_checks", options_.paranoid_checks);
  event_logger_->Emit(&w);
}

Status DBImpl::SetupEncryption() {
  const EncryptionOptions& enc = options_.encryption;
  switch (enc.mode) {
    case EncryptionMode::kNone:
      files_ = NewPlainFileFactory(options_.env);
      return Status::OK();

    case EncryptionMode::kEncFS: {
      if (enc.instance_key.size() != crypto::CipherKeySize(enc.cipher)) {
        return Status::InvalidArgument(
            "EncFS requires an instance_key matching the cipher key size");
      }
      Status s = NewEncryptedEnv(options_.env, enc.cipher, enc.instance_key,
                                 &owned_encrypted_env_, enc.wal_buffer_size,
                                 enc.authenticate_blocks,
                                 options_.statistics.get());
      if (!s.ok()) {
        return s;
      }
      options_.env = owned_encrypted_env_.get();
      files_ = NewPlainFileFactory(options_.env);
      return Status::OK();
    }

    case EncryptionMode::kShield: {
      kds_ = enc.kds;
      if (kds_ == nullptr) {
        // Monolithic deployment without an external KDS.
        kds_ = std::make_shared<LocalKds>();
      }
      if (enc.use_secure_dek_cache) {
        Status s = SecureDekCache::Open(options_.env,
                                        DekCacheFileName(dbname_),
                                        enc.passkey, &secure_dek_cache_);
        if (!s.ok()) {
          return s;
        }
      }
      dek_manager_ = std::make_unique<DekManager>(kds_.get(), enc.server_id,
                                                  secure_dek_cache_.get(),
                                                  options_.statistics.get());
      if (event_logger_ != nullptr) {
        dek_manager_->SetEventLogger(event_logger_.get());
      }
      if (!read_only_) {
        // Reload DEK deletions deferred by an earlier incarnation
        // (KDS unreachable at ForgetDek time); rotation passes drain
        // them. Best effort: an unreadable queue file must not block
        // opening — those deletions are retried next time the file is
        // readable.
        (void)dek_manager_->ConfigurePendingDeletes(
            raw_env_, PendingDekDeletesFileName(dbname_));
      }
      if (enc.encryption_threads > 1) {
        encryption_pool_ =
            std::make_unique<ThreadPool>(enc.encryption_threads);
      }
      files_ = NewShieldFileFactory(options_.env, dek_manager_.get(), enc,
                                    encryption_pool_.get(),
                                    options_.statistics.get());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown encryption mode");
}

Status DBImpl::NewDb() {
  VersionEdit new_db;
  new_db.SetComparatorName(internal_comparator_.user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  std::unique_ptr<WritableFile> file;
  Status s = files_->NewWritableFile(manifest, FileKind::kManifest, &file);
  if (!s.ok()) {
    return s;
  }
  {
    log::Writer log(file.get());
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  if (s.ok()) {
    s = SetCurrentFile(options_.env, dbname_, 1);
  } else {
    files_->DeleteFile(manifest);
  }
  return s;
}

void DBImpl::RemoveObsoleteFiles() {
  // mutex_ held.
  if (!error_handler_.ok()) {
    // Uncertain state; do not GC.
    return;
  }

  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  options_.env->GetChildren(dbname_, &filenames);  // ignore errors
  uint64_t number;
  DbFileType type;
  std::vector<std::string> files_to_delete;
  for (const std::string& filename : filenames) {
    if (!ParseFileName(filename, &number, &type)) {
      continue;
    }
    bool keep = true;
    switch (type) {
      case DbFileType::kLogFile:
        keep = (number >= versions_->LogNumber());
        break;
      case DbFileType::kDescriptorFile:
        keep = (number >= versions_->ManifestFileNumber());
        break;
      case DbFileType::kTableFile:
        keep = (live.find(number) != live.end());
        break;
      case DbFileType::kTempFile:
        keep = (live.find(number) != live.end());
        break;
      case DbFileType::kCurrentFile:
      case DbFileType::kDekCacheFile:
        keep = true;
        break;
    }
    if (!keep) {
      files_to_delete.push_back(filename);
      if (type == DbFileType::kTableFile) {
        table_cache_->Evict(number);
      }
    }
  }

  // Delete outside the lock: file deletion under SHIELD talks to the
  // KDS (DEK destruction) and may block.
  mutex_.unlock();
  for (const std::string& filename : files_to_delete) {
    files_->DeleteFile(dbname_ + "/" + filename);
  }
  mutex_.lock();
}

Status DBImpl::Recover() {
  std::unique_lock<std::mutex> lock(mutex_);

  Status s = options_.env->CreateDirIfMissing(dbname_);
  if (!s.ok()) {
    return s;
  }
  // Capture the physical view of the directory before SetupEncryption
  // may interpose the EncFS env: quarantine/repair move on-disk images
  // byte-for-byte.
  raw_env_ = options_.env;
  SetupInfoLog();
  error_handler_.Configure(options_.background_error_resume_policy,
                           options_.listeners, event_logger_.get());
  // Interpose the tracing env directly above the physical env, then the
  // counting env, then encryption: both observability layers see
  // ciphertext traffic (what actually hits storage), and the tracing
  // wrapper is a single relaxed atomic load when no trace is active.
  owned_tracing_env_ = NewIOTracingEnv(options_.env);
  options_.env = owned_tracing_env_.get();
  io_stats_.SetStatisticsSink(options_.statistics.get());
  owned_counting_env_ = NewCountingEnv(options_.env, &io_stats_);
  options_.env = owned_counting_env_.get();
  s = SetupEncryption();
  if (!s.ok()) {
    return s;
  }

  block_cache_ = options_.block_cache_size > 0
                     ? NewLRUCache(options_.block_cache_size)
                     : nullptr;
  table_cache_ = std::make_unique<TableCache>(
      dbname_, options_, &internal_comparator_, files_.get(), block_cache_,
      /*max_open_tables=*/1000);
  versions_ = std::make_unique<VersionSet>(dbname_, options_,
                                           &internal_comparator_,
                                           table_cache_.get(), files_.get());

  if (!options_.env->FileExists(CurrentFileName(dbname_))) {
    if (read_only_) {
      return Status::NotFound("database does not exist", dbname_);
    }
    if (options_.create_if_missing) {
      s = NewDb();
      if (!s.ok()) {
        return s;
      }
    } else {
      return Status::InvalidArgument(dbname_,
                                     "does not exist (create_if_missing=false)");
    }
  } else if (options_.error_if_exists && !read_only_) {
    return Status::InvalidArgument(dbname_, "exists (error_if_exists=true)");
  }

  s = versions_->Recover();
  if (!s.ok()) {
    return s;
  }

  // Replay WALs newer than the manifest state.
  TraceSpan recover_span(SpanType::kRecovery, Slice(dbname_));
  SequenceNumber max_sequence = 0;
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = options_.env->GetChildren(dbname_, &filenames);
  if (!s.ok()) {
    return s;
  }
  std::vector<uint64_t> logs;
  uint64_t number;
  DbFileType type;
  for (const std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type) &&
        type == DbFileType::kLogFile && number >= min_log) {
      logs.push_back(number);
    }
  }
  std::sort(logs.begin(), logs.end());

  VersionEdit edit;
  for (uint64_t log_number : logs) {
    s = RecoverLogFile(log_number, &max_sequence, &edit);
    if (!s.ok()) {
      if (!options_.paranoid_checks &&
          (s.IsCorruption() || s.IsNotFound())) {
        // Damage that crash semantics can explain: a WAL torn below
        // its header (SHIELD files need 64 durable bytes before any
        // record), or removed after its contents were flushed. Every
        // record replayed before the damage is kept; only unsynced —
        // hence unacknowledged — data can be missing. Salvage and
        // continue.
        recovery_salvaged_logs_.fetch_add(1, std::memory_order_relaxed);
        if (event_logger_ != nullptr && event_logger_->enabled()) {
          JsonWriter w = event_logger_->NewEvent("wal_salvage");
          w.Add("log_number", log_number);
          w.Add("error", s.ToString());
          event_logger_->Emit(&w);
        }
        s = Status::OK();
      } else {
        return s;
      }
    }
    versions_->MarkFileNumberUsed(log_number);
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }

  if (read_only_) {
    if (mem_ == nullptr) {
      mem_ = new MemTable(internal_comparator_, options_.memtable_shards);
      mem_->Ref();
    }
    RecordCatchupApplied();
    SetupHealthPlane();
    return Status::OK();
  }

  // Start a fresh WAL and persist the recovery edit.
  const uint64_t new_log_number = versions_->NewFileNumber();
  std::unique_ptr<WritableFile> lfile;
  s = files_->NewWritableFile(LogFileName(dbname_, new_log_number),
                              FileKind::kWal, &lfile);
  if (!s.ok()) {
    return s;
  }
  logfile_ = std::move(lfile);
  logfile_number_ = new_log_number;
  log_ = std::make_unique<log::Writer>(
      logfile_.get(), 0, options_.encryption.wal_padding_buckets,
      options_.statistics.get());
  edit.SetLogNumber(new_log_number);

  s = versions_->LogAndApply(&edit, &mutex_);
  if (!s.ok()) {
    return s;
  }

  if (mem_ == nullptr) {
    mem_ = new MemTable(internal_comparator_, options_.memtable_shards);
    mem_->Ref();
  }

  bg_pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(options_.max_background_jobs));
  if (options_.memtable_shards > 1) {
    // One worker per non-leader shard, capped at the machine: with
    // fewer workers than shards the extra shard applies just queue.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    apply_pool_ = std::make_unique<ThreadPool>(std::min<size_t>(
        static_cast<size_t>(options_.memtable_shards - 1), hw));
  }

  RemoveObsoleteFiles();
  MaybeScheduleCompaction();

  if (options_.scrub_interval_micros > 0) {
    scrub_thread_ = std::thread([this] { ScrubLoop(); });
  }

  if (options_.encryption.mode == EncryptionMode::kShield) {
    // A ROTATION manifest on disk means a rotation was interrupted;
    // the rotation thread finishes it before anything else, even when
    // no periodic rotation is configured (one-shot resume).
    rotation_pending_at_open_ = ResumePendingRotation();
    if (options_.dek_rotation_interval_micros > 0 ||
        rotation_pending_at_open_) {
      rotation_thread_ = std::thread([this] { RotationLoop(); });
    }
  }
  SetupHealthPlane();
  return Status::OK();
}

Status DB::Open(const Options& options, const std::string& name, DB** dbptr) {
  *dbptr = nullptr;
  auto impl = std::make_unique<DBImpl>(options, name, /*read_only=*/false);
  Status s = impl->Recover();
  if (!s.ok()) {
    return s;
  }
  *dbptr = impl.release();
  return Status::OK();
}

Status DB::OpenReadOnly(const Options& options, const std::string& name,
                        DB** dbptr) {
  *dbptr = nullptr;
  auto impl = std::make_unique<DBImpl>(options, name, /*read_only=*/true);
  Status s = impl->Recover();
  if (!s.ok()) {
    return s;
  }
  *dbptr = impl.release();
  return Status::OK();
}

const Snapshot* DBImpl::GetSnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

void DBImpl::WaitForIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (!error_handler_.ok() ||
        shutting_down_.load(std::memory_order_acquire)) {
      return;
    }
    if (imm_ != nullptr || flush_scheduled_ || compaction_scheduled_) {
      background_work_finished_signal_.wait(lock);
      continue;
    }
    if (versions_ != nullptr && versions_->NeedsCompaction() &&
        !manual_compaction_running_ && bg_pool_ != nullptr) {
      MaybeScheduleCompaction();
      if (!compaction_scheduled_) {
        return;  // could not schedule (shutdown)
      }
      continue;
    }
    return;
  }
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();
  Slice in = property;
  const Slice prefix("shield.");
  if (!in.starts_with(prefix)) {
    return false;
  }
  in.remove_prefix(prefix.size());

  // Properties that must not (or need not) hold mutex_: the health
  // JSON reads monitor state only, and the catch-up probes touch the
  // shared namespace + atomics — both may be polled by detectors or
  // monitors while the DB mutex is busy.
  if (in == Slice("health")) {
    *value = health_monitor_.ToJson();
    return true;
  }
  if (in == Slice("replica.catchup-lag-bytes")) {
    uint64_t lag_bytes = 0, lag_generations = 0;
    (void)ComputeCatchupLag(&lag_bytes, &lag_generations);
    *value = std::to_string(lag_bytes);
    return true;
  }
  if (in == Slice("replica.catchup-lag-generations")) {
    uint64_t lag_bytes = 0, lag_generations = 0;
    (void)ComputeCatchupLag(&lag_bytes, &lag_generations);
    *value = std::to_string(lag_generations);
    return true;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (in.starts_with("num-files-at-level")) {
    in.remove_prefix(strlen("num-files-at-level"));
    const int level = atoi(in.ToString().c_str());
    if (level < 0 || level >= versions_->num_levels()) {
      return false;
    }
    *value = std::to_string(versions_->NumLevelFiles(level));
    return true;
  }
  if (in == Slice("stats")) {
    char buf[256];
    snprintf(buf, sizeof(buf),
             "level  files  size(MB)  time(s)  read(MB)  write(MB)\n"
             "-----------------------------------------------------\n");
    value->append(buf);
    for (int level = 0; level < versions_->num_levels(); level++) {
      const int files = versions_->NumLevelFiles(level);
      if (stats_[level].micros > 0 || files > 0) {
        snprintf(buf, sizeof(buf), "%3d %8d %8.1f %8.1f %9.1f %9.1f\n", level,
                 files, versions_->NumLevelBytes(level) / 1048576.0,
                 stats_[level].micros / 1e6,
                 stats_[level].bytes_read / 1048576.0,
                 stats_[level].bytes_written / 1048576.0);
        value->append(buf);
      }
    }
    value->append("io: ");
    value->append(io_stats_.ToString());
    value->append("\n");
    if (options_.statistics != nullptr) {
      value->append(options_.statistics->ToString());
    }
    return true;
  }
  if (in == Slice("io-stats")) {
    *value = io_stats_.ToString();
    return true;
  }
  if (in == Slice("sstables")) {
    *value = versions_->current()->DebugString();
    return true;
  }
  if (in == Slice("kds-requests")) {
    *value = std::to_string(dek_manager_ ? dek_manager_->kds_requests() : 0);
    return true;
  }
  if (in == Slice("dek-cache-hits")) {
    *value = std::to_string(dek_manager_ ? dek_manager_->cache_hits() : 0);
    return true;
  }
  if (in == Slice("approximate-memtable-bytes")) {
    size_t total = mem_ != nullptr ? mem_->ApproximateMemoryUsage() : 0;
    if (imm_ != nullptr) {
      total += imm_->ApproximateMemoryUsage();
    }
    *value = std::to_string(total);
    return true;
  }
  if (in == Slice("last-sequence")) {
    // Regression surface for the write path: a failed group write must
    // not advance this (sequence gaps would stand for batches that
    // never landed).
    *value = std::to_string(versions_->LastSequence());
    return true;
  }
  if (in == Slice("memtable-shards")) {
    *value = std::to_string(mem_ != nullptr ? mem_->shard_count()
                                            : options_.memtable_shards);
    return true;
  }
  if (in == Slice("stall-micros")) {
    *value = std::to_string(stall_micros_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("offload-fallbacks")) {
    *value =
        std::to_string(offload_fallbacks_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("recovery-salvaged-logs")) {
    *value = std::to_string(
        recovery_salvaged_logs_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("error-handler-state")) {
    *value = DbErrorStateName(error_handler_.state());
    return true;
  }
  if (in == Slice("background-error")) {
    *value = error_handler_.bg_error().ToString();
    return true;
  }
  if (in == Slice("error-recoveries")) {
    *value = std::to_string(error_handler_.recoveries());
    return true;
  }
  if (in == Slice("scrub-corruptions-detected")) {
    *value = std::to_string(
        scrub_corruptions_detected_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("scrub-repaired-files")) {
    *value =
        std::to_string(scrub_repaired_files_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("scrub-quarantined-files")) {
    *value = std::to_string(
        scrub_quarantined_files_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("rotation-state")) {
    if (rotation_running_.load(std::memory_order_acquire)) {
      *value = "running";
    } else {
      const uint64_t pending =
          rotation_pending_files_.load(std::memory_order_relaxed);
      *value = pending > 0 ? "pending:" + std::to_string(pending) : "idle";
    }
    return true;
  }
  if (in == Slice("rotation-files-rotated")) {
    *value = std::to_string(
        rotation_files_rotated_.load(std::memory_order_relaxed));
    return true;
  }
  if (in == Slice("dek.pending-deletes")) {
    *value = std::to_string(
        dek_manager_ != nullptr ? dek_manager_->pending_deletes() : 0);
    return true;
  }
  if (in == Slice("levelstats")) {
    // One row per level: "level files bytes" (machine-friendly; the
    // human table lives under "shield.stats").
    char buf[64];
    value->append("level files bytes\n");
    for (int level = 0; level < versions_->num_levels(); level++) {
      snprintf(buf, sizeof(buf), "%d %d %lld\n", level,
               versions_->NumLevelFiles(level),
               static_cast<long long>(versions_->NumLevelBytes(level)));
      value->append(buf);
    }
    return true;
  }
  if (in == Slice("dek-cache-stats")) {
    char buf[160];
    snprintf(buf, sizeof(buf),
             "hits=%llu misses=%llu evictions=%llu entries=%llu",
             static_cast<unsigned long long>(
                 dek_manager_ ? dek_manager_->cache_hits() : 0),
             static_cast<unsigned long long>(
                 dek_manager_ ? dek_manager_->cache_misses() : 0),
             static_cast<unsigned long long>(
                 dek_manager_ ? dek_manager_->evictions() : 0),
             static_cast<unsigned long long>(
                 dek_manager_ ? dek_manager_->entries() : 0));
    *value = buf;
    return true;
  }
  if (in == Slice("metrics")) {
    if (options_.statistics == nullptr) {
      return false;
    }
    RefreshMetricsGauges();
    if (options_.statistics->registry() == &metrics_) {
      // One well-formed encoder over everything: ticker counters,
      // labeled latency summaries + sliding windows, level gauges,
      // health gauges, catch-up lag.
      options_.statistics->SyncRegistry();
      *value = metrics_.ToPrometheusText();
    } else {
      // The Statistics object is shared and mirrored into another DB's
      // registry: emit its families from its own encoder, then our
      // DB-level gauge families.
      *value = options_.statistics->ToPrometheusText();
      value->append(metrics_.ToPrometheusText());
    }
    return true;
  }
  return false;
}

Status DBImpl::Resume() {
  std::lock_guard<std::mutex> lock(mutex_);
  Status s = error_handler_.Resume();
  if (s.ok()) {
    // Pending work may have accumulated while writes were stopped.
    MaybeScheduleFlush();
    MaybeScheduleCompaction();
    background_work_finished_signal_.notify_all();
  }
  return s;
}

Status DBImpl::StartTrace(const TraceOptions& trace_options,
                          const std::string& trace_path) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  if (tracer_.active()) {
    return Status::Busy("this DB already has an active trace");
  }
  TraceOptions opts = trace_options;
  if (opts.node_name.empty()) {
    opts.node_name = options_.node_name;
  }
  // The trace is written through the physical env: plaintext on
  // purpose (span labels are file names, never keys or user data), and
  // replayable against a raw directory. TraceOptions::trace_env
  // overrides the destination (the simulator points it at a zero-cost
  // backing store so tracing never perturbs virtual time).
  Env* trace_env = opts.trace_env != nullptr ? opts.trace_env : raw_env_;
  Status s = tracer_.Start(trace_env, trace_path, opts,
                           options_.statistics.get());
  if (s.ok() && event_logger_ != nullptr && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("trace_start");
    w.Add("path", trace_path);
    event_logger_->Emit(&w);
  }
  return s;
}

Status DBImpl::EndTrace() {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  if (!tracer_.active()) {
    return Status::InvalidArgument("no active trace on this DB");
  }
  Status s = tracer_.Stop();
  RecordTick(options_.statistics.get(), Tickers::kIoTraceDropped,
             tracer_.spans_dropped());
  if (event_logger_ != nullptr && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("trace_end");
    w.Add("spans_recorded", tracer_.spans_recorded());
    w.Add("spans_dropped", tracer_.spans_dropped());
    w.Add("status", s.ToString());
    event_logger_->Emit(&w);
  }
  return s;
}

Status DestroyDB(const Options& options, const std::string& name) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  std::vector<std::string> filenames;
  Status s = env->GetChildren(name, &filenames);
  if (!s.ok()) {
    return Status::OK();  // nothing to destroy
  }
  for (const std::string& filename : filenames) {
    env->RemoveFile(name + "/" + filename);
  }
  env->RemoveDir(name);
  return Status::OK();
}

}  // namespace shield
