#include "lsm/sst_reader.h"

#include "lsm/block.h"
#include "lsm/two_level_iterator.h"
#include "util/coding.h"
#include "util/perf_context.h"
#include "util/statistics.h"

namespace shield {

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete reinterpret_cast<Block*>(value);
}

void ReleaseBlockHandle(void* arg1, void* arg2) {
  Cache* cache = reinterpret_cast<Cache*>(arg1);
  Cache::Handle* handle = reinterpret_cast<Cache::Handle*>(arg2);
  cache->Release(handle);
}

// An iterator wrapper that releases a cache handle (or deletes an
// owned block) when destroyed.
class BlockIterCleanup final : public Iterator {
 public:
  BlockIterCleanup(Iterator* iter, Block* owned_block, Cache* cache,
                   Cache::Handle* handle)
      : iter_(iter), owned_block_(owned_block), cache_(cache),
        handle_(handle) {}

  ~BlockIterCleanup() override {
    delete iter_;
    if (handle_ != nullptr) {
      ReleaseBlockHandle(cache_, handle_);
    } else {
      delete owned_block_;
    }
  }

  bool Valid() const override { return iter_->Valid(); }
  void Seek(const Slice& t) override { iter_->Seek(t); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void SeekToLast() override { iter_->SeekToLast(); }
  void Next() override { iter_->Next(); }
  void Prev() override { iter_->Prev(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  Iterator* iter_;
  Block* owned_block_;
  Cache* cache_;
  Cache::Handle* handle_;
};

Status ReadBlockObject(RandomAccessFile* file, const ReadOptions& options,
                       const BlockHandle& handle, const std::string& fname,
                       Block** block) {
  BlockContents contents;
  Status s = ReadBlock(file, options, handle, &contents, fname);
  if (!s.ok()) {
    return s;
  }
  if (!contents.heap_allocated) {
    // The block must own stable storage (the cache may outlive the
    // read buffer); copy.
    char* buf = new char[contents.data.size()];
    memcpy(buf, contents.data.data(), contents.data.size());
    contents.data = Slice(buf, contents.data.size());
    contents.heap_allocated = true;
  }
  *block = new Block(contents.data.data(), contents.data.size(),
                     /*owned=*/true);
  return Status::OK();
}

// ReadBlockObject plus per-operation accounting: sst.read.micros
// histogram and the PerfContext block_read_* fields.
Status ReadBlockObjectCounted(RandomAccessFile* file,
                              const ReadOptions& options,
                              const BlockHandle& handle,
                              const std::string& fname, Statistics* stats,
                              Block** block) {
  Status s;
  {
    StopWatch watch(stats, Histograms::kSstReadMicros);
    PerfTimer timer(&GetPerfContext()->block_read_micros);
    s = ReadBlockObject(file, options, handle, fname, block);
  }
  if (s.ok()) {
    PerfAdd(&PerfContext::block_read_count, 1);
    PerfAdd(&PerfContext::block_read_bytes, (*block)->size());
  }
  return s;
}

}  // namespace

Status Table::Open(const Options& options, const InternalKeyComparator* icmp,
                   const std::string& fname,
                   std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                   std::shared_ptr<Cache> block_cache,
                   std::unique_ptr<Table>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable", fname);
  }
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s = file->Read(file_size - Footer::kEncodedLength,
                        Footer::kEncodedLength, &footer_input, footer_space);
  if (!s.ok()) {
    return s;
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  // Index block.
  ReadOptions opt;
  opt.verify_checksums = true;
  Block* index_block = nullptr;
  s = ReadBlockObject(file.get(), opt, footer.index_handle(), fname,
                      &index_block);
  if (!s.ok()) {
    return s;
  }

  // Properties block.
  TableProperties props;
  BlockContents prop_contents;
  s = ReadBlock(file.get(), opt, footer.properties_handle(), &prop_contents,
                fname);
  if (s.ok()) {
    s = DecodeTableProperties(prop_contents.data, &props);
    if (prop_contents.heap_allocated) {
      delete[] prop_contents.data.data();
    }
  }
  if (!s.ok()) {
    delete index_block;
    return s;
  }

  std::unique_ptr<Table> t(new Table());
  t->options_ = options;
  t->icmp_ = icmp;
  t->fname_ = fname;
  t->file_ = std::move(file);
  t->index_block_.reset(index_block);
  t->properties_ = std::move(props);
  t->block_cache_ = std::move(block_cache);
  t->cache_id_ = t->block_cache_ ? t->block_cache_->NewId() : 0;

  // Attach the bloom filter when the table carries one built by the
  // same policy the reader is configured with.
  if (options.filter_policy != nullptr) {
    auto handle_it = t->properties_.find(kPropFilterHandle);
    auto name_it = t->properties_.find(kPropFilterPolicy);
    if (handle_it != t->properties_.end() &&
        name_it != t->properties_.end() &&
        name_it->second == options.filter_policy->Name()) {
      BlockHandle filter_handle;
      Slice handle_input(handle_it->second);
      if (filter_handle.DecodeFrom(&handle_input).ok()) {
        BlockContents filter_contents;
        if (ReadBlock(t->file_.get(), opt, filter_handle, &filter_contents,
                      fname)
                .ok()) {
          t->filter_data_.assign(filter_contents.data.data(),
                                 filter_contents.data.size());
          if (filter_contents.heap_allocated) {
            delete[] filter_contents.data.data();
          }
          t->filter_ = std::make_unique<FilterBlockReader>(
              options.filter_policy, t->filter_data_);
        }
      }
    }
  }

  *table = std::move(t);
  return Status::OK();
}

Table::~Table() = default;

Iterator* Table::BlockReader(const ReadOptions& options,
                             const Slice& index_value) const {
  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;
  if (block_cache_ != nullptr) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, cache_id_);
    EncodeFixed64(cache_key_buffer + 8, handle.offset());
    const Slice key(cache_key_buffer, sizeof(cache_key_buffer));
    cache_handle = block_cache_->Lookup(key);
    if (cache_handle != nullptr) {
      block = reinterpret_cast<Block*>(block_cache_->Value(cache_handle));
      RecordTick(options_.statistics.get(), Tickers::kLsmBlockCacheHit);
      PerfAdd(&PerfContext::block_cache_hit_count, 1);
    } else {
      RecordTick(options_.statistics.get(), Tickers::kLsmBlockCacheMiss);
      s = ReadBlockObjectCounted(file_.get(), options, handle, fname_,
                                 options_.statistics.get(), &block);
      if (s.ok() && options.fill_cache) {
        cache_handle = block_cache_->Insert(key, block, block->size(),
                                            &DeleteCachedBlock);
      }
    }
  } else {
    s = ReadBlockObjectCounted(file_.get(), options, handle, fname_,
                               options_.statistics.get(), &block);
  }

  if (!s.ok()) {
    return NewErrorIterator(s);
  }
  Iterator* iter = block->NewIterator(icmp_);
  const bool cached = cache_handle != nullptr;
  return new BlockIterCleanup(iter, cached ? nullptr : block,
                              block_cache_.get(), cache_handle);
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  return NewTwoLevelIterator(
      index_block_->NewIterator(icmp_),
      [this, options](const Slice& index_value) {
        return BlockReader(options, index_value);
      });
}

Status Table::VerifyBlocks(
    const std::function<void(uint64_t)>& on_block) const {
  ReadOptions opt;
  opt.verify_checksums = true;
  opt.fill_cache = false;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    BlockContents contents;
    // Fresh read straight from the file: a cached copy could mask
    // on-media damage.
    s = ReadBlock(file_.get(), opt, handle, &contents, fname_);
    if (!s.ok()) {
      return s;
    }
    if (contents.heap_allocated) {
      delete[] contents.data.data();
    }
    if (on_block) {
      on_block(handle.size() + kBlockTrailerSize);
    }
  }
  return index_iter->status();
}

Status Table::SalvageEntries(
    const std::function<void(const Slice&, const Slice&)>& fn,
    uint64_t* dropped_blocks) const {
  ReadOptions opt;
  opt.verify_checksums = true;
  opt.fill_cache = false;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Block* block = nullptr;
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      s = ReadBlockObject(file_.get(), opt, handle, fname_, &block);
    }
    if (!s.ok()) {
      // Skipping a whole block preserves key order across the
      // surviving ones, so the salvage output is still a valid SST.
      (*dropped_blocks)++;
      continue;
    }
    std::unique_ptr<Iterator> block_iter(block->NewIterator(icmp_));
    for (block_iter->SeekToFirst(); block_iter->Valid(); block_iter->Next()) {
      fn(block_iter->key(), block_iter->value());
    }
    const Status iter_status = block_iter->status();
    block_iter.reset();
    delete block;
    if (!iter_status.ok()) {
      return iter_status;
    }
  }
  return index_iter->status();
}

Status Table::InternalGet(const ReadOptions& options, const Slice& key,
                          void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&)) {
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));
  index_iter->Seek(key);
  Status s;
  if (index_iter->Valid()) {
    if (filter_ != nullptr) {
      BlockHandle handle;
      Slice handle_value = index_iter->value();
      if (handle.DecodeFrom(&handle_value).ok() &&
          !filter_->KeyMayMatch(handle.offset(), ExtractUserKey(key))) {
        // Filter proves absence: skip the block fetch (and its
        // decryption).
        return Status::OK();
      }
    }
    std::unique_ptr<Iterator> block_iter(
        BlockReader(options, index_iter->value()));
    block_iter->Seek(key);
    if (block_iter->Valid()) {
      (*handle_result)(arg, block_iter->key(), block_iter->value());
    }
    s = block_iter->status();
  }
  if (s.ok()) {
    s = index_iter->status();
  }
  return s;
}

}  // namespace shield
