#include "lsm/sst_reader.h"

#include <algorithm>

#include "crypto/block_auth.h"
#include "env/readahead_file.h"
#include "lsm/block.h"
#include "lsm/two_level_iterator.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/perf_context.h"
#include "util/statistics.h"

namespace shield {

namespace {

// Coalescing policy for MultiGet block fetches: adjacent uncached
// blocks merge into one span read when the dead bytes between them
// are small relative to a round trip, up to a bounded span so one
// batch cannot balloon memory.
constexpr uint64_t kMaxCoalesceGapBytes = 16 * 1024;
constexpr uint64_t kMaxCoalesceSpanBytes = 1024 * 1024;

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete reinterpret_cast<Block*>(value);
}

void DeleteNothing(const Slice& /*key*/, void* /*value*/) {}

void ReleaseBlockHandle(void* arg1, void* arg2) {
  Cache* cache = reinterpret_cast<Cache*>(arg1);
  Cache::Handle* handle = reinterpret_cast<Cache::Handle*>(arg2);
  cache->Release(handle);
}

// An iterator wrapper that releases a cache handle (or deletes an
// owned block) when destroyed.
class BlockIterCleanup final : public Iterator {
 public:
  BlockIterCleanup(Iterator* iter, Block* owned_block, Cache* cache,
                   Cache::Handle* handle)
      : iter_(iter), owned_block_(owned_block), cache_(cache),
        handle_(handle) {}

  ~BlockIterCleanup() override {
    delete iter_;
    if (handle_ != nullptr) {
      ReleaseBlockHandle(cache_, handle_);
    } else {
      delete owned_block_;
    }
  }

  bool Valid() const override { return iter_->Valid(); }
  void Seek(const Slice& t) override { iter_->Seek(t); }
  void SeekToFirst() override { iter_->SeekToFirst(); }
  void SeekToLast() override { iter_->SeekToLast(); }
  void Next() override { iter_->Next(); }
  void Prev() override { iter_->Prev(); }
  Slice key() const override { return iter_->key(); }
  Slice value() const override { return iter_->value(); }
  Status status() const override { return iter_->status(); }

 private:
  Iterator* iter_;
  Block* owned_block_;
  Cache* cache_;
  Cache::Handle* handle_;
};

Status ReadBlockObject(RandomAccessFile* file, const ReadOptions& options,
                       const BlockHandle& handle, const std::string& fname,
                       Block** block) {
  BlockContents contents;
  Status s = ReadBlock(file, options, handle, &contents, fname);
  if (!s.ok()) {
    return s;
  }
  if (!contents.heap_allocated) {
    // The block must own stable storage (the cache may outlive the
    // read buffer); copy.
    char* buf = new char[contents.data.size()];
    memcpy(buf, contents.data.data(), contents.data.size());
    contents.data = Slice(buf, contents.data.size());
    contents.heap_allocated = true;
  }
  *block = new Block(contents.data.data(), contents.data.size(),
                     /*owned=*/true);
  return Status::OK();
}

// ReadBlockObject plus per-operation accounting: sst.read.micros
// histogram and the PerfContext block_read_* fields.
Status ReadBlockObjectCounted(RandomAccessFile* file,
                              const ReadOptions& options,
                              const BlockHandle& handle,
                              const std::string& fname, Statistics* stats,
                              Block** block) {
  Status s;
  {
    StopWatch watch(stats, Histograms::kSstReadMicros);
    PerfTimer timer(&GetPerfContext()->block_read_micros);
    s = ReadBlockObject(file, options, handle, fname, block);
  }
  if (s.ok()) {
    PerfAdd(&PerfContext::block_read_count, 1);
    PerfAdd(&PerfContext::block_read_bytes, (*block)->size());
  }
  return s;
}

}  // namespace

Status Table::Open(const Options& options, const InternalKeyComparator* icmp,
                   const std::string& fname,
                   std::unique_ptr<RandomAccessFile> file, uint64_t file_size,
                   std::shared_ptr<Cache> block_cache,
                   std::unique_ptr<Table>* table) {
  table->reset();
  if (file_size < Footer::kEncodedLength) {
    return Status::Corruption("file is too short to be an sstable", fname);
  }
  // Same bounded retry as ReadBlock: tables open lazily, so a single
  // transient or torn footer read must not condemn the whole file as
  // corrupt. A genuinely truncated file fails identically every time.
  char footer_space[Footer::kEncodedLength];
  Slice footer_input;
  Status s;
  constexpr int kMaxFooterAttempts = 5;
  for (int attempt = 1;; attempt++) {
    s = file->Read(file_size - Footer::kEncodedLength, Footer::kEncodedLength,
                   &footer_input, footer_space);
    if (s.ok() && footer_input.size() == Footer::kEncodedLength) {
      break;
    }
    if (attempt < kMaxFooterAttempts && (s.ok() || s.IsTransient())) {
      SleepForMicros(100ull << attempt);
      continue;
    }
    return s.ok() ? Status::Corruption("truncated footer read", fname) : s;
  }
  Footer footer;
  s = footer.DecodeFrom(&footer_input);
  if (!s.ok()) {
    return s;
  }

  // Index block.
  ReadOptions opt;
  opt.verify_checksums = true;
  Block* index_block = nullptr;
  s = ReadBlockObject(file.get(), opt, footer.index_handle(), fname,
                      &index_block);
  if (!s.ok()) {
    return s;
  }

  // Properties block.
  TableProperties props;
  BlockContents prop_contents;
  s = ReadBlock(file.get(), opt, footer.properties_handle(), &prop_contents,
                fname);
  if (s.ok()) {
    s = DecodeTableProperties(prop_contents.data, &props);
    if (prop_contents.heap_allocated) {
      delete[] prop_contents.data.data();
    }
  }
  if (!s.ok()) {
    delete index_block;
    return s;
  }

  std::unique_ptr<Table> t(new Table());
  t->options_ = options;
  t->icmp_ = icmp;
  t->fname_ = fname;
  t->file_ = std::move(file);
  t->index_block_.reset(index_block);
  t->properties_ = std::move(props);
  t->block_cache_ = std::move(block_cache);
  t->cache_id_ = t->block_cache_ ? t->block_cache_->NewId() : 0;

  // Attach the bloom filter when the table carries one built by the
  // same policy the reader is configured with.
  if (options.filter_policy != nullptr) {
    auto handle_it = t->properties_.find(kPropFilterHandle);
    auto name_it = t->properties_.find(kPropFilterPolicy);
    if (handle_it != t->properties_.end() &&
        name_it != t->properties_.end() &&
        name_it->second == options.filter_policy->Name()) {
      BlockHandle filter_handle;
      Slice handle_input(handle_it->second);
      if (filter_handle.DecodeFrom(&handle_input).ok()) {
        BlockContents filter_contents;
        if (ReadBlock(t->file_.get(), opt, filter_handle, &filter_contents,
                      fname)
                .ok()) {
          t->filter_data_.assign(filter_contents.data.data(),
                                 filter_contents.data.size());
          if (filter_contents.heap_allocated) {
            delete[] filter_contents.data.data();
          }
          t->filter_ = std::make_unique<FilterBlockReader>(
              options.filter_policy, t->filter_data_);
        }
      }
    }
  }

  // Charge the block cache for the pinned metadata this table keeps
  // resident (index block + bloom filter): a referenced high-priority
  // entry, so the footprint shows up in TotalCharge() and competes
  // with data blocks for budget, while the pin (the handle we hold)
  // guarantees the metadata itself is never evicted mid-life.
  if (t->block_cache_ != nullptr) {
    char pin_key[16];
    EncodeFixed64(pin_key, t->cache_id_);
    EncodeFixed64(pin_key + 8, UINT64_MAX);  // no block lives at this offset
    const size_t metadata_bytes =
        t->index_block_->size() + t->filter_data_.size();
    t->metadata_pin_ =
        t->block_cache_->Insert(Slice(pin_key, sizeof(pin_key)), nullptr,
                                metadata_bytes, &DeleteNothing,
                                Cache::Priority::kHigh);
  }

  *table = std::move(t);
  return Status::OK();
}

Table::~Table() {
  if (metadata_pin_ != nullptr) {
    block_cache_->Release(metadata_pin_);
  }
}

Iterator* Table::BlockReader(const ReadOptions& options,
                             const Slice& index_value,
                             RandomAccessFile* file) const {
  BlockHandle handle;
  Slice input = index_value;
  Status s = handle.DecodeFrom(&input);
  if (!s.ok()) {
    return NewErrorIterator(s);
  }

  Block* block = nullptr;
  Cache::Handle* cache_handle = nullptr;
  if (block_cache_ != nullptr) {
    char cache_key_buffer[16];
    EncodeFixed64(cache_key_buffer, cache_id_);
    EncodeFixed64(cache_key_buffer + 8, handle.offset());
    const Slice key(cache_key_buffer, sizeof(cache_key_buffer));
    cache_handle = block_cache_->Lookup(key);
    if (cache_handle != nullptr) {
      block = reinterpret_cast<Block*>(block_cache_->Value(cache_handle));
      RecordTick(options_.statistics.get(), Tickers::kLsmBlockCacheHit);
      PerfAdd(&PerfContext::block_cache_hit_count, 1);
    } else {
      RecordTick(options_.statistics.get(), Tickers::kLsmBlockCacheMiss);
      s = ReadBlockObjectCounted(file, options, handle, fname_,
                                 options_.statistics.get(), &block);
      if (s.ok() && options.fill_cache) {
        cache_handle = block_cache_->Insert(key, block, block->size(),
                                            &DeleteCachedBlock);
      }
    }
  } else {
    s = ReadBlockObjectCounted(file, options, handle, fname_,
                               options_.statistics.get(), &block);
  }

  if (!s.ok()) {
    return NewErrorIterator(s);
  }
  Iterator* iter = block->NewIterator(icmp_);
  const bool cached = cache_handle != nullptr;
  return new BlockIterCleanup(iter, cached ? nullptr : block,
                              block_cache_.get(), cache_handle);
}

Iterator* Table::NewIterator(const ReadOptions& options) const {
  // With readahead enabled, block reads for this iterator go through a
  // shared prefetch window over the logical (decrypted) file. The
  // wrapper lives in the block-reader closure, so it survives exactly
  // as long as the iterator that fills it.
  std::shared_ptr<RandomAccessFile> readahead;
  if (options.readahead_size > 0) {
    readahead = std::make_shared<ReadaheadRandomAccessFile>(
        file_.get(),
        std::min<size_t>(kDefaultReadaheadInitial, options.readahead_size),
        options.readahead_size, options_.statistics.get());
  }
  return NewTwoLevelIterator(
      index_block_->NewIterator(icmp_),
      [this, options, readahead](const Slice& index_value) {
        return BlockReader(options, index_value,
                           readahead != nullptr ? readahead.get()
                                                : file_.get());
      });
}

Status Table::VerifyBlocks(
    const std::function<void(uint64_t)>& on_block) const {
  ReadOptions opt;
  opt.verify_checksums = true;
  opt.fill_cache = false;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    BlockContents contents;
    // Fresh read straight from the file: a cached copy could mask
    // on-media damage.
    s = ReadBlock(file_.get(), opt, handle, &contents, fname_);
    if (!s.ok()) {
      return s;
    }
    if (contents.heap_allocated) {
      delete[] contents.data.data();
    }
    if (on_block) {
      on_block(handle.size() + kBlockTrailerSize);
    }
  }
  return index_iter->status();
}

Status Table::SalvageEntries(
    const std::function<void(const Slice&, const Slice&)>& fn,
    uint64_t* dropped_blocks) const {
  ReadOptions opt;
  opt.verify_checksums = true;
  opt.fill_cache = false;
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));
  for (index_iter->SeekToFirst(); index_iter->Valid(); index_iter->Next()) {
    Block* block = nullptr;
    BlockHandle handle;
    Slice input = index_iter->value();
    Status s = handle.DecodeFrom(&input);
    if (s.ok()) {
      s = ReadBlockObject(file_.get(), opt, handle, fname_, &block);
    }
    if (!s.ok()) {
      // Skipping a whole block preserves key order across the
      // surviving ones, so the salvage output is still a valid SST.
      (*dropped_blocks)++;
      continue;
    }
    std::unique_ptr<Iterator> block_iter(block->NewIterator(icmp_));
    for (block_iter->SeekToFirst(); block_iter->Valid(); block_iter->Next()) {
      fn(block_iter->key(), block_iter->value());
    }
    const Status iter_status = block_iter->status();
    block_iter.reset();
    delete block;
    if (!iter_status.ok()) {
      return iter_status;
    }
  }
  return index_iter->status();
}

Status Table::InternalGet(const ReadOptions& options, const Slice& key,
                          void* arg,
                          void (*handle_result)(void*, const Slice&,
                                                const Slice&)) {
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));
  index_iter->Seek(key);
  Status s;
  if (index_iter->Valid()) {
    if (filter_ != nullptr) {
      BlockHandle handle;
      Slice handle_value = index_iter->value();
      if (handle.DecodeFrom(&handle_value).ok() &&
          !filter_->KeyMayMatch(handle.offset(), ExtractUserKey(key))) {
        // Filter proves absence: skip the block fetch (and its
        // decryption).
        return Status::OK();
      }
    }
    std::unique_ptr<Iterator> block_iter(
        BlockReader(options, index_iter->value(), file_.get()));
    block_iter->Seek(key);
    if (block_iter->Valid()) {
      (*handle_result)(arg, block_iter->key(), block_iter->value());
    }
    s = block_iter->status();
  }
  if (s.ok()) {
    s = index_iter->status();
  }
  return s;
}

void Table::MultiGet(const ReadOptions& options,
                     const std::vector<TableGetRequest*>& requests) {
  // Resolved block for one or more requests. `block` is either a
  // cache resident (release cache_handle) or owned (delete).
  struct BlockState {
    BlockHandle handle;
    Block* block = nullptr;
    Cache::Handle* cache_handle = nullptr;
    Status status;
    std::vector<size_t> request_indices;  // into `requests`
  };
  // Keyed by block offset: requests are sorted, so this also comes out
  // sorted for the coalescing pass. A block shared by several keys is
  // fetched once.
  std::vector<BlockState> blocks;

  Statistics* stats = options_.statistics.get();
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(icmp_));

  // Pass 1: index + bloom probes resolve each request to a block (or
  // to "done": absent per filter, or past the last block).
  for (size_t i = 0; i < requests.size(); i++) {
    TableGetRequest* req = requests[i];
    index_iter->Seek(req->internal_key);
    if (!index_iter->Valid()) {
      req->status = index_iter->status();
      continue;
    }
    BlockHandle handle;
    Slice handle_value = index_iter->value();
    if (!handle.DecodeFrom(&handle_value).ok()) {
      req->status = Status::Corruption("bad block handle in index", fname_);
      continue;
    }
    if (filter_ != nullptr &&
        !filter_->KeyMayMatch(handle.offset(), ExtractUserKey(req->internal_key))) {
      continue;  // proven absent: no fetch, status stays OK
    }
    if (blocks.empty() || blocks.back().handle.offset() != handle.offset()) {
      blocks.emplace_back();
      blocks.back().handle = handle;
    }
    blocks.back().request_indices.push_back(i);
  }

  // Pass 2: satisfy from cache where possible.
  std::vector<BlockState*> misses;
  for (BlockState& bs : blocks) {
    if (block_cache_ != nullptr) {
      char cache_key_buffer[16];
      EncodeFixed64(cache_key_buffer, cache_id_);
      EncodeFixed64(cache_key_buffer + 8, bs.handle.offset());
      bs.cache_handle =
          block_cache_->Lookup(Slice(cache_key_buffer, sizeof(cache_key_buffer)));
      if (bs.cache_handle != nullptr) {
        bs.block =
            reinterpret_cast<Block*>(block_cache_->Value(bs.cache_handle));
        RecordTick(stats, Tickers::kLsmBlockCacheHit);
        PerfAdd(&PerfContext::block_cache_hit_count, 1);
        continue;
      }
      RecordTick(stats, Tickers::kLsmBlockCacheMiss);
    }
    misses.push_back(&bs);
  }

  // Pass 3: group adjacent misses into coalesced spans; one storage
  // round trip per group, then carve + verify each member block.
  const crypto::BlockAuthenticator* auth = file_->block_authenticator();
  const uint64_t tag_size =
      auth != nullptr ? crypto::kBlockAuthTagSize : 0;
  auto stored_size = [tag_size](const BlockHandle& h) {
    return h.size() + kBlockTrailerSize + tag_size;
  };

  size_t g = 0;
  while (g < misses.size()) {
    size_t end = g + 1;
    const uint64_t span_begin = misses[g]->handle.offset();
    uint64_t span_end = span_begin + stored_size(misses[g]->handle);
    while (end < misses.size()) {
      const BlockHandle& next = misses[end]->handle;
      if (next.offset() > span_end + kMaxCoalesceGapBytes ||
          next.offset() + stored_size(next) - span_begin >
              kMaxCoalesceSpanBytes) {
        break;
      }
      span_end = next.offset() + stored_size(next);
      end++;
    }

    bool carved = false;
    if (end - g > 1) {
      // Multi-block group: fetch the whole span in one read.
      const size_t span_len = static_cast<size_t>(span_end - span_begin);
      std::unique_ptr<char[]> span(new char[span_len]);
      Slice span_data;
      Status s;
      {
        StopWatch watch(stats, Histograms::kSstReadMicros);
        PerfTimer timer(&GetPerfContext()->block_read_micros);
        s = file_->Read(span_begin, span_len, &span_data, span.get());
      }
      if (s.ok() && span_data.size() == span_len) {
        carved = true;
        RecordTick(stats, Tickers::kLsmMultiGetBatches);
        PerfAdd(&PerfContext::multiget_batches, 1);
        for (size_t b = g; b < end; b++) {
          BlockState* bs = misses[b];
          const Slice stored(
              span_data.data() + (bs->handle.offset() - span_begin),
              static_cast<size_t>(stored_size(bs->handle)));
          BlockContents contents;
          Status vs =
              VerifyStoredBlock(auth, bs->handle, stored, &contents, fname_);
          if (!vs.ok()) {
            // The span itself may have been damaged in flight; give
            // this block an individual, retrying read below.
            bs->block = nullptr;
            continue;
          }
          bs->block = new Block(contents.data.data(), contents.data.size(),
                                /*owned=*/true);
          PerfAdd(&PerfContext::block_read_count, 1);
          PerfAdd(&PerfContext::block_read_bytes, bs->block->size());
        }
      }
    }
    for (size_t b = g; b < end; b++) {
      BlockState* bs = misses[b];
      if (carved && bs->block != nullptr) continue;
      // Singleton group, failed/short span, or failed carve: the
      // ordinary per-block path (with its own retry schedule).
      bs->status = ReadBlockObjectCounted(file_.get(), options, bs->handle,
                                          fname_, stats, &bs->block);
    }
    g = end;
  }

  // Insert fetched blocks into the cache and answer every request.
  for (BlockState& bs : blocks) {
    if (bs.block != nullptr && bs.cache_handle == nullptr &&
        block_cache_ != nullptr && options.fill_cache) {
      char cache_key_buffer[16];
      EncodeFixed64(cache_key_buffer, cache_id_);
      EncodeFixed64(cache_key_buffer + 8, bs.handle.offset());
      bs.cache_handle = block_cache_->Insert(
          Slice(cache_key_buffer, sizeof(cache_key_buffer)), bs.block,
          bs.block->size(), &DeleteCachedBlock);
    }
    for (size_t i : bs.request_indices) {
      TableGetRequest* req = requests[i];
      if (bs.block == nullptr) {
        req->status = bs.status;
        continue;
      }
      std::unique_ptr<Iterator> block_iter(bs.block->NewIterator(icmp_));
      block_iter->Seek(req->internal_key);
      if (block_iter->Valid()) {
        (*req->handle_result)(req->arg, block_iter->key(), block_iter->value());
      }
      req->status = block_iter->status();
    }
    if (bs.cache_handle != nullptr) {
      block_cache_->Release(bs.cache_handle);
    } else {
      delete bs.block;
    }
  }
}

}  // namespace shield
