#ifndef SHIELD_LSM_BLOCK_BUILDER_H_
#define SHIELD_LSM_BLOCK_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"

namespace shield {

class Comparator;

/// Builds a prefix-compressed key/value block with restart points
/// (LevelDB block format). Keys must be added in sorted order.
class BlockBuilder {
 public:
  explicit BlockBuilder(int restart_interval = 16);

  BlockBuilder(const BlockBuilder&) = delete;
  BlockBuilder& operator=(const BlockBuilder&) = delete;

  void Reset();
  void Add(const Slice& key, const Slice& value);

  /// Appends the restart array and returns the complete block
  /// contents. The returned slice is valid until Reset().
  Slice Finish();

  /// Current (uncompressed) size estimate including the trailer.
  size_t CurrentSizeEstimate() const;

  bool empty() const { return buffer_.empty(); }

 private:
  const int restart_interval_;
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_ = 0;
  bool finished_ = false;
  std::string last_key_;
};

}  // namespace shield

#endif  // SHIELD_LSM_BLOCK_BUILDER_H_
