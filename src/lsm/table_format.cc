#include "lsm/table_format.h"

#include <cstring>

#include "crypto/block_auth.h"
#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {

namespace {
std::string BlockErrorMessage(const char* what, const BlockHandle& handle,
                              const std::string& fname) {
  std::string msg = what;
  msg += " at offset ";
  msg += std::to_string(handle.offset());
  if (!fname.empty()) {
    msg += " in ";
    msg += fname;
  }
  return msg;
}

// Shared verification core: tag first (computed over the ciphertext
// image, so it condemns on-disk bytes before any decrypted content is
// trusted), then the CRC. `data` points at handle.size()=n payload
// bytes followed by the trailer and (if auth) the tag.
Status CheckBlockIntegrity(const crypto::BlockAuthenticator* auth,
                           const BlockHandle& handle, const char* data,
                           size_t n, size_t tag_size,
                           const std::string& fname) {
  if (auth != nullptr &&
      !auth->VerifyTag(handle.offset(), Slice(data, n + kBlockTrailerSize),
                       Slice(data + n + kBlockTrailerSize, tag_size))) {
    return Status::Corruption(
        BlockErrorMessage("block authentication tag mismatch", handle, fname));
  }
  // CRC is always verified (regardless of ReadOptions): for
  // unauthenticated files it is the only line of defence against
  // garbage ciphertext reaching the block parser.
  const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
  const uint32_t actual = crc32c::Value(data, n + 1);
  if (actual != crc) {
    return Status::Corruption(
        BlockErrorMessage("block checksum mismatch", handle, fname));
  }
  return Status::OK();
}
}  // namespace

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  properties_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }
  Status result = properties_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, const ReadOptions& options,
                 const BlockHandle& handle, BlockContents* result,
                 const std::string& fname) {
  (void)options;
  result->data = Slice();
  result->heap_allocated = false;

  // Authenticated files (header format v2) carry a truncated HMAC tag
  // after each block's trailer; its presence is a per-file property,
  // never guessed from content.
  const crypto::BlockAuthenticator* auth = file->block_authenticator();
  const size_t tag_size = auth != nullptr ? crypto::kBlockAuthTagSize : 0;

  const size_t n = static_cast<size_t>(handle.size());
  const size_t stored = n + kBlockTrailerSize + tag_size;
  char* buf = new char[stored];
  Slice contents;
  Status s;
  // Positional reads are idempotent, so transient device errors and
  // short reads (both injected by FaultInjectionEnv and plausible on a
  // lossy disaggregated fabric) get a small bounded retry before being
  // escalated. A genuinely truncated file returns the same short
  // result every time and still fails as corruption.
  constexpr int kMaxReadAttempts = 5;
  for (int attempt = 1;; attempt++) {
    s = file->Read(handle.offset(), stored, &contents, buf);
    if (!s.ok()) {
      if (s.IsTransient() && attempt < kMaxReadAttempts) {
        SleepForMicros(100ull << attempt);
        continue;
      }
      delete[] buf;
      return s;
    }
    if (contents.size() != stored) {
      if (attempt < kMaxReadAttempts) {
        SleepForMicros(100ull << attempt);
        continue;
      }
      delete[] buf;
      return Status::Corruption(
          BlockErrorMessage("truncated block read", handle, fname));
    }
    break;
  }

  const char* data = contents.data();
  s = CheckBlockIntegrity(auth, handle, data, n, tag_size, fname);
  if (!s.ok()) {
    delete[] buf;
    return s;
  }

  if (data != buf) {
    // File implementation returned a pointer into its own storage;
    // leave ownership with the file and drop our scratch.
    delete[] buf;
    result->data = Slice(data, n);
    result->heap_allocated = false;
  } else {
    result->data = Slice(buf, n);
    result->heap_allocated = true;
  }
  return Status::OK();
}

Status VerifyStoredBlock(const crypto::BlockAuthenticator* auth,
                         const BlockHandle& handle, const Slice& stored,
                         BlockContents* result, const std::string& fname) {
  result->data = Slice();
  result->heap_allocated = false;

  const size_t tag_size = auth != nullptr ? crypto::kBlockAuthTagSize : 0;
  const size_t n = static_cast<size_t>(handle.size());
  if (stored.size() != n + kBlockTrailerSize + tag_size) {
    return Status::Corruption(
        BlockErrorMessage("carved block span has wrong size", handle, fname));
  }
  Status s =
      CheckBlockIntegrity(auth, handle, stored.data(), n, tag_size, fname);
  if (!s.ok()) {
    return s;
  }
  // The span backing `stored` is transient (a coalesced fetch buffer);
  // give the caller an owned copy of the payload.
  char* buf = new char[n];
  memcpy(buf, stored.data(), n);
  result->data = Slice(buf, n);
  result->heap_allocated = true;
  return Status::OK();
}

std::string EncodeTableProperties(const TableProperties& props) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(props.size()));
  for (const auto& [key, value] : props) {
    PutLengthPrefixedSlice(&out, key);
    PutLengthPrefixedSlice(&out, value);
  }
  return out;
}

Status DecodeTableProperties(const Slice& data, TableProperties* props) {
  props->clear();
  Slice input = data;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("bad properties block");
  }
  for (uint32_t i = 0; i < count; i++) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&input, &key) ||
        !GetLengthPrefixedSlice(&input, &value)) {
      return Status::Corruption("truncated properties block");
    }
    (*props)[key.ToString()] = value.ToString();
  }
  return Status::OK();
}

}  // namespace shield
