#include "lsm/table_format.h"

#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset_);
  PutVarint64(dst, size_);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset_) && GetVarint64(input, &size_)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void Footer::EncodeTo(std::string* dst) const {
  const size_t original_size = dst->size();
  properties_handle_.EncodeTo(dst);
  index_handle_.EncodeTo(dst);
  dst->resize(original_size + 2 * BlockHandle::kMaxEncodedLength);  // pad
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber & 0xffffffffu));
  PutFixed32(dst, static_cast<uint32_t>(kTableMagicNumber >> 32));
  assert(dst->size() == original_size + kEncodedLength);
}

Status Footer::DecodeFrom(Slice* input) {
  if (input->size() < kEncodedLength) {
    return Status::Corruption("footer too short");
  }
  const char* magic_ptr = input->data() + kEncodedLength - 8;
  const uint32_t magic_lo = DecodeFixed32(magic_ptr);
  const uint32_t magic_hi = DecodeFixed32(magic_ptr + 4);
  const uint64_t magic =
      (static_cast<uint64_t>(magic_hi) << 32) | magic_lo;
  if (magic != kTableMagicNumber) {
    return Status::Corruption("not an sstable (bad magic number)");
  }
  Status result = properties_handle_.DecodeFrom(input);
  if (result.ok()) {
    result = index_handle_.DecodeFrom(input);
  }
  return result;
}

Status ReadBlock(RandomAccessFile* file, const ReadOptions& options,
                 const BlockHandle& handle, BlockContents* result) {
  result->data = Slice();
  result->heap_allocated = false;

  const size_t n = static_cast<size_t>(handle.size());
  char* buf = new char[n + kBlockTrailerSize];
  Slice contents;
  Status s;
  // Positional reads are idempotent, so transient device errors and
  // short reads (both injected by FaultInjectionEnv and plausible on a
  // lossy disaggregated fabric) get a small bounded retry before being
  // escalated. A genuinely truncated file returns the same short
  // result every time and still fails as corruption.
  constexpr int kMaxReadAttempts = 5;
  for (int attempt = 1;; attempt++) {
    s = file->Read(handle.offset(), n + kBlockTrailerSize, &contents, buf);
    if (!s.ok()) {
      if (s.IsTransient() && attempt < kMaxReadAttempts) {
        SleepForMicros(100ull << attempt);
        continue;
      }
      delete[] buf;
      return s;
    }
    if (contents.size() != n + kBlockTrailerSize) {
      if (attempt < kMaxReadAttempts) {
        SleepForMicros(100ull << attempt);
        continue;
      }
      delete[] buf;
      return Status::Corruption("truncated block read");
    }
    break;
  }

  const char* data = contents.data();
  if (options.verify_checksums) {
    const uint32_t crc = crc32c::Unmask(DecodeFixed32(data + n + 1));
    const uint32_t actual = crc32c::Value(data, n + 1);
    if (actual != crc) {
      delete[] buf;
      return Status::Corruption("block checksum mismatch");
    }
  }

  if (data != buf) {
    // File implementation returned a pointer into its own storage;
    // leave ownership with the file and drop our scratch.
    delete[] buf;
    result->data = Slice(data, n);
    result->heap_allocated = false;
  } else {
    result->data = Slice(buf, n);
    result->heap_allocated = true;
  }
  return Status::OK();
}

std::string EncodeTableProperties(const TableProperties& props) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(props.size()));
  for (const auto& [key, value] : props) {
    PutLengthPrefixedSlice(&out, key);
    PutLengthPrefixedSlice(&out, value);
  }
  return out;
}

Status DecodeTableProperties(const Slice& data, TableProperties* props) {
  props->clear();
  Slice input = data;
  uint32_t count;
  if (!GetVarint32(&input, &count)) {
    return Status::Corruption("bad properties block");
  }
  for (uint32_t i = 0; i < count; i++) {
    Slice key, value;
    if (!GetLengthPrefixedSlice(&input, &key) ||
        !GetLengthPrefixedSlice(&input, &value)) {
      return Status::Corruption("truncated properties block");
    }
    (*props)[key.ToString()] = value.ToString();
  }
  return Status::OK();
}

}  // namespace shield
