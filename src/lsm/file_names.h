#ifndef SHIELD_LSM_FILE_NAMES_H_
#define SHIELD_LSM_FILE_NAMES_H_

#include <cstdint>
#include <string>

#include "env/env.h"
#include "util/status.h"

namespace shield {

enum class DbFileType {
  kLogFile,        // <number>.log — write-ahead log
  kTableFile,      // <number>.sst
  kDescriptorFile, // MANIFEST-<number>
  kCurrentFile,    // CURRENT
  kTempFile,       // <number>.dbtmp
  kDekCacheFile,   // DEK_CACHE (SHIELD secure DEK cache)
};

std::string LogFileName(const std::string& dbname, uint64_t number);
std::string TableFileName(const std::string& dbname, uint64_t number);
std::string DescriptorFileName(const std::string& dbname, uint64_t number);
std::string CurrentFileName(const std::string& dbname);
std::string TempFileName(const std::string& dbname, uint64_t number);
std::string DekCacheFileName(const std::string& dbname);
/// "<dbname>/LOG" — the plaintext info LOG. Not a DbFileType:
/// ParseFileName rejects it, which is what keeps LOG and its rotations
/// out of RemoveObsoleteFiles garbage collection.
std::string InfoLogFileName(const std::string& dbname);
/// "<dbname>/ROTATION" — the DEK-rotation progress manifest
/// (lsm/rotation_manifest.h). Like LOG, rejected by ParseFileName so
/// garbage collection leaves it alone; a completed rotation removes it
/// explicitly.
std::string RotationManifestFileName(const std::string& dbname);
/// "<dbname>/PENDING_DEK_DELETES" — DekManager's persistent queue of
/// DEK ids whose KDS delete must be retried. Also GC-exempt.
std::string PendingDekDeletesFileName(const std::string& dbname);

/// Parses the plain (directory-less) file name. Returns false if the
/// name is not one of ours.
bool ParseFileName(const std::string& filename, uint64_t* number,
                   DbFileType* type);

/// Atomically points CURRENT at the descriptor with this number.
Status SetCurrentFile(Env* env, const std::string& dbname,
                      uint64_t descriptor_number);

}  // namespace shield

#endif  // SHIELD_LSM_FILE_NAMES_H_
