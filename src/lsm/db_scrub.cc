// The self-healing integrity scrubber: walks the live SSTs verifying
// every block's CRC (and HMAC tag on authenticated files) with fresh
// reads, quarantines files that fail, and repairs them — by re-fetching
// the disaggregated-storage replica when one is configured, by locally
// salvaging the readable blocks otherwise.

#include <algorithm>
#include <chrono>

#include "lsm/db_impl.h"
#include "lsm/file_names.h"
#include "lsm/sst_builder.h"
#include "lsm/sst_reader.h"
#include "util/clock.h"
#include "util/trace.h"

namespace shield {

Status DBImpl::VerifyIntegrity() {
  // Serialize with the background scrub thread; on-demand verification
  // is never throttled.
  std::lock_guard<std::mutex> pass_lock(scrub_pass_mutex_);
  ScrubStats stats;
  return ScrubPass(/*throttle=*/false, &stats);
}

Status DBImpl::ScrubPass(bool throttle, ScrubStats* stats) {
  ScopedTracerBinding trace_binding(&tracer_);
  TraceSpan pass_span(SpanType::kScrubPass);
  const uint64_t pass_start = NowMicros();
  std::vector<Version::LiveFileInfo> files;
  Version* version = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_handler_.reads_allowed()) {
      return error_handler_.bg_error();
    }
    // Pin the version: its files cannot be GC'd while the pass runs,
    // even if compactions replace them in newer versions.
    version = versions_->current();
    version->Ref();
    version->GetAllFiles(&files);
  }
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("scrub_begin");
    w.Add("files", static_cast<uint64_t>(files.size()));
    w.Add("throttled", throttle);
    event_logger_->Emit(&w);
  }

  Status first_failure;
  for (const auto& f : files) {
    if (shutting_down_.load(std::memory_order_acquire)) {
      break;
    }
    stats->files_scanned++;
    Status s = ScrubFile(f.level, f.number, f.file_size, throttle);
    if (s.ok()) {
      continue;
    }
    if (!s.IsCorruption()) {
      // Trouble reading the file (device/fabric error), not proven
      // damage: surface it without condemning the file.
      if (first_failure.ok()) {
        first_failure = s;
      }
      continue;
    }

    stats->corrupt_files++;
    scrub_corruptions_detected_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const std::string fname = TableFileName(dbname_, f.number);
      for (const auto& listener : options_.listeners) {
        listener->OnIntegrityViolation(fname, s);
      }
    }

    Status repair = options_.scrub_repair
                        ? HandleCorruptFile(f.level, f.number, f.file_size, s)
                        : s;
    if (repair.ok()) {
      stats->repaired_files++;
    } else if (first_failure.ok()) {
      first_failure = repair;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    version->Unref();
  }
  pass_span.SetArgs(stats->files_scanned, stats->corrupt_files);
  pass_span.MarkStatus(first_failure);
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("scrub_end");
    w.Add("files_scanned", stats->files_scanned);
    w.Add("corrupt_files", stats->corrupt_files);
    w.Add("repaired_files", stats->repaired_files);
    w.Add("micros", NowMicros() - pass_start);
    w.Add("ok", first_failure.ok());
    if (!first_failure.ok()) {
      w.Add("error", first_failure.ToString());
    }
    event_logger_->Emit(&w);
  }
  return first_failure;
}

Status DBImpl::ScrubFile(int level, uint64_t number, uint64_t file_size,
                         bool throttle) {
  (void)level;
  const std::string fname = TableFileName(dbname_, number);
  std::unique_ptr<RandomAccessFile> file;
  Status s = files_->NewRandomAccessFile(fname, &file);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      // DEK resolution happens during the file-factory open (the
      // SHIELD header is read and its DEK id looked up before the
      // table is touched). An unknown DEK id on a live SST the engine
      // itself wrote means the stored id is damaged — a bit flip in
      // the header, not a key the service legitimately never issued —
      // so classify as corruption to route the file into repair.
      // (Transient KDS trouble surfaces as TryAgain/Busy and is still
      // reported without condemning the file.)
      return Status::Corruption("embedded DEK id unresolvable", s.ToString());
    }
    return s;
  }
  // A private Table with no block cache: every block comes straight
  // from the medium, so cached copies cannot mask on-media damage.
  std::unique_ptr<Table> table;
  s = Table::Open(options_, &internal_comparator_, fname, std::move(file),
                  file_size, /*block_cache=*/nullptr, &table);
  if (!s.ok()) {
    if (s.IsNotFound()) {
      // The KDS does not know the DEK id embedded in this live SST.
      // DEK ids are random 128-bit values, so on a file the engine
      // itself wrote this means the stored id is damaged (e.g. a bit
      // flip in the header), not that the key service legitimately
      // lost a key — classify as corruption so the repair path runs.
      // (Transient KDS trouble surfaces as TryAgain/Busy and is still
      // reported without condemning the file.)
      return Status::Corruption("embedded DEK id unresolvable", s.ToString());
    }
    return s;
  }

  const uint64_t rate = options_.scrub_bytes_per_second;
  uint64_t scanned_bytes = 0;
  const uint64_t start_micros = NowMicros();
  return table->VerifyBlocks([&](uint64_t bytes) {
    if (!throttle || rate == 0) {
      return;
    }
    // Pace the scan so scanned_bytes never runs ahead of the
    // configured bytes/second budget.
    scanned_bytes += bytes;
    const uint64_t target_micros = scanned_bytes * 1000000 / rate;
    const uint64_t elapsed = NowMicros() - start_micros;
    if (target_micros > elapsed) {
      SleepForMicros(target_micros - elapsed);
    }
  });
}

Status DBImpl::HandleCorruptFile(int level, uint64_t number,
                                 uint64_t file_size,
                                 const Status& corruption) {
  if (options_.replica_source != nullptr) {
    Status s = RepairFromReplica(level, number, file_size);
    if (s.ok()) {
      return s;
    }
    // The replica could not produce a verified copy (missing, damaged,
    // unreachable); fall through to salvaging what is locally
    // readable.
  }
  Status s = SalvageLocally(level, number, file_size);
  if (s.ok()) {
    return s;
  }
  // Repair failed: report the original proof of damage, which is more
  // actionable than the repair machinery's own error.
  return corruption;
}

// Copies the physical (encrypted) image of table file `number` to
// "<fname>.quarantine". The suffix defeats ParseFileName, so the copy
// survives RemoveObsoleteFiles indefinitely — corrupt ciphertext is
// evidence (of media failure or tampering), never silently discarded.
Status DBImpl::QuarantineFile(uint64_t number) {
  const std::string fname = TableFileName(dbname_, number);
  const std::string qname = fname + ".quarantine";
  std::unique_ptr<SequentialFile> in;
  Status s = raw_env_->NewSequentialFile(fname, &in);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<WritableFile> out;
  s = raw_env_->NewWritableFile(qname, &out);
  if (!s.ok()) {
    return s;
  }
  char buf[64 * 1024];
  while (s.ok()) {
    Slice chunk;
    s = in->Read(sizeof(buf), &chunk, buf);
    if (!s.ok() || chunk.empty()) {
      break;
    }
    s = out->Append(chunk);
  }
  if (s.ok()) {
    s = out->Sync();
  }
  const Status close_status = out->Close();
  if (s.ok()) {
    s = close_status;
  }
  if (s.ok()) {
    scrub_quarantined_files_.fetch_add(1, std::memory_order_relaxed);
    if (event_logger_ != nullptr) {
      JsonWriter w = event_logger_->NewEvent("quarantine");
      w.Add("file_number", number);
      w.Add("path", qname);
      event_logger_->Emit(&w);
    }
  }
  return s;
}

Status DBImpl::RepairFromReplica(int level, uint64_t number,
                                 uint64_t file_size) {
  (void)level;
  const std::string fname = TableFileName(dbname_, number);
  std::string contents;
  Status s = options_.replica_source->FetchFile(fname, &contents);
  if (!s.ok()) {
    return s;
  }

  // Stage the fetched physical image in a temp file beside the
  // original, written through raw_env_: the bytes are already the
  // on-disk (encrypted) representation, so no layer may transform them
  // again. The temp name carries the live file number, which keeps GC
  // away from it for the staging window.
  const std::string temp = TempFileName(dbname_, number);
  {
    std::unique_ptr<WritableFile> out;
    s = raw_env_->NewWritableFile(temp, &out);
    if (!s.ok()) {
      return s;
    }
    s = out->Append(Slice(contents));
    if (s.ok()) {
      s = out->Sync();
    }
    const Status close_status = out->Close();
    if (s.ok()) {
      s = close_status;
    }
  }
  if (!s.ok()) {
    raw_env_->RemoveFile(temp);
    return s;
  }

  // Prove the replica copy good end-to-end — open it through the full
  // decryption stack and verify every block — before it replaces
  // anything.
  {
    std::unique_ptr<RandomAccessFile> file;
    s = files_->NewRandomAccessFile(temp, &file);
    std::unique_ptr<Table> table;
    if (s.ok()) {
      s = Table::Open(options_, &internal_comparator_, temp, std::move(file),
                      file_size, /*block_cache=*/nullptr, &table);
    }
    if (s.ok()) {
      s = table->VerifyBlocks(nullptr);
    }
    if (!s.ok()) {
      raw_env_->RemoveFile(temp);
      return s;
    }
  }

  // Keep the damaged bytes, then swap the verified copy in under the
  // live name with a rename — the file number never disappears from
  // the namespace, so a concurrent reader sees either the old or the
  // new image, never a missing file.
  s = QuarantineFile(number);
  if (s.ok()) {
    s = raw_env_->RenameFile(temp, fname);
  }
  if (!s.ok()) {
    raw_env_->RemoveFile(temp);
    return s;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Drop the cached Table: it may hold blocks decoded from the
    // damaged image. The next read re-opens the repaired file.
    table_cache_->Evict(number);
    for (const auto& listener : options_.listeners) {
      listener->OnFileRepaired(fname, /*from_replica=*/true);
    }
  }
  scrub_repaired_files_.fetch_add(1, std::memory_order_relaxed);
  if (event_logger_ != nullptr) {
    JsonWriter w = event_logger_->NewEvent("file_repaired");
    w.Add("file_number", number);
    w.Add("from_replica", true);
    event_logger_->Emit(&w);
  }
  return Status::OK();
}

Status DBImpl::SalvageLocally(int level, uint64_t number,
                              uint64_t file_size) {
  const std::string fname = TableFileName(dbname_, number);

  uint64_t new_number = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Exclude compactions: the salvage swaps version state at this
    // level, and a concurrent compaction could be merging the very
    // file being replaced.
    background_work_finished_signal_.wait(lock, [this] {
      return (!compaction_scheduled_ && !manual_compaction_running_) ||
             shutting_down_.load(std::memory_order_acquire);
    });
    if (shutting_down_.load(std::memory_order_acquire)) {
      return Status::IOError("shutting down");
    }
    if (!error_handler_.ok()) {
      return error_handler_.bg_error();
    }
    if (!versions_->current()->ContainsFile(level, number)) {
      // Compacted away since the scan: the damage left the live set.
      return Status::OK();
    }
    manual_compaction_running_ = true;  // keeps compactions out
    new_number = versions_->NewFileNumber();
    pending_outputs_.insert(new_number);
  }

  // Rewrite every readable entry into a fresh SST. Entries in blocks
  // that fail verification are dropped from the live set; their raw
  // bytes survive in the quarantine copy.
  Status s;
  InternalKey smallest, largest;
  SequenceNumber largest_seq = 0;
  uint64_t entries = 0;
  uint64_t dropped_blocks = 0;
  uint64_t new_size = 0;
  {
    std::unique_ptr<RandomAccessFile> file;
    s = files_->NewRandomAccessFile(fname, &file);
    std::unique_ptr<Table> table;
    if (s.ok()) {
      s = Table::Open(options_, &internal_comparator_, fname, std::move(file),
                      file_size, /*block_cache=*/nullptr, &table);
    }
    std::unique_ptr<WritableFile> outfile;
    if (s.ok()) {
      s = files_->NewWritableFile(TableFileName(dbname_, new_number),
                                  FileKind::kSst, &outfile);
    }
    if (s.ok()) {
      auto builder = std::make_unique<TableBuilder>(
          options_, &internal_comparator_, outfile.get());
      bool first = true;
      s = table->SalvageEntries(
          [&](const Slice& key, const Slice& value) {
            if (first) {
              smallest.DecodeFrom(key);
              first = false;
            }
            largest.DecodeFrom(key);
            largest_seq = std::max(largest_seq, ExtractSequence(key));
            builder->Add(key, value);
            entries++;
          },
          &dropped_blocks);
      if (s.ok()) {
        s = builder->Finish();
      } else {
        builder->Abandon();
      }
      new_size = builder->FileSize();
      builder.reset();
      if (s.ok()) {
        s = outfile->Sync();
      }
      if (s.ok()) {
        s = outfile->Close();
      }
    }
  }

  if (s.ok()) {
    s = QuarantineFile(number);
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (s.ok()) {
    // Swap the salvaged file in at the same level. Level-0 recency is
    // keyed on largest_seq, which the salvage preserves, so ordering
    // semantics survive the renumbering. A fully unreadable file is
    // simply removed.
    VersionEdit edit;
    edit.RemoveFile(level, number);
    if (entries > 0) {
      edit.AddFile(level, new_number, new_size, smallest, largest,
                   largest_seq);
    }
    s = versions_->LogAndApply(&edit, &mutex_);
    if (!s.ok() && !s.IsTransient() &&
        !shutting_down_.load(std::memory_order_acquire)) {
      // The version log may be torn mid-repair: same hazard as any
      // manifest failure, so it halts the DB through the same path.
      error_handler_.OnBackgroundError(BackgroundErrorReason::kManifestWrite,
                                       s);
    }
  }
  pending_outputs_.erase(new_number);
  if (s.ok()) {
    table_cache_->Evict(number);
    for (const auto& listener : options_.listeners) {
      listener->OnFileRepaired(fname, /*from_replica=*/false);
    }
    scrub_repaired_files_.fetch_add(1, std::memory_order_relaxed);
    if (event_logger_ != nullptr) {
      JsonWriter w = event_logger_->NewEvent("file_repaired");
      w.Add("file_number", number);
      w.Add("from_replica", false);
      w.Add("salvaged_entries", entries);
      w.Add("dropped_blocks", dropped_blocks);
      event_logger_->Emit(&w);
    }
    // The damaged original is no longer referenced: GC deletes the
    // live name (its bytes live on in the quarantine copy). On a
    // failed salvage the unreferenced output is left to the next GC.
    RemoveObsoleteFiles();
  }
  manual_compaction_running_ = false;
  MaybeScheduleCompaction();
  background_work_finished_signal_.notify_all();
  return s;
}

void DBImpl::ScrubLoop() {
  const auto interval =
      std::chrono::microseconds(options_.scrub_interval_micros);
  std::unique_lock<std::mutex> sl(scrub_mutex_);
  while (!scrub_stop_) {
    if (scrub_cv_.wait_for(sl, interval, [this] { return scrub_stop_; })) {
      return;
    }
    sl.unlock();
    Status s;
    {
      std::lock_guard<std::mutex> pass_lock(scrub_pass_mutex_);
      ScrubStats stats;
      s = ScrubPass(/*throttle=*/true, &stats);
    }
    if (!s.ok() && s.IsCorruption() &&
        !shutting_down_.load(std::memory_order_acquire)) {
      // Proven damage the repair pipeline could not heal: reads of
      // that file would fail or return wrong data, so it escalates as
      // a hard error. An operator inspects the quarantine copies and
      // re-opens.
      std::lock_guard<std::mutex> lock(mutex_);
      error_handler_.OnBackgroundError(BackgroundErrorReason::kScrub, s);
    }
    sl.lock();
  }
}

}  // namespace shield
