#include "lsm/filter_block.h"

#include "util/coding.h"

namespace shield {

FilterBlockBuilder::FilterBlockBuilder(const FilterPolicy* policy)
    : policy_(policy) {}

void FilterBlockBuilder::StartBlock(uint64_t block_offset) {
  const uint64_t filter_index = block_offset / kFilterBase;
  assert(filter_index >= filter_offsets_.size());
  while (filter_index > filter_offsets_.size()) {
    GenerateFilter();
  }
}

void FilterBlockBuilder::AddKey(const Slice& key) {
  start_.push_back(keys_.size());
  keys_.append(key.data(), key.size());
}

Slice FilterBlockBuilder::Finish() {
  if (!start_.empty()) {
    GenerateFilter();
  }
  const uint32_t array_offset = static_cast<uint32_t>(result_.size());
  for (uint32_t offset : filter_offsets_) {
    PutFixed32(&result_, offset);
  }
  PutFixed32(&result_, array_offset);
  result_.push_back(kFilterBaseLg);
  return Slice(result_);
}

void FilterBlockBuilder::GenerateFilter() {
  const size_t num_keys = start_.size();
  if (num_keys == 0) {
    // No keys for this window: reuse the previous filter position
    // (an empty filter).
    filter_offsets_.push_back(static_cast<uint32_t>(result_.size()));
    return;
  }

  start_.push_back(keys_.size());  // sentinel for the last key's length
  tmp_keys_.resize(num_keys);
  for (size_t i = 0; i < num_keys; i++) {
    tmp_keys_[i] =
        Slice(keys_.data() + start_[i], start_[i + 1] - start_[i]);
  }

  filter_offsets_.push_back(static_cast<uint32_t>(result_.size()));
  policy_->CreateFilter(tmp_keys_.data(), static_cast<int>(num_keys),
                        &result_);

  tmp_keys_.clear();
  keys_.clear();
  start_.clear();
}

FilterBlockReader::FilterBlockReader(const FilterPolicy* policy,
                                     const Slice& contents)
    : policy_(policy) {
  const size_t n = contents.size();
  if (n < 5) {
    return;  // 1-byte base_lg + 4-byte array offset minimum
  }
  base_lg_ = static_cast<uint8_t>(contents[n - 1]);
  const uint32_t last_word = DecodeFixed32(contents.data() + n - 5);
  if (last_word > n - 5) {
    return;
  }
  data_ = contents.data();
  offset_ = data_ + last_word;
  num_ = (n - 5 - last_word) / 4;
}

bool FilterBlockReader::KeyMayMatch(uint64_t block_offset, const Slice& key) {
  const uint64_t index = block_offset >> base_lg_;
  if (index < num_) {
    const uint32_t start = DecodeFixed32(offset_ + index * 4);
    const uint32_t limit = DecodeFixed32(offset_ + index * 4 + 4);
    if (start <= limit &&
        limit <= static_cast<size_t>(offset_ - data_)) {
      const Slice filter(data_ + start, limit - start);
      return policy_->KeyMayMatch(key, filter);
    }
    if (start == limit) {
      return false;  // empty filter: no keys in this window
    }
  }
  // Malformed or out of range: do not claim absence.
  return true;
}

}  // namespace shield
