#ifndef SHIELD_LSM_TABLE_FORMAT_H_
#define SHIELD_LSM_TABLE_FORMAT_H_

#include <cstdint>
#include <map>
#include <string>

#include "env/env.h"
#include "lsm/options.h"
#include "util/slice.h"
#include "util/status.h"

namespace shield {

/// Location of a block within an SST file.
class BlockHandle {
 public:
  static constexpr uint64_t kMaxEncodedLength = 10 + 10;

  uint64_t offset() const { return offset_; }
  void set_offset(uint64_t offset) { offset_ = offset; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t size) { size_ = size; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  uint64_t offset_ = 0;
  uint64_t size_ = 0;
};

/// Fixed-size footer at the end of every SST file:
///   properties_handle | index_handle | padding | magic(8)
class Footer {
 public:
  static constexpr size_t kEncodedLength =
      2 * BlockHandle::kMaxEncodedLength + 8;

  const BlockHandle& properties_handle() const { return properties_handle_; }
  void set_properties_handle(const BlockHandle& h) { properties_handle_ = h; }
  const BlockHandle& index_handle() const { return index_handle_; }
  void set_index_handle(const BlockHandle& h) { index_handle_ = h; }

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);

 private:
  BlockHandle properties_handle_;
  BlockHandle index_handle_;
};

static constexpr uint64_t kTableMagicNumber = 0x5348494c44535354ull;  // "SHILDSST"

/// Per-block trailer: 1-byte type (0 = raw) + 4-byte masked crc32c.
static constexpr size_t kBlockTrailerSize = 5;

struct BlockContents {
  Slice data;
  bool heap_allocated = false;  // caller must delete[] data.data()
};

/// Reads and verifies one block (payload + trailer, plus the
/// authentication tag when the file carries one) from a file. The CRC
/// and — before any decrypted byte is trusted — the HMAC tag are always
/// verified; a mismatch returns Corruption naming `fname` and the block
/// offset. `fname` is used only for error messages.
Status ReadBlock(RandomAccessFile* file, const ReadOptions& options,
                 const BlockHandle& handle, BlockContents* result,
                 const std::string& fname = std::string());

/// Verifies a block's stored image that is already in memory —
/// `stored` must be exactly handle.size() + kBlockTrailerSize +
/// (tag bytes if `auth` != null) bytes carved out of a larger span
/// (coalesced MultiGet fetch, prefetched range). Checks the HMAC tag
/// (against the block's file offset) then the CRC, exactly as
/// ReadBlock does, and on success copies the payload into a fresh
/// heap allocation in `result`. Never trusts unverified bytes.
Status VerifyStoredBlock(const crypto::BlockAuthenticator* auth,
                         const BlockHandle& handle, const Slice& stored,
                         BlockContents* result,
                         const std::string& fname = std::string());

/// Table properties: free-form string key/values persisted in the
/// properties block. SHIELD stores the DEK-ID and cipher here as well,
/// making the DEK resolvable from the file alone (Section 5.4). Note
/// the SST payload is encrypted underneath this layer, so on disk these
/// properties are only plaintext inside the dedicated 64-byte file
/// header, not in the properties block.
using TableProperties = std::map<std::string, std::string>;

std::string EncodeTableProperties(const TableProperties& props);
Status DecodeTableProperties(const Slice& data, TableProperties* props);

// Well-known property keys.
inline constexpr char kPropNumEntries[] = "shield.num-entries";
inline constexpr char kPropRawKeyBytes[] = "shield.raw-key-bytes";
inline constexpr char kPropRawValueBytes[] = "shield.raw-value-bytes";
inline constexpr char kPropDekId[] = "shield.dek-id";
inline constexpr char kPropCipher[] = "shield.cipher";
inline constexpr char kPropFilterHandle[] = "shield.filter-handle";
inline constexpr char kPropFilterPolicy[] = "shield.filter-policy";

}  // namespace shield

#endif  // SHIELD_LSM_TABLE_FORMAT_H_
