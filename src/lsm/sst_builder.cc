#include "lsm/sst_builder.h"

#include <cassert>

#include "crypto/block_auth.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace shield {

TableBuilder::TableBuilder(const Options& options,
                           const InternalKeyComparator* icmp,
                           WritableFile* file)
    : options_(options), icmp_(icmp), file_(file) {
  if (options_.filter_policy != nullptr) {
    filter_block_ =
        std::make_unique<FilterBlockBuilder>(options_.filter_policy);
    filter_block_->StartBlock(0);
  }
}

TableBuilder::~TableBuilder() { assert(closed_); }

void TableBuilder::Add(const Slice& key, const Slice& value) {
  assert(!closed_);
  if (!status_.ok()) {
    return;
  }
  if (num_entries_ > 0) {
    assert(icmp_->Compare(key, Slice(last_key_)) > 0);
  }

  if (pending_index_entry_) {
    assert(data_block_.empty());
    icmp_->FindShortestSeparator(&last_key_, key);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }

  if (filter_block_ != nullptr) {
    filter_block_->AddKey(ExtractUserKey(key));
  }

  last_key_.assign(key.data(), key.size());
  num_entries_++;
  raw_key_bytes_ += key.size();
  raw_value_bytes_ += value.size();
  data_block_.Add(key, value);

  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    WriteDataBlock();
  }
}

void TableBuilder::WriteDataBlock() {
  assert(!closed_);
  if (!status_.ok() || data_block_.empty()) {
    return;
  }
  assert(!pending_index_entry_);
  const Slice raw = data_block_.Finish();
  status_ = WriteRawBlock(raw, &pending_handle_);
  data_block_.Reset();
  if (status_.ok()) {
    pending_index_entry_ = true;
    status_ = file_->Flush();
  }
  if (filter_block_ != nullptr) {
    filter_block_->StartBlock(offset_);
  }
}

Status TableBuilder::WriteRawBlock(const Slice& contents,
                                   BlockHandle* handle) {
  handle->set_offset(offset_);
  handle->set_size(contents.size());
  Status s = file_->Append(contents);
  if (s.ok()) {
    char trailer[kBlockTrailerSize];
    trailer[0] = 0;  // raw, uncompressed
    uint32_t crc = crc32c::Value(contents.data(), contents.size());
    crc = crc32c::Extend(crc, trailer, 1);
    EncodeFixed32(trailer + 1, crc32c::Mask(crc));
    s = file_->Append(Slice(trailer, kBlockTrailerSize));
    if (s.ok()) {
      offset_ += contents.size() + kBlockTrailerSize;
    }
    // Authenticated files (SHIELD/EncFS format v2) get a tag over the
    // block's ciphertext image — contents plus trailer, pinned to the
    // block's offset. Readers know the tag is there from the file
    // header, so handles and the footer keep their classic layout.
    const crypto::BlockAuthenticator* auth = file_->block_authenticator();
    if (s.ok() && auth != nullptr) {
      char tag[crypto::kBlockAuthTagSize];
      s = auth->ComputeTag(handle->offset(),
                           {contents, Slice(trailer, kBlockTrailerSize)}, tag);
      if (s.ok()) {
        s = file_->Append(Slice(tag, crypto::kBlockAuthTagSize));
      }
      if (s.ok()) {
        offset_ += crypto::kBlockAuthTagSize;
      }
    }
  }
  return s;
}

void TableBuilder::SetProperty(const std::string& key,
                               const std::string& value) {
  properties_[key] = value;
}

Status TableBuilder::Finish() {
  assert(!closed_);
  WriteDataBlock();
  closed_ = true;
  if (!status_.ok()) {
    return status_;
  }

  if (pending_index_entry_) {
    icmp_->FindShortSuccessor(&last_key_);
    std::string handle_encoding;
    pending_handle_.EncodeTo(&handle_encoding);
    index_block_.Add(last_key_, handle_encoding);
    pending_index_entry_ = false;
  }

  // Filter block (if configured); its handle travels via properties.
  BlockHandle filter_handle;
  bool has_filter = false;
  if (filter_block_ != nullptr) {
    status_ = WriteRawBlock(filter_block_->Finish(), &filter_handle);
    if (!status_.ok()) {
      return status_;
    }
    has_filter = true;
  }

  // Properties block.
  BlockHandle properties_handle;
  {
    TableProperties props = properties_;
    if (has_filter) {
      std::string encoded;
      filter_handle.EncodeTo(&encoded);
      props[kPropFilterHandle] = encoded;
      props[kPropFilterPolicy] = options_.filter_policy->Name();
    }
    props[kPropNumEntries] = std::to_string(num_entries_);
    props[kPropRawKeyBytes] = std::to_string(raw_key_bytes_);
    props[kPropRawValueBytes] = std::to_string(raw_value_bytes_);
    status_ = WriteRawBlock(EncodeTableProperties(props), &properties_handle);
    if (!status_.ok()) {
      return status_;
    }
  }

  // Index block.
  BlockHandle index_handle;
  status_ = WriteRawBlock(index_block_.Finish(), &index_handle);
  if (!status_.ok()) {
    return status_;
  }

  // Footer.
  Footer footer;
  footer.set_properties_handle(properties_handle);
  footer.set_index_handle(index_handle);
  std::string footer_encoding;
  footer.EncodeTo(&footer_encoding);
  status_ = file_->Append(footer_encoding);
  if (status_.ok()) {
    offset_ += footer_encoding.size();
  }
  return status_;
}

void TableBuilder::Abandon() {
  assert(!closed_);
  closed_ = true;
}

}  // namespace shield
