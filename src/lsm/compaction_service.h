#ifndef SHIELD_LSM_COMPACTION_SERVICE_H_
#define SHIELD_LSM_COMPACTION_SERVICE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lsm/format.h"
#include "util/status.h"
#include "util/trace.h"

namespace shield {

/// One SST input to an offloaded compaction: (file number, logical
/// size). The worker resolves each file's DEK from the DEK-ID embedded
/// in the file's own header — no file->key mapping crosses the wire
/// (the paper's metadata-enabled DEK sharing, Section 5.4).
using CompactionInput = std::pair<uint64_t, uint64_t>;

/// A compaction job shipped to a remote worker in a disaggregated
/// setup. Both sides access the same shared storage; only metadata
/// travels.
struct CompactionJobSpec {
  std::string dbname;  // database path on shared storage
  int level = 0;
  int output_level = 0;
  /// Tombstones may be dropped (output is bottommost data).
  bool bottommost = false;
  /// Entries older than this sequence and shadowed may be dropped.
  SequenceNumber smallest_snapshot = 0;
  uint64_t max_output_file_size = 0;  // 0 = unbounded
  std::vector<CompactionInput> inputs0;  // files at `level`
  std::vector<CompactionInput> inputs1;  // files at `level+1`
  /// File numbers pre-allocated by the primary for outputs; the worker
  /// consumes them in order.
  std::vector<uint64_t> output_numbers;
  /// Tracing context of the dispatching DB operation (all zero when no
  /// trace is active on the primary). The worker parents its
  /// compaction-RPC span to `trace.parent_span_id`, so stitched
  /// per-node trace files form one causal tree across the fabric.
  TraceContext trace;
};

/// Metadata of one output file produced by the worker.
struct CompactionOutputMeta {
  uint64_t number = 0;
  uint64_t file_size = 0;
  std::string smallest_internal_key;
  std::string largest_internal_key;
  /// Highest sequence number in the output (level-0 recency metadata).
  SequenceNumber largest_seq = 0;
};

struct CompactionJobResult {
  std::vector<CompactionOutputMeta> outputs;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t micros = 0;
};

/// Executes compactions on behalf of a DB instance — the offloaded
/// compaction of Disaggregated-RocksDB / CaaS-LSM that the paper's DS
/// evaluation uses (Section 5.6). Implementations run in-process (for
/// tests) or model a remote compaction server over simulated-network
/// storage (src/ds/).
class CompactionService {
 public:
  virtual ~CompactionService() = default;

  /// Runs the job to completion; on success fills *result with the
  /// produced files. Must be thread-compatible with one outstanding
  /// job per DB.
  virtual Status RunCompaction(const CompactionJobSpec& job,
                               CompactionJobResult* result) = 0;
};

}  // namespace shield

#endif  // SHIELD_LSM_COMPACTION_SERVICE_H_
