#ifndef SHIELD_LSM_VERSION_SET_H_
#define SHIELD_LSM_VERSION_SET_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "lsm/log_writer.h"
#include "lsm/options.h"
#include "lsm/table_cache.h"
#include "lsm/version_edit.h"

namespace shield {

class Compaction;
class VersionSet;

/// Hard upper bound on options.num_levels.
constexpr int kMaxNumLevels = 8;

/// One key of a batched lookup against a Version (DB::MultiGet).
/// `key` and `value` are borrowed; `status`/`done` carry the outcome:
/// done=false after the call means no level contained the user key
/// (i.e. NotFound). Requests passed to Version::MultiGet must be
/// sorted by internal key.
struct VersionGetRequest {
  const LookupKey* key = nullptr;
  std::string* value = nullptr;
  Status status;
  bool done = false;
};

/// An immutable snapshot of the LSM shape: the set of SST files at each
/// level. Reference counted; readers pin the version they started on.
class Version {
 public:
  /// Lookup user_key (keyed by `key`'s sequence). Fills *value.
  Status Get(const ReadOptions& options, const LookupKey& key,
             std::string* value);

  /// Batched Get over sorted requests. Probes the same files in the
  /// same order as per-key Get would (L0 newest-to-oldest, then each
  /// deeper level), but offers every still-unresolved key to a file
  /// in one Table::MultiGet batch so block fetches coalesce. Results
  /// are identical to calling Get per key.
  void MultiGet(const ReadOptions& options,
                const std::vector<VersionGetRequest*>& requests);

  /// Appends iterators that together yield the version's full contents.
  void AddIterators(const ReadOptions& options,
                    std::vector<Iterator*>* iters);

  void Ref();
  void Unref();

  int NumFiles(int level) const {
    return static_cast<int>(files_[level].size());
  }

  /// A live SST reference, as reported by GetAllFiles.
  struct LiveFileInfo {
    int level;
    uint64_t number;
    uint64_t file_size;  // logical bytes
  };

  /// Appends every SST referenced by this version (all levels, L0
  /// newest-last order preserved). Used by the integrity scrubber to
  /// snapshot the file set while holding a reference on the version.
  void GetAllFiles(std::vector<LiveFileInfo>* files) const;

  /// True when this version references `number` at `level`.
  bool ContainsFile(int level, uint64_t number) const;

  /// Fills *inputs with all files in `level` overlapping
  /// [begin, end] (nullptr means unbounded).
  void GetOverlappingInputs(int level, const InternalKey* begin,
                            const InternalKey* end,
                            std::vector<FileMetaData*>* inputs);

  bool OverlapInLevel(int level, const Slice* smallest_user_key,
                      const Slice* largest_user_key);

  std::string DebugString() const;

 private:
  friend class VersionSet;
  friend class Compaction;

  explicit Version(VersionSet* vset)
      : vset_(vset), next_(this), prev_(this) {}
  ~Version();

  Version(const Version&) = delete;
  Version& operator=(const Version&) = delete;

  Iterator* NewConcatenatingIterator(const ReadOptions& options,
                                     int level) const;

  VersionSet* vset_;
  Version* next_;
  Version* prev_;
  int refs_ = 0;

  // Files per level, sorted by smallest key for levels > 0; level 0 is
  // sorted by file number (newest last).
  std::vector<FileMetaData*> files_[kMaxNumLevels];

  // Level that should be compacted next and its score (>= 1 means
  // compaction needed). Computed by VersionSet::Finalize.
  double compaction_score_ = -1;
  int compaction_level_ = -1;
};

/// The mutable state: current version, file numbering, sequence
/// numbers, and the manifest log. All mutations happen under the DB
/// mutex.
class VersionSet {
 public:
  VersionSet(std::string dbname, const Options& options,
             const InternalKeyComparator* icmp, TableCache* table_cache,
             DataFileFactory* files);
  ~VersionSet();

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  /// Applies *edit to the current version, persists it to the manifest
  /// and installs the result as the new current version. `mu` is the
  /// DB mutex, released during manifest I/O.
  Status LogAndApply(VersionEdit* edit, std::mutex* mu);

  /// Recovers the last saved state from the manifest named by CURRENT.
  Status Recover();

  Version* current() const { return current_; }

  uint64_t NewFileNumber() { return next_file_number_++; }
  void MarkFileNumberUsed(uint64_t number) {
    if (next_file_number_ <= number) {
      next_file_number_ = number + 1;
    }
  }
  uint64_t ManifestFileNumber() const { return manifest_file_number_; }

  /// Blocks new manifest appends (and waits out any in-flight one).
  /// While paused, the descriptor log on disk is frozen at a record
  /// boundary that exactly matches current() — the consistency point
  /// backups copy. Call with *mu held; pair with
  /// ResumeManifestAppends() (also under *mu). Flushes and compactions
  /// that reach LogAndApply meanwhile simply wait.
  void PauseManifestAppends(std::mutex* mu) {
    std::unique_lock<std::mutex> lock(*mu, std::adopt_lock);
    manifest_cv_.wait(lock, [this] { return !writing_manifest_; });
    lock.release();
    writing_manifest_ = true;
  }
  void ResumeManifestAppends() {
    writing_manifest_ = false;
    manifest_cv_.notify_all();
  }

  SequenceNumber LastSequence() const { return last_sequence_; }
  void SetLastSequence(SequenceNumber s) {
    assert(s >= last_sequence_);
    last_sequence_ = s;
  }

  uint64_t LogNumber() const { return log_number_; }

  int NumLevelFiles(int level) const;
  int64_t NumLevelBytes(int level) const;

  /// Adds the numbers of all SST files referenced by any live version.
  void AddLiveFiles(std::set<uint64_t>* live);

  /// True if a background compaction is warranted.
  bool NeedsCompaction() const;

  /// Picks the next compaction per the configured style; nullptr when
  /// nothing to do. Caller owns the result.
  Compaction* PickCompaction();

  /// Manual compaction of [begin, end] at `level`.
  Compaction* CompactRange(int level, const InternalKey* begin,
                           const InternalKey* end);

  /// A merged iterator over all compaction inputs. Caller deletes.
  Iterator* MakeInputIterator(Compaction* c);

  const InternalKeyComparator* icmp() const { return icmp_; }
  const Options& options() const { return options_; }
  TableCache* table_cache() const { return table_cache_; }
  int num_levels() const { return num_levels_; }

  /// Max bytes configured for `level` under leveled compaction.
  double MaxBytesForLevel(int level) const;

 private:
  class Builder;
  friend class Compaction;
  friend class Version;

  void Finalize(Version* v);
  void AppendVersion(Version* v);
  Status WriteSnapshot(log::Writer* log);

  // Leveled-style helpers.
  void SetupOtherInputs(Compaction* c);
  void GetRange(const std::vector<FileMetaData*>& inputs,
                InternalKey* smallest, InternalKey* largest);
  void GetRange2(const std::vector<FileMetaData*>& inputs1,
                 const std::vector<FileMetaData*>& inputs2,
                 InternalKey* smallest, InternalKey* largest);

  Compaction* PickLeveledCompaction();
  Compaction* PickUniversalCompaction();
  Compaction* PickFifoCompaction();
  bool SomeOverlap(int level, const Slice& smallest_user_key,
                   const Slice& largest_user_key);

  const std::string dbname_;
  const Options options_;
  const InternalKeyComparator* icmp_;
  TableCache* table_cache_;
  DataFileFactory* files_;
  const int num_levels_;

  uint64_t next_file_number_ = 2;
  uint64_t manifest_file_number_ = 0;
  uint64_t log_number_ = 0;
  SequenceNumber last_sequence_ = 0;

  std::unique_ptr<WritableFile> descriptor_file_;
  std::unique_ptr<log::Writer> descriptor_log_;

  // LogAndApply releases the DB mutex during manifest I/O; flush and
  // compaction jobs may both land here, so manifest writers are
  // serialized explicitly.
  bool writing_manifest_ = false;
  std::condition_variable manifest_cv_;

  Version dummy_versions_;  // head of circular list of live versions
  Version* current_ = nullptr;

  // Per-level key at which the next leveled compaction should start.
  std::string compact_pointer_[kMaxNumLevels];
};

/// A picked compaction job: inputs at `level` (and `level+1` for
/// leveled), plus the edit under construction.
class Compaction {
 public:
  ~Compaction();

  int level() const { return level_; }
  int output_level() const { return output_level_; }
  VersionEdit* edit() { return &edit_; }

  int num_input_files(int which) const {
    return static_cast<int>(inputs_[which].size());
  }
  FileMetaData* input(int which, int i) const { return inputs_[which][i]; }
  uint64_t MaxOutputFileSize() const { return max_output_file_size_; }

  /// A move-only compaction: the input can be trivially re-linked to
  /// the next level without merging.
  bool IsTrivialMove() const;

  /// FIFO: inputs are simply deleted, nothing is rewritten.
  bool is_deletion_only() const { return deletion_only_; }

  /// True when the compaction output lands in the bottommost data:
  /// deletion tombstones can be dropped.
  bool bottommost() const { return bottommost_; }

  /// Adds all inputs of this compaction as deletions to *edit.
  void AddInputDeletions(VersionEdit* edit);

  /// True iff `user_key` cannot exist in levels below the output
  /// level (used to drop tombstones early).
  bool IsBaseLevelForKey(const Slice& user_key);

  void ReleaseInputs();

 private:
  friend class VersionSet;

  Compaction(const Options& options, int level, int output_level);

  int level_;
  int output_level_;
  uint64_t max_output_file_size_;
  Version* input_version_ = nullptr;
  VersionEdit edit_;
  bool deletion_only_ = false;
  bool bottommost_ = false;

  std::vector<FileMetaData*> inputs_[2];

  // State for IsBaseLevelForKey: files in levels beyond output_level.
  size_t level_ptrs_[kMaxNumLevels] = {};
};

}  // namespace shield

#endif  // SHIELD_LSM_VERSION_SET_H_
