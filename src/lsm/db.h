#ifndef SHIELD_LSM_DB_H_
#define SHIELD_LSM_DB_H_

#include <string>
#include <vector>

#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/snapshot.h"
#include "lsm/write_batch.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/trace.h"

namespace shield {

/// The public LSM-KVS interface. Thread safe: concurrent reads and
/// writes from any number of threads.
///
/// Encryption is selected via Options::encryption:
///  * kNone   — plaintext baseline ("unencrypted RocksDB" in the paper)
///  * kEncFS  — instance-level transparent encryption (Section 4)
///  * kShield — SHIELD embedded encryption with per-file DEKs,
///              compaction-driven rotation, buffered WAL encryption and
///              metadata DEK sharing (Section 5)
class DB {
 public:
  /// Opens (creating if configured) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  /// Opens a read-only instance over an existing database directory —
  /// the disaggregated-storage read-only-instance mechanism. No WAL is
  /// written, no compaction runs; Put/Delete/Write return
  /// NotSupported. Call TryCatchUp() to pick up new state persisted by
  /// the primary.
  static Status OpenReadOnly(const Options& options, const std::string& name,
                             DB** dbptr);

  DB() = default;
  virtual ~DB() = default;

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  /// Fills *value; NotFound if the key does not exist.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: returns one status per key (OK with
  /// (*values)[i] filled, or NotFound) — exactly what `keys.size()`
  /// sequential Gets against one snapshot would return, but all keys
  /// share a single snapshot/version reference, one index probe pass
  /// per table, and adjacent block fetches coalesce into single
  /// storage round trips (the win on disaggregated storage, where
  /// each round trip costs an RTT). `values` is resized to match.
  virtual std::vector<Status> MultiGet(const ReadOptions& options,
                                       const std::vector<Slice>& keys,
                                       std::vector<std::string>* values) = 0;

  /// Heap-allocated iterator over the whole keyspace (caller deletes
  /// before closing the DB).
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Forces the current memtable to be flushed to an SST and waits.
  virtual Status Flush() = 0;

  /// Compacts the key range [begin, end]; nullptr means open-ended.
  /// Under SHIELD this re-encrypts the range under fresh DEKs.
  virtual Status CompactRange(const Slice* begin, const Slice* end) = 0;

  /// DB introspection. Supported properties:
  ///   "shield.num-files-at-level<N>", "shield.stats",
  ///   "shield.io-stats", "shield.sstables", "shield.kds-requests",
  ///   "shield.dek-cache-hits", "shield.approximate-memtable-bytes",
  ///   "shield.stall-micros", "shield.offload-fallbacks",
  ///   "shield.recovery-salvaged-logs",
  ///   "shield.error-handler-state", "shield.background-error",
  ///   "shield.error-recoveries", "shield.scrub-corruptions-detected",
  ///   "shield.scrub-repaired-files", "shield.scrub-quarantined-files",
  ///   "shield.levelstats" (files/bytes per level, one row per level),
  ///   "shield.dek-cache-stats" (hits/misses/evictions/entries),
  ///   "shield.metrics" (Prometheus text exposition of all tickers and
  ///   histograms; requires Options::statistics)
  /// "shield.stats" includes the per-level compaction table, the
  /// physical I/O split, and — when Options::statistics is set — the
  /// full ticker/histogram dump (util/statistics.h).
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  /// Starts recording a trace of this DB's activity into `trace_path`
  /// (written through the physical env): spans for DB ops, flush and
  /// compaction jobs, crypto work, KDS round trips, DS fabric
  /// transfers, and physical I/O (util/trace.h describes the format;
  /// tools/trace_replay analyzes and re-executes it). One trace can be
  /// active per process; a second StartTrace returns Busy. Default
  /// implementation returns NotSupported (read-only instances).
  virtual Status StartTrace(const TraceOptions& trace_options,
                            const std::string& trace_path) {
    (void)trace_options;
    (void)trace_path;
    return Status::NotSupported("tracing not supported by this DB");
  }

  /// Stops the active trace, draining all span buffers to the file.
  /// Returns the first trace-file write error, if any.
  virtual Status EndTrace() {
    return Status::NotSupported("tracing not supported by this DB");
  }

  /// Walks every live SST and verifies each block's CRC — and, on
  /// authenticated files, its HMAC tag — with fresh reads that bypass
  /// the block cache. Corrupt files are quarantined and, when
  /// Options::scrub_repair is set, repaired from the configured
  /// FileReplicaSource (disaggregated deployments) or salvaged locally.
  /// Returns OK when every live file verified clean or was repaired;
  /// otherwise the first unrepaired corruption.
  virtual Status VerifyIntegrity() = 0;

  /// Manual operator recovery after a soft background error put the DB
  /// in read-only state: clears the sticky error and resumes background
  /// work. Returns the sticky error if the DB is halted (hard errors
  /// require a re-open); OK when already active.
  virtual Status Resume() = 0;

  /// Read-only instances: re-reads the manifest/WALs to observe the
  /// primary's latest persisted state. Primary instances return OK
  /// without doing anything.
  virtual Status TryCatchUp() = 0;

  /// Blocks until all scheduled background flushes and compactions
  /// have drained (including work they cascade into). Useful for
  /// tests and benchmarks that need a quiesced LSM shape.
  virtual void WaitForIdle() = 0;
};

/// Deletes all files of the database at `name`. Use with care.
Status DestroyDB(const Options& options, const std::string& name);

}  // namespace shield

#endif  // SHIELD_LSM_DB_H_
