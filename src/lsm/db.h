#ifndef SHIELD_LSM_DB_H_
#define SHIELD_LSM_DB_H_

#include <string>
#include <vector>

#include "lsm/iterator.h"
#include "lsm/options.h"
#include "lsm/snapshot.h"
#include "lsm/write_batch.h"
#include "util/health.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/trace.h"

namespace shield {

/// Controls DB::RotateDeks.
struct RotateOptions {
  /// Only SSTs whose DEK is older than this are rewritten; 0 rotates
  /// every live SST. Files whose DEK age is unknown (created before
  /// this process started) are treated as infinitely old.
  uint64_t max_dek_age_micros = 0;

  /// At most this many files are rewritten per call; 0 = no limit.
  /// A bounded call leaves the remainder persisted in the rotation
  /// manifest, to be finished by a later call, the background rotation
  /// job, or resume-after-reopen.
  uint64_t max_files = 0;

  /// Throttle on rewrite throughput (bytes of source SST per second);
  /// 0 = unthrottled. Overrides Options::rotation_bytes_per_second.
  uint64_t bytes_per_second = 0;
};

/// What DB::RotateDeks accomplished.
struct RotateResult {
  /// Files rewritten to a fresh DEK by this call.
  uint64_t files_rotated = 0;
  /// Source bytes rewritten.
  uint64_t bytes_rotated = 0;
  /// Planned files skipped because they left the live version before
  /// their turn (compacted away — their DEKs died with them).
  uint64_t files_skipped = 0;
  /// Files still pending in the rotation manifest (non-zero only when
  /// RotateOptions::max_files cut the pass short or a file failed).
  uint64_t files_pending = 0;
};

/// Controls DB::CreateBackup.
struct BackupOptions {
  /// Server identity the backup's DEKs are re-wrapped for (via
  /// Kds::RewrapDek). Empty: DEK ids are copied as-is, and the restore
  /// target must be able to resolve the *source's* ids.
  std::string target_server_id;

  /// Key for the backup's per-file HMAC-SHA256 integrity tags. Both
  /// sides of a backup/restore must agree on it.
  std::string hmac_key = "shield-backup";

  /// Flush the memtable first so the backup captures everything
  /// acknowledged before the call (the WAL is copied either way).
  bool flush_before_backup = true;
};

/// Controls DB::RestoreBackup.
struct RestoreOptions {
  /// Must match the BackupOptions::hmac_key the backup was created
  /// with.
  std::string hmac_key = "shield-backup";
};

/// Controls DB::IngestExternalFile.
struct IngestOptions {
  /// Delete the source file after a successful ingest (the DB owns its
  /// own copy either way; this just cleans up migration staging).
  bool move_file = false;
};

/// What DB::IngestExternalFile accomplished.
struct IngestResult {
  /// File number the table was installed under.
  uint64_t file_number = 0;
  /// Entries in the ingested table.
  uint64_t entries = 0;
  /// Physical bytes now referenced by the DB.
  uint64_t bytes = 0;
  /// True when the file arrived SHIELD-encrypted and its embedded DEK
  /// was re-wrapped onto this instance's identity (kShield only).
  bool dek_rewrapped = false;
};

/// Controls DB::DumpRange.
struct DumpOptions {
  /// Server identity the dump's DEKs are re-wrapped for (via
  /// Kds::RewrapDek), so the dump can be ingested by that identity
  /// even after this instance's keys are revoked. Empty: the dump
  /// files keep DEK ids provisioned to *this* instance. kShield only.
  std::string target_server_id;

  /// Key for the dump manifest's per-file HMAC-SHA256 integrity tags.
  /// Both sides of a dump/restore must agree on it.
  std::string hmac_key = "shield-backup";

  /// Output SSTs are cut at roughly this many (logical) bytes so a
  /// large range dumps as a set of ingestible pieces.
  uint64_t max_file_bytes = 8 * 1024 * 1024;
};

/// The public LSM-KVS interface. Thread safe: concurrent reads and
/// writes from any number of threads.
///
/// Encryption is selected via Options::encryption:
///  * kNone   — plaintext baseline ("unencrypted RocksDB" in the paper)
///  * kEncFS  — instance-level transparent encryption (Section 4)
///  * kShield — SHIELD embedded encryption with per-file DEKs,
///              compaction-driven rotation, buffered WAL encryption and
///              metadata DEK sharing (Section 5)
class DB {
 public:
  /// Opens (creating if configured) the database at `name`.
  static Status Open(const Options& options, const std::string& name,
                     DB** dbptr);

  /// Opens a read-only instance over an existing database directory —
  /// the disaggregated-storage read-only-instance mechanism. No WAL is
  /// written, no compaction runs; Put/Delete/Write return
  /// NotSupported. Call TryCatchUp() to pick up new state persisted by
  /// the primary.
  static Status OpenReadOnly(const Options& options, const std::string& name,
                             DB** dbptr);

  DB() = default;
  virtual ~DB() = default;

  DB(const DB&) = delete;
  DB& operator=(const DB&) = delete;

  virtual Status Put(const WriteOptions& options, const Slice& key,
                     const Slice& value) = 0;
  virtual Status Delete(const WriteOptions& options, const Slice& key) = 0;
  virtual Status Write(const WriteOptions& options, WriteBatch* updates) = 0;

  /// Fills *value; NotFound if the key does not exist.
  virtual Status Get(const ReadOptions& options, const Slice& key,
                     std::string* value) = 0;

  /// Batched point lookup: returns one status per key (OK with
  /// (*values)[i] filled, or NotFound) — exactly what `keys.size()`
  /// sequential Gets against one snapshot would return, but all keys
  /// share a single snapshot/version reference, one index probe pass
  /// per table, and adjacent block fetches coalesce into single
  /// storage round trips (the win on disaggregated storage, where
  /// each round trip costs an RTT). `values` is resized to match.
  virtual std::vector<Status> MultiGet(const ReadOptions& options,
                                       const std::vector<Slice>& keys,
                                       std::vector<std::string>* values) = 0;

  /// Heap-allocated iterator over the whole keyspace (caller deletes
  /// before closing the DB).
  virtual Iterator* NewIterator(const ReadOptions& options) = 0;

  virtual const Snapshot* GetSnapshot() = 0;
  virtual void ReleaseSnapshot(const Snapshot* snapshot) = 0;

  /// Forces the current memtable to be flushed to an SST and waits.
  virtual Status Flush() = 0;

  /// Compacts the key range [begin, end]; nullptr means open-ended.
  /// Under SHIELD this re-encrypts the range under fresh DEKs.
  virtual Status CompactRange(const Slice* begin, const Slice* end) = 0;

  /// DB introspection. Supported properties:
  ///   "shield.num-files-at-level<N>", "shield.stats",
  ///   "shield.io-stats", "shield.sstables", "shield.kds-requests",
  ///   "shield.dek-cache-hits", "shield.approximate-memtable-bytes",
  ///   "shield.stall-micros", "shield.offload-fallbacks",
  ///   "shield.recovery-salvaged-logs",
  ///   "shield.error-handler-state", "shield.background-error",
  ///   "shield.error-recoveries", "shield.scrub-corruptions-detected",
  ///   "shield.scrub-repaired-files", "shield.scrub-quarantined-files",
  ///   "shield.levelstats" (files/bytes per level, one row per level),
  ///   "shield.dek-cache-stats" (hits/misses/evictions/entries),
  ///   "shield.rotation-state" ("idle" | "running" | "pending:<n>"),
  ///   "shield.rotation-files-rotated", "shield.dek.pending-deletes",
  ///   "shield.metrics" (Prometheus text exposition of all tickers and
  ///   histograms; requires Options::statistics)
  /// "shield.stats" includes the per-level compaction table, the
  /// physical I/O split, and — when Options::statistics is set — the
  /// full ticker/histogram dump (util/statistics.h).
  virtual bool GetProperty(const Slice& property, std::string* value) = 0;

  /// Starts recording a trace of this DB's activity into `trace_path`
  /// (written through the physical env): spans for DB ops, flush and
  /// compaction jobs, crypto work, KDS round trips, DS fabric
  /// transfers, and physical I/O (util/trace.h describes the format;
  /// tools/trace_replay analyzes and re-executes it). One trace can be
  /// active per process; a second StartTrace returns Busy. Default
  /// implementation returns NotSupported (read-only instances).
  virtual Status StartTrace(const TraceOptions& trace_options,
                            const std::string& trace_path) {
    (void)trace_options;
    (void)trace_path;
    return Status::NotSupported("tracing not supported by this DB");
  }

  /// Stops the active trace, draining all span buffers to the file.
  /// Returns the first trace-file write error, if any.
  virtual Status EndTrace() {
    return Status::NotSupported("tracing not supported by this DB");
  }

  /// Walks every live SST and verifies each block's CRC — and, on
  /// authenticated files, its HMAC tag — with fresh reads that bypass
  /// the block cache. Corrupt files are quarantined and, when
  /// Options::scrub_repair is set, repaired from the configured
  /// FileReplicaSource (disaggregated deployments) or salvaged locally.
  /// Returns OK when every live file verified clean or was repaired;
  /// otherwise the first unrepaired corruption.
  virtual Status VerifyIntegrity() = 0;

  /// Online DEK rotation (active key lifecycle, beyond the paper's
  /// passive rotation-via-compaction): rewrites live SSTs selected by
  /// `options` to fresh DEKs through the table-rewrite path, persisting
  /// progress in a rotation manifest after every file so a crash
  /// resumes instead of restarting. The old DEK is destroyed only
  /// after the replacement is durable. Pauses (returns the background
  /// error) when the DB is read-only or halted. Only meaningful under
  /// kShield; other modes return NotSupported.
  virtual Status RotateDeks(const RotateOptions& options,
                            RotateResult* result) {
    (void)options;
    (void)result;
    return Status::NotSupported("DEK rotation not supported by this DB");
  }

  /// Encrypted backup: copies the current version's SSTs, the version
  /// MANIFEST, CURRENT and the live WAL into `backup_dir` with a
  /// per-file HMAC manifest; under kShield every embedded DEK id is
  /// re-wrapped for BackupOptions::target_server_id so the backup can
  /// be restored by a different server identity even after the
  /// source's keys are revoked. `backup_dir` must not already contain
  /// a backup.
  virtual Status CreateBackup(const std::string& backup_dir,
                              const BackupOptions& options) {
    (void)backup_dir;
    (void)options;
    return Status::NotSupported("backup not supported by this DB");
  }

  /// Restores a backup created by CreateBackup into `dbname` (which
  /// must not exist), verifying the backup manifest's MAC and every
  /// file's HMAC first. The restored directory is opened normally with
  /// DB::Open — under kShield, with Options whose server_id is the
  /// backup's target identity.
  static Status RestoreBackup(const Options& options,
                              const std::string& backup_dir,
                              const std::string& dbname,
                              const RestoreOptions& restore_options);

  /// Verifies a backup without restoring it: checks the backup
  /// manifest's MAC and every listed file's size and HMAC. Exactly the
  /// checks RestoreBackup performs before writing anything.
  static Status VerifyBackup(const Options& options,
                             const std::string& backup_dir,
                             const RestoreOptions& restore_options);

  /// Bulk ingest: installs an externally produced SST (in this
  /// engine's table format — e.g. a DumpRange output) as a level-0
  /// file. A plaintext SST is re-built through the DB's own encryption
  /// path (fresh DEK under kShield); a SHIELD-encrypted SST is adopted
  /// byte-for-byte after its embedded DEK is re-wrapped onto this
  /// instance's identity via Kds::RewrapDek and registered with the
  /// DekManager. Fails closed: a malformed SHIELD header, an
  /// unresolvable DEK or a table that does not parse rejects the file
  /// without touching DB state. `result` may be null.
  virtual Status IngestExternalFile(const std::string& file_path,
                                    const IngestOptions& options,
                                    IngestResult* result) {
    (void)file_path;
    (void)options;
    (void)result;
    return Status::NotSupported("ingest not supported by this DB");
  }

  /// Bulk export: writes the live data in [begin, end] (nullptr =
  /// open-ended; latest visible versions, tombstones resolved) into
  /// `dump_dir` as a set of freshly built SSTs plus a MAC'd
  /// DUMP_MANIFEST, each file encrypted under a fresh DEK re-wrapped
  /// for DumpOptions::target_server_id. Together with
  /// IngestExternalFile/RestoreDump this seeds and migrates fleet
  /// members between KDS identities without copying a whole DB
  /// directory. `dump_dir` must not already contain a dump.
  virtual Status DumpRange(const std::string& dump_dir, const Slice* begin,
                           const Slice* end, const DumpOptions& options) {
    (void)dump_dir;
    (void)begin;
    (void)end;
    (void)options;
    return Status::NotSupported("dump not supported by this DB");
  }

  /// Restores a DumpRange output into the DB at `dbname` (created with
  /// `options` if missing — under kShield, with Options whose
  /// server_id is the dump's target identity), verifying the dump
  /// manifest's MAC and every file's HMAC first, then ingesting each
  /// file and running VerifyIntegrity.
  static Status RestoreDump(const Options& options,
                            const std::string& dump_dir,
                            const std::string& dbname,
                            const RestoreOptions& restore_options);

  /// Verifies a dump without restoring it: manifest MAC plus every
  /// listed file's size and HMAC.
  static Status VerifyDump(const Options& options,
                           const std::string& dump_dir,
                           const RestoreOptions& restore_options);

  /// Manual operator recovery after a soft background error put the DB
  /// in read-only state: clears the sticky error and resumes background
  /// work. Returns the sticky error if the DB is halted (hard errors
  /// require a re-open); OK when already active.
  virtual Status Resume() = 0;

  /// Runs every registered health detector once (write-stall, L0 debt,
  /// WAL pipeline stalls, scrub backlog, KDS reachability, DEK-rotation
  /// progress, replica catch-up lag — see util/health.h) and returns
  /// the level transitions this pass produced; the same transitions are
  /// emitted as "health_transition" events and mirrored into
  /// `shield_health_*` gauges. Current state is readable without
  /// re-evaluating via the "shield.health" property. `transitions` may
  /// be null.
  virtual Status EvaluateHealth(std::vector<HealthTransition>* transitions) {
    (void)transitions;
    return Status::NotSupported("health monitoring not supported by this DB");
  }

  /// Read-only instances: re-reads the manifest/WALs to observe the
  /// primary's latest persisted state. Primary instances return OK
  /// without doing anything.
  virtual Status TryCatchUp() = 0;

  /// Blocks until all scheduled background flushes and compactions
  /// have drained (including work they cascade into). Useful for
  /// tests and benchmarks that need a quiesced LSM shape.
  virtual void WaitForIdle() = 0;
};

/// Deletes all files of the database at `name`. Use with care.
Status DestroyDB(const Options& options, const std::string& name);

}  // namespace shield

#endif  // SHIELD_LSM_DB_H_
