#ifndef SHIELD_LSM_OPTIONS_H_
#define SHIELD_LSM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "crypto/cipher.h"
#include "kds/kds.h"
#include "util/logger.h"
#include "util/retry.h"
#include "util/statistics.h"

namespace shield {

class Comparator;
class Env;
class EventListener;
class FilterPolicy;
class Snapshot;
class CompactionService;

/// Source of authoritative raw file replicas used by the self-healing
/// scrubber. When the engine runs on disaggregated storage, the DS
/// storage service keeps a replica of every appended byte; a corrupt
/// local/primary SST can be re-fetched from it verbatim (ciphertext,
/// headers and tags included). Implemented by ds::StorageService; the
/// LSM layer only sees this interface so lsm does not depend on ds.
class FileReplicaSource {
 public:
  virtual ~FileReplicaSource() = default;

  /// Fetches the raw on-disk bytes of `fname` (the same name the
  /// engine uses). NotFound when the replica has no copy.
  virtual Status FetchFile(const std::string& fname,
                           std::string* contents) = 0;
};

/// Default auto-resume policy for transient background errors:
/// bounded attempts with exponential backoff (2ms doubling to a 64ms
/// cap — the pre-ErrorHandler hardcoded schedule).
inline RetryPolicy DefaultBackgroundResumePolicy() {
  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff_micros = 2000;
  policy.max_backoff_micros = 64 * 1000;
  policy.multiplier = 2.0;
  return policy;
}

/// How on-disk data files are protected.
enum class EncryptionMode {
  /// Plaintext files (baseline "unencrypted RocksDB" in the paper).
  kNone,
  /// Instance-level encryption (paper Section 4): a transparent Env
  /// wrapper encrypts every file with one instance-wide DEK.
  kEncFS,
  /// SHIELD (paper Section 5): encryption embedded in the write path;
  /// unique DEK per file from the KDS, DEK rotation via compaction,
  /// buffered WAL encryption, chunked multi-threaded SST encryption,
  /// metadata-embedded DEK-IDs.
  kShield,
};

/// Compaction policies (paper Fig. 15 compares RocksDB's leveled,
/// universal and FIFO styles).
enum class CompactionStyle {
  kLeveled,
  kUniversal,
  kFifo,
};

struct EncryptionOptions {
  EncryptionMode mode = EncryptionMode::kNone;

  /// Cipher used for file payloads.
  crypto::CipherKind cipher = crypto::CipherKind::kAes128Ctr;

  /// EncFS only: the instance DEK (CipherKeySize(cipher) bytes),
  /// supplied by the operator or a KDS at startup, held only in memory.
  std::string instance_key;

  /// SHIELD only: the key-distribution service. When null, DB::Open
  /// creates a private LocalKds (monolithic deployment).
  std::shared_ptr<Kds> kds;

  /// Identity this instance presents to the KDS (authorization unit).
  std::string server_id = "compute-1";

  /// SHIELD only: when true, DEKs retrieved from the KDS are cached in
  /// an encrypted on-disk cache inside the DB directory (requires
  /// `passkey`). Eliminates KDS round-trips on restart.
  bool use_secure_dek_cache = false;

  /// Passkey protecting the secure DEK cache. Never persisted.
  std::string passkey;

  /// Evaluation-only knob (paper Table 2, "Encrypted SST" row): when
  /// false, SHIELD leaves WAL files in plaintext while still
  /// encrypting SSTs and the manifest. Never disable this in a real
  /// deployment — an unencrypted WAL exposes every recent write.
  bool encrypt_wal = true;

  /// SHIELD WAL optimization (paper Section 5.3): size of the
  /// application-managed WAL encryption buffer in bytes. Writes
  /// accumulate in plaintext in memory and are encrypted + appended
  /// once the buffer fills (or on sync). 0 disables the buffer:
  /// every WAL write is encrypted individually (the paper's
  /// non-optimized SHIELD / EncFS behaviour).
  size_t wal_buffer_size = 512;

  /// SHIELD compaction encryption: data produced by flush/compaction
  /// is encrypted in chunks of this size (paper Section 5.2 /
  /// Fig. 13).
  size_t sst_chunk_size = 4096;

  /// Number of threads used to encrypt a chunk in parallel during
  /// compaction. 1 = synchronous single-threaded encryption.
  int encryption_threads = 1;

  /// Encrypt-then-MAC: append a truncated HMAC-SHA256 tag (keyed from
  /// the file DEK) to every SST block and WAL/manifest record, verified
  /// on every read. New files are written in format v2; readers decide
  /// from each file's header, so flipping this knob never breaks
  /// existing files. Applies to kEncFS and kShield.
  bool authenticate_blocks = true;

  /// WAL record padding (leakage countermeasure): when non-empty,
  /// every logical WAL record is padded up to the smallest listed
  /// bucket size before encryption (records beyond the largest bucket
  /// round up to its next multiple), and records that would straddle a
  /// 32 KiB block edge start on a fresh block. The storage tier then
  /// observes ciphertext record sizes drawn from this small fixed set
  /// instead of a size/timing channel mirroring operation sizes
  /// (BigFoot-style WAL leakage). Padding is stripped transparently on
  /// recovery and replica catch-up; files written without padding stay
  /// readable and vice versa. Overhead is counted in the
  /// shield.wal.padding.* tickers. Example: {64, 256, 1024, 4096}.
  /// Empty (default) disables padding. Applies to WAL files only — the
  /// manifest's append cadence is not workload-correlated.
  std::vector<uint32_t> wal_padding_buckets;

  /// WAL keystream pipeline: a helper thread precomputes this many
  /// bytes of CTR keystream ahead of the WAL append offset (a two-slot
  /// pipeline holds up to 2x this window), so cipher work for group N
  /// overlaps the disk write and Sync() of group N-1. The append path
  /// then XORs plaintext against cached keystream instead of running
  /// the cipher inline; ciphertext (and the on-disk format) is
  /// bit-identical to the inline path. 0 disables the pipeline.
  /// Applies to kShield WAL files only.
  size_t wal_pipeline_window = 64 * 1024;
};

struct Options {
  /// Ordering of user keys. Default: bytewise.
  const Comparator* comparator = nullptr;

  /// Storage environment. Default: Env::Default() (local Posix disk).
  Env* env = nullptr;

  /// Metrics registry (util/statistics.h). When set, every layer the
  /// DB touches reports into it: physical io.* traffic, lsm.* engine
  /// events, crypto.* byte counts, shield.* key-plane activity, kds.*
  /// round-trips. Dumped (with histograms) by the "shield.stats"
  /// property. Create with CreateDBStatistics(); may be shared across
  /// DB instances to aggregate.
  std::shared_ptr<Statistics> statistics;

  /// Structured info LOG. When null, DB::Open creates a rotating
  /// file-backed logger writing `LOG` inside the DB directory (through
  /// the *physical* env — the LOG is deliberately plaintext and must
  /// never receive keys or user data). Engine events are emitted into
  /// it as JSON lines (util/event_logger.h). Set to NewNullLogger() to
  /// silence logging entirely.
  std::shared_ptr<Logger> info_log;

  /// Minimum severity written to the info LOG.
  InfoLogLevel info_log_level = InfoLogLevel::kInfo;

  /// Rotate the LOG once it reaches this many bytes (0 = never).
  size_t max_log_file_size = 16 * 1024 * 1024;

  /// Rotated LOG files kept before the oldest is deleted.
  size_t keep_log_file_num = 4;

  /// Create the database if missing / error if it exists.
  bool create_if_missing = true;
  bool error_if_exists = false;

  /// Memtable size before a flush is scheduled.
  size_t write_buffer_size = 4 * 1024 * 1024;

  /// Number of hash-partitioned memtable shards (1 = the classic
  /// single-skiplist memtable). With N > 1 the group-commit leader
  /// applies each committed batch group to the shards in parallel and
  /// flush drains the shards through a merging iterator into one SST,
  /// so recovery and integrity semantics are unchanged. Sanitized to
  /// [1, 64]; write_buffer_size is floored to shards * 16 KiB so a
  /// freshly sharded memtable never exceeds the flush threshold while
  /// empty.
  int memtable_shards = 1;

  /// Group-commit window: scheduler yields the leader performs while
  /// no follower is queued before it seals the batch group. A non-sync
  /// leader never blocks, so on saturated (or few-core) machines the
  /// other writer threads are runnable but never scheduled long enough
  /// to enqueue — every write commits as a group of one. Yields per
  /// group let them in, trading context switches for bigger groups.
  /// Default 0: with hardware AES/SHA the per-record WAL cost is small
  /// enough that on a saturated machine the switches cost more than
  /// grouping saves (measured 208k vs 126k ops/s at 8 writers on one
  /// core), and on idle multi-core machines groups form naturally
  /// while the leader syncs. Set to 1+ only for sync-light workloads
  /// on saturated machines where WAL appends are expensive (e.g. the
  /// portable cipher fallback).
  int write_group_yields = 0;

  /// Approximate SST data-block payload size.
  size_t block_size = 4096;

  /// Capacity of the (decrypted) block cache in bytes. 0 disables it.
  size_t block_cache_size = 8 * 1024 * 1024;

  /// If non-null, SSTs carry per-block filters (e.g. from
  /// NewBloomFilterPolicy(10)) so point lookups skip block fetches —
  /// and, under SHIELD, their decryption. Not owned; must outlive the
  /// DB.
  const FilterPolicy* filter_policy = nullptr;

  /// Number of levels for leveled compaction.
  int num_levels = 7;

  /// Leveled compaction triggers.
  int level0_file_num_compaction_trigger = 4;
  int level0_slowdown_writes_trigger = 8;
  int level0_stop_writes_trigger = 12;
  uint64_t max_bytes_for_level_base = 10 * 1024 * 1024;
  double max_bytes_for_level_multiplier = 10.0;
  uint64_t target_file_size_base = 2 * 1024 * 1024;

  CompactionStyle compaction_style = CompactionStyle::kLeveled;

  /// Universal compaction: merge when the newest run is at least
  /// 1/size_ratio of the accumulated older runs; bounded by
  /// max_sorted_runs outstanding runs.
  int universal_size_ratio_percent = 100;
  int universal_max_sorted_runs = 8;

  /// FIFO compaction: drop oldest files once total size exceeds this.
  uint64_t fifo_max_table_files_size = 256 * 1024 * 1024;

  /// Background flush+compaction worker threads.
  int max_background_jobs = 2;

  /// fsync the WAL on every write (durability vs throughput).
  bool sync_wal = false;

  /// If set, compactions are shipped to this service instead of
  /// running locally (offloaded compaction in disaggregated storage;
  /// paper Section 5.6). Not owned.
  CompactionService* compaction_service = nullptr;

  /// Attempts per offloaded compaction before the job is considered
  /// failed (transient service errors are retried with backoff).
  int offload_max_attempts = 3;

  /// When offloaded compaction exhausts its attempts, run the
  /// compaction locally instead of surfacing an error. Keeps the
  /// engine making progress through storage-service outages at the
  /// cost of compute-side work.
  bool offload_fallback_to_local = true;

  /// Recovery strictness. When false (default), recovery degrades
  /// gracefully on damage that crash semantics can explain — a torn
  /// WAL tail, a truncated MANIFEST tail, an unreadable trailing log —
  /// salvaging every intact record and continuing. When true, any
  /// detected corruption aborts DB::Open with the underlying error.
  bool paranoid_checks = false;

  /// Callbacks observing background errors, recovery transitions and
  /// scrubber repairs (lsm/error_handler.h). Invoked with the DB mutex
  /// held: they must be fast and must not call back into the DB.
  std::vector<std::shared_ptr<EventListener>> listeners;

  /// Schedule for auto-resuming from *transient* background errors
  /// (flush/compaction hitting kTryAgain/kBusy). Each failing job
  /// retries after BackoffMicros until max_attempts consecutive
  /// failures, then the error escalates to read-only mode.
  RetryPolicy background_error_resume_policy = DefaultBackgroundResumePolicy();

  /// Source of authoritative raw file replicas for scrubber repair
  /// (disaggregated deployments: the DS storage service). Null = no
  /// replica; the scrubber salvages locally instead. Not owned.
  FileReplicaSource* replica_source = nullptr;

  /// Interval between background integrity-scrub passes over live
  /// SSTs. 0 (default) disables the scrub thread; DB::VerifyIntegrity
  /// still scrubs on demand.
  uint64_t scrub_interval_micros = 0;

  /// Background scrub read-rate limit in bytes/second (0 = unlimited).
  /// On-demand VerifyIntegrity is never throttled.
  uint64_t scrub_bytes_per_second = 8 * 1024 * 1024;

  /// Readahead window for compaction input files: each input is read
  /// through a prefetch buffer of up to this many (plaintext) bytes,
  /// turning per-block fetches into large sequential spans — one
  /// storage round trip per span on disaggregated storage. 0 disables
  /// compaction readahead.
  size_t compaction_readahead_size = 256 * 1024;

  /// When the scrubber finds a corrupt SST: quarantine a raw copy and
  /// repair it (replica re-fetch, else local salvage). When false the
  /// scrubber only detects and quarantines.
  bool scrub_repair = true;

  /// Interval between background DEK-rotation passes (kShield only).
  /// Each pass rewrites live SSTs whose DEK is older than
  /// max_dek_age_micros to fresh keys. 0 (default) disables the
  /// background job — DB::RotateDeks still rotates on demand, and a
  /// rotation left pending by a crash is still resumed once at open.
  uint64_t dek_rotation_interval_micros = 0;

  /// Age bound used by background rotation passes; 0 means a pass
  /// rotates every live SST (compliance "rotate now" semantics belong
  /// to explicit RotateDeks calls).
  uint64_t max_dek_age_micros = 0;

  /// Rotation rewrite throughput throttle in source-bytes/second
  /// (0 = unthrottled). Explicit RotateDeks calls may override per
  /// call via RotateOptions::bytes_per_second.
  uint64_t rotation_bytes_per_second = 8 * 1024 * 1024;

  /// Stable node identity for the cluster health plane. When set it is
  /// stamped as the `node` label on every metric the DB exports
  /// ("shield.metrics"), into trace-file headers (format v2) when a
  /// trace is started without an explicit node name, and onto health
  /// transitions. Empty (default) keeps single-node output byte-
  /// compatible with older tooling.
  std::string node_name;

  /// Wall-clock interval between background health evaluations
  /// (util/health.h). 0 (default) disables the background thread:
  /// health is still evaluated on demand by DB::EvaluateHealth and the
  /// "shield.health" property. The simulator keeps this at 0 and
  /// drives evaluations explicitly so journals stay deterministic.
  uint64_t health_interval_micros = 0;

  EncryptionOptions encryption;
};

struct ReadOptions {
  /// If non-null, read as of this snapshot.
  const Snapshot* snapshot = nullptr;
  /// Historical knob: SST block CRCs and authentication tags are now
  /// always verified on read (a mismatch surfaces as Corruption naming
  /// the file and block offset), regardless of this flag. Retained for
  /// API compatibility; WAL replay strictness is controlled separately
  /// via paranoid_checks.
  bool verify_checksums = false;
  /// Whether fetched blocks populate the block cache.
  bool fill_cache = true;
  /// If non-zero, iterators over SSTs read through a prefetch buffer
  /// that grows from 16KB up to this many bytes, serving sequential
  /// block reads from memory (env/readahead_file.h). Point Gets are
  /// unaffected. 0 (default) reads block-by-block.
  size_t readahead_size = 0;
};

struct WriteOptions {
  /// fsync the WAL before acknowledging this write.
  bool sync = false;
};

}  // namespace shield

#endif  // SHIELD_LSM_OPTIONS_H_
