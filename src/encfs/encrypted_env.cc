#include "encfs/encrypted_env.h"

#include <cstring>

#include "crypto/secure_random.h"
#include "env/io_stats.h"

namespace shield {

namespace {

constexpr char kMagic[8] = {'S', 'H', 'E', 'N', 'C', 'F', 'S', '1'};

// Header layout within the 4 KiB prologue:
//   magic(8) | cipher(1) | nonce_len(1) | nonce(<=16) | zero padding
struct ParsedHeader {
  crypto::CipherKind cipher;
  std::string nonce;
};

Status MakeCipherForFile(crypto::CipherKind kind, const std::string& key,
                         const std::string& nonce,
                         std::unique_ptr<crypto::StreamCipher>* out) {
  return crypto::NewStreamCipher(kind, key, nonce, out);
}

std::string BuildHeader(crypto::CipherKind cipher, const std::string& nonce) {
  std::string header(kEncFsHeaderSize, '\0');
  memcpy(header.data(), kMagic, sizeof(kMagic));
  header[8] = static_cast<char>(cipher);
  header[9] = static_cast<char>(nonce.size());
  memcpy(header.data() + 10, nonce.data(), nonce.size());
  return header;
}

Status ParseHeader(const Slice& data, ParsedHeader* out) {
  if (data.size() < 10 || memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not an EncFS file");
  }
  out->cipher = static_cast<crypto::CipherKind>(data[8]);
  const size_t nonce_len = static_cast<uint8_t>(data[9]);
  if (nonce_len > 16 || data.size() < 10 + nonce_len) {
    return Status::Corruption("bad EncFS header nonce");
  }
  out->nonce.assign(data.data() + 10, nonce_len);
  return Status::OK();
}

// Encrypts appended bytes with the instance DEK. Each encryption
// operation initializes a fresh cipher context — the repeated
// "encryption initialization" cost the paper identifies for per-write
// encryption (Section 3.2). With buffer_size > 0 (WAL-Buf), plaintext
// accumulates in memory and is encrypted in one operation when the
// buffer fills or on Sync/Close.
class EncryptedWritableFile final : public WritableFile {
 public:
  EncryptedWritableFile(std::unique_ptr<WritableFile> base,
                        crypto::CipherKind cipher_kind, std::string key,
                        std::string nonce, size_t buffer_size)
      : base_(std::move(base)),
        cipher_kind_(cipher_kind),
        key_(std::move(key)),
        nonce_(std::move(nonce)),
        buffer_size_(buffer_size) {}

  ~EncryptedWritableFile() override {
    if (!closed_) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    if (buffer_size_ == 0) {
      return EncryptAndAppend(data.data(), data.size());
    }
    buffer_.append(data.data(), data.size());
    if (buffer_.size() >= buffer_size_) {
      return DrainBuffer();
    }
    return Status::OK();
  }
  Status Flush() override {
    // See ShieldWritableFile::Flush: draining here would defeat the
    // WAL buffer; only Sync/Close force encryption.
    return base_->Flush();
  }
  Status Sync() override {
    Status s = DrainBuffer();
    if (!s.ok()) {
      return s;
    }
    return base_->Sync();
  }
  Status Close() override {
    closed_ = true;
    Status s = DrainBuffer();
    Status c = base_->Close();
    return s.ok() ? c : s;
  }
  uint64_t GetFileSize() const override {
    return logical_offset_ + buffer_.size();
  }

 private:
  Status DrainBuffer() {
    if (buffer_.empty()) {
      return Status::OK();
    }
    Status s = EncryptAndAppend(buffer_.data(), buffer_.size());
    if (s.ok()) {
      // Only on success: see ShieldWritableFile::DrainBuffer — keep
      // the plaintext buffered so a retried Sync can persist it.
      buffer_.clear();
    }
    return s;
  }

  Status EncryptAndAppend(const char* data, size_t n) {
    std::unique_ptr<crypto::StreamCipher> cipher;
    Status s = crypto::NewStreamCipher(cipher_kind_, key_, nonce_, &cipher);
    if (!s.ok()) {
      return s;
    }
    scratch_.assign(data, n);
    cipher->CryptAt(logical_offset_, scratch_.data(), scratch_.size());
    s = base_->Append(scratch_);
    if (s.ok()) {
      logical_offset_ += n;
    }
    return s;
  }

  std::unique_ptr<WritableFile> base_;
  const crypto::CipherKind cipher_kind_;
  const std::string key_;
  const std::string nonce_;
  const size_t buffer_size_;
  uint64_t logical_offset_ = 0;
  std::string buffer_;
  std::string scratch_;
  bool closed_ = false;
};

class EncryptedSequentialFile final : public SequentialFile {
 public:
  EncryptedSequentialFile(std::unique_ptr<SequentialFile> base,
                          std::unique_ptr<crypto::StreamCipher> cipher)
      : base_(std::move(base)), cipher_(std::move(cipher)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (!s.ok()) {
      return s;
    }
    // Decrypt in place in scratch. result may point at an internal
    // buffer of base; copy into scratch if so.
    if (result->data() != scratch && result->size() > 0) {
      memmove(scratch, result->data(), result->size());
    }
    cipher_->CryptAt(logical_offset_, scratch, result->size());
    *result = Slice(scratch, result->size());
    logical_offset_ += result->size();
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    logical_offset_ += n;
    return base_->Skip(n);
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  std::unique_ptr<crypto::StreamCipher> cipher_;
  uint64_t logical_offset_ = 0;
};

class EncryptedRandomAccessFile final : public RandomAccessFile {
 public:
  EncryptedRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            std::unique_ptr<crypto::StreamCipher> cipher)
      : base_(std::move(base)), cipher_(std::move(cipher)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset + kEncFsHeaderSize, n, result, scratch);
    if (!s.ok()) {
      return s;
    }
    if (result->data() != scratch && result->size() > 0) {
      memmove(scratch, result->data(), result->size());
    }
    cipher_->CryptAt(offset, scratch, result->size());
    *result = Slice(scratch, result->size());
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    Status s = base_->Size(size);
    if (s.ok()) {
      *size = *size >= kEncFsHeaderSize ? *size - kEncFsHeaderSize : 0;
    }
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::unique_ptr<crypto::StreamCipher> cipher_;
};

class EncryptedEnv final : public EnvWrapper {
 public:
  EncryptedEnv(Env* base, crypto::CipherKind cipher, std::string key,
               size_t wal_buffer_size)
      : EnvWrapper(base),
        cipher_kind_(cipher),
        key_(std::move(key)),
        wal_buffer_size_(wal_buffer_size) {}

  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    std::unique_ptr<WritableFile> base;
    Status s = target()->NewWritableFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    const std::string nonce =
        crypto::SecureRandomString(crypto::CipherNonceSize(cipher_kind_));
    s = base->Append(BuildHeader(cipher_kind_, nonce));
    if (!s.ok()) {
      return s;
    }
    const size_t buffer_size =
        ClassifyFile(f) == FileKind::kWal ? wal_buffer_size_ : 0;
    *r = std::make_unique<EncryptedWritableFile>(std::move(base),
                                                 cipher_kind_, key_, nonce,
                                                 buffer_size);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    std::unique_ptr<SequentialFile> base;
    Status s = target()->NewSequentialFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::StreamCipher> cipher;
    s = ReadHeaderSequential(base.get(), &cipher);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<EncryptedSequentialFile>(std::move(base),
                                                   std::move(cipher));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    std::unique_ptr<RandomAccessFile> base;
    Status s = target()->NewRandomAccessFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    char scratch[kEncFsHeaderSize];
    Slice header;
    s = base->Read(0, kEncFsHeaderSize, &header, scratch);
    if (!s.ok()) {
      return s;
    }
    ParsedHeader parsed;
    s = ParseHeader(header, &parsed);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::StreamCipher> cipher;
    s = MakeCipherForFile(parsed.cipher, key_, parsed.nonce, &cipher);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<EncryptedRandomAccessFile>(std::move(base),
                                                     std::move(cipher));
    return Status::OK();
  }

  Status GetFileSize(const std::string& f, uint64_t* size) override {
    Status s = target()->GetFileSize(f, size);
    if (s.ok()) {
      *size = *size >= kEncFsHeaderSize ? *size - kEncFsHeaderSize : 0;
    }
    return s;
  }

 private:
  Status ReadHeaderSequential(SequentialFile* file,
                              std::unique_ptr<crypto::StreamCipher>* cipher) {
    std::string scratch(kEncFsHeaderSize, '\0');
    std::string header;
    while (header.size() < kEncFsHeaderSize) {
      Slice got;
      Status s =
          file->Read(kEncFsHeaderSize - header.size(), &got, scratch.data());
      if (!s.ok()) {
        return s;
      }
      if (got.empty()) {
        return Status::Corruption("EncFS file shorter than header");
      }
      header.append(got.data(), got.size());
    }
    ParsedHeader parsed;
    Status s = ParseHeader(header, &parsed);
    if (!s.ok()) {
      return s;
    }
    return MakeCipherForFile(parsed.cipher, key_, parsed.nonce, cipher);
  }

  const crypto::CipherKind cipher_kind_;
  const std::string key_;
  const size_t wal_buffer_size_;
};

}  // namespace

Status NewEncryptedEnv(Env* base_env, crypto::CipherKind cipher,
                       const std::string& instance_key,
                       std::unique_ptr<Env>* out, size_t wal_buffer_size) {
  if (instance_key.size() != crypto::CipherKeySize(cipher)) {
    return Status::InvalidArgument("instance key size mismatch for cipher");
  }
  *out = std::make_unique<EncryptedEnv>(base_env, cipher, instance_key,
                                        wal_buffer_size);
  return Status::OK();
}

}  // namespace shield
