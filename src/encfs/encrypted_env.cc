#include "encfs/encrypted_env.h"

#include <cstring>

#include "crypto/block_auth.h"
#include "crypto/secure_random.h"
#include "env/io_stats.h"
#include "util/perf_context.h"
#include "util/trace.h"

namespace shield {

namespace {

// Mirrors crypto traffic into the tickers and the calling thread's
// PerfContext; same accounting discipline as shield/file_crypto.cc.
void RecordCryptoBytes(Statistics* stats, crypto::CipherKind kind,
                       bool encrypt, uint64_t n) {
  if (n == 0) {
    return;
  }
  RecordTick(stats,
             encrypt ? Tickers::kCryptoBytesEncrypted
                     : Tickers::kCryptoBytesDecrypted,
             n);
  RecordTick(stats,
             kind == crypto::CipherKind::kChaCha20 ? Tickers::kCryptoChaCha20Bytes
                                                   : Tickers::kCryptoAesBytes,
             n);
  PerfAdd(encrypt ? &PerfContext::encrypt_bytes : &PerfContext::decrypt_bytes,
          n);
}

// Format v1: CTR ciphertext only. Format v2 ("SHENCFS2") additionally
// carries per-block/record HMAC tags emitted by sst_builder/log_writer.
// The magic — not a config knob — decides what readers expect, so v1
// files written before authentication existed stay readable.
constexpr char kMagic[8] = {'S', 'H', 'E', 'N', 'C', 'F', 'S', '1'};
constexpr char kMagicAuth[8] = {'S', 'H', 'E', 'N', 'C', 'F', 'S', '2'};

// Header layout within the 4 KiB prologue:
//   magic(8) | cipher(1) | nonce_len(1) | nonce(<=16) | zero padding
struct ParsedHeader {
  crypto::CipherKind cipher;
  std::string nonce;
  bool authenticated = false;
};

Status MakeCipherForFile(crypto::CipherKind kind, const std::string& key,
                         const std::string& nonce,
                         std::unique_ptr<crypto::StreamCipher>* out) {
  return crypto::NewStreamCipher(kind, key, nonce, out);
}

std::string BuildHeader(crypto::CipherKind cipher, const std::string& nonce,
                        bool authenticated) {
  std::string header(kEncFsHeaderSize, '\0');
  memcpy(header.data(), authenticated ? kMagicAuth : kMagic, sizeof(kMagic));
  header[8] = static_cast<char>(cipher);
  header[9] = static_cast<char>(nonce.size());
  memcpy(header.data() + 10, nonce.data(), nonce.size());
  return header;
}

Status ParseHeader(const Slice& data, ParsedHeader* out) {
  if (data.size() < 10) {
    return Status::Corruption("not an EncFS file");
  }
  if (memcmp(data.data(), kMagic, sizeof(kMagic)) == 0) {
    out->authenticated = false;
  } else if (memcmp(data.data(), kMagicAuth, sizeof(kMagicAuth)) == 0) {
    out->authenticated = true;
  } else {
    return Status::Corruption("not an EncFS file");
  }
  out->cipher = static_cast<crypto::CipherKind>(data[8]);
  const size_t nonce_len = static_cast<uint8_t>(data[9]);
  if (nonce_len > 16 || data.size() < 10 + nonce_len) {
    return Status::Corruption("bad EncFS header nonce");
  }
  out->nonce.assign(data.data() + 10, nonce_len);
  return Status::OK();
}

// Encrypts appended bytes with the instance DEK. Each encryption
// operation initializes a fresh cipher context — the repeated
// "encryption initialization" cost the paper identifies for per-write
// encryption (Section 3.2). With buffer_size > 0 (WAL-Buf), plaintext
// accumulates in memory and is encrypted in one operation when the
// buffer fills or on Sync/Close.
class EncryptedWritableFile final : public WritableFile {
 public:
  EncryptedWritableFile(std::unique_ptr<WritableFile> base,
                        crypto::CipherKind cipher_kind, std::string key,
                        std::string nonce, size_t buffer_size,
                        std::unique_ptr<crypto::BlockAuthenticator> auth,
                        Statistics* stats)
      : base_(std::move(base)),
        cipher_kind_(cipher_kind),
        key_(std::move(key)),
        nonce_(std::move(nonce)),
        buffer_size_(buffer_size),
        auth_(std::move(auth)),
        stats_(stats) {}

  ~EncryptedWritableFile() override {
    if (!closed_) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    if (buffer_size_ == 0) {
      return EncryptAndAppend(data.data(), data.size());
    }
    buffer_.append(data.data(), data.size());
    if (buffer_.size() >= buffer_size_) {
      return DrainBuffer();
    }
    return Status::OK();
  }
  Status Flush() override {
    // See ShieldWritableFile::Flush: draining here would defeat the
    // WAL buffer; only Sync/Close force encryption.
    return base_->Flush();
  }
  Status Sync() override {
    Status s = DrainBuffer();
    if (!s.ok()) {
      return s;
    }
    return base_->Sync();
  }
  Status Close() override {
    closed_ = true;
    Status s = DrainBuffer();
    Status c = base_->Close();
    return s.ok() ? c : s;
  }
  uint64_t GetFileSize() const override {
    return logical_offset_ + buffer_.size();
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return auth_.get();
  }

 private:
  Status DrainBuffer() {
    if (buffer_.empty()) {
      return Status::OK();
    }
    Status s = EncryptAndAppend(buffer_.data(), buffer_.size());
    if (s.ok()) {
      // Only on success: see ShieldWritableFile::DrainBuffer — keep
      // the plaintext buffered so a retried Sync can persist it.
      buffer_.clear();
    }
    return s;
  }

  Status EncryptAndAppend(const char* data, size_t n) {
    TraceSpan span(SpanType::kFileEncrypt);
    span.SetArgs(logical_offset_, n);
    span.SetAux(static_cast<uint8_t>(cipher_kind_));
    std::unique_ptr<crypto::StreamCipher> cipher;
    Status s = crypto::NewStreamCipher(cipher_kind_, key_, nonce_, &cipher);
    if (!s.ok()) {
      span.SetError();
      return s;
    }
    scratch_.assign(data, n);
    s = cipher->CryptAt(logical_offset_, scratch_.data(), scratch_.size());
    if (!s.ok()) {
      // Cipher failure (e.g. ChaCha20 counter overflow): never append
      // the (possibly partially transformed) scratch bytes.
      span.SetError();
      return s;
    }
    RecordCryptoBytes(stats_, cipher_kind_, /*encrypt=*/true, n);
    s = base_->Append(scratch_);
    if (s.ok()) {
      logical_offset_ += n;
    }
    return s;
  }

  std::unique_ptr<WritableFile> base_;
  const crypto::CipherKind cipher_kind_;
  const std::string key_;
  const std::string nonce_;
  const size_t buffer_size_;
  const std::unique_ptr<crypto::BlockAuthenticator> auth_;
  Statistics* const stats_;
  uint64_t logical_offset_ = 0;
  std::string buffer_;
  std::string scratch_;
  bool closed_ = false;
};

class EncryptedSequentialFile final : public SequentialFile {
 public:
  EncryptedSequentialFile(std::unique_ptr<SequentialFile> base,
                          std::unique_ptr<crypto::StreamCipher> cipher,
                          std::unique_ptr<crypto::BlockAuthenticator> auth,
                          Statistics* stats)
      : base_(std::move(base)),
        cipher_(std::move(cipher)),
        auth_(std::move(auth)),
        stats_(stats) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (!s.ok()) {
      return s;
    }
    // Decrypt in place in scratch. result may point at an internal
    // buffer of base; copy into scratch if so.
    if (result->data() != scratch && result->size() > 0) {
      memmove(scratch, result->data(), result->size());
    }
    {
      TraceSpan span(SpanType::kFileDecrypt);
      span.SetArgs(logical_offset_, result->size());
      span.SetAux(static_cast<uint8_t>(cipher_->kind()));
      PerfTimer timer(&GetPerfContext()->decrypt_micros);
      s = cipher_->CryptAt(logical_offset_, scratch, result->size());
      span.MarkStatus(s);
    }
    if (!s.ok()) {
      return s;
    }
    RecordCryptoBytes(stats_, cipher_->kind(), /*encrypt=*/false,
                      result->size());
    *result = Slice(scratch, result->size());
    logical_offset_ += result->size();
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    logical_offset_ += n;
    return base_->Skip(n);
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return auth_.get();
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  std::unique_ptr<crypto::StreamCipher> cipher_;
  std::unique_ptr<crypto::BlockAuthenticator> auth_;
  Statistics* const stats_;
  uint64_t logical_offset_ = 0;
};

class EncryptedRandomAccessFile final : public RandomAccessFile {
 public:
  EncryptedRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            std::unique_ptr<crypto::StreamCipher> cipher,
                            std::unique_ptr<crypto::BlockAuthenticator> auth,
                            Statistics* stats)
      : base_(std::move(base)),
        cipher_(std::move(cipher)),
        auth_(std::move(auth)),
        stats_(stats) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset + kEncFsHeaderSize, n, result, scratch);
    if (!s.ok()) {
      return s;
    }
    if (result->data() != scratch && result->size() > 0) {
      memmove(scratch, result->data(), result->size());
    }
    {
      TraceSpan span(SpanType::kFileDecrypt);
      span.SetArgs(offset, result->size());
      span.SetAux(static_cast<uint8_t>(cipher_->kind()));
      PerfTimer timer(&GetPerfContext()->decrypt_micros);
      s = cipher_->CryptAt(offset, scratch, result->size());
      span.MarkStatus(s);
    }
    if (!s.ok()) {
      return s;
    }
    RecordCryptoBytes(stats_, cipher_->kind(), /*encrypt=*/false,
                      result->size());
    *result = Slice(scratch, result->size());
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    Status s = base_->Size(size);
    if (s.ok()) {
      *size = *size >= kEncFsHeaderSize ? *size - kEncFsHeaderSize : 0;
    }
    return s;
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return auth_.get();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::unique_ptr<crypto::StreamCipher> cipher_;
  std::unique_ptr<crypto::BlockAuthenticator> auth_;
  Statistics* const stats_;
};

class EncryptedEnv final : public EnvWrapper {
 public:
  EncryptedEnv(Env* base, crypto::CipherKind cipher, std::string key,
               size_t wal_buffer_size, bool authenticate_blocks,
               Statistics* stats)
      : EnvWrapper(base),
        cipher_kind_(cipher),
        key_(std::move(key)),
        wal_buffer_size_(wal_buffer_size),
        authenticate_blocks_(authenticate_blocks),
        stats_(stats) {}

  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    std::unique_ptr<WritableFile> base;
    Status s = target()->NewWritableFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    const std::string nonce =
        crypto::SecureRandomString(crypto::CipherNonceSize(cipher_kind_));
    s = base->Append(BuildHeader(cipher_kind_, nonce, authenticate_blocks_));
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::BlockAuthenticator> auth;
    if (authenticate_blocks_) {
      auth = crypto::NewBlockAuthenticator(cipher_kind_, key_, nonce);
      if (auth == nullptr) {
        return Status::InvalidArgument("cannot build block authenticator");
      }
      auth->SetStatisticsSink(stats_);
    }
    const size_t buffer_size =
        ClassifyFile(f) == FileKind::kWal ? wal_buffer_size_ : 0;
    *r = std::make_unique<EncryptedWritableFile>(
        std::move(base), cipher_kind_, key_, nonce, buffer_size,
        std::move(auth), stats_);
    return Status::OK();
  }

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    std::unique_ptr<SequentialFile> base;
    Status s = target()->NewSequentialFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::StreamCipher> cipher;
    std::unique_ptr<crypto::BlockAuthenticator> auth;
    s = ReadHeaderSequential(base.get(), &cipher, &auth);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<EncryptedSequentialFile>(
        std::move(base), std::move(cipher), std::move(auth), stats_);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    std::unique_ptr<RandomAccessFile> base;
    Status s = target()->NewRandomAccessFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    char scratch[kEncFsHeaderSize];
    Slice header;
    s = base->Read(0, kEncFsHeaderSize, &header, scratch);
    if (!s.ok()) {
      return s;
    }
    ParsedHeader parsed;
    s = ParseHeader(header, &parsed);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::StreamCipher> cipher;
    s = MakeCipherForFile(parsed.cipher, key_, parsed.nonce, &cipher);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<crypto::BlockAuthenticator> auth;
    s = MakeAuthenticator(parsed, &auth);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<EncryptedRandomAccessFile>(
        std::move(base), std::move(cipher), std::move(auth), stats_);
    return Status::OK();
  }

  Status GetFileSize(const std::string& f, uint64_t* size) override {
    Status s = target()->GetFileSize(f, size);
    if (s.ok()) {
      *size = *size >= kEncFsHeaderSize ? *size - kEncFsHeaderSize : 0;
    }
    return s;
  }

 private:
  Status MakeAuthenticator(const ParsedHeader& parsed,
                           std::unique_ptr<crypto::BlockAuthenticator>* auth) {
    if (!parsed.authenticated) {
      return Status::OK();
    }
    *auth = crypto::NewBlockAuthenticator(parsed.cipher, key_, parsed.nonce);
    if (*auth == nullptr) {
      return Status::InvalidArgument("cannot build block authenticator");
    }
    (*auth)->SetStatisticsSink(stats_);
    return Status::OK();
  }

  Status ReadHeaderSequential(
      SequentialFile* file, std::unique_ptr<crypto::StreamCipher>* cipher,
      std::unique_ptr<crypto::BlockAuthenticator>* auth) {
    std::string scratch(kEncFsHeaderSize, '\0');
    std::string header;
    while (header.size() < kEncFsHeaderSize) {
      Slice got;
      Status s =
          file->Read(kEncFsHeaderSize - header.size(), &got, scratch.data());
      if (!s.ok()) {
        return s;
      }
      if (got.empty()) {
        return Status::Corruption("EncFS file shorter than header");
      }
      header.append(got.data(), got.size());
    }
    ParsedHeader parsed;
    Status s = ParseHeader(header, &parsed);
    if (!s.ok()) {
      return s;
    }
    s = MakeAuthenticator(parsed, auth);
    if (!s.ok()) {
      return s;
    }
    return MakeCipherForFile(parsed.cipher, key_, parsed.nonce, cipher);
  }

  const crypto::CipherKind cipher_kind_;
  const std::string key_;
  const size_t wal_buffer_size_;
  const bool authenticate_blocks_;
  Statistics* const stats_;
};

}  // namespace

Status NewEncryptedEnv(Env* base_env, crypto::CipherKind cipher,
                       const std::string& instance_key,
                       std::unique_ptr<Env>* out, size_t wal_buffer_size,
                       bool authenticate_blocks, Statistics* stats) {
  if (instance_key.size() != crypto::CipherKeySize(cipher)) {
    return Status::InvalidArgument("instance key size mismatch for cipher");
  }
  *out = std::make_unique<EncryptedEnv>(base_env, cipher, instance_key,
                                        wal_buffer_size, authenticate_blocks,
                                        stats);
  return Status::OK();
}

}  // namespace shield
