#ifndef SHIELD_ENCFS_ENCRYPTED_ENV_H_
#define SHIELD_ENCFS_ENCRYPTED_ENV_H_

#include <memory>
#include <string>

#include "crypto/cipher.h"
#include "env/env.h"
#include "util/statistics.h"

namespace shield {

/// EncFS — the paper's instance-level encryption design (Section 4).
///
/// A transparent Env wrapper: every file written through it is
/// encrypted with a single instance-wide DEK supplied at startup, and
/// decrypted on read. The LSM-KVS core is completely unaware of the
/// encryption ("non-intrusive"); suitable for monolithic deployments
/// where the server is fully controlled.
///
/// Each file begins with a 4 KiB header (magic, cipher kind, per-file
/// random nonce); the rest of the file is the CTR-encrypted payload at
/// logical offsets starting from 0. Using a random nonce per file keeps
/// keystream reuse away even though the DEK is shared — this mirrors
/// RocksDB's EncryptedEnv block-alignment prologue.
///
/// Trade-offs (paper Section 4.2): one DEK for everything, so no
/// per-file compromise isolation and no cheap rotation; rotating the
/// key means re-encrypting the entire store.
///
/// The returned Env does not own `base_env`; `instance_key` must be a
/// valid key for `cipher`.
///
/// `wal_buffer_size`: when > 0, WAL files (*.log) written through this
/// Env buffer plaintext in memory and encrypt + append only when the
/// buffer fills or on Sync/Close — the paper's WAL-Buf optimization
/// applied to the instance-level design. 0 encrypts every append
/// individually (paying fresh per-operation cipher initialization,
/// the Section 3.2 bottleneck).
///
/// `authenticate_blocks`: when true, new files are written in format v2
/// ("SHENCFS2"): their WritableFile exposes a BlockAuthenticator so
/// sst_builder/log_writer append truncated HMAC-SHA256 tags over each
/// encrypted block/record (encrypt-then-MAC). Readers auto-detect the
/// format from the per-file magic, so v1 and v2 files coexist.
///
/// `stats` (optional; must outlive the Env and every file it opens)
/// receives crypto.bytes.encrypted/decrypted and per-cipher tickers.
Status NewEncryptedEnv(Env* base_env, crypto::CipherKind cipher,
                       const std::string& instance_key,
                       std::unique_ptr<Env>* out,
                       size_t wal_buffer_size = 0,
                       bool authenticate_blocks = true,
                       Statistics* stats = nullptr);

/// Size of the plaintext prologue EncFS places at the head of each
/// file. Exposed for tests.
constexpr uint64_t kEncFsHeaderSize = 4096;

}  // namespace shield

#endif  // SHIELD_ENCFS_ENCRYPTED_ENV_H_
