#ifndef SHIELD_DS_NETWORK_SIM_H_
#define SHIELD_DS_NETWORK_SIM_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace shield {

/// Parameters of the simulated network between compute and storage
/// servers. Defaults model the paper's testbed: servers on one rack
/// behind a 1 Gbps switch, intra-datacenter RTT ~500 us.
struct NetworkSimOptions {
  uint64_t rtt_micros = 500;
  /// Link bandwidth. 1 Gbps = 125 MB/s.
  uint64_t bandwidth_bytes_per_sec = 125ull * 1000 * 1000;
};

/// Models a shared network link: every transfer pays serialization
/// delay on a single shared pipe (token-bucket style: concurrent
/// transfers queue behind each other) plus an optional round-trip
/// latency. Thread safe.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(NetworkSimOptions options);

  /// Blocks for the simulated duration of transferring `bytes` over
  /// the shared link; adds one RTT when `pay_rtt` (new request) is
  /// true. Streaming appends typically pay bandwidth only.
  void SimulateTransfer(uint64_t bytes, bool pay_rtt);

  void set_rtt_micros(uint64_t v) {
    rtt_micros_.store(v, std::memory_order_relaxed);
  }
  uint64_t rtt_micros() const {
    return rtt_micros_.load(std::memory_order_relaxed);
  }
  void set_bandwidth_bytes_per_sec(uint64_t v) {
    bandwidth_.store(v == 0 ? 1 : v, std::memory_order_relaxed);
  }
  uint64_t bandwidth_bytes_per_sec() const {
    return bandwidth_.load(std::memory_order_relaxed);
  }

  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> rtt_micros_;
  std::atomic<uint64_t> bandwidth_;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_requests_{0};

  std::mutex mu_;
  uint64_t link_busy_until_micros_ = 0;
};

}  // namespace shield

#endif  // SHIELD_DS_NETWORK_SIM_H_
