#ifndef SHIELD_DS_NETWORK_SIM_H_
#define SHIELD_DS_NETWORK_SIM_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "util/clock.h"
#include "util/random.h"
#include "util/statistics.h"
#include "util/status.h"

namespace shield {

/// Parameters of the simulated network between compute and storage
/// servers. Defaults model the paper's testbed: servers on one rack
/// behind a 1 Gbps switch, intra-datacenter RTT ~500 us.
struct NetworkSimOptions {
  uint64_t rtt_micros = 500;
  /// Link bandwidth. 1 Gbps = 125 MB/s.
  uint64_t bandwidth_bytes_per_sec = 125ull * 1000 * 1000;

  // --- Fault injection (all off by default). The schedule is
  // deterministic given fault_seed and the request sequence. ---
  uint64_t fault_seed = 1;
  /// Probability that a request is dropped/errored at the packet level
  /// (fails immediately with Status::TryAgain).
  double error_probability = 0.0;
  /// Probability that a request times out: the caller blocks for
  /// timeout_micros and then gets Status::TryAgain.
  double timeout_probability = 0.0;
  uint64_t timeout_micros = 0;

  /// Time source for link reservation, sleeps and partition windows.
  /// Null: the process clock (SystemClock()), i.e. real time in
  /// production, virtual time under the deterministic simulator.
  Clock* clock = nullptr;
};

/// Models a shared network link: every transfer pays serialization
/// delay on a single shared pipe (token-bucket style: concurrent
/// transfers queue behind each other) plus an optional round-trip
/// latency. Thread safe.
class NetworkSimulator {
 public:
  explicit NetworkSimulator(NetworkSimOptions options);

  /// Blocks for the simulated duration of transferring `bytes` over
  /// the shared link; adds one RTT when `pay_rtt` (new request) is
  /// true. Streaming appends typically pay bandwidth only. Never
  /// fails (fault-free path).
  void SimulateTransfer(uint64_t bytes, bool pay_rtt);

  /// Like SimulateTransfer, but subject to the configured failure
  /// modes: packet-level errors, timeouts, and partition windows all
  /// fail the request with Status::TryAgain (after sleeping the
  /// timeout, for timeouts). Clients are expected to retry with
  /// backoff (see util/retry.h).
  Status TryTransfer(uint64_t bytes, bool pay_rtt);

  /// Severs the link until HealPartition() (or, with the _For variant,
  /// until `micros` from now): every TryTransfer fails immediately.
  /// Requesting a partition while one is active only ever *extends*
  /// the outage: a timed window never shortens a longer timed window
  /// already armed, and never downgrades an unbounded StartPartition()
  /// — sends queued behind the original window stay failed until the
  /// latest deadline (or an explicit HealPartition()).
  void StartPartition();
  void StartPartitionFor(uint64_t micros);
  void HealPartition();
  bool partitioned();

  void set_rtt_micros(uint64_t v) {
    rtt_micros_.store(v, std::memory_order_relaxed);
  }
  uint64_t rtt_micros() const {
    return rtt_micros_.load(std::memory_order_relaxed);
  }
  void set_bandwidth_bytes_per_sec(uint64_t v) {
    bandwidth_.store(v == 0 ? 1 : v, std::memory_order_relaxed);
  }
  uint64_t bandwidth_bytes_per_sec() const {
    return bandwidth_.load(std::memory_order_relaxed);
  }

  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t total_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }
  /// Requests failed by injected faults (errors, timeouts, partitions).
  uint64_t injected_faults() const {
    return injected_faults_.load(std::memory_order_relaxed);
  }

  /// Mirrors subsequent traffic into the ds.network.* tickers
  /// (bytes, requests, token-bucket wait micros). `stats` must outlive
  /// the simulator or a later SetStatisticsSink(nullptr).
  void SetStatisticsSink(Statistics* stats) {
    stats_.store(stats, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> rtt_micros_;
  std::atomic<uint64_t> bandwidth_;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_requests_{0};
  std::atomic<uint64_t> injected_faults_{0};
  std::atomic<Statistics*> stats_{nullptr};
  Clock* const clock_;

  std::mutex mu_;
  uint64_t link_busy_until_micros_ = 0;
  NetworkSimOptions fault_options_;
  Random rnd_;
  /// 0 = healthy; UINT64_MAX = partitioned until healed; otherwise the
  /// NowMicros() deadline when the partition auto-heals.
  uint64_t partition_until_micros_ = 0;
};

}  // namespace shield

#endif  // SHIELD_DS_NETWORK_SIM_H_
