#ifndef SHIELD_DS_COMPACTION_WORKER_H_
#define SHIELD_DS_COMPACTION_WORKER_H_

#include <memory>
#include <string>

#include "kds/kds.h"
#include "lsm/compaction_service.h"
#include "lsm/options.h"
#include "shield/dek_manager.h"
#include "shield/file_crypto.h"
#include "util/thread_pool.h"

namespace shield {

/// A compaction worker running on (or near) the storage cluster —
/// the paper's offloaded-compaction case study (Section 5.6). It
/// receives only metadata (file numbers) from the primary; input DEKs
/// are resolved from the DEK-IDs embedded in the SST headers via the
/// worker's own KDS client, and outputs are encrypted under fresh DEKs
/// requested by the worker (DEK rotation happens on the worker, not
/// the primary).
class RemoteCompactionWorker final : public CompactionService {
 public:
  struct WorkerOptions {
    /// Storage-side Env the worker uses to access shared files.
    Env* env = nullptr;
    /// Engine options (block size, comparator, ...). Encryption mode
    /// selects plaintext vs SHIELD output files.
    Options db_options;
    /// Identity this worker presents to the KDS.
    std::string server_id = "compaction-worker-1";
    /// Optional per-node tracer (non-exclusive). When set, RunCompaction
    /// binds its thread to this tracer so worker-side spans land in the
    /// worker node's trace file, parented to the dispatching DB op via
    /// CompactionJobSpec::trace.
    Tracer* tracer = nullptr;
  };

  explicit RemoteCompactionWorker(const WorkerOptions& options);
  ~RemoteCompactionWorker() override;

  Status RunCompaction(const CompactionJobSpec& job,
                       CompactionJobResult* result) override;

  /// KDS round-trips the worker performed (input DEK fetches + output
  /// DEK creations).
  uint64_t kds_requests() const {
    return dek_manager_ ? dek_manager_->kds_requests() : 0;
  }

  uint64_t jobs_run() const { return jobs_run_; }

 private:
  WorkerOptions options_;
  std::shared_ptr<Kds> kds_;
  std::unique_ptr<DekManager> dek_manager_;
  std::unique_ptr<ThreadPool> encryption_pool_;
  std::unique_ptr<DataFileFactory> files_;
  std::unique_ptr<InternalKeyComparator> icmp_;
  uint64_t jobs_run_ = 0;
};

}  // namespace shield

#endif  // SHIELD_DS_COMPACTION_WORKER_H_
