#include "ds/compaction_worker.h"

#include <algorithm>
#include <vector>

#include "kds/local_kds.h"
#include "lsm/file_names.h"
#include "lsm/merger.h"
#include "lsm/sst_builder.h"
#include "lsm/sst_reader.h"
#include "util/clock.h"
#include "util/trace.h"

namespace shield {

RemoteCompactionWorker::RemoteCompactionWorker(const WorkerOptions& options)
    : options_(options) {
  if (options_.env == nullptr) {
    options_.env = Env::Default();
  }
  Options& db_options = options_.db_options;
  if (db_options.comparator == nullptr) {
    db_options.comparator = BytewiseComparator();
  }
  icmp_ = std::make_unique<InternalKeyComparator>(db_options.comparator);

  if (db_options.encryption.mode == EncryptionMode::kShield) {
    kds_ = db_options.encryption.kds;
    if (kds_ == nullptr) {
      kds_ = std::make_shared<LocalKds>();
    }
    dek_manager_ = std::make_unique<DekManager>(kds_.get(),
                                                options_.server_id,
                                                /*secure_cache=*/nullptr);
    if (db_options.encryption.encryption_threads > 1) {
      encryption_pool_ = std::make_unique<ThreadPool>(
          static_cast<size_t>(db_options.encryption.encryption_threads));
    }
    files_ = NewShieldFileFactory(options_.env, dek_manager_.get(),
                                  db_options.encryption,
                                  encryption_pool_.get());
  } else {
    files_ = NewPlainFileFactory(options_.env);
  }
}

RemoteCompactionWorker::~RemoteCompactionWorker() = default;

Status RemoteCompactionWorker::RunCompaction(const CompactionJobSpec& job,
                                             CompactionJobResult* result) {
  // Worker-side spans land in the worker node's trace (when one is
  // bound); the RPC span parents to the dispatching DB op when the
  // primary shipped its context, else to whatever is open on this
  // thread (in-process offload without a per-node tracer).
  ScopedTracerBinding binding(options_.tracer);
  TraceSpan span(SpanType::kCompactionRpc,
                 job.trace.valid() ? job.trace.parent_span_id
                                   : Tracer::CurrentSpanId(),
                 Slice());
  span.SetArgs(static_cast<uint64_t>(job.level),
               job.inputs0.size() + job.inputs1.size());
  const uint64_t start_micros = NowMicros();
  jobs_run_++;
  result->outputs.clear();
  result->bytes_read = 0;
  result->bytes_written = 0;

  // Open all input tables. DEK resolution happens inside the file
  // factory from each file's header (metadata-enabled DEK sharing).
  std::vector<std::unique_ptr<Table>> tables;
  std::vector<Iterator*> iters;
  Status s;
  ReadOptions read_options;
  read_options.verify_checksums = true;
  read_options.fill_cache = false;

  auto open_inputs = [&](const std::vector<CompactionInput>& inputs) {
    for (const auto& [number, size] : inputs) {
      const std::string fname = TableFileName(job.dbname, number);
      std::unique_ptr<RandomAccessFile> file;
      s = files_->NewRandomAccessFile(fname, &file);
      if (!s.ok()) {
        return;
      }
      std::unique_ptr<Table> table;
      s = Table::Open(options_.db_options, icmp_.get(), fname, std::move(file),
                      size, /*block_cache=*/nullptr, &table);
      if (!s.ok()) {
        return;
      }
      iters.push_back(table->NewIterator(read_options));
      tables.push_back(std::move(table));
      result->bytes_read += size;
    }
  };
  open_inputs(job.inputs0);
  if (s.ok()) {
    open_inputs(job.inputs1);
  }
  if (!s.ok()) {
    for (Iterator* iter : iters) {
      delete iter;
    }
    return s;
  }

  std::unique_ptr<Iterator> input(NewMergingIterator(
      icmp_.get(), iters.data(), static_cast<int>(iters.size())));
  input->SeekToFirst();

  // Merge with the standard drop rules: shadowed versions older than
  // the snapshot horizon, and tombstones when the output is
  // bottommost.
  std::unique_ptr<WritableFile> outfile;
  std::unique_ptr<TableBuilder> builder;
  size_t next_output_index = 0;
  CompactionOutputMeta current;

  std::string current_user_key;
  bool has_current_user_key = false;
  SequenceNumber last_sequence_for_key = kMaxSequenceNumber;
  const Comparator* ucmp = icmp_->user_comparator();

  auto open_output = [&]() -> Status {
    if (next_output_index >= job.output_numbers.size()) {
      return Status::Busy("compaction worker ran out of output numbers");
    }
    current = CompactionOutputMeta();
    current.number = job.output_numbers[next_output_index++];
    Status os = files_->NewWritableFile(
        TableFileName(job.dbname, current.number), FileKind::kSst, &outfile);
    if (!os.ok()) {
      return os;
    }
    builder = std::make_unique<TableBuilder>(options_.db_options, icmp_.get(),
                                             outfile.get());
    return Status::OK();
  };

  auto finish_output = [&]() -> Status {
    Status fs = builder->Finish();
    const uint64_t entries = builder->NumEntries();
    current.file_size = builder->FileSize();
    builder.reset();
    if (fs.ok()) {
      fs = outfile->Sync();
    }
    if (fs.ok()) {
      fs = outfile->Close();
    }
    outfile.reset();
    if (fs.ok() && entries > 0) {
      result->outputs.push_back(current);
      result->bytes_written += current.file_size;
    } else if (entries == 0) {
      files_->DeleteFile(TableFileName(job.dbname, current.number));
    }
    return fs;
  };

  while (s.ok() && input->Valid()) {
    const Slice key = input->key();
    bool drop = false;
    ParsedInternalKey ikey;
    if (!ParseInternalKey(key, &ikey)) {
      has_current_user_key = false;
      last_sequence_for_key = kMaxSequenceNumber;
    } else {
      if (!has_current_user_key ||
          ucmp->Compare(ikey.user_key, Slice(current_user_key)) != 0) {
        current_user_key.assign(ikey.user_key.data(), ikey.user_key.size());
        has_current_user_key = true;
        last_sequence_for_key = kMaxSequenceNumber;
      }
      if (last_sequence_for_key <= job.smallest_snapshot) {
        drop = true;
      } else if (ikey.type == kTypeDeletion &&
                 ikey.sequence <= job.smallest_snapshot && job.bottommost) {
        drop = true;
      }
      last_sequence_for_key = ikey.sequence;
    }

    if (!drop) {
      if (builder == nullptr) {
        s = open_output();
        if (!s.ok()) {
          break;
        }
      }
      if (builder->NumEntries() == 0) {
        current.smallest_internal_key = key.ToString();
      }
      current.largest_internal_key = key.ToString();
      current.largest_seq = std::max(current.largest_seq,
                                     ExtractSequence(key));
      builder->Add(key, input->value());
      if (job.max_output_file_size > 0 &&
          builder->FileSize() >= job.max_output_file_size) {
        s = finish_output();
      }
    }
    if (s.ok()) {
      input->Next();
    }
  }

  if (s.ok()) {
    s = input->status();
  }
  if (s.ok() && builder != nullptr) {
    s = finish_output();
  } else if (builder != nullptr) {
    builder->Abandon();
    builder.reset();
    outfile.reset();
  }

  result->micros = NowMicros() - start_micros;
  return s;
}

}  // namespace shield
