#ifndef SHIELD_DS_STORAGE_SERVICE_H_
#define SHIELD_DS_STORAGE_SERVICE_H_

#include <memory>
#include <string>

#include "ds/network_sim.h"
#include "env/env.h"
#include "env/io_stats.h"
#include "lsm/options.h"
#include "util/trace.h"

namespace shield {

/// The disaggregated storage cluster, emulating the paper's
/// HDFS-on-a-second-server setup: a shared file namespace that any
/// number of compute-side RemoteEnv clients (primary instance,
/// read-only instances, compaction workers) access over a simulated
/// network. Server-side I/O is accounted separately from client
/// traffic (paper Table 3 splits I/O by server and storage medium).
///
/// With `replicate` enabled the service keeps an HDFS-style second
/// copy of every appended byte in a private in-memory store, and
/// serves it through the FileReplicaSource interface: the engine's
/// integrity scrubber re-fetches a corrupt primary SST from the
/// replica verbatim (ciphertext, headers and tags included).
class StorageService : public FileReplicaSource {
 public:
  /// `backing` is the storage server's local filesystem (a MemEnv or a
  /// PosixEnv directory). Not owned.
  StorageService(Env* backing, NetworkSimOptions network_options,
                 bool replicate = false);

  /// The server-side view of the namespace (no network cost); used by
  /// services co-located with storage, e.g. the offloaded compaction
  /// worker running on the storage server. With replication on, writes
  /// through this env are teed to the replica store.
  Env* server_env() { return serving_env_; }

  /// The replica store (null when replication is off). Exposed for
  /// tests that need to damage or inspect the second copy.
  Env* replica_env() { return replica_env_.get(); }

  /// FileReplicaSource: returns the replica's raw bytes of `fname`,
  /// paying the simulated network cost of shipping them. NotSupported
  /// when replication is off; NotFound when the replica has no copy.
  Status FetchFile(const std::string& fname, std::string* contents) override;

  NetworkSimulator* network() { return &network_; }

  /// Cumulative I/O performed on the storage medium itself.
  IoStats* media_stats() { return &media_stats_; }

  /// Mirrors fabric traffic (ds.network.*) and storage-medium I/O
  /// (io.*) into `stats`; pass nullptr to detach. `stats` must outlive
  /// the service or the detach.
  void SetStatisticsSink(Statistics* stats) {
    network_.SetStatisticsSink(stats);
    media_stats_.SetStatisticsSink(stats);
  }

  /// Optional storage-node tracer (non-exclusive). When set, replica
  /// fetches record their span into this tracer's file, parented to
  /// the dispatching client op's span. Not owned; pass nullptr to
  /// detach.
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }

 private:
  NetworkSimulator network_;
  IoStats media_stats_;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<Env> counting_env_;
  std::unique_ptr<Env> replica_env_;      // in-memory second copy
  std::unique_ptr<Env> replicating_env_;  // tee over counting + replica
  Env* serving_env_ = nullptr;
};

/// Creates a compute-side client Env for the storage service: every
/// operation pays simulated network cost. If `client_stats` is
/// non-null, client-observed traffic is recorded there. The returned
/// Env does not own the service.
std::unique_ptr<Env> NewRemoteEnv(StorageService* service,
                                  IoStats* client_stats);

}  // namespace shield

#endif  // SHIELD_DS_STORAGE_SERVICE_H_
