#ifndef SHIELD_DS_STORAGE_SERVICE_H_
#define SHIELD_DS_STORAGE_SERVICE_H_

#include <memory>

#include "ds/network_sim.h"
#include "env/env.h"
#include "env/io_stats.h"

namespace shield {

/// The disaggregated storage cluster, emulating the paper's
/// HDFS-on-a-second-server setup: a shared file namespace that any
/// number of compute-side RemoteEnv clients (primary instance,
/// read-only instances, compaction workers) access over a simulated
/// network. Server-side I/O is accounted separately from client
/// traffic (paper Table 3 splits I/O by server and storage medium).
class StorageService {
 public:
  /// `backing` is the storage server's local filesystem (a MemEnv or a
  /// PosixEnv directory). Not owned.
  StorageService(Env* backing, NetworkSimOptions network_options);

  /// The server-side view of the namespace (no network cost); used by
  /// services co-located with storage, e.g. the offloaded compaction
  /// worker running on the storage server.
  Env* server_env() { return counting_env_.get(); }

  NetworkSimulator* network() { return &network_; }

  /// Cumulative I/O performed on the storage medium itself.
  IoStats* media_stats() { return &media_stats_; }

 private:
  NetworkSimulator network_;
  IoStats media_stats_;
  std::unique_ptr<Env> counting_env_;
};

/// Creates a compute-side client Env for the storage service: every
/// operation pays simulated network cost. If `client_stats` is
/// non-null, client-observed traffic is recorded there. The returned
/// Env does not own the service.
std::unique_ptr<Env> NewRemoteEnv(StorageService* service,
                                  IoStats* client_stats);

}  // namespace shield

#endif  // SHIELD_DS_STORAGE_SERVICE_H_
