#include "ds/network_sim.h"

#include <algorithm>

#include "util/clock.h"
#include "util/trace.h"

namespace shield {

NetworkSimulator::NetworkSimulator(NetworkSimOptions options)
    : rtt_micros_(options.rtt_micros),
      bandwidth_(options.bandwidth_bytes_per_sec == 0
                     ? 1
                     : options.bandwidth_bytes_per_sec),
      clock_(options.clock != nullptr ? options.clock : SystemClock()),
      fault_options_(options),
      rnd_(options.fault_seed) {}

void NetworkSimulator::SimulateTransfer(uint64_t bytes, bool pay_rtt) {
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  Statistics* stats = stats_.load(std::memory_order_relaxed);
  RecordTick(stats, Tickers::kDsNetworkBytes, bytes);
  RecordTick(stats, Tickers::kDsNetworkRequests, 1);

  const uint64_t bw = bandwidth_.load(std::memory_order_relaxed);
  const uint64_t serialization_micros = bytes * 1'000'000 / bw;

  uint64_t finish_at;
  {
    // Reserve link time on the shared pipe: concurrent transfers queue.
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = clock_->NowMicros();
    link_busy_until_micros_ =
        std::max(link_busy_until_micros_, now) + serialization_micros;
    finish_at = link_busy_until_micros_;
  }
  if (pay_rtt) {
    finish_at += rtt_micros_.load(std::memory_order_relaxed);
  }
  const uint64_t now = clock_->NowMicros();
  // Only sleep once the reserved backlog is large enough to be
  // observable: an OS sleep costs tens of microseconds regardless of
  // the requested duration, so sub-threshold sleeps would overcharge
  // small streamed appends (which on a real network pipeline for
  // free). The link reservation above still throttles aggregate
  // throughput precisely — the debt is paid by whichever transfer
  // pushes the backlog over the threshold.
  constexpr uint64_t kMinSleepMicros = 150;
  if (finish_at > now + kMinSleepMicros) {
    RecordTick(stats, Tickers::kDsNetworkWaitMicros, finish_at - now);
    clock_->SleepForMicros(finish_at - now);
  }
}

Status NetworkSimulator::TryTransfer(uint64_t bytes, bool pay_rtt) {
  TraceSpan span(SpanType::kDsTransfer);
  span.SetArgs(bytes, pay_rtt ? 1 : 0);
  uint64_t timeout_micros = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (partition_until_micros_ != 0) {
      if (partition_until_micros_ == UINT64_MAX ||
          clock_->NowMicros() < partition_until_micros_) {
        injected_faults_.fetch_add(1, std::memory_order_relaxed);
        span.SetError();
        return Status::TryAgain("network partitioned (injected)");
      }
      partition_until_micros_ = 0;  // window expired, link healed
    }
    if (fault_options_.timeout_probability > 0 &&
        rnd_.NextDouble() < fault_options_.timeout_probability) {
      timeout_micros = fault_options_.timeout_micros;
    } else if (fault_options_.error_probability > 0 &&
               rnd_.NextDouble() < fault_options_.error_probability) {
      injected_faults_.fetch_add(1, std::memory_order_relaxed);
      span.SetError();
      return Status::TryAgain("network request dropped (injected)");
    }
  }
  if (timeout_micros > 0) {
    clock_->SleepForMicros(timeout_micros);
    injected_faults_.fetch_add(1, std::memory_order_relaxed);
    span.SetError();
    return Status::TryAgain("network request timed out (injected)");
  }
  SimulateTransfer(bytes, pay_rtt);
  return Status::OK();
}

void NetworkSimulator::StartPartition() {
  std::lock_guard<std::mutex> lock(mu_);
  partition_until_micros_ = UINT64_MAX;
}

void NetworkSimulator::StartPartitionFor(uint64_t micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partition_until_micros_ == UINT64_MAX) {
    // An unbounded partition is already active; a timed request must
    // not silently re-arm (shorten) it under queued senders. It stays
    // severed until an explicit HealPartition().
    return;
  }
  const uint64_t now = clock_->NowMicros();
  uint64_t until = now + micros;
  if (partition_until_micros_ > now && partition_until_micros_ > until) {
    // A longer timed window is active: keep its deadline. Senders that
    // queued behind the original window would otherwise start flowing
    // early after the overwrite.
    until = partition_until_micros_;
  }
  partition_until_micros_ = until;
}

void NetworkSimulator::HealPartition() {
  std::lock_guard<std::mutex> lock(mu_);
  partition_until_micros_ = 0;
}

bool NetworkSimulator::partitioned() {
  std::lock_guard<std::mutex> lock(mu_);
  if (partition_until_micros_ == 0) {
    return false;
  }
  if (partition_until_micros_ != UINT64_MAX &&
      clock_->NowMicros() >= partition_until_micros_) {
    partition_until_micros_ = 0;
    return false;
  }
  return true;
}

}  // namespace shield
