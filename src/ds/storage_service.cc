#include "ds/storage_service.h"

namespace shield {

StorageService::StorageService(Env* backing, NetworkSimOptions network_options)
    : network_(network_options),
      counting_env_(NewCountingEnv(backing, &media_stats_)) {}

namespace {

class RemoteSequentialFile final : public SequentialFile {
 public:
  RemoteSequentialFile(std::unique_ptr<SequentialFile> base,
                       NetworkSimulator* net)
      : base_(std::move(base)), net_(net) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      net_->SimulateTransfer(result->size(), /*pay_rtt=*/true);
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  NetworkSimulator* net_;
};

class RemoteRandomAccessFile final : public RandomAccessFile {
 public:
  RemoteRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         NetworkSimulator* net)
      : base_(std::move(base)), net_(net) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      net_->SimulateTransfer(result->size(), /*pay_rtt=*/true);
    }
    return s;
  }
  Status Size(uint64_t* size) const override { return base_->Size(size); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  NetworkSimulator* net_;
};

class RemoteWritableFile final : public WritableFile {
 public:
  RemoteWritableFile(std::unique_ptr<WritableFile> base,
                     NetworkSimulator* net)
      : base_(std::move(base)), net_(net) {}

  Status Append(const Slice& data) override {
    // Streaming write: pays link bandwidth but no per-append RTT
    // (HDFS-style pipelined writes).
    net_->SimulateTransfer(data.size(), /*pay_rtt=*/false);
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    // Durable ack requires a round trip.
    net_->SimulateTransfer(0, /*pay_rtt=*/true);
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }
  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

 private:
  std::unique_ptr<WritableFile> base_;
  NetworkSimulator* net_;
};

class RemoteEnv final : public EnvWrapper {
 public:
  RemoteEnv(StorageService* service, IoStats* client_stats)
      : EnvWrapper(service->server_env()),
        service_(service),
        client_env_(client_stats != nullptr
                        ? NewCountingEnv(service->server_env(), client_stats)
                        : nullptr) {}

  Env* base() { return client_env_ ? client_env_.get() : target(); }

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    MetadataRoundTrip();
    std::unique_ptr<SequentialFile> inner;
    Status s = base()->NewSequentialFile(f, &inner);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<RemoteSequentialFile>(std::move(inner),
                                                service_->network());
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    MetadataRoundTrip();
    std::unique_ptr<RandomAccessFile> inner;
    Status s = base()->NewRandomAccessFile(f, &inner);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<RemoteRandomAccessFile>(std::move(inner),
                                                  service_->network());
    return Status::OK();
  }

  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    MetadataRoundTrip();
    std::unique_ptr<WritableFile> inner;
    Status s = base()->NewWritableFile(f, &inner);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<RemoteWritableFile>(std::move(inner),
                                              service_->network());
    return Status::OK();
  }

  bool FileExists(const std::string& f) override {
    MetadataRoundTrip();
    return target()->FileExists(f);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* r) override {
    MetadataRoundTrip();
    return target()->GetChildren(dir, r);
  }
  Status RemoveFile(const std::string& f) override {
    MetadataRoundTrip();
    return target()->RemoveFile(f);
  }
  Status CreateDirIfMissing(const std::string& d) override {
    MetadataRoundTrip();
    return target()->CreateDirIfMissing(d);
  }
  Status RemoveDir(const std::string& d) override {
    MetadataRoundTrip();
    return target()->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* size) override {
    MetadataRoundTrip();
    return target()->GetFileSize(f, size);
  }
  Status RenameFile(const std::string& s, const std::string& t) override {
    MetadataRoundTrip();
    return target()->RenameFile(s, t);
  }

 private:
  void MetadataRoundTrip() {
    service_->network()->SimulateTransfer(0, /*pay_rtt=*/true);
  }

  StorageService* service_;
  std::unique_ptr<Env> client_env_;
};

}  // namespace

std::unique_ptr<Env> NewRemoteEnv(StorageService* service,
                                  IoStats* client_stats) {
  return std::make_unique<RemoteEnv>(service, client_stats);
}

}  // namespace shield
