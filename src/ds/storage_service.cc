#include "ds/storage_service.h"

#include "util/retry.h"
#include "util/trace.h"

namespace shield {

namespace {

/// Appends to a primary file and mirrors every byte to a replica copy.
/// The primary is authoritative: replica writes happen only after the
/// primary accepted the data, and a replica failure silently drops the
/// replica copy (FetchFile verification catches partial copies) rather
/// than failing the client's write.
class TeeWritableFile final : public WritableFile {
 public:
  TeeWritableFile(std::unique_ptr<WritableFile> primary,
                  std::unique_ptr<WritableFile> replica)
      : primary_(std::move(primary)), replica_(std::move(replica)) {}

  ~TeeWritableFile() override {
    if (replica_ != nullptr) {
      replica_->Close();
    }
  }

  Status Append(const Slice& data) override {
    Status s = primary_->Append(data);
    if (s.ok() && replica_ != nullptr && !replica_->Append(data).ok()) {
      replica_.reset();
    }
    return s;
  }
  Status Flush() override { return primary_->Flush(); }
  Status Sync() override {
    Status s = primary_->Sync();
    if (s.ok() && replica_ != nullptr) {
      replica_->Sync();
    }
    return s;
  }
  Status Close() override {
    if (replica_ != nullptr) {
      replica_->Close();
      replica_.reset();
    }
    return primary_->Close();
  }
  uint64_t GetFileSize() const override { return primary_->GetFileSize(); }

 private:
  std::unique_ptr<WritableFile> primary_;
  std::unique_ptr<WritableFile> replica_;
};

/// The storage server's namespace with replication on: reads are
/// served by the primary; writes and namespace mutations are mirrored
/// to the replica store.
class ReplicatingEnv final : public EnvWrapper {
 public:
  ReplicatingEnv(Env* primary, Env* replica)
      : EnvWrapper(primary), replica_(replica) {}

  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    std::unique_ptr<WritableFile> primary;
    Status s = target()->NewWritableFile(f, &primary);
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<WritableFile> replica;
    replica_->NewWritableFile(f, &replica);  // best effort
    *r = std::make_unique<TeeWritableFile>(std::move(primary),
                                           std::move(replica));
    return Status::OK();
  }
  Status RemoveFile(const std::string& f) override {
    Status s = target()->RemoveFile(f);
    if (s.ok()) {
      replica_->RemoveFile(f);
    }
    return s;
  }
  Status RenameFile(const std::string& src, const std::string& dst) override {
    Status s = target()->RenameFile(src, dst);
    if (s.ok()) {
      replica_->RenameFile(src, dst);
    }
    return s;
  }
  Status CreateDirIfMissing(const std::string& d) override {
    Status s = target()->CreateDirIfMissing(d);
    if (s.ok()) {
      replica_->CreateDirIfMissing(d);
    }
    return s;
  }
  Status RemoveDir(const std::string& d) override {
    Status s = target()->RemoveDir(d);
    if (s.ok()) {
      replica_->RemoveDir(d);
    }
    return s;
  }

 private:
  Env* replica_;
};

}  // namespace

StorageService::StorageService(Env* backing, NetworkSimOptions network_options,
                               bool replicate)
    : network_(network_options),
      counting_env_(NewCountingEnv(backing, &media_stats_)) {
  if (replicate) {
    replica_env_ = NewMemEnv();
    replicating_env_ = std::make_unique<ReplicatingEnv>(counting_env_.get(),
                                                        replica_env_.get());
  }
  serving_env_ =
      replicating_env_ != nullptr ? replicating_env_.get() : counting_env_.get();
}

namespace {

/// Client-side retry budget for one storage-service request. Dropped
/// packets and brief timeouts are absorbed here; a partition longer
/// than the whole budget surfaces as Status::TryAgain to the engine,
/// which handles it at a higher level (background-job rescheduling,
/// offload fallback).
const RetryPolicy& RemoteRetryPolicy() {
  static const RetryPolicy policy = [] {
    RetryPolicy p;
    p.max_attempts = 6;
    p.initial_backoff_micros = 100;
    p.max_backoff_micros = 5000;
    return p;
  }();
  return policy;
}

/// Runs one network round trip, retrying injected transient faults.
Status TransferWithRetry(NetworkSimulator* net, uint64_t bytes, bool pay_rtt) {
  return RunWithRetry(RemoteRetryPolicy(),
                      [&] { return net->TryTransfer(bytes, pay_rtt); });
}

class RemoteSequentialFile final : public SequentialFile {
 public:
  RemoteSequentialFile(std::unique_ptr<SequentialFile> base,
                       NetworkSimulator* net)
      : base_(std::move(base)), net_(net) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      s = TransferWithRetry(net_, result->size(), /*pay_rtt=*/true);
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  NetworkSimulator* net_;
};

class RemoteRandomAccessFile final : public RandomAccessFile {
 public:
  RemoteRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         NetworkSimulator* net)
      : base_(std::move(base)), net_(net) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      s = TransferWithRetry(net_, result->size(), /*pay_rtt=*/true);
    }
    return s;
  }
  Status Size(uint64_t* size) const override { return base_->Size(size); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  NetworkSimulator* net_;
};

class RemoteWritableFile final : public WritableFile {
 public:
  RemoteWritableFile(std::unique_ptr<WritableFile> base,
                     NetworkSimulator* net)
      : base_(std::move(base)), net_(net) {}

  Status Append(const Slice& data) override {
    // Streaming write: pays link bandwidth but no per-append RTT
    // (HDFS-style pipelined writes). The payload must arrive before
    // the server applies the append, so a dropped packet fails the op
    // (after retries) without mutating server state.
    Status s = TransferWithRetry(net_, data.size(), /*pay_rtt=*/false);
    if (!s.ok()) {
      return s;
    }
    return base_->Append(data);
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    // Durable ack requires a round trip.
    Status s = TransferWithRetry(net_, 0, /*pay_rtt=*/true);
    if (!s.ok()) {
      return s;
    }
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }
  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

 private:
  std::unique_ptr<WritableFile> base_;
  NetworkSimulator* net_;
};

class RemoteEnv final : public EnvWrapper {
 public:
  RemoteEnv(StorageService* service, IoStats* client_stats)
      : EnvWrapper(service->server_env()),
        service_(service),
        client_env_(client_stats != nullptr
                        ? NewCountingEnv(service->server_env(), client_stats)
                        : nullptr) {}

  Env* base() { return client_env_ ? client_env_.get() : target(); }

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<SequentialFile> inner;
    s = base()->NewSequentialFile(f, &inner);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<RemoteSequentialFile>(std::move(inner),
                                                service_->network());
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<RandomAccessFile> inner;
    s = base()->NewRandomAccessFile(f, &inner);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<RemoteRandomAccessFile>(std::move(inner),
                                                  service_->network());
    return Status::OK();
  }

  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    std::unique_ptr<WritableFile> inner;
    s = base()->NewWritableFile(f, &inner);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<RemoteWritableFile>(std::move(inner),
                                              service_->network());
    return Status::OK();
  }

  bool FileExists(const std::string& f) override {
    // No status channel here, so no fault can be surfaced: pay the
    // round trip on the fault-free path.
    service_->network()->SimulateTransfer(0, /*pay_rtt=*/true);
    return target()->FileExists(f);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* r) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    return target()->GetChildren(dir, r);
  }
  Status RemoveFile(const std::string& f) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    return target()->RemoveFile(f);
  }
  Status CreateDirIfMissing(const std::string& d) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    return target()->CreateDirIfMissing(d);
  }
  Status RemoveDir(const std::string& d) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    return target()->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* size) override {
    Status s = MetadataRoundTrip();
    if (!s.ok()) {
      return s;
    }
    return target()->GetFileSize(f, size);
  }
  Status RenameFile(const std::string& s, const std::string& t) override {
    Status st = MetadataRoundTrip();
    if (!st.ok()) {
      return st;
    }
    return target()->RenameFile(s, t);
  }

 private:
  Status MetadataRoundTrip() {
    return TransferWithRetry(service_->network(), 0, /*pay_rtt=*/true);
  }

  StorageService* service_;
  std::unique_ptr<Env> client_env_;
};

}  // namespace

Status StorageService::FetchFile(const std::string& fname,
                                 std::string* contents) {
  // Capture the dispatching node's context before rebinding to the
  // storage node's tracer (when one is configured): the fetch span
  // lands in the storage node's trace file, parented across files to
  // the client op that asked for the bytes. Without a storage tracer
  // this degrades to plain same-thread TLS parenting.
  const TraceContext caller = Tracer::CurrentContext();
  ScopedTracerBinding binding(tracer_);
  TraceSpan span(SpanType::kReplicaFetch, caller.parent_span_id, fname);
  if (replica_env_ == nullptr) {
    span.SetError();
    return Status::NotSupported("storage service replication is disabled");
  }
  uint64_t size = 0;
  Status s = replica_env_->GetFileSize(fname, &size);
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<SequentialFile> file;
  s = replica_env_->NewSequentialFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  contents->clear();
  contents->reserve(size);
  std::string scratch(64 * 1024, '\0');
  while (true) {
    Slice chunk;
    s = file->Read(scratch.size(), &chunk, scratch.data());
    if (!s.ok()) {
      return s;
    }
    if (chunk.empty()) {
      break;
    }
    contents->append(chunk.data(), chunk.size());
  }
  // The repair fetch crosses the fabric like any other read.
  s = TransferWithRetry(&network_, contents->size(), /*pay_rtt=*/true);
  span.SetArgs(contents->size(), 0);
  span.MarkStatus(s);
  return s;
}

std::unique_ptr<Env> NewRemoteEnv(StorageService* service,
                                  IoStats* client_stats) {
  return std::make_unique<RemoteEnv>(service, client_stats);
}

}  // namespace shield
