#include "env/io_stats.h"

#include <cstdio>
#include <cstring>

namespace shield {

FileKind ClassifyFile(const std::string& fname) {
  // Strip directory components.
  const size_t slash = fname.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? fname : fname.substr(slash + 1);
  auto ends_with = [&](const char* suffix) {
    const size_t n = strlen(suffix);
    return base.size() >= n && base.compare(base.size() - n, n, suffix) == 0;
  };
  if (ends_with(".log")) {
    return FileKind::kWal;
  }
  if (ends_with(".sst")) {
    return FileKind::kSst;
  }
  if (base.compare(0, 8, "MANIFEST") == 0 || base == "CURRENT") {
    return FileKind::kManifest;
  }
  return FileKind::kOther;
}

uint64_t IoStats::TotalReadBytes() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumFileKinds; i++) {
    total += read_bytes_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IoStats::TotalWriteBytes() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumFileKinds; i++) {
    total += write_bytes_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IoStats::TotalReadOps() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumFileKinds; i++) {
    total += read_ops_[i].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t IoStats::TotalWriteOps() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumFileKinds; i++) {
    total += write_ops_[i].load(std::memory_order_relaxed);
  }
  return total;
}

void IoStats::Reset() {
  for (int i = 0; i < kNumFileKinds; i++) {
    read_bytes_[i].store(0, std::memory_order_relaxed);
    write_bytes_[i].store(0, std::memory_order_relaxed);
    read_ops_[i].store(0, std::memory_order_relaxed);
    write_ops_[i].store(0, std::memory_order_relaxed);
  }
}

std::string IoStats::ToString() const {
  char buf[320];
  const double mib = 1024.0 * 1024.0;
  snprintf(buf, sizeof(buf),
           "wal r/w=%.1f/%.1f MiB, sst r/w=%.1f/%.1f MiB, "
           "manifest r/w=%.1f/%.1f MiB, other r/w=%.1f/%.1f MiB",
           ReadBytes(FileKind::kWal) / mib, WriteBytes(FileKind::kWal) / mib,
           ReadBytes(FileKind::kSst) / mib, WriteBytes(FileKind::kSst) / mib,
           ReadBytes(FileKind::kManifest) / mib,
           WriteBytes(FileKind::kManifest) / mib,
           ReadBytes(FileKind::kOther) / mib,
           WriteBytes(FileKind::kOther) / mib);
  return buf;
}

namespace {

class CountingSequentialFile final : public SequentialFile {
 public:
  CountingSequentialFile(std::unique_ptr<SequentialFile> base, IoStats* stats,
                         FileKind kind)
      : base_(std::move(base)), stats_(stats), kind_(kind) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) {
      stats_->AddRead(kind_, result->size());
    }
    return s;
  }
  Status Skip(uint64_t n) override { return base_->Skip(n); }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return base_->block_authenticator();
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  IoStats* stats_;
  FileKind kind_;
};

class CountingRandomAccessFile final : public RandomAccessFile {
 public:
  CountingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                           IoStats* stats, FileKind kind)
      : base_(std::move(base)), stats_(stats), kind_(kind) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = base_->Read(offset, n, result, scratch);
    if (s.ok()) {
      stats_->AddRead(kind_, result->size());
    }
    return s;
  }
  Status Size(uint64_t* size) const override { return base_->Size(size); }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return base_->block_authenticator();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  IoStats* stats_;
  FileKind kind_;
};

class CountingWritableFile final : public WritableFile {
 public:
  CountingWritableFile(std::unique_ptr<WritableFile> base, IoStats* stats,
                       FileKind kind)
      : base_(std::move(base)), stats_(stats), kind_(kind) {}

  Status Append(const Slice& data) override {
    Status s = base_->Append(data);
    if (s.ok()) {
      stats_->AddWrite(kind_, data.size());
    }
    return s;
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override { return base_->Sync(); }
  Status Close() override { return base_->Close(); }
  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return base_->block_authenticator();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  IoStats* stats_;
  FileKind kind_;
};

class CountingEnv final : public EnvWrapper {
 public:
  CountingEnv(Env* base, IoStats* stats) : EnvWrapper(base), stats_(stats) {}

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    std::unique_ptr<SequentialFile> base;
    Status s = target()->NewSequentialFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<CountingSequentialFile>(std::move(base), stats_,
                                                  ClassifyFile(f));
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    std::unique_ptr<RandomAccessFile> base;
    Status s = target()->NewRandomAccessFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<CountingRandomAccessFile>(std::move(base), stats_,
                                                    ClassifyFile(f));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    std::unique_ptr<WritableFile> base;
    Status s = target()->NewWritableFile(f, &base);
    if (!s.ok()) {
      return s;
    }
    *r = std::make_unique<CountingWritableFile>(std::move(base), stats_,
                                                ClassifyFile(f));
    return Status::OK();
  }

 private:
  IoStats* stats_;
};

}  // namespace

std::unique_ptr<Env> NewCountingEnv(Env* base, IoStats* stats) {
  return std::make_unique<CountingEnv>(base, stats);
}

}  // namespace shield
