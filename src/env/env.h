#ifndef SHIELD_ENV_ENV_H_
#define SHIELD_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/slice.h"
#include "util/status.h"

namespace shield {

namespace crypto {
class BlockAuthenticator;  // crypto/block_auth.h
}  // namespace crypto

/// A file read sequentially from the beginning (WAL/manifest replay).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes. `scratch` must have room for `n` bytes;
  /// `*result` points either into scratch or into an internal buffer.
  /// A short read (including empty) with OK status signals EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;

  virtual Status Skip(uint64_t n) = 0;

  /// Non-null when this file carries per-block authentication tags
  /// (SHIELD/EncFS format v2): log_reader uses it to verify record tags
  /// against the on-disk ciphertext. The authenticator is owned by the
  /// file and valid for its lifetime. Encrypting file wrappers are the
  /// outermost layer, so no forwarding through inner wrappers is
  /// needed.
  virtual const crypto::BlockAuthenticator* block_authenticator() const {
    return nullptr;
  }
};

/// A file supporting positional reads (SST block fetches).
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;

  virtual Status Size(uint64_t* size) const = 0;

  /// See SequentialFile::block_authenticator(); used by the SST block
  /// read path.
  virtual const crypto::BlockAuthenticator* block_authenticator() const {
    return nullptr;
  }
};

/// An append-only writable file (WAL, SST, manifest).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const Slice& data) = 0;
  /// Pushes application buffers to the OS (no durability guarantee).
  virtual Status Flush() = 0;
  /// Durably persists all appended data.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;

  /// Bytes appended so far (the logical write offset).
  virtual uint64_t GetFileSize() const = 0;

  /// See SequentialFile::block_authenticator(); used by sst_builder and
  /// log_writer to emit tags for the blocks/records they append.
  virtual const crypto::BlockAuthenticator* block_authenticator() const {
    return nullptr;
  }
};

/// Env abstracts the storage system underneath the LSM engine, in the
/// style of rocksdb::Env. Implementations: PosixEnv (local disk),
/// MemEnv (tests), EncryptedEnv (the paper's instance-level EncFS
/// design), RemoteEnv (simulated disaggregated storage).
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide local-disk environment (never deleted).
  static Env* Default();

  /// The time source used by everything running on top of this Env.
  /// Defaults to the process clock (SystemClock()), which is the real
  /// steady clock unless the deterministic simulator has installed a
  /// virtual one. Wrappers forward to their target so the clock is
  /// decided once, at the bottom of the env stack.
  virtual Clock* clock() { return SystemClock(); }

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  /// Lists the plain names (not paths) of entries in `dir`.
  virtual Status GetChildren(const std::string& dir,
                             std::vector<std::string>* result) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  virtual Status RemoveDir(const std::string& dirname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RenameFile(const std::string& src,
                            const std::string& target) = 0;
};

/// Forwards all calls to a wrapped Env; subclass and override what you
/// need (EncryptedEnv, RemoteEnv, counting wrappers).
class EnvWrapper : public Env {
 public:
  explicit EnvWrapper(Env* target) : target_(target) {}

  Env* target() const { return target_; }

  Clock* clock() override { return target_->clock(); }

  Status NewSequentialFile(const std::string& f,
                           std::unique_ptr<SequentialFile>* r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f,
                             std::unique_ptr<RandomAccessFile>* r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  Status NewWritableFile(const std::string& f,
                         std::unique_ptr<WritableFile>* r) override {
    return target_->NewWritableFile(f, r);
  }
  bool FileExists(const std::string& f) override {
    return target_->FileExists(f);
  }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* r) override {
    return target_->GetChildren(dir, r);
  }
  Status RemoveFile(const std::string& f) override {
    return target_->RemoveFile(f);
  }
  Status CreateDirIfMissing(const std::string& d) override {
    return target_->CreateDirIfMissing(d);
  }
  Status RemoveDir(const std::string& d) override {
    return target_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* size) override {
    return target_->GetFileSize(f, size);
  }
  Status RenameFile(const std::string& s, const std::string& t) override {
    return target_->RenameFile(s, t);
  }

 private:
  Env* target_;
};

/// Creates a fresh in-memory Env. The caller owns the result. All state
/// lives in process memory; useful for tests and as the backing store
/// of the simulated disaggregated storage service.
std::unique_ptr<Env> NewMemEnv();

// --- Convenience helpers (env.cc) ---

Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync);
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

}  // namespace shield

#endif  // SHIELD_ENV_ENV_H_
