#ifndef SHIELD_ENV_FAULT_INJECTION_ENV_H_
#define SHIELD_ENV_FAULT_INJECTION_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "env/io_stats.h"
#include "util/random.h"

namespace shield {

/// Bitmask helpers for targeting faults at specific file kinds
/// (see env/io_stats.h: WAL, SST, MANIFEST/CURRENT, other — the DEK
/// cache classifies as kOther).
constexpr unsigned FileKindBit(FileKind kind) {
  return 1u << static_cast<int>(kind);
}
constexpr unsigned kAllFileKinds = (1u << kNumFileKinds) - 1;

/// Tuning knobs for FaultInjectionEnv. All probabilities are per
/// operation in [0, 1]. The schedule is fully determined by `seed` plus
/// the sequence of env calls, so a failing run reproduces from its seed
/// (in single-threaded phases exactly; under concurrency the draw order
/// follows thread interleaving).
struct FaultInjectionOptions {
  uint64_t seed = 1;

  /// Probability that a data read (SequentialFile/RandomAccessFile)
  /// fails with an injected error.
  double read_error_probability = 0.0;
  /// Probability that an Append/Flush/Sync/Close on a writable file
  /// fails with an injected error.
  double write_error_probability = 0.0;
  /// Probability that a metadata op (open, rename, delete, size, list)
  /// fails with an injected error.
  double metadata_error_probability = 0.0;

  /// Fraction of injected errors that are permanent (Status::IOError)
  /// rather than transient (Status::TryAgain). 0 = all transient.
  double permanent_error_ratio = 0.0;

  /// Probability that a positional (RandomAccessFile) read returns
  /// fewer bytes than requested with OK status. Never applied to
  /// sequential reads: a short sequential read means EOF to log
  /// replay, which would silently truncate synced data.
  double short_read_probability = 0.0;

  /// Probability that an op sleeps slow_op_micros before executing.
  double slow_op_probability = 0.0;
  uint64_t slow_op_micros = 0;

  /// On SimulateCrash, unsynced bytes are dropped; with this
  /// probability a random prefix of the dropped tail survives instead
  /// (a torn/partial append, as after a mid-write power cut).
  double torn_write_probability = 0.5;

  /// When false, SimulateCrash leaves unsynced data intact (models a
  /// clean process kill with an OS that flushed its page cache).
  bool drop_unsynced_on_crash = true;

  /// Only file kinds whose FileKindBit is set receive injected faults.
  /// Crash semantics (unsynced-data drop) always apply to all kinds.
  unsigned fault_kind_mask = kAllFileKinds;
};

/// FaultInjectionEnv wraps another Env and injects storage faults from
/// a seeded, deterministic schedule: transient/permanent I/O errors,
/// short positional reads, slow ops, and — via SimulateCrash() —
/// loss of all unsynced data with optional torn tails.
///
/// The wrapper tracks, per writable file, how many bytes had been
/// appended at the last successful Sync(). SimulateCrash() rewrites
/// every tracked file down to that synced prefix (possibly keeping a
/// random partial tail), which is exactly the guarantee a real disk
/// gives across power loss. Close() does NOT mark data synced.
///
/// Layering: place this env *below* the encryption layer
/// (options.env = &fault_env, with EncFS/SHIELD wrapping above) so
/// faults hit ciphertext, as device errors would.
///
/// Thread safe. Injected transient errors use Status::TryAgain,
/// permanent ones Status::IOError.
class FaultInjectionEnv : public EnvWrapper {
 public:
  FaultInjectionEnv(Env* target, const FaultInjectionOptions& options);
  ~FaultInjectionEnv() override;

  /// Enables/disables fault injection (crash tracking continues either
  /// way). Tests disable faults around open/verify phases.
  void SetFaultsEnabled(bool enabled);
  bool faults_enabled() const;

  /// Replaces the fault options (keeps the current PRNG state).
  void SetOptions(const FaultInjectionOptions& options);

  /// Simulates a crash: for every file written through this env since
  /// the last crash, drops bytes appended after the last successful
  /// Sync (optionally keeping a torn partial tail), then forgets all
  /// tracking state (the surviving bytes are now durable).
  Status SimulateCrash();

  /// Flips one bit of `fname` in place (silent media corruption /
  /// tampering). `bit_index` is reduced modulo the file's size in
  /// bits, so any value addresses a valid bit. Bypasses fault
  /// injection and sync tracking: the damage is on the medium itself.
  Status FlipBit(const std::string& fname, uint64_t bit_index);

  // --- Counters (cumulative since construction) ---
  uint64_t ops(FileKind kind) const;
  uint64_t injected_errors() const;
  uint64_t injected_short_reads() const;
  uint64_t injected_slow_ops() const;
  uint64_t crashes() const;
  /// Bytes discarded across all SimulateCrash calls.
  uint64_t dropped_bytes() const;

  // --- Env interface ---
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(const std::string& fname,
                             std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override;
  Status RemoveFile(const std::string& fname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RenameFile(const std::string& src, const std::string& target) override;

  /// Shared state between the env and its file handles.
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace shield

#endif  // SHIELD_ENV_FAULT_INJECTION_ENV_H_
