#include "env/fault_injection_env.h"

#include <algorithm>

#include "util/clock.h"

namespace shield {

namespace {
enum class OpClass { kRead, kWrite, kMetadata };
}  // namespace

struct FaultInjectionEnv::State {
  Env* target;
  mutable std::mutex mu;
  FaultInjectionOptions opts;
  bool enabled = true;
  Random rnd;
  /// fname -> bytes durable at the last successful Sync. Every file
  /// opened for write through this env is tracked until the next
  /// SimulateCrash (which makes the surviving bytes durable) or until
  /// it is removed.
  std::map<std::string, uint64_t> synced_size;

  std::atomic<uint64_t> kind_ops[kNumFileKinds] = {};
  std::atomic<uint64_t> injected_errors{0};
  std::atomic<uint64_t> short_reads{0};
  std::atomic<uint64_t> slow_ops{0};
  std::atomic<uint64_t> crashes{0};
  std::atomic<uint64_t> dropped_bytes{0};

  State(Env* t, const FaultInjectionOptions& o)
      : target(t), opts(o), rnd(o.seed) {}

  Status MaybeFault(FileKind kind, OpClass cls, const char* what) {
    kind_ops[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
    uint64_t sleep_micros = 0;
    Status s;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (enabled && (opts.fault_kind_mask & FileKindBit(kind)) != 0) {
        if (opts.slow_op_probability > 0 &&
            rnd.NextDouble() < opts.slow_op_probability) {
          sleep_micros = opts.slow_op_micros;
          slow_ops.fetch_add(1, std::memory_order_relaxed);
        }
        const double p = cls == OpClass::kRead    ? opts.read_error_probability
                         : cls == OpClass::kWrite ? opts.write_error_probability
                                                  : opts.metadata_error_probability;
        if (p > 0 && rnd.NextDouble() < p) {
          injected_errors.fetch_add(1, std::memory_order_relaxed);
          const bool permanent = opts.permanent_error_ratio > 0 &&
                                 rnd.NextDouble() < opts.permanent_error_ratio;
          s = permanent ? Status::IOError("injected fault", what)
                        : Status::TryAgain("injected fault", what);
        }
      }
    }
    if (sleep_micros > 0) {
      SleepForMicros(sleep_micros);
    }
    return s;
  }

  /// If a short read fires, sets *short_len to a value in [0, len) and
  /// returns true. len must be > 0.
  bool MaybeShortRead(FileKind kind, uint64_t len, uint64_t* short_len) {
    std::lock_guard<std::mutex> lock(mu);
    if (!enabled || (opts.fault_kind_mask & FileKindBit(kind)) == 0) {
      return false;
    }
    if (opts.short_read_probability > 0 &&
        rnd.NextDouble() < opts.short_read_probability) {
      short_reads.fetch_add(1, std::memory_order_relaxed);
      *short_len = rnd.Uniform(len);
      return true;
    }
    return false;
  }

  void MarkSynced(const std::string& fname, uint64_t size) {
    std::lock_guard<std::mutex> lock(mu);
    synced_size[fname] = size;
  }
  void Track(const std::string& fname) {
    std::lock_guard<std::mutex> lock(mu);
    synced_size[fname] = 0;
  }
  void Untrack(const std::string& fname) {
    std::lock_guard<std::mutex> lock(mu);
    synced_size.erase(fname);
  }
  void MoveTracking(const std::string& src, const std::string& target_name) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = synced_size.find(src);
    if (it != synced_size.end()) {
      synced_size[target_name] = it->second;
      synced_size.erase(it);
    }
  }
};

namespace {

class FaultySequentialFile : public SequentialFile {
 public:
  FaultySequentialFile(std::unique_ptr<SequentialFile> base,
                       std::shared_ptr<FaultInjectionEnv::State> state,
                       FileKind kind)
      : base_(std::move(base)), state_(std::move(state)), kind_(kind) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    // No short-read injection here: a short sequential read means EOF
    // to WAL/manifest replay (see env.h), so truncating would silently
    // hide synced records. Only error faults apply.
    Status s = state_->MaybeFault(kind_, OpClass::kRead, "sequential read");
    if (!s.ok()) {
      return s;
    }
    return base_->Read(n, result, scratch);
  }

  Status Skip(uint64_t n) override { return base_->Skip(n); }

 private:
  std::unique_ptr<SequentialFile> base_;
  std::shared_ptr<FaultInjectionEnv::State> state_;
  FileKind kind_;
};

class FaultyRandomAccessFile : public RandomAccessFile {
 public:
  FaultyRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                         std::shared_ptr<FaultInjectionEnv::State> state,
                         FileKind kind)
      : base_(std::move(base)), state_(std::move(state)), kind_(kind) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    Status s = state_->MaybeFault(kind_, OpClass::kRead, "random read");
    if (!s.ok()) {
      return s;
    }
    s = base_->Read(offset, n, result, scratch);
    if (s.ok() && result->size() > 0) {
      uint64_t short_len = 0;
      if (state_->MaybeShortRead(kind_, result->size(), &short_len)) {
        *result = Slice(result->data(), static_cast<size_t>(short_len));
      }
    }
    return s;
  }

  Status Size(uint64_t* size) const override { return base_->Size(size); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  std::shared_ptr<FaultInjectionEnv::State> state_;
  FileKind kind_;
};

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(std::string fname, std::unique_ptr<WritableFile> base,
                     std::shared_ptr<FaultInjectionEnv::State> state,
                     FileKind kind)
      : fname_(std::move(fname)),
        base_(std::move(base)),
        state_(std::move(state)),
        kind_(kind) {}

  Status Append(const Slice& data) override {
    Status s = state_->MaybeFault(kind_, OpClass::kWrite, "append");
    if (!s.ok()) {
      return s;
    }
    return base_->Append(data);
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    Status s = state_->MaybeFault(kind_, OpClass::kWrite, "sync");
    if (!s.ok()) {
      return s;
    }
    s = base_->Sync();
    if (s.ok()) {
      // Everything appended so far is now durable across SimulateCrash.
      state_->MarkSynced(fname_, base_->GetFileSize());
    }
    return s;
  }

  Status Close() override {
    // Close never marks data synced: like a real OS, closing a file
    // does not make unsynced appends crash-durable.
    Status s = state_->MaybeFault(kind_, OpClass::kWrite, "close");
    if (!s.ok()) {
      return s;
    }
    return base_->Close();
  }

  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

 private:
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
  std::shared_ptr<FaultInjectionEnv::State> state_;
  FileKind kind_;
};

}  // namespace

FaultInjectionEnv::FaultInjectionEnv(Env* target,
                                     const FaultInjectionOptions& options)
    : EnvWrapper(target), state_(std::make_shared<State>(target, options)) {}

FaultInjectionEnv::~FaultInjectionEnv() = default;

void FaultInjectionEnv::SetFaultsEnabled(bool enabled) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->enabled = enabled;
}

bool FaultInjectionEnv::faults_enabled() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->enabled;
}

void FaultInjectionEnv::SetOptions(const FaultInjectionOptions& options) {
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->opts = options;
}

uint64_t FaultInjectionEnv::ops(FileKind kind) const {
  return state_->kind_ops[static_cast<int>(kind)].load(
      std::memory_order_relaxed);
}
uint64_t FaultInjectionEnv::injected_errors() const {
  return state_->injected_errors.load(std::memory_order_relaxed);
}
uint64_t FaultInjectionEnv::injected_short_reads() const {
  return state_->short_reads.load(std::memory_order_relaxed);
}
uint64_t FaultInjectionEnv::injected_slow_ops() const {
  return state_->slow_ops.load(std::memory_order_relaxed);
}
uint64_t FaultInjectionEnv::crashes() const {
  return state_->crashes.load(std::memory_order_relaxed);
}
uint64_t FaultInjectionEnv::dropped_bytes() const {
  return state_->dropped_bytes.load(std::memory_order_relaxed);
}

Status FaultInjectionEnv::SimulateCrash() {
  std::map<std::string, uint64_t> tracked;
  FaultInjectionOptions opts;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    tracked.swap(state_->synced_size);
    opts = state_->opts;
  }
  state_->crashes.fetch_add(1, std::memory_order_relaxed);

  Status result;
  for (const auto& [fname, synced] : tracked) {
    // Bypass fault injection: the crash machinery itself is reliable.
    if (!target()->FileExists(fname)) {
      continue;  // already removed (e.g. obsolete WAL)
    }
    std::string contents;
    Status s = ReadFileToString(target(), fname, &contents);
    if (!s.ok()) {
      result = s;
      continue;
    }
    uint64_t keep = std::min<uint64_t>(synced, contents.size());
    if (!opts.drop_unsynced_on_crash) {
      keep = contents.size();
    }
    if (keep < contents.size()) {
      const uint64_t tail = contents.size() - keep;
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->rnd.NextDouble() < opts.torn_write_probability) {
        // A torn append: some prefix of the unsynced tail made it out.
        keep += state_->rnd.Uniform(tail + 1);
      }
    }
    if (keep == contents.size()) {
      continue;  // nothing lost (all synced, or the torn tail survived whole)
    }
    state_->dropped_bytes.fetch_add(contents.size() - keep,
                                    std::memory_order_relaxed);
    std::unique_ptr<WritableFile> file;
    s = target()->NewWritableFile(fname, &file);
    if (!s.ok()) {
      result = s;
      continue;
    }
    if (keep > 0) {
      s = file->Append(Slice(contents.data(), static_cast<size_t>(keep)));
    }
    if (s.ok()) {
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
    if (!s.ok()) {
      result = s;
    }
  }
  return result;
}

Status FaultInjectionEnv::FlipBit(const std::string& fname,
                                  uint64_t bit_index) {
  std::string contents;
  Status s = ReadFileToString(target(), fname, &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.empty()) {
    return Status::InvalidArgument("cannot flip a bit of an empty file");
  }
  const uint64_t bit = bit_index % (contents.size() * 8);
  contents[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  std::unique_ptr<WritableFile> file;
  s = target()->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  s = file->Append(Slice(contents));
  if (s.ok()) {
    s = file->Sync();
  }
  if (s.ok()) {
    s = file->Close();
  }
  return s;
}

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& fname, std::unique_ptr<SequentialFile>* result) {
  const FileKind kind = ClassifyFile(fname);
  Status s = state_->MaybeFault(kind, OpClass::kMetadata, "open sequential");
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<SequentialFile> base;
  s = target()->NewSequentialFile(fname, &base);
  if (!s.ok()) {
    return s;
  }
  result->reset(new FaultySequentialFile(std::move(base), state_, kind));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  const FileKind kind = ClassifyFile(fname);
  Status s = state_->MaybeFault(kind, OpClass::kMetadata, "open random");
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<RandomAccessFile> base;
  s = target()->NewRandomAccessFile(fname, &base);
  if (!s.ok()) {
    return s;
  }
  result->reset(new FaultyRandomAccessFile(std::move(base), state_, kind));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(
    const std::string& fname, std::unique_ptr<WritableFile>* result) {
  const FileKind kind = ClassifyFile(fname);
  Status s = state_->MaybeFault(kind, OpClass::kMetadata, "open writable");
  if (!s.ok()) {
    return s;
  }
  std::unique_ptr<WritableFile> base;
  s = target()->NewWritableFile(fname, &base);
  if (!s.ok()) {
    return s;
  }
  state_->Track(fname);
  result->reset(
      new FaultyWritableFile(fname, std::move(base), state_, kind));
  return Status::OK();
}

Status FaultInjectionEnv::GetChildren(const std::string& dir,
                                      std::vector<std::string>* result) {
  Status s = state_->MaybeFault(FileKind::kOther, OpClass::kMetadata,
                                "list directory");
  if (!s.ok()) {
    return s;
  }
  return target()->GetChildren(dir, result);
}

Status FaultInjectionEnv::RemoveFile(const std::string& fname) {
  Status s = state_->MaybeFault(ClassifyFile(fname), OpClass::kMetadata,
                                "remove file");
  if (!s.ok()) {
    return s;
  }
  s = target()->RemoveFile(fname);
  if (s.ok()) {
    state_->Untrack(fname);
  }
  return s;
}

Status FaultInjectionEnv::GetFileSize(const std::string& fname,
                                      uint64_t* size) {
  Status s = state_->MaybeFault(ClassifyFile(fname), OpClass::kMetadata,
                                "file size");
  if (!s.ok()) {
    return s;
  }
  return target()->GetFileSize(fname, size);
}

Status FaultInjectionEnv::RenameFile(const std::string& src,
                                     const std::string& target_name) {
  Status s = state_->MaybeFault(ClassifyFile(target_name), OpClass::kMetadata,
                                "rename file");
  if (!s.ok()) {
    return s;
  }
  s = target()->RenameFile(src, target_name);
  if (s.ok()) {
    state_->MoveTracking(src, target_name);
  }
  return s;
}

}  // namespace shield
