#include "env/readahead_file.h"

#include <algorithm>
#include <cstring>

#include "util/perf_context.h"

namespace shield {

FilePrefetchBuffer::FilePrefetchBuffer(RandomAccessFile* file,
                                       size_t initial_bytes, size_t max_bytes,
                                       Statistics* stats)
    : file_(file),
      max_bytes_(std::max(initial_bytes, max_bytes)),
      readahead_(std::max<size_t>(initial_bytes, 1)),
      stats_(stats) {}

bool FilePrefetchBuffer::TryRead(uint64_t offset, size_t n, Slice* result,
                                 char* scratch) {
  if (n == 0) {
    *result = Slice(scratch, 0);
    return true;
  }
  if (buffer_len_ == 0 || offset < buffer_offset_ ||
      offset + n > buffer_offset_ + buffer_len_) {
    return false;
  }
  memcpy(scratch, buffer_.data() + (offset - buffer_offset_), n);
  *result = Slice(scratch, n);
  return true;
}

Status FilePrefetchBuffer::Prefetch(uint64_t offset, size_t min_n) {
  const size_t want = std::max(readahead_, min_n);
  if (buffer_.size() < want) buffer_.resize(want);
  Slice got;
  Status s = file_->Read(offset, want, &got, &buffer_[0]);
  if (!s.ok()) {
    buffer_len_ = 0;
    return s;
  }
  // The inner file may have returned a pointer into its own storage
  // rather than filling our scratch; keep an owned copy either way.
  if (got.data() != buffer_.data() && got.size() > 0) {
    memmove(&buffer_[0], got.data(), got.size());
  }
  buffer_offset_ = offset;
  buffer_len_ = got.size();  // short read near EOF keeps the prefix
  RecordTick(stats_, Tickers::kIoReadaheadBytes, buffer_len_);
  PerfAdd(&PerfContext::readahead_bytes, buffer_len_);
  // Sequential consumption exhausted the previous window: widen it.
  if (readahead_ < max_bytes_) {
    readahead_ = std::min(max_bytes_, readahead_ * 2);
  }
  return Status::OK();
}

Status FilePrefetchBuffer::ReadWithReadahead(uint64_t offset, size_t n,
                                             Slice* result, char* scratch) {
  if (TryRead(offset, n, result, scratch)) {
    RecordTick(stats_, Tickers::kIoReadaheadHit);
    PerfAdd(&PerfContext::readahead_hit_count, 1);
    return Status::OK();
  }
  RecordTick(stats_, Tickers::kIoReadaheadMiss);
  Status s = Prefetch(offset, n);
  if (s.ok() && TryRead(offset, n, result, scratch)) {
    return Status::OK();
  }
  // Prefetch failed (fault injection, transient storage error) or came
  // back short of even this request (torn read, EOF): degrade to an
  // exact-size direct read so correctness never depends on the window.
  return file_->Read(offset, n, result, scratch);
}

ReadaheadRandomAccessFile::ReadaheadRandomAccessFile(RandomAccessFile* file,
                                                     size_t initial, size_t max,
                                                     Statistics* stats)
    : file_(file), buffer_(file, initial, max, stats) {}

Status ReadaheadRandomAccessFile::Read(uint64_t offset, size_t n, Slice* result,
                                       char* scratch) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buffer_.ReadWithReadahead(offset, n, result, scratch);
}

Status ReadaheadRandomAccessFile::Size(uint64_t* size) const {
  return file_->Size(size);
}

}  // namespace shield
