#ifndef SHIELD_ENV_IO_STATS_H_
#define SHIELD_ENV_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "env/env.h"
#include "util/statistics.h"

namespace shield {

/// File categories for I/O accounting (paper Table 3 reports read/write
/// GiB split by operation type and target medium).
enum class FileKind : int {
  kWal = 0,
  kSst = 1,
  kManifest = 2,
  kOther = 3,
};
constexpr int kNumFileKinds = 4;

/// Classifies a file path by its suffix / basename, matching the naming
/// scheme in lsm/file_names.h.
FileKind ClassifyFile(const std::string& fname);

/// The io.* ticker for a (kind, read/write, bytes/ops) combination.
/// Relies on the Tickers layout grouping the four counters per kind.
inline Tickers IoTicker(FileKind kind, bool read, bool bytes) {
  const uint32_t base =
      static_cast<uint32_t>(Tickers::kIoWalReadBytes) +
      4 * static_cast<uint32_t>(kind);
  return static_cast<Tickers>(base + (bytes ? 0 : 2) + (read ? 0 : 1));
}

/// Cumulative I/O counters, grouped by FileKind. Thread safe. When a
/// Statistics sink is attached, every AddRead/AddWrite also ticks the
/// matching io.* tickers so the same traffic shows up in shield.stats.
class IoStats {
 public:
  void AddRead(FileKind kind, uint64_t bytes) {
    read_bytes_[static_cast<int>(kind)].fetch_add(bytes,
                                                  std::memory_order_relaxed);
    read_ops_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
    Statistics* stats = sink_.load(std::memory_order_relaxed);
    if (stats != nullptr) {
      stats->RecordTick(IoTicker(kind, /*read=*/true, /*bytes=*/true), bytes);
      stats->RecordTick(IoTicker(kind, /*read=*/true, /*bytes=*/false), 1);
    }
  }
  void AddWrite(FileKind kind, uint64_t bytes) {
    write_bytes_[static_cast<int>(kind)].fetch_add(bytes,
                                                   std::memory_order_relaxed);
    write_ops_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
    Statistics* stats = sink_.load(std::memory_order_relaxed);
    if (stats != nullptr) {
      stats->RecordTick(IoTicker(kind, /*read=*/false, /*bytes=*/true), bytes);
      stats->RecordTick(IoTicker(kind, /*read=*/false, /*bytes=*/false), 1);
    }
  }

  uint64_t ReadBytes(FileKind kind) const {
    return read_bytes_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t WriteBytes(FileKind kind) const {
    return write_bytes_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t ReadOps(FileKind kind) const {
    return read_ops_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t WriteOps(FileKind kind) const {
    return write_ops_[static_cast<int>(kind)].load(std::memory_order_relaxed);
  }
  uint64_t TotalReadBytes() const;
  uint64_t TotalWriteBytes() const;
  uint64_t TotalReadOps() const;
  uint64_t TotalWriteOps() const;

  /// Mirrors all subsequent traffic into `stats` (pass nullptr to
  /// detach). `stats` must outlive the IoStats or the detach.
  void SetStatisticsSink(Statistics* stats) {
    sink_.store(stats, std::memory_order_relaxed);
  }

  void Reset();

  /// "wal r/w=..., sst r/w=..., manifest r/w=..., other r/w=..." in
  /// MiB. All four kinds are reported.
  std::string ToString() const;

 private:
  std::atomic<uint64_t> read_bytes_[kNumFileKinds] = {};
  std::atomic<uint64_t> write_bytes_[kNumFileKinds] = {};
  std::atomic<uint64_t> read_ops_[kNumFileKinds] = {};
  std::atomic<uint64_t> write_ops_[kNumFileKinds] = {};
  std::atomic<Statistics*> sink_{nullptr};
};

/// Wraps an Env and records all file I/O into an IoStats, classified by
/// file kind. The stats object must outlive the wrapper and all files
/// it creates.
std::unique_ptr<Env> NewCountingEnv(Env* base, IoStats* stats);

}  // namespace shield

#endif  // SHIELD_ENV_IO_STATS_H_
