#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "env/env.h"

namespace shield {

namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) {
    return Status::NotFound(context, strerror(err));
  }
  return Status::IOError(context, strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      const ssize_t r = read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (lseek(fd_, static_cast<off_t>(n), SEEK_CUR) == -1) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    size_t got = 0;
    while (got < n) {
      const ssize_t r = pread(fd_, scratch + got, n - got,
                              static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      if (r == 0) {
        break;  // EOF
      }
      got += static_cast<size_t>(r);
    }
    *result = Slice(scratch, got);
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    struct stat st;
    if (fstat(fd_, &st) != 0) {
      return PosixError(fname_, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

 private:
  const std::string fname_;
  const int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {
    buf_.reserve(kBufferSize);
  }
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      Close();
    }
  }

  Status Append(const Slice& data) override {
    size_ += data.size();
    if (buf_.size() + data.size() <= kBufferSize) {
      buf_.append(data.data(), data.size());
      return Status::OK();
    }
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (data.size() <= kBufferSize) {
      buf_.append(data.data(), data.size());
      return Status::OK();
    }
    return WriteRaw(data.data(), data.size());
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    Status s = FlushBuffer();
    if (!s.ok()) {
      return s;
    }
    if (fdatasync(fd_) != 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

  Status Close() override {
    Status s = FlushBuffer();
    if (fd_ >= 0) {
      if (close(fd_) != 0 && s.ok()) {
        s = PosixError(fname_, errno);
      }
      fd_ = -1;
    }
    return s;
  }

  uint64_t GetFileSize() const override { return size_; }

 private:
  static constexpr size_t kBufferSize = 64 * 1024;

  Status FlushBuffer() {
    if (buf_.empty()) {
      return Status::OK();
    }
    Status s = WriteRaw(buf_.data(), buf_.size());
    buf_.clear();
    return s;
  }

  Status WriteRaw(const char* p, size_t n) {
    while (n > 0) {
      const ssize_t w = write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return PosixError(fname_, errno);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  const std::string fname_;
  int fd_;
  std::string buf_;
  uint64_t size_ = 0;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    const int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixSequentialFile>(fname, fd);
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    const int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixRandomAccessFile>(fname, fd);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    const int fd =
        open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      return PosixError(fname, errno);
    }
    *result = std::make_unique<PosixWritableFile>(fname, fd);
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return access(fname.c_str(), F_OK) == 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = opendir(dir.c_str());
    if (d == nullptr) {
      return PosixError(dir, errno);
    }
    struct dirent* entry;
    while ((entry = readdir(d)) != nullptr) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        result->push_back(name);
      }
    }
    closedir(d);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (unlink(fname.c_str()) != 0) {
      return PosixError(fname, errno);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    if (mkdir(dirname.c_str(), 0755) != 0) {
      if (errno == EEXIST) {
        return Status::OK();
      }
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    if (rmdir(dirname.c_str()) != 0) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (stat(fname.c_str(), &st) != 0) {
      return PosixError(fname, errno);
    }
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    if (rename(src.c_str(), target.c_str()) != 0) {
      return PosixError(src, errno);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  // Never destroyed: static-storage objects with non-trivial
  // destructors are avoided per the style guide.
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace shield
