#ifndef SHIELD_ENV_READAHEAD_FILE_H_
#define SHIELD_ENV_READAHEAD_FILE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "env/env.h"
#include "util/statistics.h"

namespace shield {

/// A prefetch window over a logical (already-decrypted) random-access
/// file. One storage round trip fills a large aligned span; subsequent
/// reads inside the span are served from memory. On disaggregated
/// storage every skipped round trip saves an RTT, which is the whole
/// point (paper Section 6: the read path dominates fabric traffic).
///
/// Honest under fault injection: a short or failed prefetch keeps any
/// genuine prefix it got and degrades the missing part to an exact
/// per-request read — it never fabricates bytes and never double
/// counts the hit/miss tickers for one request.
///
/// Not thread safe; the owning wrapper serializes access.
class FilePrefetchBuffer {
 public:
  /// Readahead grows from `initial_bytes` toward `max_bytes`, doubling
  /// each time the window is exhausted by forward reads (LevelDB's
  /// sequential-scan heuristic).
  FilePrefetchBuffer(RandomAccessFile* file, size_t initial_bytes,
                     size_t max_bytes, Statistics* stats);

  /// Serves [offset, offset+n) from the buffer if fully resident.
  bool TryRead(uint64_t offset, size_t n, Slice* result, char* scratch);

  /// Fills the window starting at `offset` with up to `readahead_`
  /// bytes (at least `min_n`). Short reads keep the genuine prefix.
  Status Prefetch(uint64_t offset, size_t min_n);

  /// TryRead, else Prefetch + TryRead, else direct file read. This is
  /// the one entry point the wrapper calls; it owns all ticker and
  /// PerfContext accounting for the request.
  Status ReadWithReadahead(uint64_t offset, size_t n, Slice* result,
                           char* scratch);

  size_t readahead_bytes() const { return readahead_; }

 private:
  RandomAccessFile* file_;
  const size_t max_bytes_;
  size_t readahead_;
  Statistics* stats_;

  std::string buffer_;      // owned copy: the inner file may return
                            // pointers into its own storage (MemEnv)
  uint64_t buffer_offset_ = 0;
  size_t buffer_len_ = 0;
};

/// RandomAccessFile decorator adding readahead. Wraps the logical view
/// (decryption happens underneath in ShieldRandomAccessFile), so the
/// buffer holds plaintext and block verification downstream still sees
/// what it expects. Read() is const in the interface but mutates the
/// prefetch window, so a mutex serializes callers; intended use is one
/// iterator per wrapper, where contention is zero.
class ReadaheadRandomAccessFile : public RandomAccessFile {
 public:
  /// Does not take ownership: `file` (typically a Table's logical
  /// file) must outlive the wrapper. `initial`/`max` bound the
  /// doubling window; `stats` may be null.
  ReadaheadRandomAccessFile(RandomAccessFile* file, size_t initial, size_t max,
                            Statistics* stats);

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override;

  Status Size(uint64_t* size) const override;

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return file_->block_authenticator();
  }

 private:
  RandomAccessFile* file_;
  mutable std::mutex mutex_;
  mutable FilePrefetchBuffer buffer_;
};

/// Default window bounds used by table iterators and compaction when
/// the caller gives only an on/off size knob.
constexpr size_t kDefaultReadaheadInitial = 16 * 1024;

}  // namespace shield

#endif  // SHIELD_ENV_READAHEAD_FILE_H_
