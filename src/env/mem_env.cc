#include <map>
#include <mutex>
#include <set>

#include "env/env.h"

namespace shield {

namespace {

// An in-memory file. Reads and writes are internally synchronized so a
// reader can observe a file that a writer is still appending to (the
// read-only-instance catch-up path relies on this).
class FileState {
 public:
  void Append(const Slice& data) {
    std::lock_guard<std::mutex> lock(mu_);
    contents_.append(data.data(), data.size());
  }

  uint64_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return contents_.size();
  }

  size_t Read(uint64_t offset, size_t n, char* scratch) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (offset >= contents_.size()) {
      return 0;
    }
    const size_t avail = contents_.size() - static_cast<size_t>(offset);
    const size_t take = std::min(n, avail);
    memcpy(scratch, contents_.data() + offset, take);
    return take;
  }

 private:
  mutable std::mutex mu_;
  std::string contents_;
};

using FileRef = std::shared_ptr<FileState>;

class MemSequentialFile final : public SequentialFile {
 public:
  explicit MemSequentialFile(FileRef file) : file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    const size_t got = file_->Read(pos_, n, scratch);
    *result = Slice(scratch, got);
    pos_ += got;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  FileRef file_;
  uint64_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(FileRef file) : file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    const size_t got = file_->Read(offset, n, scratch);
    *result = Slice(scratch, got);
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    *size = file_->Size();
    return Status::OK();
  }

 private:
  FileRef file_;
};

class MemWritableFile final : public WritableFile {
 public:
  explicit MemWritableFile(FileRef file) : file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    file_->Append(data);
    return Status::OK();
  }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }
  uint64_t GetFileSize() const override { return file_->Size(); }

 private:
  FileRef file_;
};

class MemEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    FileRef file;
    Status s = Find(fname, &file);
    if (!s.ok()) {
      return s;
    }
    *result = std::make_unique<MemSequentialFile>(std::move(file));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    FileRef file;
    Status s = Find(fname, &file);
    if (!s.ok()) {
      return s;
    }
    *result = std::make_unique<MemRandomAccessFile>(std::move(file));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto file = std::make_shared<FileState>();
    files_[fname] = file;
    *result = std::make_unique<MemWritableFile>(std::move(file));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    std::lock_guard<std::mutex> lock(mu_);
    return files_.count(fname) > 0;
  }

  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    result->clear();
    const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
    std::set<std::string> names;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [path, file] : files_) {
      if (path.compare(0, prefix.size(), prefix) == 0) {
        std::string rest = path.substr(prefix.size());
        const size_t slash = rest.find('/');
        if (slash != std::string::npos) {
          rest = rest.substr(0, slash);
        }
        if (!rest.empty()) {
          names.insert(rest);
        }
      }
    }
    result->assign(names.begin(), names.end());
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (files_.erase(fname) == 0) {
      return Status::NotFound(fname);
    }
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    std::lock_guard<std::mutex> lock(mu_);
    dirs_.insert(dirname);
    return Status::OK();
  }

  Status RemoveDir(const std::string& dirname) override {
    std::lock_guard<std::mutex> lock(mu_);
    dirs_.erase(dirname);
    return Status::OK();
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    FileRef file;
    Status s = Find(fname, &file);
    if (!s.ok()) {
      return s;
    }
    *size = file->Size();
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& target) override {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(src);
    if (it == files_.end()) {
      return Status::NotFound(src);
    }
    files_[target] = it->second;
    files_.erase(it);
    return Status::OK();
  }

 private:
  Status Find(const std::string& fname, FileRef* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) {
      return Status::NotFound(fname);
    }
    *out = it->second;
    return Status::OK();
  }

  std::mutex mu_;
  std::map<std::string, FileRef> files_;
  std::set<std::string> dirs_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace shield
