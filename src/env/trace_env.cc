#include "env/trace_env.h"

#include <utility>

#include "util/trace.h"

namespace shield {

namespace {

/// Strips the directory so span labels are short and stable across
/// scratch directories (trace_replay joins them back onto --dir).
Slice BaseName(const std::string& fname) {
  const size_t slash = fname.find_last_of('/');
  if (slash == std::string::npos) {
    return Slice(fname);
  }
  return Slice(fname.data() + slash + 1, fname.size() - slash - 1);
}

class TracingSequentialFile final : public SequentialFile {
 public:
  TracingSequentialFile(std::unique_ptr<SequentialFile> base,
                        std::string fname)
      : base_(std::move(base)), fname_(std::move(fname)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (!Tracer::AnyActive()) {
      Status s = base_->Read(n, result, scratch);
      offset_ += result->size();
      return s;
    }
    TraceSpan span(SpanType::kIoRead, BaseName(fname_));
    Status s = base_->Read(n, result, scratch);
    span.SetArgs(offset_, result->size());
    span.MarkStatus(s);
    offset_ += result->size();
    return s;
  }

  Status Skip(uint64_t n) override {
    Status s = base_->Skip(n);
    if (s.ok()) {
      offset_ += n;
    }
    return s;
  }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return base_->block_authenticator();
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  const std::string fname_;
  uint64_t offset_ = 0;
};

class TracingRandomAccessFile final : public RandomAccessFile {
 public:
  TracingRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                          std::string fname)
      : base_(std::move(base)), fname_(std::move(fname)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (!Tracer::AnyActive()) {
      return base_->Read(offset, n, result, scratch);
    }
    TraceSpan span(SpanType::kIoRead, BaseName(fname_));
    Status s = base_->Read(offset, n, result, scratch);
    span.SetArgs(offset, n);
    span.MarkStatus(s);
    return s;
  }

  Status Size(uint64_t* size) const override { return base_->Size(size); }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return base_->block_authenticator();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  const std::string fname_;
};

class TracingWritableFile final : public WritableFile {
 public:
  TracingWritableFile(std::unique_ptr<WritableFile> base, std::string fname)
      : base_(std::move(base)), fname_(std::move(fname)) {}

  Status Append(const Slice& data) override {
    if (!Tracer::AnyActive()) {
      return base_->Append(data);
    }
    TraceSpan span(SpanType::kIoWrite, BaseName(fname_));
    span.SetArgs(base_->GetFileSize(), data.size());
    Status s = base_->Append(data);
    span.MarkStatus(s);
    return s;
  }

  Status Flush() override { return base_->Flush(); }

  Status Sync() override {
    if (!Tracer::AnyActive()) {
      return base_->Sync();
    }
    TraceSpan span(SpanType::kIoSync, BaseName(fname_));
    span.SetArgs(0, base_->GetFileSize());
    Status s = base_->Sync();
    span.MarkStatus(s);
    return s;
  }

  Status Close() override { return base_->Close(); }

  uint64_t GetFileSize() const override { return base_->GetFileSize(); }

  const crypto::BlockAuthenticator* block_authenticator() const override {
    return base_->block_authenticator();
  }

 private:
  std::unique_ptr<WritableFile> base_;
  const std::string fname_;
};

class IOTracingEnv final : public EnvWrapper {
 public:
  explicit IOTracingEnv(Env* base) : EnvWrapper(base) {}

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    std::unique_ptr<SequentialFile> base;
    Status s = target()->NewSequentialFile(fname, &base);
    if (s.ok()) {
      result->reset(new TracingSequentialFile(std::move(base), fname));
    }
    return s;
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    std::unique_ptr<RandomAccessFile> base;
    Status s = target()->NewRandomAccessFile(fname, &base);
    if (s.ok()) {
      result->reset(new TracingRandomAccessFile(std::move(base), fname));
    }
    return s;
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    std::unique_ptr<WritableFile> base;
    Status s = target()->NewWritableFile(fname, &base);
    if (s.ok()) {
      result->reset(new TracingWritableFile(std::move(base), fname));
    }
    return s;
  }
};

}  // namespace

std::unique_ptr<Env> NewIOTracingEnv(Env* base) {
  return std::make_unique<IOTracingEnv>(base);
}

}  // namespace shield
