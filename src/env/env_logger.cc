// File-backed Logger (declared in util/logger.h; implemented here
// because it writes through an Env, which util must not depend on).

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <mutex>
#include <vector>

#include "env/env.h"
#include "util/logger.h"

namespace shield {

namespace {

/// Wall-clock timestamp "YYYY/MM/DD-HH:MM:SS.uuuuuu" for LOG framing.
/// (Latency measurement elsewhere uses the monotonic clock; the LOG is
/// for humans correlating with external systems, so wall time is
/// right here.)
void AppendWallTime(std::string* out) {
  struct timespec ts;
  clock_gettime(CLOCK_REALTIME, &ts);
  struct tm t;
  time_t seconds = ts.tv_sec;
  localtime_r(&seconds, &t);
  char buf[48];
  snprintf(buf, sizeof(buf), "%04d/%02d/%02d-%02d:%02d:%02d.%06ld",
           t.tm_year + 1900, t.tm_mon + 1, t.tm_mday, t.tm_hour, t.tm_min,
           t.tm_sec, ts.tv_nsec / 1000);
  out->append(buf);
}

class FileLogger final : public Logger {
 public:
  FileLogger(Env* env, std::string fname, size_t max_size, size_t keep,
             InfoLogLevel level, std::unique_ptr<WritableFile> file)
      : Logger(level),
        env_(env),
        fname_(std::move(fname)),
        max_size_(max_size),
        keep_(keep),
        file_(std::move(file)) {}

  ~FileLogger() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (file_ != nullptr) {
      (void)file_->Flush();
      (void)file_->Close();
    }
  }

  void Logv(InfoLogLevel level, const char* format, va_list ap) override {
    if (level < GetInfoLogLevel()) {
      return;
    }
    char stack_buf[512];
    va_list backup;
    va_copy(backup, ap);
    int n = vsnprintf(stack_buf, sizeof(stack_buf), format, ap);
    if (n < 0) {
      va_end(backup);
      return;
    }
    if (static_cast<size_t>(n) < sizeof(stack_buf)) {
      va_end(backup);
      LogRaw(level, Slice(stack_buf, static_cast<size_t>(n)));
      return;
    }
    std::vector<char> heap_buf(static_cast<size_t>(n) + 1);
    vsnprintf(heap_buf.data(), heap_buf.size(), format, backup);
    va_end(backup);
    LogRaw(level, Slice(heap_buf.data(), static_cast<size_t>(n)));
  }

  void LogRaw(InfoLogLevel level, const Slice& line) override {
    if (level < GetInfoLogLevel()) {
      return;
    }
    std::string framed;
    framed.reserve(line.size() + 48);
    AppendWallTime(&framed);
    framed.push_back(' ');
    framed.append(InfoLogLevelName(level));
    framed.push_back(' ');
    framed.append(line.data(), line.size());
    framed.push_back('\n');

    std::lock_guard<std::mutex> lock(mu_);
    if (file_ == nullptr) {
      return;
    }
    (void)file_->Append(Slice(framed));
    (void)file_->Flush();
    if (max_size_ > 0 && file_->GetFileSize() >= max_size_) {
      Rotate();
    }
  }

  Status Flush() override {
    std::lock_guard<std::mutex> lock(mu_);
    return file_ != nullptr ? file_->Flush() : Status::OK();
  }

  uint64_t GetLogFileSize() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return file_ != nullptr ? file_->GetFileSize() : 0;
  }

 private:
  // mu_ held. Renames the full file to <fname>.old.<seq>, prunes old
  // rotations beyond keep_, and starts a fresh file. Best effort: on
  // any failure logging continues into the current file.
  void Rotate() {
    (void)file_->Close();
    file_.reset();
    RotateExistingFile(env_, fname_, keep_);
    std::unique_ptr<WritableFile> fresh;
    if (env_->NewWritableFile(fname_, &fresh).ok()) {
      file_ = std::move(fresh);
    }
  }

 public:
  /// Shared with NewFileLogger: move an existing `fname` aside to
  /// `<fname>.old.<seq>` and delete rotations beyond `keep`.
  static void RotateExistingFile(Env* env, const std::string& fname,
                                 size_t keep) {
    if (!env->FileExists(fname)) {
      return;
    }
    // Split into directory + basename to scan siblings.
    const size_t slash = fname.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".") : fname.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? fname : fname.substr(slash + 1);
    const std::string old_prefix = base + ".old.";

    std::vector<std::string> children;
    (void)env->GetChildren(dir, &children);
    uint64_t max_seq = 0;
    std::vector<std::pair<uint64_t, std::string>> rotated;
    for (const std::string& child : children) {
      if (child.size() <= old_prefix.size() ||
          child.compare(0, old_prefix.size(), old_prefix) != 0) {
        continue;
      }
      const uint64_t seq =
          strtoull(child.c_str() + old_prefix.size(), nullptr, 10);
      max_seq = std::max(max_seq, seq);
      rotated.emplace_back(seq, child);
    }
    char seq_buf[32];
    snprintf(seq_buf, sizeof(seq_buf), "%llu",
             static_cast<unsigned long long>(max_seq + 1));
    (void)env->RenameFile(fname, fname + ".old." + seq_buf);
    rotated.emplace_back(max_seq + 1, base + ".old." + seq_buf);

    if (keep > 0 && rotated.size() > keep) {
      std::sort(rotated.begin(), rotated.end());
      for (size_t i = 0; i + keep < rotated.size(); i++) {
        (void)env->RemoveFile(dir + "/" + rotated[i].second);
      }
    }
  }

 private:
  Env* const env_;
  const std::string fname_;
  const size_t max_size_;
  const size_t keep_;
  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;  // null after a failed rotation
};

}  // namespace

Status NewFileLogger(Env* env, const std::string& fname,
                     size_t max_log_file_size, size_t keep_log_file_num,
                     InfoLogLevel level, std::shared_ptr<Logger>* out) {
  out->reset();
  // Never truncate a previous LOG: rotate it aside first so the tail of
  // the prior run survives for post-mortems.
  FileLogger::RotateExistingFile(env, fname, keep_log_file_num);
  std::unique_ptr<WritableFile> file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) {
    return s;
  }
  *out = std::make_shared<FileLogger>(env, fname, max_log_file_size,
                                      keep_log_file_num, level,
                                      std::move(file));
  return Status::OK();
}

}  // namespace shield
