#ifndef SHIELD_ENV_TRACE_ENV_H_
#define SHIELD_ENV_TRACE_ENV_H_

#include <memory>
#include <string>

#include "env/env.h"

namespace shield {

/// Wraps an Env so every file read/write/sync is captured as an
/// io.read/io.write/io.sync span in the active trace: label = file
/// name, a = offset, b = length, error flag from the status. Spans are
/// only materialised while a trace is active (Tracer::AnyActive()), so
/// the interposed wrapper costs one relaxed atomic load when idle.
///
/// DBImpl interposes this directly above the physical Env — beneath
/// encryption — so the captured offsets/lengths describe ciphertext
/// I/O, which is what trace_replay re-issues against a raw directory.
///
/// The wrapper forwards block_authenticator() from the wrapped files so
/// the authenticated read/write paths keep working through it.
std::unique_ptr<Env> NewIOTracingEnv(Env* base);

}  // namespace shield

#endif  // SHIELD_ENV_TRACE_ENV_H_
