#ifndef SHIELD_SIM_SIM_HARNESS_H_
#define SHIELD_SIM_SIM_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/logger.h"

namespace shield {
namespace sim {

/// Which fault sources each epoch arms (all heal before the epoch's
/// quiesce barrier, so oracle checks always run on a healthy cluster).
enum class FaultProfile {
  kNone,     // determinism baseline: no faults at all
  kStorage,  // seeded I/O error bursts + KDS outages + bit-flips
  kNetwork,  // seeded (overlapping) fabric partition windows
  kMixed,    // both of the above plus periodic writer crashes
  // DEK-rotation campaign: each epoch runs one rotation scenario —
  // writer crash mid-rotation (resume-at-reopen), a primary-KDS
  // outage longer than the driver retry deadline (survivable only via
  // KDS failover), or a bit flip on a half-rotated file (scrub repair
  // mid-rotation). After every scenario the oracle asserts that no
  // pre-rotation DEK id resolves and every live file's DEK does.
  kRotation,
  // Parallel-write-path campaign: the writer runs with a sharded
  // memtable and the pipelined-keystream encrypted WAL, under storage
  // fault bursts and a crash-heavy cadence (a crash epoch every
  // crash_every/3 epochs). Each crash lands mid-stream on the
  // pipelined WAL — after appends the prefetcher has XORed but before
  // or after the sync, depending on the seeded op mix — and the
  // recovery oracle asserts the synced prefix survives with zero
  // acknowledged-sync loss.
  kWrite,
  // Cluster-health-plane campaign: every epoch arms one fault class
  // from SimConfig::health_fault_classes (cycling), evaluates each
  // node's HealthMonitor mid-fault and again after heal + catch-up,
  // and journals the allowlisted detector transitions
  // (ok→warn/critical at onset, back →ok at recovery). The epoch
  // FAILS if the armed fault class does not surface as the expected
  // transition on the expected node. Runs with the observability
  // plane on (per-node tracers + metrics).
  kHealth,
};

const char* FaultProfileName(FaultProfile profile);
/// Parses "none"/"storage"/"network"/"mixed"/"rotation"/"write"/
/// "health"; false on anything else.
bool ParseFaultProfile(const std::string& name, FaultProfile* out);

struct SimConfig {
  uint64_t seed = 1;

  /// Simulated duration. Virtual epochs are derived from this
  /// (duration / epoch_idle) — never from elapsed virtual time, which
  /// background stall loops advance by nondeterministic amounts.
  uint64_t duration_sec = 60;

  FaultProfile profile = FaultProfile::kMixed;
  int num_replicas = 2;

  /// Writer ops scheduled per epoch (at seeded virtual offsets, in
  /// seeded interleave with fault onsets).
  int ops_per_epoch = 120;
  /// Distinct keys; small enough that overwrites/deletes are common.
  int key_space = 800;

  /// Idle virtual time appended to each epoch (also the divisor that
  /// turns duration_sec into an epoch count).
  uint64_t epoch_idle_micros = 5 * 1000 * 1000;

  /// Epoch cadence of maintenance (bit-flip + scrub repair + replica
  /// restart; 0 = never) and of writer crash-recovery (0 = never;
  /// only honored under kStorage/kMixed).
  int maintenance_every = 4;
  int crash_every = 6;

  /// Point reads sampled per oracle check; full scans run every
  /// scan_every epochs.
  int sample_reads = 24;
  int scan_every = 4;

  /// Mirror sim events (and engine events) into this log. Null: the
  /// journal is still produced, nothing else is logged.
  std::shared_ptr<Logger> info_log;

  /// Oracle self-test hook — see SimClusterOptions.
  bool inject_stale_replica_bug = false;

  /// Fault classes the kHealth campaign cycles through, comma
  /// separated. Supported: "kds" (key-service outage → `kds` detector
  /// critical on the writer) and "partition" (fabric partition →
  /// `replica.catchup` critical on every replica).
  std::string health_fault_classes = "kds,partition";

  /// Per-node tracers + per-node Statistics/metrics (see
  /// SimClusterOptions::observability). Forced on by the kHealth
  /// profile; journals are unaffected either way.
  bool observability = false;
};

struct SimReport {
  bool ok = false;
  /// Human-readable reason when !ok (always names enough to reproduce:
  /// the caller already knows the seed/config).
  std::string failure;

  uint64_t seed = 0;
  uint64_t epochs_run = 0;
  uint64_t ops_acknowledged = 0;
  uint64_t oracle_checks = 0;
  uint64_t crashes = 0;
  uint64_t faults_injected = 0;
  /// Virtual time covered vs wall time burned (the headline ratio).
  uint64_t virtual_micros = 0;
  uint64_t wall_micros = 0;
  /// Expected-state hash at the end (a function of seed + config).
  uint64_t model_hash = 0;

  /// The deterministic journal: one JSON line per logical event, no
  /// timestamps. Byte-identical across runs with equal seed + config.
  std::string journal;

  /// Observability exports (populated only with SimConfig::
  /// observability / the kHealth profile). Trace files carry virtual
  /// timestamps and node names; metrics are per-node Prometheus text.
  /// Neither participates in journal determinism.
  std::vector<std::pair<std::string, std::string>> trace_files;
  std::vector<std::pair<std::string, std::string>> node_metrics;
};

/// Runs one simulated cluster lifetime under virtual time: installs a
/// SimClock process-wide, builds a SimCluster, drives seeded epochs of
/// writes/faults/crashes through a SimScheduler, and checks every
/// epoch against the SimOracle. Returns when the configured duration
/// is covered or the first check fails.
SimReport RunSimulation(const SimConfig& config);

}  // namespace sim
}  // namespace shield

#endif  // SHIELD_SIM_SIM_HARNESS_H_
