#include "sim/sim_cluster.h"

#include <algorithm>

#include "shield/file_crypto.h"
#include "util/clock.h"

namespace shield {
namespace sim {

namespace {

// Generous virtual-time budget per driver op: every fault window the
// harness arms is far shorter than this, and backoff sleeps advance
// virtual time, so a retried op always outlives the outage. Wall-clock
// cost is negligible (virtual sleeps only yield).
RetryPolicy DriverRetryPolicy(uint64_t seed) {
  RetryPolicy p;
  p.max_attempts = 500;
  p.initial_backoff_micros = 2 * 1000;
  p.max_backoff_micros = 1000 * 1000;
  p.multiplier = 2.0;
  p.jitter = 0.5;
  p.deadline_micros = 120ull * 1000 * 1000;
  p.seed = seed ^ 0xd21fe2;
  return p;
}

// The sim wires the writer's CompactionService pointer straight at the
// worker object; a real deployment crosses the storage fabric. This
// shim charges the job-spec dispatch and the result-manifest return
// (one RTT each) to the network simulator, so the writer-side
// ds.offload_rpc span measurably exceeds the worker-side
// ds.compaction_rpc span by the fabric cost. Dispatch rides the
// control channel: it pays latency but is not subject to injected
// data-fabric faults (offload availability under partitions is the
// storage campaigns' job, and must not change under observability).
class FabricCompactionService final : public CompactionService {
 public:
  FabricCompactionService(CompactionService* target, NetworkSimulator* net)
      : target_(target), net_(net) {}

  Status RunCompaction(const CompactionJobSpec& job,
                       CompactionJobResult* result) override {
    net_->SimulateTransfer(0, /*pay_rtt=*/true);
    Status s = target_->RunCompaction(job, result);
    net_->SimulateTransfer(0, /*pay_rtt=*/true);
    return s;
  }

 private:
  CompactionService* target_;
  NetworkSimulator* net_;
};

}  // namespace

SimCluster::SimCluster(const SimClusterOptions& options)
    : options_(options),
      driver_policy_(DriverRetryPolicy(options.seed)),
      retry_rnd_(options.seed ^ 0x2e7251) {}

SimCluster::~SimCluster() {
  // Replicas first (they hold read handles into shared files), then
  // the writer, then the infrastructure members in reverse declaration
  // order.
  replicas_.clear();
  writer_.reset();
}

Options SimCluster::WriterOptions() {
  Options o;
  o.env = writer_env_.get();
  o.write_buffer_size = options_.write_buffer_size;
  o.memtable_shards = options_.memtable_shards;
  o.info_log = options_.info_log;
  if (options_.observability) {
    o.node_name = "writer";
    o.statistics = CreateDBStatistics();
  }
  o.encryption.mode = EncryptionMode::kShield;
  o.encryption.wal_pipeline_window = options_.wal_pipeline_window;
  o.encryption.wal_padding_buckets = options_.wal_padding_buckets;
  o.encryption.kds = failover_kds_ != nullptr
                         ? std::static_pointer_cast<Kds>(failover_kds_)
                         : std::static_pointer_cast<Kds>(faulty_kds_);
  o.encryption.server_id = "writer";
  o.compaction_service = fabric_compaction_.get();
  o.offload_fallback_to_local = true;
  o.replica_source = service_.get();
  // Transient storage/KDS outages must never strand the writer in
  // read-only mode mid-simulation: keep auto-resume retrying until the
  // (virtual-time) fault window has passed.
  o.background_error_resume_policy.max_attempts = 10000;
  o.background_error_resume_policy.deadline_micros = 0;
  return o;
}

Options SimCluster::ReplicaOptions(int i) {
  Options o;
  o.env = replica_envs_[i].get();
  o.write_buffer_size = options_.write_buffer_size;
  o.info_log = options_.info_log;
  if (options_.observability) {
    o.node_name = "replica-" + std::to_string(i);
    o.statistics = CreateDBStatistics();
  }
  o.encryption.mode = EncryptionMode::kShield;
  o.encryption.kds = faulty_kds_;
  o.encryption.server_id = "replica-" + std::to_string(i);
  return o;
}

Status SimCluster::Start() {
  backing_ = NewMemEnv();

  FaultInjectionOptions fopts;
  fopts.seed = options_.seed ^ 0xfa117;
  // Crash cuts must be a pure function of sync tracking, not of an
  // extra PRNG draw whose consumption depends on background-write
  // interleaving.
  fopts.torn_write_probability = 0.0;
  fault_env_ = std::make_unique<FaultInjectionEnv>(backing_.get(), fopts);
  fault_env_->SetFaultsEnabled(false);

  NetworkSimOptions net;
  net.rtt_micros = options_.network_rtt_micros;
  net.bandwidth_bytes_per_sec = options_.network_bandwidth_bytes_per_sec;
  // Probabilistic packet faults stay off: the simulator injects
  // network trouble as timed partition windows, which heal on their
  // own under virtual time (and exercise StartPartitionFor re-arming).
  service_ = std::make_unique<StorageService>(fault_env_.get(), net,
                                              /*replicate=*/true);

  writer_env_ = NewRemoteEnv(service_.get(), nullptr);
  for (int i = 0; i < options_.num_replicas; i++) {
    replica_envs_.push_back(NewRemoteEnv(service_.get(), nullptr));
  }

  SimKdsOptions kopts;
  kopts.request_latency_us = options_.kds_latency_micros;
  kopts.require_authorization = true;
  sim_kds_ = std::make_shared<SimKds>(kopts);
  sim_kds_->AuthorizeServer("writer");
  sim_kds_->AuthorizeServer("worker");
  for (int i = 0; i < options_.num_replicas; i++) {
    sim_kds_->AuthorizeServer("replica-" + std::to_string(i));
  }

  FaultyKdsOptions fkopts;
  fkopts.seed = options_.seed ^ 0x6d5;
  faulty_kds_ = std::make_shared<FaultyKds>(sim_kds_, fkopts);
  faulty_kds_->SetFaultsEnabled(false);

  event_logger_ = std::make_unique<EventLogger>(options_.info_log.get());

  if (options_.use_failover_kds) {
    // Secondary endpoint over the same key store; its fault injection
    // stays off, so a primary outage is survivable by failing over.
    FaultyKdsOptions skopts;
    skopts.seed = options_.seed ^ 0x5ec0;
    secondary_kds_ = std::make_shared<FaultyKds>(sim_kds_, skopts);
    secondary_kds_->SetFaultsEnabled(false);
    failover_kds_ = std::make_shared<FailoverKds>(
        std::vector<std::shared_ptr<Kds>>{faulty_kds_, secondary_kds_});
    failover_kds_->SetEventLogger(event_logger_.get());
  }

  if (options_.observability) {
    // Per-node tracers for the non-DB nodes. They write through the
    // raw backing store (beneath fault injection and the network sim),
    // so recording spans costs no virtual time.
    Status ts = backing_->CreateDirIfMissing(options_.trace_dir);
    if (!ts.ok()) {
      return ts;
    }
    TraceOptions topts;
    topts.exclusive = false;
    topts.node_name = "worker";
    worker_tracer_ = std::make_unique<Tracer>();
    ts = worker_tracer_->Start(backing_.get(),
                               options_.trace_dir + "/worker.trace", topts);
    if (!ts.ok()) {
      return ts;
    }
    topts.node_name = "storage";
    storage_tracer_ = std::make_unique<Tracer>();
    ts = storage_tracer_->Start(backing_.get(),
                                options_.trace_dir + "/storage.trace", topts);
    if (!ts.ok()) {
      return ts;
    }
    service_->SetTracer(storage_tracer_.get());
  }

  RemoteCompactionWorker::WorkerOptions wopts;
  wopts.env = service_->server_env();
  wopts.db_options = Options();
  wopts.db_options.env = service_->server_env();
  wopts.db_options.write_buffer_size = options_.write_buffer_size;
  wopts.db_options.info_log = options_.info_log;
  wopts.db_options.encryption.mode = EncryptionMode::kShield;
  wopts.db_options.encryption.kds = faulty_kds_;
  wopts.db_options.encryption.server_id = "worker";
  wopts.server_id = "worker";
  wopts.tracer = worker_tracer_.get();
  worker_ = std::make_unique<RemoteCompactionWorker>(wopts);
  fabric_compaction_ = std::make_unique<FabricCompactionService>(
      worker_.get(), service_->network());

  DB* raw = nullptr;
  Status s = RunOp("open-writer", [&] {
    return DB::Open(WriterOptions(), options_.db_path, &raw);
  });
  if (!s.ok()) {
    return s;
  }
  writer_.reset(raw);
  MaybeStartTrace(writer_.get(), "writer");

  // Replicas need persisted state (CURRENT + manifest) to attach to.
  s = Quiesce();
  if (!s.ok()) {
    return s;
  }
  for (int i = 0; i < options_.num_replicas; i++) {
    s = OpenReplica(i);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status SimCluster::RunOp(const char* what,
                         const std::function<Status()>& op) {
  RetryContext ctx;
  ctx.rnd = &retry_rnd_;
  Status s = RunWithRetry(driver_policy_, op, nullptr, ctx);
  if (!s.ok() && event_logger_->enabled()) {
    JsonWriter w = event_logger_->NewEvent("sim_driver_op_failed");
    w.Add("op", what).Add("status", s.ToString());
    event_logger_->Emit(&w);
  }
  return s;
}

Status SimCluster::Put(const std::string& key, const std::string& value,
                       bool sync) {
  WriteOptions w;
  w.sync = sync;
  return RunOp("put", [&] { return writer_->Put(w, key, value); });
}

Status SimCluster::Delete(const std::string& key, bool sync) {
  WriteOptions w;
  w.sync = sync;
  return RunOp("delete", [&] { return writer_->Delete(w, key); });
}

Status SimCluster::FlushWriter() {
  return RunOp("flush", [&] { return writer_->Flush(); });
}

Status SimCluster::CompactAll() {
  return RunOp("compact", [&] {
    writer_->CompactRange(nullptr, nullptr);
    return Status::OK();
  });
}

Status SimCluster::Quiesce() {
  // One retried compound op: flush, drain background work, and require
  // the error handler back in "active". Any intermediate failure
  // (including a lagging auto-resume) reports TryAgain so the retry
  // loop sleeps virtual time forward and the resume deadline passes.
  return RunOp("quiesce", [&] {
    Status fs = writer_->Flush();
    if (!fs.ok()) {
      return fs;
    }
    writer_->WaitForIdle();
    std::string state;
    writer_->GetProperty("shield.error-handler-state", &state);
    if (state != "active") {
      return Status::TryAgain("error handler state: " + state);
    }
    return Status::OK();
  });
}

Status SimCluster::CatchUpReplicas() {
  if (options_.inject_stale_replica_bug) {
    // Regression hook: lie about having caught up. The oracle must
    // notice (tests/sim_test.cc OracleCatchesStaleReplica).
    return Status::OK();
  }
  for (auto& r : replicas_) {
    Status s = RunOp("catch-up", [&] { return r->TryCatchUp(); });
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status SimCluster::OpenReplica(int i) {
  DB* raw = nullptr;
  Status s = RunOp("open-replica", [&] {
    return DB::OpenReadOnly(ReplicaOptions(i), options_.db_path, &raw);
  });
  if (!s.ok()) {
    return s;
  }
  if (static_cast<size_t>(i) < replicas_.size()) {
    replicas_[i].reset(raw);
  } else {
    replicas_.emplace_back(raw);
  }
  MaybeStartTrace(raw, "replica-" + std::to_string(i));
  return Status::OK();
}

void SimCluster::MaybeStartTrace(DB* db, const std::string& node) {
  if (!options_.observability || db == nullptr) {
    return;
  }
  TraceOptions topts;
  topts.exclusive = false;
  topts.node_name = node;
  // Write the trace beneath the remote/fault stack: zero virtual-time
  // cost, and the file survives SimulateCrash (which only drops
  // unsynced *database* bytes above this env).
  topts.trace_env = backing_.get();
  const std::string path = options_.trace_dir + "/" + node + "-" +
                           std::to_string(trace_incarnation_++) + ".trace";
  db->StartTrace(topts, path);  // best effort; tracing never fails the sim
}

Status SimCluster::RestartReplicas() {
  for (int i = 0; i < static_cast<int>(replicas_.size()); i++) {
    replicas_[i].reset();
    Status s = OpenReplica(i);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status SimCluster::BitFlipSomeSst(uint64_t raw_pick, uint64_t raw_bit) {
  std::vector<std::string> children;
  Status s = fault_env_->GetChildren(options_.db_path, &children);
  if (!s.ok()) {
    return s;
  }
  std::vector<std::string> ssts;
  for (const auto& c : children) {
    if (c.size() > 4 && c.compare(c.size() - 4, 4, ".sst") == 0) {
      ssts.push_back(c);
    }
  }
  if (ssts.empty()) {
    return Status::NotFound("no live SSTs to corrupt");
  }
  std::sort(ssts.begin(), ssts.end());
  const std::string& victim = ssts[raw_pick % ssts.size()];
  // FlipBit reduces the bit index modulo the file size itself.
  return fault_env_->FlipBit(options_.db_path + "/" + victim, raw_bit);
}

Status SimCluster::VerifyAndRepair() {
  return RunOp("verify", [&] { return writer_->VerifyIntegrity(); });
}

Status SimCluster::RotateWriterDeks(uint64_t max_files,
                                    RotateResult* result) {
  return RunOp("rotate", [&] {
    RotateOptions opts;
    opts.max_files = max_files;
    return writer_->RotateDeks(opts, result);
  });
}

Status SimCluster::WaitRotationIdle() {
  return RunOp("rotation-idle", [&] {
    std::string state;
    writer_->GetProperty("shield.rotation-state", &state);
    if (state != "idle") {
      return Status::TryAgain("rotation state: " + state);
    }
    return Status::OK();
  });
}

Status SimCluster::CollectWriterSstDekIds(std::vector<std::string>* dek_ids) {
  dek_ids->clear();
  std::vector<std::string> children;
  Status s = fault_env_->GetChildren(options_.db_path, &children);
  if (!s.ok()) {
    return s;
  }
  for (const auto& c : children) {
    if (c.size() <= 4 || c.compare(c.size() - 4, 4, ".sst") != 0) {
      continue;
    }
    ShieldFileHeader header;
    s = ReadShieldFileHeader(fault_env_.get(), options_.db_path + "/" + c,
                             &header);
    if (!s.ok()) {
      return s;
    }
    dek_ids->push_back(header.dek_id.ToHex());
  }
  std::sort(dek_ids->begin(), dek_ids->end());
  return Status::OK();
}

Status SimCluster::CrashAndRecoverWriter() {
  HealAllFaults();
  Status s = fault_env_->SimulateCrash();
  if (!s.ok()) {
    return s;
  }
  // Destroying the DB after the crash models the process dying with
  // it: the destructor's close-path WAL flush lands *after* the
  // truncation point, leaving the kind of gap the salvage-based
  // recovery path must tolerate.
  writer_.reset();
  DB* raw = nullptr;
  s = RunOp("reopen-writer", [&] {
    return DB::Open(WriterOptions(), options_.db_path, &raw);
  });
  if (!s.ok()) {
    return s;
  }
  writer_.reset(raw);
  MaybeStartTrace(writer_.get(), "writer");
  return Quiesce();
}

Status SimCluster::CollectTraceFiles(
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  if (!options_.observability) {
    return Status::OK();
  }
  // Drain every active trace to the backing store first.
  if (writer_ != nullptr) {
    writer_->EndTrace();
  }
  for (auto& r : replicas_) {
    r->EndTrace();
  }
  if (worker_tracer_ != nullptr) {
    worker_tracer_->Stop();
  }
  if (storage_tracer_ != nullptr) {
    storage_tracer_->Stop();
  }
  std::vector<std::string> children;
  Status s = backing_->GetChildren(options_.trace_dir, &children);
  if (!s.ok()) {
    return s;
  }
  std::sort(children.begin(), children.end());
  for (const auto& name : children) {
    std::string contents;
    s = ReadFileToString(backing_.get(),
                         options_.trace_dir + "/" + name, &contents);
    if (!s.ok()) {
      return s;
    }
    out->emplace_back(name, std::move(contents));
  }
  return Status::OK();
}

Status SimCluster::CollectNodeMetrics(
    std::vector<std::pair<std::string, std::string>>* out) {
  out->clear();
  std::string text;
  if (writer_ != nullptr && writer_->GetProperty("shield.metrics", &text)) {
    out->emplace_back("writer", text);
  }
  for (size_t i = 0; i < replicas_.size(); i++) {
    if (replicas_[i]->GetProperty("shield.metrics", &text)) {
      out->emplace_back("replica-" + std::to_string(i), text);
    }
  }
  return Status::OK();
}

void SimCluster::HealAllFaults() {
  fault_env_->SetFaultsEnabled(false);
  faulty_kds_->SetFaultsEnabled(false);
  faulty_kds_->HealOutage();
  service_->network()->HealPartition();
}

}  // namespace sim
}  // namespace shield
