#include "sim/sim_harness.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "sim/sim_clock.h"
#include "sim/sim_cluster.h"
#include "sim/sim_events.h"
#include "sim/sim_oracle.h"
#include "sim/sim_scheduler.h"
#include "util/clock.h"

namespace shield {
namespace sim {

const char* FaultProfileName(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::kNone:
      return "none";
    case FaultProfile::kStorage:
      return "storage";
    case FaultProfile::kNetwork:
      return "network";
    case FaultProfile::kMixed:
      return "mixed";
    case FaultProfile::kRotation:
      return "rotation";
    case FaultProfile::kWrite:
      return "write";
    case FaultProfile::kHealth:
      return "health";
  }
  return "unknown";
}

bool ParseFaultProfile(const std::string& name, FaultProfile* out) {
  if (name == "none") {
    *out = FaultProfile::kNone;
  } else if (name == "storage") {
    *out = FaultProfile::kStorage;
  } else if (name == "network") {
    *out = FaultProfile::kNetwork;
  } else if (name == "mixed") {
    *out = FaultProfile::kMixed;
  } else if (name == "rotation") {
    *out = FaultProfile::kRotation;
  } else if (name == "write") {
    *out = FaultProfile::kWrite;
  } else if (name == "health") {
    *out = FaultProfile::kHealth;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Active (op/fault-scheduling) window of each epoch, before the heal
/// + barrier phase.
constexpr uint64_t kEpochActiveMicros = 2 * 1000 * 1000;
/// Driver-only writes issued between the barrier and a simulated
/// crash (the deterministic crash-loss window).
constexpr int kPostBarrierCrashOps = 30;

/// Splits SimConfig::health_fault_classes ("kds,partition") into
/// validated tokens; false on an empty spec or an unknown class.
bool ParseHealthClasses(const std::string& spec,
                        std::vector<std::string>* out) {
  out->clear();
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string token =
        comma == std::string::npos ? spec.substr(start)
                                   : spec.substr(start, comma - start);
    if (token != "kds" && token != "partition") {
      return false;
    }
    out->push_back(token);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return !out->empty();
}

/// One simulated cluster lifetime. All mutable state lives here; the
/// public RunSimulation() below is a thin wrapper.
class SimulationRun {
 public:
  explicit SimulationRun(const SimConfig& config)
      : cfg_(config),
        override_(&clock_),
        sched_(&clock_, config.seed),
        ops_rnd_(config.seed ^ 0x09555),
        faults_rnd_(config.seed ^ 0xfa0175),
        check_rnd_(config.seed ^ 0xc4ec55) {}

  SimReport Run() {
    const auto wall_start = std::chrono::steady_clock::now();
    report_.seed = cfg_.seed;

    if (cfg_.profile == FaultProfile::kHealth &&
        !ParseHealthClasses(cfg_.health_fault_classes, &health_classes_)) {
      report_.failure =
          "invalid health fault classes: " + cfg_.health_fault_classes;
      report_.ok = false;
      return report_;
    }

    SimClusterOptions copts;
    copts.seed = cfg_.seed;
    copts.num_replicas = cfg_.num_replicas;
    copts.info_log = cfg_.info_log;
    copts.inject_stale_replica_bug = cfg_.inject_stale_replica_bug;
    copts.use_failover_kds = cfg_.profile == FaultProfile::kRotation;
    copts.observability =
        cfg_.observability || cfg_.profile == FaultProfile::kHealth;
    if (cfg_.profile == FaultProfile::kWrite) {
      // The property under test: recovery of a sharded memtable from a
      // pipelined encrypted WAL. Small shards + a modest keystream
      // window keep the virtual run cheap while still exercising both.
      copts.memtable_shards = 4;
      copts.wal_pipeline_window = 64 * 1024;
      // Record padding rides the same campaign: crash-recovery and
      // replica catch-up must strip it transparently, with bit-exact
      // journals and zero synced-write loss.
      copts.wal_padding_buckets = {64, 256, 1024, 4096};
    }
    cluster_ = std::make_unique<SimCluster>(copts);
    Status s = cluster_->Start();
    journal_ = std::make_unique<SimJournal>(cluster_->event_logger());
    if (!s.ok()) {
      Fail("cluster start: " + s.ToString());
    } else {
      // Epoch count is a pure function of the config — deriving it
      // from elapsed virtual time would be nondeterministic (stall and
      // backoff loops advance the clock by amounts that depend on real
      // thread interleaving).
      const uint64_t epochs =
          std::max<uint64_t>(1, cfg_.duration_sec * 1000 * 1000 /
                                    std::max<uint64_t>(1, cfg_.epoch_idle_micros));
      for (uint64_t e = 0; e < epochs && report_.failure.empty(); e++) {
        RunEpoch(e);
        report_.epochs_run = e + 1;
      }
    }

    report_.ok = report_.failure.empty();
    report_.model_hash = oracle_.ModelHash();
    {
      auto done = journal_->NewEvent("sim_done");
      done.Add("ok", report_.ok)
          .Add("epochs", report_.epochs_run)
          .Add("ops", report_.ops_acknowledged)
          .Add("oracle_checks", report_.oracle_checks)
          .Add("crashes", report_.crashes)
          .Add("faults", report_.faults_injected)
          .Add("model_hash", report_.model_hash);
      done.Emit();
    }

    // Observability exports, before teardown: drain per-node traces
    // and take one final metrics scrape per DB node. Neither touches
    // the journal (trace files carry virtual timestamps; metrics carry
    // compaction-shape-dependent counters).
    cluster_->CollectTraceFiles(&report_.trace_files);
    cluster_->CollectNodeMetrics(&report_.node_metrics);

    // Tear the cluster down while the virtual clock is still
    // installed: destructors sleep through it.
    cluster_.reset();

    report_.virtual_micros = clock_.ElapsedMicros();
    report_.wall_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    report_.journal = journal_->text();
    return report_;
  }

 private:
  void Fail(const std::string& why) {
    if (!report_.failure.empty()) {
      return;  // keep the first failure
    }
    report_.failure = why;
    auto ev = journal_->NewEvent("sim_failed");
    ev.Add("reason", why);
    ev.Emit();
  }

  bool Failed() const { return !report_.failure.empty(); }

  bool IsStorageProfile() const {
    return cfg_.profile == FaultProfile::kStorage ||
           cfg_.profile == FaultProfile::kMixed ||
           cfg_.profile == FaultProfile::kWrite;
  }

  /// The write-path campaign crashes at a third of the configured
  /// cadence (every 2 epochs at the default 6): crash recovery of the
  /// sharded memtable from the pipelined WAL is the property under
  /// test, not an occasional disturbance.
  int CrashCadence() const {
    if (cfg_.crash_every > 0 && cfg_.profile == FaultProfile::kWrite) {
      return std::max(1, cfg_.crash_every / 3);
    }
    return cfg_.crash_every;
  }
  bool IsNetworkProfile() const {
    return cfg_.profile == FaultProfile::kNetwork ||
           cfg_.profile == FaultProfile::kMixed;
  }

  void RunEpoch(uint64_t e) {
    {
      auto ev = journal_->NewEvent("sim_epoch");
      ev.Add("epoch", e).Add("profile", FaultProfileName(cfg_.profile));
      ev.Emit();
    }

    // Snapshot taken at the (quiesced) start of the epoch; verified
    // against a frozen copy of the model after the barrier.
    const Snapshot* snap = cluster_->writer()->GetSnapshot();
    const std::map<std::string, std::string> snap_model = oracle_.latest();

    ArmFaults(e);
    ScheduleOps(e);
    sched_.RunUntilIdle();

    // Heal + durability barrier. Oracle checks always run on a
    // healthy, quiesced cluster; fault effects on *timing* are over.
    cluster_->HealAllFaults();
    if (!Failed()) {
      Status s = cluster_->Quiesce();
      if (!s.ok()) {
        Fail("quiesce: " + s.ToString());
      }
    }
    if (!Failed()) {
      oracle_.MarkDurableBarrier();
      CheckSnapshot(e, snap, snap_model);
    }
    cluster_->writer()->ReleaseSnapshot(snap);
    if (Failed()) {
      return;
    }

    if (cfg_.maintenance_every > 0 && e > 0 &&
        e % static_cast<uint64_t>(cfg_.maintenance_every) == 0 &&
        IsStorageProfile()) {
      RunMaintenance(e);
      if (Failed()) {
        return;
      }
    }

    if (cfg_.profile == FaultProfile::kRotation && e >= 2) {
      RunRotationEpoch(e);
      if (Failed()) {
        return;
      }
    }

    RunOracleChecks(e);
    if (Failed()) {
      return;
    }

    if (cfg_.profile == FaultProfile::kHealth) {
      RunHealthEpoch(e);
      if (Failed()) {
        return;
      }
    }

    const int crash_every = CrashCadence();
    if (crash_every > 0 && e > 0 &&
        e % static_cast<uint64_t>(crash_every) == 0 && IsStorageProfile()) {
      RunCrashEpoch(e);
      if (Failed()) {
        return;
      }
    }

    sched_.RunFor(cfg_.epoch_idle_micros);
  }

  /// Draws this epoch's fault plan from faults_rnd_ — always the same
  /// number of draws, regardless of which faults end up armed, so the
  /// PRNG stream never depends on simulation state.
  void ArmFaults(uint64_t e) {
    uint64_t r[10];
    for (auto& v : r) {
      v = faults_rnd_.Next64();
    }
    if (cfg_.profile == FaultProfile::kNone ||
        cfg_.profile == FaultProfile::kRotation ||
        cfg_.profile == FaultProfile::kHealth) {
      // The rotation and health campaigns inject their faults inside
      // their own epoch phases (they must bracket specific steps —
      // rotation passes, health evaluations — not land at seeded
      // offsets in the op window); the draws above still happen so the
      // PRNG stream is profile-independent.
      return;
    }

    if (IsStorageProfile()) {
      // Transient-only I/O error burst for the whole active window.
      // (No permanent errors or short reads: those surface
      // non-retryable statuses by design and would fail driver ops.)
      const bool io_burst = r[0] % 100 < 70;
      if (io_burst) {
        FaultEvent(e, "io_errors", 0, kEpochActiveMicros);
        sched_.ScheduleAt(sched_.now(), "fault:io:" + std::to_string(e), [this] {
          FaultInjectionOptions fo;
          fo.seed = cfg_.seed ^ 0xfa117;  // options swap keeps PRNG state
          fo.read_error_probability = 0.02;
          fo.write_error_probability = 0.02;
          fo.metadata_error_probability = 0.01;
          fo.permanent_error_ratio = 0.0;
          fo.torn_write_probability = 0.0;
          cluster_->fault_env()->SetOptions(fo);
          cluster_->fault_env()->SetFaultsEnabled(true);
        });
      }
      const bool kds_outage = r[1] % 100 < 60;
      if (kds_outage) {
        const uint64_t offset = r[2] % 1500000;
        const uint64_t window = 300000 + r[3] % 1200000;
        FaultEvent(e, "kds_outage", offset, window);
        sched_.ScheduleAfter(offset, "fault:kds:" + std::to_string(e),
                             [this, window] {
                               cluster_->faulty_kds()->SetFaultsEnabled(true);
                               cluster_->faulty_kds()->StartOutageFor(window);
                             });
      }
    }
    if (IsNetworkProfile()) {
      const bool partition = r[4] % 100 < 70;
      if (partition) {
        const uint64_t offset = r[5] % 1200000;
        const uint64_t window = 200000 + r[6] % 900000;
        FaultEvent(e, "partition", offset, window);
        sched_.ScheduleAfter(offset, "fault:net:" + std::to_string(e),
                             [this, window] {
                               cluster_->network()->StartPartitionFor(window);
                             });
        // Overlapping re-arm half-way through the first window: per
        // the NetworkSimulator contract this only ever extends the
        // outage (the satellite-2 semantics, exercised continuously).
        const bool rearm = r[7] % 100 < 50;
        if (rearm) {
          const uint64_t offset2 = offset + window / 2;
          const uint64_t window2 = 100000 + r[8] % 900000;
          FaultEvent(e, "partition_rearm", offset2, window2);
          sched_.ScheduleAfter(offset2, "fault:net2:" + std::to_string(e),
                               [this, window2] {
                                 cluster_->network()->StartPartitionFor(window2);
                               });
        }
      }
    }
  }

  void FaultEvent(uint64_t e, const char* kind, uint64_t offset,
                  uint64_t window) {
    report_.faults_injected++;
    auto ev = journal_->NewEvent("sim_fault_injected");
    ev.Add("epoch", e)
        .Add("kind", kind)
        .Add("offset_micros", offset)
        .Add("window_micros", window);
    ev.Emit();
  }

  void ScheduleOps(uint64_t e) {
    uint64_t puts = 0, dels = 0, syncs = 0;
    for (int i = 0; i < cfg_.ops_per_epoch; i++) {
      const uint64_t offset = ops_rnd_.Next64() % kEpochActiveMicros;
      const std::string key =
          "k" + std::to_string(ops_rnd_.Uniform(cfg_.key_space));
      const bool is_delete = ops_rnd_.OneIn(8);
      const bool sync = ops_rnd_.OneIn(12);
      std::string value;
      if (!is_delete) {
        value = "v-" + std::to_string(e) + "-" + std::to_string(i) + "-" +
                std::to_string(ops_rnd_.Next64());
        value.resize(40 + ops_rnd_.Uniform(120), 'x');
      }
      (is_delete ? dels : puts)++;
      if (sync) {
        syncs++;
      }
      const std::string label =
          "op:" + std::to_string(e) + ":" + std::to_string(i);
      sched_.ScheduleAfter(offset, label, [this, key, value, is_delete, sync] {
        if (Failed()) {
          return;  // first failure wins; skip the rest of the epoch
        }
        Status s = is_delete ? cluster_->Delete(key, sync)
                             : cluster_->Put(key, value, sync);
        if (!s.ok()) {
          Fail("driver op on " + key + ": " + s.ToString());
          return;
        }
        if (is_delete) {
          oracle_.RecordDelete(key, sync);
        } else {
          oracle_.RecordPut(key, value, sync);
        }
        report_.ops_acknowledged++;
      });
    }
    auto ev = journal_->NewEvent("sim_ops");
    ev.Add("epoch", e)
        .Add("scheduled", static_cast<uint64_t>(cfg_.ops_per_epoch))
        .Add("puts", puts)
        .Add("deletes", dels)
        .Add("syncs", syncs);
    ev.Emit();
  }

  void CheckSnapshot(uint64_t e, const Snapshot* snap,
                     const std::map<std::string, std::string>& snap_model) {
    if (snap_model.empty()) {
      return;
    }
    ReadOptions ropts;
    ropts.snapshot = snap;
    uint64_t checked = 0;
    for (int i = 0; i < 8; i++) {
      auto it = snap_model.begin();
      std::advance(it, check_rnd_.Uniform(static_cast<int>(snap_model.size())));
      std::string got;
      Status s = cluster_->writer()->Get(ropts, it->first, &got);
      checked++;
      if (!s.ok() || got != it->second) {
        OracleEvent(e, "writer", "snapshot", false, checked);
        Fail("snapshot read of " + it->first + " diverged: " +
             (s.ok() ? "wrong value" : s.ToString()));
        return;
      }
    }
    report_.oracle_checks++;
    OracleEvent(e, "writer", "snapshot", true, checked);
  }

  void RunMaintenance(uint64_t e) {
    const uint64_t raw_pick = faults_rnd_.Next64();
    const uint64_t raw_bit = faults_rnd_.Next64();
    Status s = cluster_->BitFlipSomeSst(raw_pick, raw_bit);
    {
      auto ev = journal_->NewEvent("sim_maintenance");
      ev.Add("epoch", e).Add("bitflip", s.ok());
      ev.Emit();
    }
    if (s.IsNotFound()) {
      return;  // no SSTs yet (only possible in the first epochs)
    }
    if (!s.ok()) {
      Fail("bit flip: " + s.ToString());
      return;
    }
    report_.faults_injected++;
    s = cluster_->VerifyAndRepair();
    if (!s.ok()) {
      Fail("scrub repair after bit flip: " + s.ToString());
      return;
    }
    // Replicas may hold table-cache handles to the pre-repair bytes;
    // restart them so their next reads see the repaired file.
    s = cluster_->RestartReplicas();
    if (!s.ok()) {
      Fail("replica restart: " + s.ToString());
    }
  }

  /// One rotation scenario per epoch, cycling with the epoch number:
  ///   0 — bounded rotation, then writer crash; reopen must resume the
  ///       persisted rotation manifest in the background.
  ///   1 — full rotation under a primary-KDS outage that outlives the
  ///       driver retry deadline; only the failover endpoint can
  ///       finish it.
  ///   2 — bounded rotation, bit flip on the half-rotated file set,
  ///       scrub repair, then finish the rotation.
  /// Every scenario ends with an unbounded rotation pass (which also
  /// drains deferred DEK deletes), then the DEK-lifecycle oracle:
  /// no pre-rotation SST DEK id may resolve, every live one must.
  void RunRotationEpoch(uint64_t e) {
    // Fixed draw count per epoch regardless of scenario, so the fault
    // PRNG stream never depends on scenario internals.
    const uint64_t raw_pick = faults_rnd_.Next64();
    const uint64_t raw_bit = faults_rnd_.Next64();
    const int scenario = static_cast<int>(e % 3);

    std::vector<std::string> pre_ids;
    Status s = cluster_->CollectWriterSstDekIds(&pre_ids);
    if (!s.ok()) {
      Fail("collect pre-rotation DEK ids: " + s.ToString());
      return;
    }

    RotateResult result;
    bool planned_any = false;
    bool crashed = false;
    bool outage = false;
    bool bitflip = false;

    if (scenario == 0) {
      s = cluster_->RotateWriterDeks(/*max_files=*/2, &result);
      if (!s.ok()) {
        Fail("bounded rotation: " + s.ToString());
        return;
      }
      planned_any = result.files_rotated + result.files_skipped +
                        result.files_pending >
                    0;
      s = cluster_->CrashAndRecoverWriter();
      if (!s.ok()) {
        Fail("crash mid-rotation: " + s.ToString());
        return;
      }
      crashed = true;
      report_.crashes++;
    } else if (scenario == 1) {
      // 200 virtual seconds of primary-KDS outage: longer than the
      // 120 s driver retry deadline, so riding it out is impossible —
      // the rotation below completes only if the writer fails over.
      outage = true;
      report_.faults_injected++;
      cluster_->faulty_kds()->SetFaultsEnabled(true);
      cluster_->faulty_kds()->StartOutageFor(200ull * 1000 * 1000);
    } else {
      s = cluster_->RotateWriterDeks(/*max_files=*/2, &result);
      if (!s.ok()) {
        Fail("bounded rotation: " + s.ToString());
        return;
      }
      planned_any = result.files_rotated + result.files_skipped +
                        result.files_pending >
                    0;
      Status fs = cluster_->BitFlipSomeSst(raw_pick, raw_bit);
      if (fs.ok()) {
        bitflip = true;
        report_.faults_injected++;
        s = cluster_->VerifyAndRepair();
        if (!s.ok()) {
          Fail("scrub repair mid-rotation: " + s.ToString());
          return;
        }
      } else if (!fs.IsNotFound()) {
        Fail("bit flip mid-rotation: " + s.ToString());
        return;
      }
    }

    // Complete the rotation. The pass mutex serializes this behind a
    // crash-resumed background pass, and the fresh unbounded plan
    // re-covers anything the bounded pass never reached.
    s = cluster_->RotateWriterDeks(/*max_files=*/0, &result);
    if (!s.ok()) {
      Fail("complete rotation: " + s.ToString());
      return;
    }
    planned_any = planned_any || result.files_rotated +
                                         result.files_skipped +
                                         result.files_pending >
                                     0;
    if (outage) {
      cluster_->HealAllFaults();
    }
    s = cluster_->WaitRotationIdle();
    if (!s.ok()) {
      Fail("rotation did not reach idle: " + s.ToString());
      return;
    }
    // Rotated-away files are deleted; replicas must drop their stale
    // table-cache handles before the epoch's oracle reads.
    s = cluster_->RestartReplicas();
    if (!s.ok()) {
      Fail("replica restart after rotation: " + s.ToString());
      return;
    }

    const bool stale_gone = CheckStaleDeksGone(pre_ids);
    const bool live_ok = Failed() ? false : CheckLiveDeksResolve();
    std::string pending;
    cluster_->writer()->GetProperty("shield.dek.pending-deletes", &pending);
    const bool drained = pending == "0";
    report_.oracle_checks++;

    {
      auto ev = journal_->NewEvent("sim_rotation");
      ev.Add("epoch", e)
          .Add("scenario", scenario)
          .Add("planned", planned_any)
          .Add("crashed", crashed)
          .Add("kds_outage", outage)
          .Add("bitflip", bitflip)
          .Add("stale_deks_gone", stale_gone)
          .Add("live_deks_ok", live_ok)
          .Add("deletes_drained", drained);
      ev.Emit();
    }
    if (!drained) {
      Fail("deferred DEK deletes not drained after rotation: " + pending);
    }
  }

  /// True when every pre-rotation SST DEK id now resolves to NotFound
  /// at the KDS (checked beneath the fault layers). Fails the run
  /// otherwise.
  bool CheckStaleDeksGone(const std::vector<std::string>& pre_ids) {
    for (const auto& hex : pre_ids) {
      DekId id;
      if (!DekId::FromHex(hex, &id)) {
        Fail("unparsable DEK id: " + hex);
        return false;
      }
      Dek dek;
      Status g = cluster_->sim_kds()->GetDek("writer", id, &dek);
      if (!g.IsNotFound()) {
        Fail("pre-rotation DEK id still resolvable: " + hex + " -> " +
             g.ToString());
        return false;
      }
    }
    return true;
  }

  /// True when every live SST's embedded DEK id resolves at the KDS
  /// (no key was lost to the rotation). Fails the run otherwise.
  bool CheckLiveDeksResolve() {
    std::vector<std::string> live_ids;
    Status s = cluster_->CollectWriterSstDekIds(&live_ids);
    if (!s.ok()) {
      Fail("collect live DEK ids: " + s.ToString());
      return false;
    }
    for (const auto& hex : live_ids) {
      DekId id;
      if (!DekId::FromHex(hex, &id)) {
        Fail("unparsable DEK id: " + hex);
        return false;
      }
      Dek dek;
      Status g = cluster_->sim_kds()->GetDek("writer", id, &dek);
      if (!g.ok()) {
        Fail("live DEK id not resolvable: " + hex + " -> " + g.ToString());
        return false;
      }
    }
    return true;
  }

  /// Health-plane campaign epoch (kHealth): on the quiesced, caught-up
  /// cluster, arm one fault class, prove it surfaces as the expected
  /// detector transition mid-fault, heal, and prove the recovery edge.
  /// Journal events carry only logical fields — {epoch, node,
  /// detector, from, to, phase} — so runs are bit-identical per seed.
  void RunHealthEpoch(uint64_t e) {
    const std::string& cls = health_classes_[e % health_classes_.size()];

    // Baseline pass: absorb steady-state edges left by the op window
    // (write stalls, L0 debt) so the fault pass below reports exactly
    // the fault-driven transition. Verdicts are discarded.
    EvaluateAllNodesHealth();

    {
      auto ev = journal_->NewEvent("sim_health_fault");
      ev.Add("epoch", e).Add("class", cls);
      ev.Emit();
    }
    report_.faults_injected++;

    // Windows are generous (healed explicitly below); the probes run
    // synchronously well inside them.
    constexpr uint64_t kHealthWindowMicros = 60ull * 1000 * 1000;
    if (cls == "kds") {
      cluster_->faulty_kds()->StartOutageFor(kHealthWindowMicros);
      if (!ExpectHealthTransition(e, "writer", cluster_->writer(), "kds",
                                  HealthLevel::kCritical, "onset")) {
        return;
      }
    } else {  // "partition"
      cluster_->network()->StartPartitionFor(kHealthWindowMicros);
      for (int i = 0; i < cluster_->num_replicas(); i++) {
        if (!ExpectHealthTransition(e, "replica-" + std::to_string(i),
                                    cluster_->replica(i), "replica.catchup",
                                    HealthLevel::kCritical, "onset")) {
          return;
        }
      }
    }

    cluster_->HealAllFaults();
    Status s = cluster_->Quiesce();
    if (!s.ok()) {
      Fail("health epoch quiesce: " + s.ToString());
      return;
    }
    s = cluster_->CatchUpReplicas();
    if (!s.ok()) {
      Fail("health epoch catch-up: " + s.ToString());
      return;
    }

    // Recovery pass: the same detectors must report the edge back to
    // ok now that the fault is healed and replicas are caught up.
    if (cls == "kds") {
      if (!ExpectHealthTransition(e, "writer", cluster_->writer(), "kds",
                                  HealthLevel::kOk, "recovered")) {
        return;
      }
    } else {
      for (int i = 0; i < cluster_->num_replicas(); i++) {
        if (!ExpectHealthTransition(e, "replica-" + std::to_string(i),
                                    cluster_->replica(i), "replica.catchup",
                                    HealthLevel::kOk, "recovered")) {
          return;
        }
      }
    }
    report_.oracle_checks++;
  }

  void EvaluateAllNodesHealth() {
    cluster_->writer()->EvaluateHealth(nullptr);
    for (int i = 0; i < cluster_->num_replicas(); i++) {
      cluster_->replica(i)->EvaluateHealth(nullptr);
    }
  }

  /// Evaluates `db`'s health plane, journals every transition of
  /// `detector` (other detectors may flap on run-dependent state and
  /// stay out of the journal), and requires one whose target level is
  /// `expect`. False (run failed) otherwise.
  bool ExpectHealthTransition(uint64_t e, const std::string& node, DB* db,
                              const std::string& detector, HealthLevel expect,
                              const char* phase) {
    std::vector<HealthTransition> transitions;
    Status s = db->EvaluateHealth(&transitions);
    if (!s.ok()) {
      Fail("health evaluation on " + node + ": " + s.ToString());
      return false;
    }
    bool seen = false;
    for (const auto& t : transitions) {
      if (t.detector != detector) {
        continue;
      }
      auto ev = journal_->NewEvent("health_transition");
      ev.Add("epoch", e)
          .Add("node", node)
          .Add("detector", t.detector)
          .Add("from", HealthLevelName(t.from))
          .Add("to", HealthLevelName(t.to))
          .Add("phase", phase);
      ev.Emit();
      if (t.to == expect) {
        seen = true;
      }
    }
    if (!seen) {
      Fail("health: " + node + "/" + detector + " did not transition to " +
           std::string(HealthLevelName(expect)) + " at " + phase);
      return false;
    }
    return true;
  }

  void RunOracleChecks(uint64_t e) {
    Status s = cluster_->CatchUpReplicas();
    if (!s.ok()) {
      Fail("replica catch-up: " + s.ToString());
      return;
    }
    const bool scan_epoch =
        cfg_.scan_every > 0 && e % static_cast<uint64_t>(cfg_.scan_every) == 0;

    if (!CheckOne(e, "writer", cluster_->writer(), scan_epoch)) {
      return;
    }
    for (int i = 0; i < cluster_->num_replicas(); i++) {
      if (!CheckOne(e, "replica-" + std::to_string(i), cluster_->replica(i),
                    scan_epoch)) {
        return;
      }
    }
  }

  /// Runs the read check (and optionally the scan check) for one node,
  /// journaling verdicts. False when the epoch must stop.
  bool CheckOne(uint64_t e, const std::string& who, DB* db, bool scan) {
    OracleVerdict v = oracle_.CheckReads(who, db, &check_rnd_,
                                         static_cast<size_t>(cfg_.sample_reads));
    report_.oracle_checks++;
    OracleEvent(e, who, "reads", v.ok, v.keys_checked);
    if (!v.ok) {
      Fail("oracle: " + v.detail);
      return false;
    }
    if (scan) {
      v = oracle_.CheckScan(who, db);
      report_.oracle_checks++;
      auto ev = journal_->NewEvent("oracle_check");
      ev.Add("epoch", e)
          .Add("who", who)
          .Add("kind", "scan")
          .Add("ok", v.ok)
          .Add("keys", v.keys_checked)
          .Add("model_hash", oracle_.ModelHash());
      ev.Emit();
      if (!v.ok) {
        Fail("oracle: " + v.detail);
        return false;
      }
    }
    return true;
  }

  void OracleEvent(uint64_t e, const std::string& who, const char* kind,
                   bool ok, uint64_t keys) {
    auto ev = journal_->NewEvent("oracle_check");
    ev.Add("epoch", e).Add("who", who).Add("kind", kind).Add("ok", ok).Add(
        "keys", keys);
    ev.Emit();
  }

  void RunCrashEpoch(uint64_t e) {
    // Driver-only writes past the barrier form the potential loss
    // window: no background flush runs (they fit well inside the write
    // buffer), so what survives is exactly the WAL's synced prefix.
    // Values are a few hundred bytes so the encrypted WAL buffer
    // flushes file-appended-but-unsynced bytes mid-window.
    for (int i = 0; i < kPostBarrierCrashOps; i++) {
      const std::string key =
          "k" + std::to_string(ops_rnd_.Uniform(cfg_.key_space));
      std::string value = "crash-" + std::to_string(e) + "-" +
                          std::to_string(i) + "-" +
                          std::to_string(ops_rnd_.Next64());
      value.resize(200 + ops_rnd_.Uniform(200), 'c');
      const bool sync = (i % 10 == 0);
      Status s = cluster_->Put(key, value, sync);
      if (!s.ok()) {
        Fail("pre-crash op: " + s.ToString());
        return;
      }
      oracle_.RecordPut(key, value, sync);
      report_.ops_acknowledged++;
    }

    Status s = cluster_->CrashAndRecoverWriter();
    if (!s.ok()) {
      Fail("crash recovery: " + s.ToString());
      return;
    }
    report_.crashes++;

    uint64_t cut = 0, lost = 0;
    OracleVerdict v = oracle_.CheckCrashRecovery(cluster_->writer(), &cut, &lost);
    report_.oracle_checks++;
    {
      auto ev = journal_->NewEvent("sim_crash");
      ev.Add("epoch", e)
          .Add("post_barrier_ops", static_cast<uint64_t>(kPostBarrierCrashOps))
          .Add("ok", v.ok)
          .Add("survived_ops", cut)
          .Add("lost_ops", lost);
      ev.Emit();
    }
    if (!v.ok) {
      Fail("oracle: " + v.detail);
      return;
    }

    // Bring the replicas to the recovered state and spot-check them.
    s = cluster_->CatchUpReplicas();
    if (!s.ok()) {
      Fail("post-crash replica catch-up: " + s.ToString());
      return;
    }
    for (int i = 0; i < cluster_->num_replicas(); i++) {
      const std::string who = "replica-" + std::to_string(i);
      OracleVerdict rv =
          oracle_.CheckReads(who, cluster_->replica(i), &check_rnd_, 8);
      report_.oracle_checks++;
      OracleEvent(e, who, "post_crash_reads", rv.ok, rv.keys_checked);
      if (!rv.ok) {
        Fail("oracle: " + rv.detail);
        return;
      }
    }
  }

  const SimConfig cfg_;
  SimClock clock_;
  ScopedClockOverride override_;
  SimScheduler sched_;
  Random ops_rnd_;
  Random faults_rnd_;
  Random check_rnd_;
  SimOracle oracle_;
  std::vector<std::string> health_classes_;
  std::unique_ptr<SimCluster> cluster_;
  std::unique_ptr<SimJournal> journal_;
  SimReport report_;
};

}  // namespace

SimReport RunSimulation(const SimConfig& config) {
  SimulationRun run(config);
  return run.Run();
}

}  // namespace sim
}  // namespace shield
