#include "sim/sim_clock.h"

#include <thread>

namespace shield {
namespace sim {

void SimClock::SleepForMicros(uint64_t micros) {
  sleep_calls_.fetch_add(1, std::memory_order_relaxed);
  if (micros > 0) {
    slept_micros_.fetch_add(micros, std::memory_order_relaxed);
    now_micros_.fetch_add(micros, std::memory_order_acq_rel);
  }
  // Yield so real background threads (flush/compaction workers) that
  // the sleeper is implicitly waiting on get CPU time. This is the only
  // real-time cost of a simulated sleep.
  std::this_thread::yield();
}

void SimClock::AdvanceTo(uint64_t when_micros) {
  uint64_t now = now_micros_.load(std::memory_order_acquire);
  while (when_micros > now &&
         !now_micros_.compare_exchange_weak(now, when_micros,
                                            std::memory_order_acq_rel)) {
    // `now` reloaded by compare_exchange on failure.
  }
}

}  // namespace sim
}  // namespace shield
