#ifndef SHIELD_SIM_SIM_SCHEDULER_H_
#define SHIELD_SIM_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "sim/sim_clock.h"
#include "util/random.h"

namespace shield {
namespace sim {

/// The simulator's single-threaded event loop: owns every simulated
/// timer/actor and interleaves them deterministically.
///
/// Tasks are scheduled at virtual timestamps and executed in
/// (timestamp, tiebreak, sequence) order on the caller's thread.
/// The tiebreak is drawn from a single seeded PRNG when the task is
/// scheduled, so tasks landing on the same virtual instant run in a
/// seeded-random — but fully reproducible — order. This is what makes a
/// fault onset racing a batch of writes replay identically from a
/// seed: the interleaving is a pure function of (seed, schedule),
/// never of wall-clock thread timing.
///
/// A running task may schedule further tasks (including at its own
/// timestamp — they are ordered behind it by sequence). RunUntilIdle
/// drains the queue, advancing the SimClock to each task's timestamp
/// before dispatching it.
///
/// Thread-compatibility: scheduling is mutex-protected, but Run* must
/// only be called from one driver thread at a time (the simulation's
/// main loop).
class SimScheduler {
 public:
  SimScheduler(SimClock* clock, uint64_t seed)
      : clock_(clock), rnd_(seed ^ 0x5c4ed01e) {}

  using Task = std::function<void()>;

  void ScheduleAt(uint64_t when_micros, std::string label, Task fn);
  void ScheduleAfter(uint64_t delay_micros, std::string label, Task fn) {
    ScheduleAt(clock_->NowMicros() + delay_micros, std::move(label),
               std::move(fn));
  }

  /// Runs queued tasks (in deterministic order) until the queue is
  /// empty. Returns the number of tasks executed.
  size_t RunUntilIdle();

  /// Runs tasks scheduled up to now + `virtual_micros`, then advances
  /// the clock to that point (an idle wait). Returns tasks executed.
  size_t RunFor(uint64_t virtual_micros);

  size_t pending() const;
  uint64_t now() { return clock_->NowMicros(); }
  SimClock* clock() { return clock_; }

  /// Labels of every executed task, in execution order — the
  /// scheduler's deterministic interleaving trace (compared verbatim
  /// by reproducibility tests).
  const std::vector<std::string>& executed_labels() const {
    return executed_;
  }

 private:
  struct Entry {
    uint64_t when;
    uint64_t tiebreak;
    uint64_t seq;
    std::string label;
    Task fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.tiebreak != b.tiebreak) return a.tiebreak > b.tiebreak;
      return a.seq > b.seq;
    }
  };

  /// Pops the next entry due at or before `limit`; false when none.
  bool PopDue(uint64_t limit, Entry* out);

  SimClock* const clock_;
  Random rnd_;
  uint64_t next_seq_ = 0;
  mutable std::mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<std::string> executed_;
};

}  // namespace sim
}  // namespace shield

#endif  // SHIELD_SIM_SIM_SCHEDULER_H_
