#ifndef SHIELD_SIM_SIM_EVENTS_H_
#define SHIELD_SIM_SIM_EVENTS_H_

#include <cstdint>
#include <string>
#include <utility>

#include "util/event_logger.h"

namespace shield {
namespace sim {

/// The simulator's determinism journal plus observability mirror.
///
/// Every simulation event is written twice from the same field set:
///
///  * into the journal — a raw JSON line with NO timestamp, containing
///    only logical facts (epoch numbers, seeded fault parameters, op
///    counts, oracle verdicts, content hashes). Two runs with the same
///    seed must produce byte-identical journals; this is the string the
///    reproducibility tests and `sim_runner --json` compare/print.
///
///  * through the shared EventLogger (when one is attached) — the same
///    fields plus the usual `ts_micros` (virtual time under the
///    simulator), so sim events land in the node's event log alongside
///    flush/compaction/scrub events for post-mortem timelines.
///
/// Keep wall-clock-dependent or compaction-shape-dependent values
/// (file numbers, byte counts of background work, attempt counts of
/// races) OUT of journal events — they vary run to run and would break
/// bit-for-bit reproducibility. Route such detail to the EventLogger
/// only, via a separate elog-only event.
class SimJournal {
 public:
  explicit SimJournal(EventLogger* elog = nullptr) : elog_(elog) {}

  class Event {
   public:
    template <typename T>
    Event& Add(const char* key, const T& value) {
      journal_.Add(key, value);
      if (mirrored_) {
        elog_writer_.Add(key, value);
      }
      return *this;
    }

    /// Appends the journal line and (if mirrored) emits to the
    /// EventLogger. The event must not be reused.
    void Emit() {
      parent_->Append(journal_.Finish());
      if (mirrored_) {
        parent_->elog_->Emit(&elog_writer_);
      }
    }

   private:
    friend class SimJournal;
    Event(SimJournal* parent, const char* name)
        : parent_(parent),
          mirrored_(parent->elog_ != nullptr && parent->elog_->enabled()),
          elog_writer_(mirrored_ ? parent->elog_->NewEvent(name)
                                 : JsonWriter()) {
      journal_.Add("event", name);
    }

    SimJournal* parent_;
    bool mirrored_;
    JsonWriter journal_;
    JsonWriter elog_writer_;
  };

  Event NewEvent(const char* name) { return Event(this, name); }

  /// The full deterministic journal: one JSON object per line.
  const std::string& text() const { return text_; }
  uint64_t lines() const { return lines_; }

 private:
  friend class Event;
  void Append(std::string line) {
    text_ += line;
    text_ += '\n';
    lines_++;
  }

  EventLogger* elog_;
  std::string text_;
  uint64_t lines_ = 0;
};

}  // namespace sim
}  // namespace shield

#endif  // SHIELD_SIM_SIM_EVENTS_H_
