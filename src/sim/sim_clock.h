#ifndef SHIELD_SIM_SIM_CLOCK_H_
#define SHIELD_SIM_SIM_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "util/clock.h"

namespace shield {
namespace sim {

/// Virtual time for the deterministic whole-cluster simulator.
///
/// SimClock is a logical clock: NowMicros() returns simulated time, and
/// SleepForMicros(d) *advances* simulated time by d and yields the CPU
/// instead of blocking. Idle waits therefore cost nothing — a retry
/// loop backing off through 10 simulated minutes of KDS outage
/// completes in microseconds of wall time — while every duration-based
/// mechanism in the stack (retry deadlines, partition windows, KDS
/// outage windows, network link reservation) still sees time move
/// forward consistently.
///
/// Any thread may sleep; concurrent sleepers each advance the shared
/// clock (time is a monotonic atomic counter, never a source of
/// blocking), so the simulation can never deadlock on time. The
/// deterministic event *order* of a simulated run comes from the
/// SimScheduler and the harness's seeded schedules, not from wall-clock
/// alignment — see DESIGN.md "Deterministic simulation".
///
/// Installed process-wide via ScopedClockOverride (util/clock.h) for
/// the lifetime of a simulated run, so every component that reads the
/// process clock — backoff sleeps, stall waits, stopwatch latencies,
/// event timestamps — runs on virtual time.
class SimClock final : public Clock {
 public:
  /// Starts at a large epoch so elapsed-time subtraction never wraps.
  static constexpr uint64_t kDefaultStartMicros = uint64_t{1} << 40;

  explicit SimClock(uint64_t start_micros = kDefaultStartMicros)
      : now_micros_(start_micros), start_micros_(start_micros) {}

  uint64_t NowMicros() override {
    return now_micros_.load(std::memory_order_acquire);
  }

  void SleepForMicros(uint64_t micros) override;

  /// Moves the clock forward to `when_micros` if it is ahead of now
  /// (never backwards). Used by the scheduler when dispatching timers.
  void AdvanceTo(uint64_t when_micros);

  void AdvanceBy(uint64_t micros) {
    if (micros > 0) {
      now_micros_.fetch_add(micros, std::memory_order_acq_rel);
    }
  }

  /// Virtual time elapsed since construction.
  uint64_t ElapsedMicros() { return NowMicros() - start_micros_; }

  uint64_t sleep_calls() const {
    return sleep_calls_.load(std::memory_order_relaxed);
  }
  /// Total virtual duration skipped by sleeps (the wall time a real
  /// clock would have burned blocking).
  uint64_t slept_micros() const {
    return slept_micros_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_micros_;
  const uint64_t start_micros_;
  std::atomic<uint64_t> sleep_calls_{0};
  std::atomic<uint64_t> slept_micros_{0};
};

}  // namespace sim
}  // namespace shield

#endif  // SHIELD_SIM_SIM_CLOCK_H_
