#include "sim/sim_scheduler.h"

#include <limits>
#include <utility>

namespace shield {
namespace sim {

void SimScheduler::ScheduleAt(uint64_t when_micros, std::string label,
                              Task fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.when = when_micros;
  e.tiebreak = rnd_.Next64();
  e.seq = next_seq_++;
  e.label = std::move(label);
  e.fn = std::move(fn);
  queue_.push(std::move(e));
}

bool SimScheduler::PopDue(uint64_t limit, Entry* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty() || queue_.top().when > limit) {
    return false;
  }
  *out = queue_.top();
  queue_.pop();
  executed_.push_back(out->label);
  return true;
}

size_t SimScheduler::RunUntilIdle() {
  size_t ran = 0;
  Entry e;
  while (PopDue(std::numeric_limits<uint64_t>::max(), &e)) {
    clock_->AdvanceTo(e.when);
    e.fn();
    ran++;
  }
  return ran;
}

size_t SimScheduler::RunFor(uint64_t virtual_micros) {
  const uint64_t until = clock_->NowMicros() + virtual_micros;
  size_t ran = 0;
  Entry e;
  while (PopDue(until, &e)) {
    clock_->AdvanceTo(e.when);
    e.fn();
    ran++;
  }
  clock_->AdvanceTo(until);
  return ran;
}

size_t SimScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace sim
}  // namespace shield
