#include "sim/sim_oracle.h"

#include <algorithm>
#include <cstring>
#include <memory>

#include "lsm/iterator.h"
#include "util/crc32c.h"

namespace shield {
namespace sim {

namespace {

// One key/value pair folded into an order-independent hash: hash each
// entry independently (with length prefixes so ("ab","c") != ("a","bc"))
// and sum. Addition commutes, so iteration order does not matter.
uint64_t HashEntry(const std::string& key, const std::string& value) {
  char sizes[8];
  const uint32_t ks = static_cast<uint32_t>(key.size());
  const uint32_t vs = static_cast<uint32_t>(value.size());
  std::memcpy(sizes, &ks, 4);
  std::memcpy(sizes + 4, &vs, 4);
  uint32_t c = crc32c::Value(sizes, 8);
  c = crc32c::Extend(c, key.data(), key.size());
  c = crc32c::Extend(c, value.data(), value.size());
  // Spread the 32-bit CRC across 64 bits so summed collisions are
  // vanishingly unlikely.
  uint64_t h = c;
  h *= 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  return h;
}

uint64_t HashMap(const std::map<std::string, std::string>& m) {
  uint64_t sum = 0x517e1d00ULL + m.size();
  for (const auto& kv : m) {
    sum += HashEntry(kv.first, kv.second);
  }
  return sum;
}

}  // namespace

void SimOracle::RecordPut(const std::string& key, const std::string& value,
                          bool synced) {
  pending_.push_back(Op{key, value, /*is_delete=*/false, synced});
  latest_[key] = value;
  recent_keys_.push_back(key);
}

void SimOracle::RecordDelete(const std::string& key, bool synced) {
  pending_.push_back(Op{key, std::string(), /*is_delete=*/true, synced});
  latest_.erase(key);
  recent_keys_.push_back(key);
}

void SimOracle::MarkDurableBarrier() {
  barrier_state_ = latest_;
  pending_.clear();
  recent_keys_.clear();
}

bool SimOracle::Expect(const std::string& key, std::string* value) const {
  auto it = latest_.find(key);
  if (it == latest_.end()) {
    return false;
  }
  if (value != nullptr) {
    *value = it->second;
  }
  return true;
}

uint64_t SimOracle::ModelHash() const { return HashMap(latest_); }

OracleVerdict SimOracle::CheckReads(const std::string& who, DB* db,
                                    Random* rnd, size_t sample) const {
  OracleVerdict v;
  // Build the probe set: seeded picks biased toward keys touched since
  // the last barrier (where staleness bugs live), padded with keys from
  // the whole model, plus one key that must not exist.
  std::vector<std::string> probes;
  if (!recent_keys_.empty()) {
    const size_t recent_n = std::min(sample - sample / 3, recent_keys_.size());
    for (size_t i = 0; i < recent_n; i++) {
      probes.push_back(
          recent_keys_[rnd->Uniform(static_cast<int>(recent_keys_.size()))]);
    }
  }
  if (!latest_.empty()) {
    while (probes.size() < sample) {
      auto it = latest_.begin();
      std::advance(it, rnd->Uniform(static_cast<int>(latest_.size())));
      probes.push_back(it->first);
    }
  }
  probes.push_back("~absent~/" + std::to_string(rnd->Next64()));

  ReadOptions ropts;
  for (const auto& key : probes) {
    std::string got;
    Status s = db->Get(ropts, key, &got);
    std::string want;
    const bool present = Expect(key, &want);
    v.keys_checked++;
    if (present) {
      if (s.IsNotFound()) {
        v.ok = false;
        v.detail = who + ": Get(" + key + ") lost (expected " +
                   std::to_string(want.size()) + "B value)";
        return v;
      }
      if (!s.ok()) {
        v.ok = false;
        v.detail = who + ": Get(" + key + ") error: " + s.ToString();
        return v;
      }
      if (got != want) {
        v.ok = false;
        v.detail = who + ": Get(" + key + ") stale/wrong value (" +
                   std::to_string(got.size()) + "B != expected " +
                   std::to_string(want.size()) + "B)";
        return v;
      }
    } else {
      if (s.ok()) {
        v.ok = false;
        v.detail = who + ": Get(" + key + ") phantom (expected NotFound)";
        return v;
      }
      if (!s.IsNotFound()) {
        v.ok = false;
        v.detail = who + ": Get(" + key + ") error: " + s.ToString();
        return v;
      }
    }
  }

  // Same probe set through MultiGet: must agree with the model (and
  // therefore with the sequential Gets above).
  std::vector<Slice> keys;
  keys.reserve(probes.size());
  for (const auto& p : probes) {
    keys.push_back(Slice(p));
  }
  std::vector<std::string> values;
  std::vector<Status> statuses = db->MultiGet(ropts, keys, &values);
  for (size_t i = 0; i < probes.size(); i++) {
    std::string want;
    const bool present = Expect(probes[i], &want);
    v.keys_checked++;
    if (present) {
      if (!statuses[i].ok() || values[i] != want) {
        v.ok = false;
        v.detail = who + ": MultiGet(" + probes[i] + ") " +
                   (statuses[i].ok() ? "wrong value" : statuses[i].ToString());
        return v;
      }
    } else if (!statuses[i].IsNotFound()) {
      v.ok = false;
      v.detail = who + ": MultiGet(" + probes[i] + ") expected NotFound, got " +
                 statuses[i].ToString();
      return v;
    }
  }
  return v;
}

OracleVerdict SimOracle::CheckScan(const std::string& who, DB* db) const {
  OracleVerdict v;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  auto expect = latest_.begin();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    v.keys_checked++;
    if (expect == latest_.end()) {
      v.ok = false;
      v.detail = who + ": scan yielded extra key " + it->key().ToString();
      return v;
    }
    if (it->key().ToString() != expect->first) {
      v.ok = false;
      v.detail = who + ": scan expected key " + expect->first + ", got " +
                 it->key().ToString();
      return v;
    }
    if (it->value().ToString() != expect->second) {
      v.ok = false;
      v.detail = who + ": scan wrong value for key " + expect->first;
      return v;
    }
    ++expect;
  }
  if (!it->status().ok()) {
    v.ok = false;
    v.detail = who + ": scan error: " + it->status().ToString();
    return v;
  }
  if (expect != latest_.end()) {
    v.ok = false;
    v.detail = who + ": scan missing key " + expect->first;
    return v;
  }
  return v;
}

Status SimOracle::ScanAll(DB* db, std::map<std::string, std::string>* out) {
  out->clear();
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    (*out)[it->key().ToString()] = it->value().ToString();
  }
  return it->status();
}

OracleVerdict SimOracle::CheckCrashRecovery(DB* db, uint64_t* cut_ops,
                                            uint64_t* lost_ops) {
  OracleVerdict v;
  std::map<std::string, std::string> observed;
  Status s = ScanAll(db, &observed);
  if (!s.ok()) {
    v.ok = false;
    v.detail = "crash-recovery scan error: " + s.ToString();
    return v;
  }
  v.keys_checked = observed.size();

  // The earliest legal cut is after the last synced pending op (synced
  // writes must survive a crash); the latest is the full pending list.
  size_t min_cut = 0;
  for (size_t i = 0; i < pending_.size(); i++) {
    if (pending_[i].synced) {
      min_cut = i + 1;
    }
  }

  // Walk the cuts from the barrier forward, maintaining state and a
  // count of keys where state and observation disagree — O(ops + keys)
  // instead of rebuilding the map per cut.
  std::map<std::string, std::string> state = barrier_state_;
  size_t mismatches = 0;
  for (const auto& kv : state) {
    auto it = observed.find(kv.first);
    if (it == observed.end() || it->second != kv.second) {
      mismatches++;
    }
  }
  for (const auto& kv : observed) {
    if (state.find(kv.first) == state.end()) {
      mismatches++;
    }
  }

  auto mismatched = [&](const std::string& key) {
    auto st = state.find(key);
    auto ob = observed.find(key);
    if (st == state.end()) {
      return ob != observed.end();
    }
    return ob == observed.end() || ob->second != st->second;
  };

  size_t found_cut = pending_.size() + 1;  // sentinel: none
  if (mismatches == 0 && min_cut == 0) {
    found_cut = 0;
  }
  for (size_t i = 0; i < pending_.size(); i++) {
    const Op& op = pending_[i];
    const bool was_bad = mismatched(op.key);
    if (op.is_delete) {
      state.erase(op.key);
    } else {
      state[op.key] = op.value;
    }
    const bool now_bad = mismatched(op.key);
    if (was_bad && !now_bad) {
      mismatches--;
    } else if (!was_bad && now_bad) {
      mismatches++;
    }
    if (mismatches == 0 && i + 1 >= min_cut && found_cut > pending_.size()) {
      found_cut = i + 1;
      // Keep applying: if several cuts match we only need one, but we
      // must leave `state` == the adopted cut. Rebuild below instead.
      break;
    }
  }

  if (found_cut > pending_.size()) {
    v.ok = false;
    v.detail = "crash recovery is not a prefix cut of acknowledged history "
               "(pending=" +
               std::to_string(pending_.size()) +
               " min_cut=" + std::to_string(min_cut) +
               " observed_keys=" + std::to_string(observed.size()) + ")";
    return v;
  }

  if (cut_ops != nullptr) {
    *cut_ops = found_cut;
  }
  if (lost_ops != nullptr) {
    *lost_ops = pending_.size() - found_cut;
  }

  // Adopt the recovered state as the new durable truth; the lost
  // suffix was never acknowledged as durable.
  barrier_state_ = observed;
  latest_ = std::move(observed);
  pending_.clear();
  recent_keys_.clear();
  return v;
}

uint64_t SimOracle::ContentHash(DB* db) {
  std::map<std::string, std::string> all;
  if (!ScanAll(db, &all).ok()) {
    return 0;
  }
  return HashMap(all);
}

}  // namespace sim
}  // namespace shield
