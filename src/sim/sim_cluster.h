#ifndef SHIELD_SIM_SIM_CLUSTER_H_
#define SHIELD_SIM_SIM_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ds/compaction_worker.h"
#include "ds/storage_service.h"
#include "env/fault_injection_env.h"
#include "kds/failover_kds.h"
#include "kds/faulty_kds.h"
#include "kds/sim_kds.h"
#include "lsm/db.h"
#include "util/event_logger.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/trace.h"

namespace shield {
namespace sim {

struct SimClusterOptions {
  uint64_t seed = 1;

  /// Read-only DB instances sharing the writer's files over the
  /// storage service.
  int num_replicas = 2;

  std::string db_path = "/simdb";

  /// Simulated fabric between compute nodes and the storage server.
  uint64_t network_rtt_micros = 200;
  uint64_t network_bandwidth_bytes_per_sec = 1ull << 30;

  /// Simulated KDS service latency per request.
  uint64_t kds_latency_micros = 300;

  /// Writer memtable size; small so epochs of a few hundred ops
  /// exercise flush + compaction + DEK rotation.
  size_t write_buffer_size = 32 * 1024;

  /// Writer parallel-write-path knobs (the "write" fault profile sets
  /// these): hash-sharded memtable and pipelined-keystream encrypted
  /// WAL window. 1 / 0 = the plain single-shard, inline-keystream
  /// path. Replicas are read-only and unaffected.
  int memtable_shards = 1;
  size_t wal_pipeline_window = 0;

  /// Writer WAL record padding buckets
  /// (EncryptionOptions::wal_padding_buckets). The write campaign sets
  /// these to prove padded WALs recover and replicate identically
  /// under crash faults. Empty = no padding.
  std::vector<uint32_t> wal_padding_buckets;

  /// Shared info log for all nodes (event-log mirror). Null: no logs.
  std::shared_ptr<Logger> info_log;

  /// Front the writer's KDS with a FailoverKds over two endpoints:
  /// the (fault-injected) primary and a clean secondary, both over the
  /// same SimKds key store. Used by the rotation campaign to prove a
  /// rotation survives a primary-KDS outage longer than any retry
  /// deadline. Replicas and the compaction worker stay on the primary.
  bool use_failover_kds = false;

  /// Regression hook for the oracle's own test (tests/sim_test.cc):
  /// when true, CatchUpReplicas() silently skips the catch-up while
  /// reporting success — re-introducing the stale-replica bug the
  /// oracle exists to catch. Replica checks after the next barrier
  /// MUST fail; a run that passes with this flag set means the oracle
  /// is broken.
  bool inject_stale_replica_bug = false;

  /// Cluster observability plane: give every node a name and its own
  /// Statistics (per-node "shield.metrics" scrapes), and start one
  /// non-exclusive tracer per node — writer, replicas, offload worker,
  /// storage server — each writing a SHTRACE1 v2 file into trace_dir
  /// on the zero-cost backing store, so tracing never perturbs virtual
  /// time (journals stay bit-identical with this on or off).
  bool observability = false;
  std::string trace_dir = "/simtrace";
};

/// One whole SHIELD deployment inside a single process, built for the
/// deterministic simulator:
///
///   MemEnv (storage server's disk)
///     └─ FaultInjectionEnv        (seeded I/O faults, crash semantics)
///          └─ StorageService      (network sim + HDFS-style replica tee)
///               ├─ RemoteEnv → writer DB        (kShield, offloading)
///               ├─ RemoteEnv → replica DB × N   (DB::OpenReadOnly)
///               └─ server_env → RemoteCompactionWorker
///   SimKds (authorization, latency)
///     └─ FaultyKds                (seeded KDS outages/errors)
///
/// All driver-visible operations (Put/Delete/Flush/Compact and the
/// quiesce barrier) are wrapped in RunWithRetry with a seeded jitter
/// PRNG and the virtual clock, with a generous virtual deadline: under
/// virtual time every injected outage window self-heals during the
/// backoff sleeps, so each driver op deterministically succeeds even
/// when individual attempts fail. That per-op determinism of *outcome*
/// (not of attempt counts, which are never journaled) is what lets the
/// harness compare runs bit-for-bit.
class SimCluster {
 public:
  explicit SimCluster(const SimClusterOptions& options);
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  /// Builds the env/KDS stack, opens the writer, the worker and the
  /// replicas. Faults start disabled.
  Status Start();

  // --- Driver ops (retry-wrapped; OK means acknowledged) ------------
  Status Put(const std::string& key, const std::string& value, bool sync);
  Status Delete(const std::string& key, bool sync);
  Status FlushWriter();
  Status CompactAll();

  /// Durability + quiescence barrier: flushes the memtable, waits for
  /// background work to drain and for the error handler to return to
  /// "active". Call with faults healed, or this may retry for a long
  /// (virtual) time.
  Status Quiesce();

  /// Re-syncs every replica to the writer's latest persisted state.
  /// Subject to the inject_stale_replica_bug hook (see options).
  Status CatchUpReplicas();

  /// Closes and reopens all replicas (drops their table-cache handles;
  /// required after a scrub repair rewrote an SST in place).
  Status RestartReplicas();

  /// Flips one bit in a seeded live SST of the writer (raw draws are
  /// reduced modulo file count/size here so the caller's PRNG stream
  /// stays independent of compaction shape). NotFound when the writer
  /// has no SSTs yet.
  Status BitFlipSomeSst(uint64_t raw_pick, uint64_t raw_bit);

  /// On-demand scrub of the writer (detect + repair from the storage
  /// replica).
  Status VerifyAndRepair();

  /// Online DEK rotation on the writer (at most `max_files` files when
  /// non-zero). Retried like every driver op; rotation resumes from
  /// its persisted manifest, so retries are idempotent.
  Status RotateWriterDeks(uint64_t max_files, RotateResult* result);

  /// Blocks (virtual time) until the writer reports no rotation
  /// running and none pending — i.e. a resume-at-reopen rotation has
  /// finished.
  Status WaitRotationIdle();

  /// DEK ids (hex, sorted) embedded in the writer's live SST headers,
  /// read physically beneath the storage service.
  Status CollectWriterSstDekIds(std::vector<std::string>* dek_ids);

  /// Kills the writer at the storage level (drop unsynced bytes),
  /// destroys the DB object, and recovers it with DB::Open. Faults
  /// must be healed first. Replicas stay up (their state is checked —
  /// and re-synced — by the harness afterwards).
  Status CrashAndRecoverWriter();

  // --- Fault surfaces (the harness composes fault epochs from these)
  FaultInjectionEnv* fault_env() { return fault_env_.get(); }
  FaultyKds* faulty_kds() { return faulty_kds_.get(); }
  NetworkSimulator* network() { return service_->network(); }
  SimKds* sim_kds() { return sim_kds_.get(); }
  /// Non-null only with SimClusterOptions::use_failover_kds.
  FailoverKds* failover_kds() { return failover_kds_.get(); }

  /// Disables every probabilistic fault source and heals all active
  /// outage/partition windows.
  void HealAllFaults();

  // --- Introspection ------------------------------------------------
  DB* writer() { return writer_.get(); }
  int num_replicas() const { return static_cast<int>(replicas_.size()); }
  DB* replica(int i) { return replicas_[i].get(); }
  EventLogger* event_logger() { return event_logger_.get(); }
  StorageService* storage() { return service_.get(); }

  // --- Observability plane (SimClusterOptions::observability) -------

  /// Ends every node's trace (draining buffers to the backing store)
  /// and returns each trace file as (file name, raw SHTRACE1 bytes).
  /// Restarted nodes contribute one file per incarnation.
  Status CollectTraceFiles(
      std::vector<std::pair<std::string, std::string>>* out);

  /// Scrapes each DB node's "shield.metrics" property:
  /// (node name, Prometheus text). Worker/storage nodes have no
  /// registry and are not listed.
  Status CollectNodeMetrics(
      std::vector<std::pair<std::string, std::string>>* out);

 private:
  Options WriterOptions();
  Options ReplicaOptions(int i);
  Status OpenReplica(int i);
  Status RunOp(const char* what, const std::function<Status()>& op);
  /// Starts a per-node non-exclusive trace on `db` (no-op without
  /// observability). Each call gets a fresh incarnation-numbered file.
  void MaybeStartTrace(DB* db, const std::string& node);

  SimClusterOptions options_;
  RetryPolicy driver_policy_;
  Random retry_rnd_;

  std::unique_ptr<Env> backing_;
  std::unique_ptr<FaultInjectionEnv> fault_env_;
  std::unique_ptr<StorageService> service_;
  std::unique_ptr<Env> writer_env_;
  std::vector<std::unique_ptr<Env>> replica_envs_;

  std::shared_ptr<SimKds> sim_kds_;
  std::shared_ptr<FaultyKds> faulty_kds_;
  std::shared_ptr<FaultyKds> secondary_kds_;
  std::shared_ptr<FailoverKds> failover_kds_;

  std::unique_ptr<RemoteCompactionWorker> worker_;
  /// Wraps worker_ so offload dispatch/result round-trips pay the
  /// simulated fabric RTT: the writer-side ds.offload_rpc span is then
  /// strictly longer than the worker's ds.compaction_rpc span, and
  /// stitched traces attribute that gap as per-hop network latency.
  std::unique_ptr<CompactionService> fabric_compaction_;
  std::unique_ptr<EventLogger> event_logger_;

  /// Per-node tracers for the nodes that are not DBs (the offload
  /// worker binds per-job, the storage service per-fetch). DB nodes
  /// own their tracer via DB::StartTrace.
  std::unique_ptr<Tracer> worker_tracer_;
  std::unique_ptr<Tracer> storage_tracer_;
  /// Distinguishes trace files across node restarts (one SHTRACE1
  /// file per node incarnation).
  int trace_incarnation_ = 0;

  std::unique_ptr<DB> writer_;
  std::vector<std::unique_ptr<DB>> replicas_;
};

}  // namespace sim
}  // namespace shield

#endif  // SHIELD_SIM_SIM_CLUSTER_H_
