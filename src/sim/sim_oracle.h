#ifndef SHIELD_SIM_SIM_ORACLE_H_
#define SHIELD_SIM_SIM_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lsm/db.h"
#include "util/random.h"
#include "util/status.h"

namespace shield {
namespace sim {

/// Result of one oracle check.
struct OracleVerdict {
  bool ok = true;
  uint64_t keys_checked = 0;
  /// First divergence, for the failure report (empty when ok).
  std::string detail;
};

/// Shadow-model oracle for the deterministic simulator.
///
/// The oracle tracks every *acknowledged* write (the cluster driver
/// records a Put/Delete only after the writer returned OK) and decides
/// whether observed reads are linearizable against that history. The
/// cluster is single-writer, and the harness only reads at quiesced
/// barriers, so linearizability reduces to three obligations:
///
///  1. Writer reads (Get/MultiGet/iterators) must return exactly the
///     latest acknowledged value for every key — no lost, stale, or
///     phantom data.
///  2. Replica reads after a successful catch-up must match the same
///     latest-state map (the writer's WAL is appended before any ack,
///     and catch-up replays manifest + WAL, so a correct replica is
///     never behind an acknowledged write at a barrier).
///  3. After a crash + recovery, the surviving state must be a
///     *prefix cut* of the acknowledged history: some point C at or
///     after the last durable barrier (and at or after every synced
///     write) such that every key holds exactly its latest value among
///     ops[0..C). Crash loss is only legal as an un-synced suffix —
///     never a hole in the middle, never a resurrected delete.
///
/// After a successful crash check the oracle adopts the recovered
/// state as the new truth (the lost suffix was never durable), so the
/// simulation continues seamlessly.
class SimOracle {
 public:
  SimOracle() = default;

  // --- Acknowledged-write history -----------------------------------
  void RecordPut(const std::string& key, const std::string& value,
                 bool synced);
  void RecordDelete(const std::string& key, bool synced);

  /// Everything acknowledged so far is now durable (the driver flushed
  /// the writer and quiesced background work). Crash cuts can no
  /// longer land before this point.
  void MarkDurableBarrier();

  // --- Expected state -----------------------------------------------
  /// True if `key` should be present, filling `*value`.
  bool Expect(const std::string& key, std::string* value) const;
  const std::map<std::string, std::string>& latest() const { return latest_; }
  size_t model_size() const { return latest_.size(); }
  /// Order-independent CRC over the expected key/value map.
  uint64_t ModelHash() const;
  /// Keys written (put or deleted) since the last durable barrier.
  const std::vector<std::string>& recent_keys() const { return recent_keys_; }

  // --- Checks -------------------------------------------------------
  /// Point-reads `sample` seeded keys (biased toward recent writes)
  /// plus one definitely-absent key via Get, then re-reads the batch
  /// via MultiGet; both must agree with the model.
  OracleVerdict CheckReads(const std::string& who, DB* db, Random* rnd,
                           size_t sample) const;

  /// Full forward scan: the iterator must yield exactly the model's
  /// keys, in order, with the model's values.
  OracleVerdict CheckScan(const std::string& who, DB* db) const;

  /// Prefix-cut crash check (obligation 3). On success adopts the
  /// recovered state; `*cut_ops` (optional) receives how many
  /// post-barrier ops survived and `*lost_ops` how many were cut.
  OracleVerdict CheckCrashRecovery(DB* db, uint64_t* cut_ops,
                                   uint64_t* lost_ops);

  /// Order-independent CRC of the DB's full contents (for the
  /// determinism journal; equals ModelHash() whenever CheckScan
  /// passes).
  static uint64_t ContentHash(DB* db);

 private:
  struct Op {
    std::string key;
    std::string value;
    bool is_delete;
    bool synced;
  };

  static Status ScanAll(DB* db, std::map<std::string, std::string>* out);

  /// Durable truth at the last barrier.
  std::map<std::string, std::string> barrier_state_;
  /// Acknowledged ops since the barrier, in ack order.
  std::vector<Op> pending_;
  /// barrier_state_ + pending_ applied (what non-crash reads must see).
  std::map<std::string, std::string> latest_;
  std::vector<std::string> recent_keys_;
};

}  // namespace sim
}  // namespace shield

#endif  // SHIELD_SIM_SIM_ORACLE_H_
