#include "util/perf_context.h"

#include <cinttypes>
#include <cstdio>

namespace shield {

namespace {
thread_local PerfContext t_perf_context;
thread_local PerfLevel t_perf_level = PerfLevel::kEnableCount;
thread_local bool t_perf_auto_reset = false;
}  // namespace

void SetPerfLevel(PerfLevel level) { t_perf_level = level; }

PerfLevel GetPerfLevel() { return t_perf_level; }

void SetPerfAutoReset(bool enabled) { t_perf_auto_reset = enabled; }

bool GetPerfAutoReset() { return t_perf_auto_reset; }

PerfContext* GetPerfContext() { return &t_perf_context; }

std::string PerfContext::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "block_read_count=%" PRIu64 " block_read_bytes=%" PRIu64
      " block_read_micros=%" PRIu64 " block_cache_hit_count=%" PRIu64
      " readahead_bytes=%" PRIu64 " readahead_hit_count=%" PRIu64
      " multiget_keys=%" PRIu64 " multiget_batches=%" PRIu64
      " encrypt_bytes=%" PRIu64 " encrypt_micros=%" PRIu64
      " decrypt_bytes=%" PRIu64 " decrypt_micros=%" PRIu64
      " hmac_compute_count=%" PRIu64 " hmac_verify_count=%" PRIu64
      " hmac_micros=%" PRIu64 " iter_seek_count=%" PRIu64
      " iter_seek_micros=%" PRIu64 " kds_request_count=%" PRIu64
      " kds_wait_micros=%" PRIu64 " memtable_insert_micros=%" PRIu64
      " wal_write_micros=%" PRIu64 " write_stall_micros=%" PRIu64
      " write_group_size=%" PRIu64 " wal_keystream_stall_micros=%" PRIu64,
      block_read_count, block_read_bytes, block_read_micros,
      block_cache_hit_count, readahead_bytes, readahead_hit_count,
      multiget_keys, multiget_batches, encrypt_bytes, encrypt_micros,
      decrypt_bytes,
      decrypt_micros, hmac_compute_count, hmac_verify_count, hmac_micros,
      iter_seek_count, iter_seek_micros,
      kds_request_count, kds_wait_micros, memtable_insert_micros,
      wal_write_micros, write_stall_micros, write_group_size,
      wal_keystream_stall_micros);
  return std::string(buf);
}

}  // namespace shield
