#include "util/logger.h"

namespace shield {

namespace {

const char* const kLevelNames[] = {"DEBUG", "INFO", "WARN", "ERROR", "FATAL"};

class NullLogger final : public Logger {
 public:
  NullLogger() : Logger(InfoLogLevel::kFatal) {}
  void Logv(InfoLogLevel /*level*/, const char* /*format*/,
            va_list /*ap*/) override {}
  void LogRaw(InfoLogLevel /*level*/, const Slice& /*line*/) override {}
};

}  // namespace

const char* InfoLogLevelName(InfoLogLevel level) {
  const int i = static_cast<int>(level);
  if (i < 0 || i >= static_cast<int>(InfoLogLevel::kNumInfoLogLevels)) {
    return "UNKNOWN";
  }
  return kLevelNames[i];
}

void Log(InfoLogLevel level, Logger* logger, const char* format, ...) {
  if (logger == nullptr || level < logger->GetInfoLogLevel()) {
    return;
  }
  va_list ap;
  va_start(ap, format);
  logger->Logv(level, format, ap);
  va_end(ap);
}

void Log(Logger* logger, const char* format, ...) {
  if (logger == nullptr ||
      InfoLogLevel::kInfo < logger->GetInfoLogLevel()) {
    return;
  }
  va_list ap;
  va_start(ap, format);
  logger->Logv(InfoLogLevel::kInfo, format, ap);
  va_end(ap);
}

std::shared_ptr<Logger> NewNullLogger() {
  return std::make_shared<NullLogger>();
}

}  // namespace shield
