#include "util/status.h"

namespace shield {

Status::Status(Code code, const Slice& msg, const Slice& msg2) : code_(code) {
  msg_.assign(msg.data(), msg.size());
  if (!msg2.empty()) {
    msg_.append(": ");
    msg_.append(msg2.data(), msg2.size());
  }
}

std::string Status::ToString() const {
  const char* type;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kNotSupported:
      type = "NotSupported: ";
      break;
    case Code::kInvalidArgument:
      type = "InvalidArgument: ";
      break;
    case Code::kIOError:
      type = "IOError: ";
      break;
    case Code::kPermissionDenied:
      type = "PermissionDenied: ";
      break;
    case Code::kBusy:
      type = "Busy: ";
      break;
    case Code::kTryAgain:
      type = "TryAgain: ";
      break;
    default:
      type = "Unknown: ";
      break;
  }
  return std::string(type) + msg_;
}

}  // namespace shield
