#ifndef SHIELD_UTIL_STATISTICS_H_
#define SHIELD_UTIL_STATISTICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "util/clock.h"
#include "util/histogram.h"
#include "util/metrics.h"

namespace shield {

/// Named monotonic counters. Every component of the engine reports
/// into this single flat namespace so per-component costs (crypto
/// bytes, KDS round trips, WAL/SST/compaction I/O — the paper's
/// Table 3 split) can be cross-checked against each other and against
/// the per-operation PerfContext. Names are dotted and stable: bench
/// JSON reports and the `shield.stats` property key off them.
enum class Tickers : uint32_t {
  // Physical I/O, split by file kind (fed by the counting Env).
  kIoWalReadBytes = 0,
  kIoWalWriteBytes,
  kIoWalReadOps,
  kIoWalWriteOps,
  kIoSstReadBytes,
  kIoSstWriteBytes,
  kIoSstReadOps,
  kIoSstWriteOps,
  kIoManifestReadBytes,
  kIoManifestWriteBytes,
  kIoManifestReadOps,
  kIoManifestWriteOps,
  kIoOtherReadBytes,
  kIoOtherWriteBytes,
  kIoOtherReadOps,
  kIoOtherWriteOps,

  // Read-path prefetching (env/readahead_file.h). `bytes` counts what
  // was speculatively fetched ahead; `hit` counts reads served from the
  // prefetch buffer without touching storage; `miss` counts reads that
  // had to go to the file anyway (buffer cold, or a short prefetch
  // degraded the span).
  kIoReadaheadBytes,
  kIoReadaheadHit,
  kIoReadaheadMiss,

  // LSM engine.
  kLsmFlushBytesWritten,
  kLsmCompactionBytesRead,
  kLsmCompactionBytesWritten,
  kLsmBlockCacheHit,
  kLsmBlockCacheMiss,
  kLsmStallMicros,
  // MultiGet batching: keys asked across all MultiGet calls, and
  // coalesced multi-block fetches issued (each batch is one storage
  // round trip that would have been several under sequential Gets).
  kLsmMultiGetKeys,
  kLsmMultiGetBatches,

  // Crypto layer (counted at the file wrappers, per direction and
  // per cipher kind).
  kCryptoBytesEncrypted,
  kCryptoBytesDecrypted,
  kCryptoAesBytes,
  kCryptoChaCha20Bytes,
  kCryptoHmacComputed,
  kCryptoHmacVerified,
  kCryptoHmacFailures,

  // SHIELD key plane.
  kShieldDekCreated,
  kShieldDekDestroyed,
  kShieldDekCacheHit,
  kShieldDekCacheMiss,
  kShieldChunkEncryptShards,
  kShieldWalBufferDrains,

  // KDS traffic.
  kKdsRequests,
  kKdsRetries,
  kKdsFailures,

  // Disaggregated-storage fabric (simulated network).
  kDsNetworkBytes,
  kDsNetworkRequests,
  kDsNetworkWaitMicros,

  // Observability plane (util/event_logger.h, util/trace.h).
  kShieldEventsEmitted,
  kIoTraceSpans,
  kIoTraceBytes,
  kIoTraceDropped,

  // Key lifecycle: online DEK rotation (lsm/db_rotation.cc), deferred
  // KDS deletes (shield/dek_manager.cc), encrypted backup
  // (lsm/db_backup.cc).
  kShieldRotationPasses,
  kShieldRotationFilesRewritten,
  kShieldRotationBytesRewritten,
  kShieldRotationSkippedStale,
  kShieldDekDeleteDeferred,
  kShieldBackupFiles,
  kShieldBackupBytes,

  // Parallel write path (lsm/db_write.cc, shield/file_crypto.cc):
  // group-commit shape and WAL keystream-pipeline health.
  kLsmWriteGroups,
  kLsmWriteGroupSize,
  kLsmWalPipelineStallMicros,
  kShieldWalKeystreamBytes,

  // WAL leakage countermeasure (lsm/log_writer.cc): padded logical
  // records and total pad overhead (envelope + zeros + block-roll
  // fill) added so on-wire record sizes come from the bucket set.
  kShieldWalPaddingRecords,
  kShieldWalPaddingBytes,

  // Bulk data lifecycle (lsm/db_ingest.cc): external SSTs ingested
  // (files/physical bytes) and range-dump output (files/physical
  // bytes, DEKs re-wrapped for the dump target identity).
  kLsmIngestFiles,
  kLsmIngestBytes,
  kShieldDumpFiles,
  kShieldDumpBytes,

  kTickerMax,  // not a ticker
};

constexpr size_t kNumTickers = static_cast<size_t>(Tickers::kTickerMax);

/// Stable dotted name for each ticker (e.g. "io.sst.write.bytes").
const char* TickerName(Tickers ticker);

/// Timer histograms (values in microseconds unless noted).
enum class Histograms : uint32_t {
  kDbGetMicros = 0,
  kDbMultiGetMicros,
  kDbWriteMicros,
  kDbSeekMicros,
  kDbFlushMicros,
  kDbCompactRangeMicros,
  kFlushMicros,
  kCompactionMicros,
  kSstReadMicros,
  kKdsLatencyMicros,
  kHistogramMax,  // not a histogram
};

constexpr size_t kNumHistograms = static_cast<size_t>(Histograms::kHistogramMax);

const char* HistogramName(Histograms histogram);

/// Process-wide metrics registry: one atomic counter per ticker plus
/// one Histogram per timer. Shared by every layer that the Options
/// object reaches (Env wrapper, crypto file layers, KDS, DS fabric,
/// LSM internals). All methods are thread safe; tickers use relaxed
/// atomics (they are statistically merged counts, not synchronization).
class Statistics {
 public:
  Statistics() {
    for (auto& t : tickers_) t.store(0, std::memory_order_relaxed);
    for (auto& w : windowed_) w.store(nullptr, std::memory_order_relaxed);
    for (auto& c : ticker_counters_)
      c.store(nullptr, std::memory_order_relaxed);
  }

  void RecordTick(Tickers ticker, uint64_t count = 1) {
    tickers_[static_cast<size_t>(ticker)].fetch_add(count,
                                                    std::memory_order_relaxed);
  }

  uint64_t GetTickerCount(Tickers ticker) const {
    return tickers_[static_cast<size_t>(ticker)].load(
        std::memory_order_relaxed);
  }

  void MeasureTime(Histograms histogram, uint64_t micros) {
    histograms_[static_cast<size_t>(histogram)].Add(micros);
    // The in-flight guard makes the registry-owned histogram safe to
    // use: AttachRegistry(nullptr) nulls windowed_ and then waits for
    // this count to drain, so a pointer loaded inside the guard stays
    // alive for the duration of Record. Seq_cst on both the counter
    // and the load keeps the load from moving above the increment.
    adapter_inflight_.fetch_add(1);
    WindowedHistogram* w = windowed_[static_cast<size_t>(histogram)].load();
    if (w != nullptr) {
      w->Record(micros);
    }
    adapter_inflight_.fetch_sub(1);
  }

  const Histogram& GetHistogram(Histograms histogram) const {
    return histograms_[static_cast<size_t>(histogram)];
  }

  /// Zeroes all tickers and clears all histograms. Not atomic across
  /// counters; meant for bench warm-up boundaries, not concurrent use.
  void Reset();

  /// Human-readable dump of every ticker and non-empty histogram.
  std::string ToString() const;

  /// Prometheus text exposition (version 0.0.4): tickers become
  /// `shield_<name>_total` counters (dots → underscores, label values
  /// escaped), histograms become one `shield_op_latency_micros` summary
  /// family labeled by op. With a registry attached the registry's full
  /// contents are rendered instead (same families plus node labels,
  /// sliding-window quantiles, and whatever gauges the owner added).
  /// Served by DB::GetProperty("shield.metrics").
  std::string ToPrometheusText() const;

  /// Adapter onto the labeled MetricsRegistry: every ticker gets a
  /// `shield_<name>` counter labeled {node, subsystem} and every timer
  /// forwards live samples into a `shield_op_latency_micros` windowed
  /// histogram labeled {node, op} — no call site changes. `registry`
  /// must outlive this object or a later AttachRegistry(nullptr, "").
  /// Detaching (null registry) publishes the null pointers and then
  /// blocks until every in-flight adapter use (a windowed MeasureTime
  /// sample, SyncRegistry, an attached ToPrometheusText) has drained,
  /// so once it returns the registry may be destroyed even while other
  /// threads keep using this Statistics object (their samples simply
  /// stop mirroring).
  void AttachRegistry(MetricsRegistry* registry, const std::string& node);

  /// Copies current ticker values into the attached registry's
  /// counters (histogram samples stream live and need no sync).
  void SyncRegistry() const;

  MetricsRegistry* registry() const {
    return registry_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<uint64_t> tickers_[kNumTickers];
  Histogram histograms_[kNumHistograms];

  // Adapter state (null until AttachRegistry). All pointers are
  // atomic: detach rewrites them while MeasureTime / SyncRegistry /
  // ToPrometheusText read them from other threads. adapter_inflight_
  // counts threads currently dereferencing registry-owned memory;
  // detach spins on it so the registry can be freed afterwards.
  std::atomic<MetricsRegistry*> registry_{nullptr};
  std::atomic<WindowedHistogram*> windowed_[kNumHistograms];
  std::atomic<Counter*> ticker_counters_[kNumTickers];
  mutable std::atomic<uint64_t> adapter_inflight_{0};
};

/// Null-safe helpers so call sites do not have to test for a
/// configured statistics object.
inline void RecordTick(Statistics* stats, Tickers ticker, uint64_t count = 1) {
  if (stats != nullptr) stats->RecordTick(ticker, count);
}

inline void MeasureTime(Statistics* stats, Histograms histogram,
                        uint64_t micros) {
  if (stats != nullptr) stats->MeasureTime(histogram, micros);
}

/// Scoped timer feeding a histogram (and optionally an elapsed-micros
/// out-param). Reads the process clock (util/clock.h), so under the
/// deterministic simulator it measures virtual time. No-ops entirely
/// when `stats` is null and `elapsed` is null.
class StopWatch {
 public:
  StopWatch(Statistics* stats, Histograms histogram,
            uint64_t* elapsed = nullptr)
      : stats_(stats),
        histogram_(histogram),
        elapsed_(elapsed),
        start_(stats != nullptr || elapsed != nullptr ? NowMicros() : 0) {}

  ~StopWatch() {
    if (stats_ == nullptr && elapsed_ == nullptr) return;
    uint64_t micros = NowMicros() - start_;
    if (elapsed_ != nullptr) *elapsed_ = micros;
    if (stats_ != nullptr) stats_->MeasureTime(histogram_, micros);
  }

  StopWatch(const StopWatch&) = delete;
  StopWatch& operator=(const StopWatch&) = delete;

 private:
  Statistics* stats_;
  Histograms histogram_;
  uint64_t* elapsed_;
  uint64_t start_;
};

/// Factory matching the RocksDB idiom: Options::statistics =
/// CreateDBStatistics().
std::shared_ptr<Statistics> CreateDBStatistics();

}  // namespace shield

#endif  // SHIELD_UTIL_STATISTICS_H_
