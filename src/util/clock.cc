#include "util/clock.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace shield {

namespace {

class RealClock final : public Clock {
 public:
  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  uint64_t NowNanos() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void SleepForMicros(uint64_t micros) override {
    if (micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
    }
  }
};

std::atomic<Clock*> g_system_clock{nullptr};

}  // namespace

Clock* Clock::Real() {
  static RealClock real;
  return &real;
}

Clock* SystemClock() {
  Clock* clock = g_system_clock.load(std::memory_order_acquire);
  return clock != nullptr ? clock : Clock::Real();
}

Clock* SwapSystemClock(Clock* clock) {
  return g_system_clock.exchange(clock, std::memory_order_acq_rel);
}

uint64_t NowMicros() { return SystemClock()->NowMicros(); }

uint64_t NowNanos() { return SystemClock()->NowNanos(); }

void SleepForMicros(uint64_t micros) { SystemClock()->SleepForMicros(micros); }

}  // namespace shield
