#ifndef SHIELD_UTIL_THREAD_POOL_H_
#define SHIELD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shield {

/// A fixed-size worker pool with a FIFO queue. Used for background
/// flush/compaction jobs and for SHIELD's multi-threaded chunk
/// encryption.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Safe from any thread, including pool workers.
  void Schedule(std::function<void()> job);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle();

  size_t num_threads() const { return threads_.size(); }
  size_t QueueDepth();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_THREAD_POOL_H_
