#include "util/event_logger.h"

#include <cinttypes>
#include <cstdio>

#include "util/clock.h"

namespace shield {

void JsonWriter::AppendEscaped(std::string* out, const Slice& value) {
  out->push_back('"');
  for (size_t i = 0; i < value.size(); i++) {
    const unsigned char c = static_cast<unsigned char>(value[i]);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void JsonWriter::AppendKey(const char* key) {
  if (!first_) {
    out_.push_back(',');
  }
  first_ = false;
  out_.push_back('"');
  out_.append(key);
  out_.append("\":");
}

JsonWriter& JsonWriter::Add(const char* key, const Slice& value) {
  AppendKey(key);
  AppendEscaped(&out_, value);
  return *this;
}

JsonWriter& JsonWriter::Add(const char* key, uint64_t value) {
  AppendKey(key);
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Add(const char* key, int64_t value) {
  AppendKey(key);
  char buf[24];
  snprintf(buf, sizeof(buf), "%" PRId64, value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Add(const char* key, double value) {
  AppendKey(key);
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6g", value);
  out_.append(buf);
  return *this;
}

JsonWriter& JsonWriter::Add(const char* key, bool value) {
  AppendKey(key);
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::AddArray(const char* key,
                                 const std::vector<uint64_t>& values) {
  AppendKey(key);
  out_.push_back('[');
  for (size_t i = 0; i < values.size(); i++) {
    if (i > 0) {
      out_.push_back(',');
    }
    char buf[24];
    snprintf(buf, sizeof(buf), "%" PRIu64, values[i]);
    out_.append(buf);
  }
  out_.push_back(']');
  return *this;
}

std::string JsonWriter::Finish() {
  if (!finished_) {
    out_.push_back('}');
    finished_ = true;
  }
  return out_;
}

JsonWriter EventLogger::NewEvent(const char* name) const {
  JsonWriter w;
  w.Add("ts_micros", NowMicros());
  w.Add("event", name);
  return w;
}

void EventLogger::Emit(JsonWriter* writer) {
  if (logger_ == nullptr) {
    return;
  }
  const std::string line = writer->Finish();
  logger_->LogRaw(InfoLogLevel::kInfo, Slice(line));
  RecordTick(stats_, Tickers::kShieldEventsEmitted, 1);
}

}  // namespace shield
