#ifndef SHIELD_UTIL_EVENT_LOGGER_H_
#define SHIELD_UTIL_EVENT_LOGGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logger.h"
#include "util/statistics.h"

namespace shield {

/// Builds one flat JSON object (string/number/bool fields plus arrays
/// of numbers). Field order follows Add() order; keys are written
/// verbatim (callers use fixed snake_case literals), values are
/// escaped per RFC 8259 so every emitted line parses as valid JSON.
class JsonWriter {
 public:
  JsonWriter() : out_("{") {}

  JsonWriter& Add(const char* key, const Slice& value);
  JsonWriter& Add(const char* key, const std::string& value) {
    return Add(key, Slice(value));
  }
  JsonWriter& Add(const char* key, const char* value) {
    return Add(key, Slice(value));
  }
  JsonWriter& Add(const char* key, uint64_t value);
  JsonWriter& Add(const char* key, int64_t value);
  JsonWriter& Add(const char* key, int value) {
    return Add(key, static_cast<int64_t>(value));
  }
  JsonWriter& Add(const char* key, double value);
  JsonWriter& Add(const char* key, bool value);
  JsonWriter& AddArray(const char* key, const std::vector<uint64_t>& values);

  /// Closes the object. The writer must not be reused afterwards.
  std::string Finish();

  static void AppendEscaped(std::string* out, const Slice& value);

 private:
  void AppendKey(const char* key);

  std::string out_;
  bool first_ = true;
  bool finished_ = false;
};

/// Emits typed engine events as JSON lines into the info LOG (one
/// object per line, `"event"` names the type, `"ts_micros"` is a
/// monotonic timestamp). Thread safe when the underlying Logger is.
/// Null-logger safe: with a null logger every Emit is a no-op.
///
/// Event taxonomy (see DESIGN.md "Observability"): db_open, flush_begin,
/// flush_end, compaction_begin, compaction_end, offload_dispatch,
/// offload_fallback, wal_roll, wal_salvage, scrub_begin, scrub_end,
/// quarantine, file_repaired, error_state, kds_lookup, trace_start,
/// trace_end; and, emitted by the deterministic simulator (src/sim):
/// sim_epoch, sim_fault_injected, sim_ops, sim_crash, oracle_check,
/// sim_done.
class EventLogger {
 public:
  explicit EventLogger(Logger* logger, Statistics* stats = nullptr)
      : logger_(logger), stats_(stats) {}

  /// Starts an event object: {"ts_micros":…,"event":"<name>". Callers
  /// Add() fields and pass the writer to Emit().
  JsonWriter NewEvent(const char* name) const;

  /// Finishes the object and writes it as one line at kInfo.
  void Emit(JsonWriter* writer);

  bool enabled() const { return logger_ != nullptr; }

 private:
  Logger* const logger_;
  Statistics* const stats_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_EVENT_LOGGER_H_
