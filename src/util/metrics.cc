#include "util/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/clock.h"

namespace shield {

MetricLabels::MetricLabels(
    std::initializer_list<std::pair<std::string, std::string>> labels) {
  for (const auto& kv : labels) {
    Set(kv.first, kv.second);
  }
}

void MetricLabels::Set(const std::string& key, const std::string& value) {
  for (auto& kv : kv_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  kv_.emplace_back(key, value);
  std::sort(kv_.begin(), kv_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeHelpText(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string MetricLabels::Encode() const {
  if (kv_.empty()) {
    return std::string();
  }
  std::string out = "{";
  bool first = true;
  for (const auto& kv : kv_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(kv.first).append("=\"").append(EscapeLabelValue(kv.second));
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

void WindowedHistogram::RotateLocked(uint64_t now_micros) const {
  const uint64_t epoch = now_micros / kSlotMicros;
  for (int i = 0; i < kNumSlots; i++) {
    // A slot is live only while its epoch is recent enough to still be
    // addressable by the ring; anything older is folded into the
    // ancient accumulator so full history stays exact.
    if (slot_epoch_[i] != kUnusedSlotEpoch &&
        slot_epoch_[i] + kNumSlots <= epoch) {
      if (slots_[i].Count() > 0) {
        ancient_.Merge(slots_[i]);
        slots_[i].Clear();
      }
      slot_epoch_[i] = kUnusedSlotEpoch;
    }
  }
}

void WindowedHistogram::Record(uint64_t value) {
  const uint64_t now = NowMicros();
  const uint64_t epoch = now / kSlotMicros;
  const int slot = static_cast<int>(epoch % kNumSlots);
  std::lock_guard<std::mutex> lock(mu_);
  RotateLocked(now);
  if (slot_epoch_[slot] != epoch) {
    if (slot_epoch_[slot] != kUnusedSlotEpoch && slots_[slot].Count() > 0) {
      ancient_.Merge(slots_[slot]);
    }
    slots_[slot].Clear();
    slot_epoch_[slot] = epoch;
  }
  slots_[slot].Add(value);
}

void WindowedHistogram::MergeWindow(uint64_t window_micros,
                                    Histogram* out) const {
  out->Clear();
  const uint64_t now = NowMicros();
  std::lock_guard<std::mutex> lock(mu_);
  if (window_micros == 0) {
    out->Merge(ancient_);
    for (int i = 0; i < kNumSlots; i++) {
      out->Merge(slots_[i]);
    }
    return;
  }
  const uint64_t cutoff =
      now >= window_micros ? now - window_micros : 0;
  for (int i = 0; i < kNumSlots; i++) {
    if (slot_epoch_[i] == kUnusedSlotEpoch) {
      continue;
    }
    // Include a slot if any part of it overlaps the trailing window.
    const uint64_t slot_end = (slot_epoch_[i] + 1) * kSlotMicros;
    if (slot_end > cutoff) {
      out->Merge(slots_[i]);
    }
  }
}

HistogramSnapshot WindowedHistogram::Snapshot(uint64_t window_micros) const {
  Histogram merged;
  MergeWindow(window_micros, &merged);
  HistogramSnapshot snap;
  snap.count = merged.Count();
  if (snap.count == 0) {
    return snap;
  }
  snap.sum = merged.Average() * static_cast<double>(merged.Count());
  snap.min = merged.Min();
  snap.max = merged.Max();
  snap.p50 = merged.Percentile(50.0);
  snap.p99 = merged.Percentile(99.0);
  snap.p999 = merged.Percentile(99.9);
  return snap;
}

MetricsRegistry::Instrument* MetricsRegistry::GetInstrument(
    const std::string& name, const std::string& help,
    const MetricLabels& labels, MetricType type) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.instruments.empty()) {
    family.type = type;
    family.help = help;
  } else if (family.help.empty() && !help.empty()) {
    family.help = help;
  }
  const std::string encoded = labels.Encode();
  auto it = family.instruments.find(encoded);
  if (it == family.instruments.end()) {
    auto inst = std::make_unique<Instrument>();
    inst->encoded_labels = encoded;
    it = family.instruments.emplace(encoded, std::move(inst)).first;
  }
  // The family keeps the type it was first registered with, but a
  // later cross-type registration of the same name must not leave a
  // null behind either pointer the system dereferences: back-fill the
  // kind the encoder renders (family.type) and the kind this caller
  // asked for. The mismatched caller gets a working instrument that
  // simply is not what the family exports.
  auto ensure = [](Instrument* inst, MetricType t) {
    switch (t) {
      case MetricType::kCounter:
        if (inst->counter == nullptr) {
          inst->counter = std::make_unique<Counter>();
        }
        break;
      case MetricType::kGauge:
        if (inst->gauge == nullptr) {
          inst->gauge = std::make_unique<Gauge>();
        }
        break;
      case MetricType::kHistogram:
        if (inst->histogram == nullptr) {
          inst->histogram = std::make_unique<WindowedHistogram>();
        }
        break;
    }
  };
  ensure(it->second.get(), family.type);
  ensure(it->second.get(), type);
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  return GetInstrument(name, help, labels, MetricType::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  return GetInstrument(name, help, labels, MetricType::kGauge)->gauge.get();
}

WindowedHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                 const std::string& help,
                                                 const MetricLabels& labels) {
  return GetInstrument(name, help, labels, MetricType::kHistogram)
      ->histogram.get();
}

namespace {

void AppendValue(std::string* out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      v < 1e15 && v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  out->append(buf);
}

/// `{a="1"}` + extra pairs -> `{a="1",quantile="0.5"}`. `extra` values
/// are already escaped-safe literals.
std::string MergeLabels(const std::string& encoded,
                        std::initializer_list<std::pair<const char*, const char*>>
                            extra) {
  std::string out;
  if (encoded.empty()) {
    out.push_back('{');
  } else {
    out.append(encoded.data(), encoded.size() - 1);  // drop trailing '}'
    out.push_back(',');
  }
  bool first = true;
  for (const auto& kv : extra) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append(kv.first).append("=\"").append(kv.second).append("\"");
  }
  out.push_back('}');
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[128];
  for (const auto& [name, family] : families_) {
    const bool counter = family.type == MetricType::kCounter;
    const std::string exposed = counter ? name + "_total" : name;
    if (!family.help.empty()) {
      out.append("# HELP ").append(exposed).append(" ").append(
          EscapeHelpText(family.help));
      out.push_back('\n');
    }
    out.append("# TYPE ").append(exposed);
    switch (family.type) {
      case MetricType::kCounter:
        out.append(" counter\n");
        break;
      case MetricType::kGauge:
        out.append(" gauge\n");
        break;
      case MetricType::kHistogram:
        out.append(" summary\n");
        break;
    }
    for (const auto& [encoded, inst] : family.instruments) {
      switch (family.type) {
        case MetricType::kCounter: {
          out.append(exposed).append(encoded).push_back(' ');
          std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n",
                        inst->counter->value());
          out.append(buf);
          break;
        }
        case MetricType::kGauge: {
          out.append(exposed).append(encoded).push_back(' ');
          AppendValue(&out, inst->gauge->value());
          out.push_back('\n');
          break;
        }
        case MetricType::kHistogram: {
          const HistogramSnapshot full = inst->histogram->Snapshot(0);
          static const struct {
            const char* q;
            double HistogramSnapshot::*field;
          } kQuantiles[] = {{"0.5", &HistogramSnapshot::p50},
                            {"0.99", &HistogramSnapshot::p99},
                            {"0.999", &HistogramSnapshot::p999}};
          for (const auto& q : kQuantiles) {
            out.append(name).append(
                MergeLabels(encoded, {{"quantile", q.q}}));
            out.push_back(' ');
            AppendValue(&out, full.*(q.field));
            out.push_back('\n');
          }
          out.append(name).append("_sum").append(encoded).push_back(' ');
          AppendValue(&out, full.sum);
          out.push_back('\n');
          out.append(name).append("_count").append(encoded).push_back(' ');
          std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", full.count);
          out.append(buf);
          break;
        }
      }
    }
    if (family.type == MetricType::kHistogram) {
      // Sliding-window p99s as a sibling gauge family: real SLO
      // signal over recent traffic, not process lifetime.
      out.append("# TYPE ").append(name).append("_window gauge\n");
      static const struct {
        const char* label;
        uint64_t micros;
      } kWindows[] = {{"10s", WindowedHistogram::kWindowShortMicros},
                      {"1m", WindowedHistogram::kWindowLongMicros}};
      for (const auto& [encoded, inst] : family.instruments) {
        for (const auto& w : kWindows) {
          const HistogramSnapshot snap = inst->histogram->Snapshot(w.micros);
          static const struct {
            const char* q;
            double HistogramSnapshot::*field;
          } kQuantiles[] = {{"0.99", &HistogramSnapshot::p99},
                            {"0.999", &HistogramSnapshot::p999}};
          for (const auto& q : kQuantiles) {
            out.append(name).append("_window").append(MergeLabels(
                encoded, {{"window", w.label}, {"quantile", q.q}}));
            out.push_back(' ');
            AppendValue(&out, snap.*(q.field));
            out.push_back('\n');
          }
        }
      }
    }
  }
  return out;
}

}  // namespace shield
