#include "util/health.h"

#include <chrono>
#include <cstdio>

namespace shield {

const char* HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kOk:
      return "ok";
    case HealthLevel::kWarn:
      return "warn";
    case HealthLevel::kCritical:
      return "critical";
  }
  return "unknown";
}

bool ParseHealthLevel(const std::string& name, HealthLevel* out) {
  if (name == "ok") {
    *out = HealthLevel::kOk;
  } else if (name == "warn") {
    *out = HealthLevel::kWarn;
  } else if (name == "critical") {
    *out = HealthLevel::kCritical;
  } else {
    return false;
  }
  return true;
}

HealthMonitor::~HealthMonitor() { StopBackground(); }

void HealthMonitor::RegisterDetector(const std::string& name,
                                     Detector detector) {
  std::lock_guard<std::mutex> lock(mu_);
  DetectorState state;
  state.name = name;
  state.fn = std::move(detector);
  detectors_.push_back(std::move(state));
}

void HealthMonitor::SetTransitionSink(TransitionSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

std::vector<HealthTransition> HealthMonitor::Evaluate() {
  // eval_mu_ serializes evaluations (detector closures never run
  // concurrently with each other), but detectors must run with mu_
  // RELEASED: they take their owner's locks (the DB mutex) and do real
  // I/O (KDS probe, manifest reads), while status readers — some of
  // which already hold those owner locks, e.g. ExportGauges during a
  // property read — take mu_. Running detectors under mu_ is an ABBA
  // deadlock with the DB mutex and blocks every status read on
  // detector I/O.
  std::lock_guard<std::mutex> eval_lock(eval_mu_);
  std::vector<Detector> fns;
  TransitionSink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    evaluations_++;
    sink = sink_;
    fns.reserve(detectors_.size());
    for (const auto& d : detectors_) {
      fns.push_back(d.fn);
    }
  }
  std::vector<HealthSample> samples;
  samples.reserve(fns.size());
  for (auto& fn : fns) {
    samples.push_back(fn());
  }
  std::vector<HealthTransition> transitions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Registration only appends, so index i still names the detector
    // whose closure produced samples[i] even if more were registered
    // while we ran.
    const size_t n =
        samples.size() < detectors_.size() ? samples.size() : detectors_.size();
    for (size_t i = 0; i < n; i++) {
      DetectorState& d = detectors_[i];
      HealthSample& sample = samples[i];
      if (d.evaluated && sample.level != d.level) {
        HealthTransition t;
        t.detector = d.name;
        t.from = d.level;
        t.to = sample.level;
        t.value = sample.value;
        t.detail = sample.detail;
        transitions.push_back(std::move(t));
      }
      d.level = sample.level;
      d.value = sample.value;
      d.detail = std::move(sample.detail);
      d.evaluated = true;
    }
  }
  if (sink) {
    for (const auto& t : transitions) {
      sink(t);
    }
  }
  return transitions;
}

std::vector<HealthStatus> HealthMonitor::CurrentStatus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HealthStatus> out;
  out.reserve(detectors_.size());
  for (const auto& d : detectors_) {
    HealthStatus s;
    s.detector = d.name;
    s.level = d.level;
    s.value = d.value;
    s.detail = d.detail;
    out.push_back(std::move(s));
  }
  return out;
}

HealthLevel HealthMonitor::Overall() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthLevel worst = HealthLevel::kOk;
  for (const auto& d : detectors_) {
    if (static_cast<int>(d.level) > static_cast<int>(worst)) {
      worst = d.level;
    }
  }
  return worst;
}

uint64_t HealthMonitor::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evaluations_;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) && v < 1e15 &&
      v > -1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  out->append(buf);
}

}  // namespace

std::string HealthMonitor::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  HealthLevel worst = HealthLevel::kOk;
  for (const auto& d : detectors_) {
    if (static_cast<int>(d.level) > static_cast<int>(worst)) {
      worst = d.level;
    }
  }
  std::string out = "{\"overall\":";
  AppendJsonString(&out, HealthLevelName(worst));
  out.append(",\"detectors\":[");
  bool first = true;
  for (const auto& d : detectors_) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    out.append("{\"name\":");
    AppendJsonString(&out, d.name);
    out.append(",\"level\":");
    AppendJsonString(&out, HealthLevelName(d.level));
    out.append(",\"value\":");
    AppendJsonNumber(&out, d.value);
    out.append(",\"detail\":");
    AppendJsonString(&out, d.detail);
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

void HealthMonitor::ExportGauges(MetricsRegistry* registry,
                                 const MetricLabels& base) const {
  // Copy status first and touch the registry with mu_ released:
  // callers may hold their own locks (the DB mutex during a property
  // read), so mu_ must only ever guard plain state copies here.
  const std::vector<HealthStatus> status = CurrentStatus();
  HealthLevel worst = HealthLevel::kOk;
  for (const auto& d : status) {
    MetricLabels labels = base;
    labels.Set("detector", d.detector);
    registry
        ->GetGauge("shield_health_level",
                   "Detector level: 0 ok, 1 warn, 2 critical", labels)
        ->Set(static_cast<double>(static_cast<int>(d.level)));
    if (static_cast<int>(d.level) > static_cast<int>(worst)) {
      worst = d.level;
    }
  }
  registry
      ->GetGauge("shield_health_overall",
                 "Worst detector level: 0 ok, 1 warn, 2 critical", base)
      ->Set(static_cast<double>(static_cast<int>(worst)));
}

void HealthMonitor::StartBackground(uint64_t interval_micros) {
  std::lock_guard<std::mutex> lock(bg_mu_);
  if (bg_running_ || interval_micros == 0) {
    return;
  }
  bg_stop_ = false;
  bg_running_ = true;
  bg_thread_ = std::thread([this, interval_micros] {
    BackgroundLoop(interval_micros);
  });
}

void HealthMonitor::StopBackground() {
  std::thread joinme;
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (!bg_running_) {
      return;
    }
    bg_stop_ = true;
    bg_cv_.notify_all();
    joinme = std::move(bg_thread_);
    bg_running_ = false;
  }
  if (joinme.joinable()) {
    joinme.join();
  }
}

void HealthMonitor::BackgroundLoop(uint64_t interval_micros) {
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!bg_stop_) {
    bg_cv_.wait_for(lock, std::chrono::microseconds(interval_micros),
                    [this] { return bg_stop_; });
    if (bg_stop_) {
      return;
    }
    lock.unlock();
    Evaluate();
    lock.lock();
  }
}

}  // namespace shield
