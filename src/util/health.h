#ifndef SHIELD_UTIL_HEALTH_H_
#define SHIELD_UTIL_HEALTH_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace shield {

/// Detector verdict severity. Ordered: comparisons like `level >=
/// kWarn` are meaningful.
enum class HealthLevel : int {
  kOk = 0,
  kWarn = 1,
  kCritical = 2,
};

const char* HealthLevelName(HealthLevel level);
/// Parses "ok"/"warn"/"critical"; false on anything else.
bool ParseHealthLevel(const std::string& name, HealthLevel* out);

/// One detector's verdict at one evaluation. `value` is the
/// detector-specific magnitude that drove the verdict (stall micros,
/// L0 file count, lag bytes, breaker state...), `detail` a short
/// operator-facing reason.
struct HealthSample {
  HealthLevel level = HealthLevel::kOk;
  double value = 0;
  std::string detail;
};

/// Emitted whenever a detector's level changes between evaluations
/// (including the recovery edge back to ok).
struct HealthTransition {
  std::string detector;
  HealthLevel from = HealthLevel::kOk;
  HealthLevel to = HealthLevel::kOk;
  double value = 0;
  std::string detail;
};

/// Last-evaluation state of one detector.
struct HealthStatus {
  std::string detector;
  HealthLevel level = HealthLevel::kOk;
  double value = 0;
  std::string detail;
};

/// Evaluates a set of registered detectors — on demand and/or on a
/// background cadence — and tracks per-detector level transitions.
/// Detectors are pure sampling closures supplied by the owner (the DB
/// wires stall/L0/scrub/KDS/rotation/replica probes in); the monitor
/// owns only the ok/warn/critical state machine:
///
///     ok ⇄ warn ⇄ critical   (any direct edge is legal; every edge
///     ok ⇄ critical           is reported as one HealthTransition)
///
/// Thread safe. Evaluate() serializes concurrent callers (on a
/// dedicated evaluation mutex), so detector closures never run
/// concurrently with each other — but they run with the monitor's
/// state lock RELEASED, so detectors may take their owner's locks and
/// do blocking I/O, and status reads (CurrentStatus/Overall/ToJson/
/// ExportGauges) never block on a slow detector.
class HealthMonitor {
 public:
  using Detector = std::function<HealthSample()>;
  using TransitionSink = std::function<void(const HealthTransition&)>;

  HealthMonitor() = default;
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Registration order is evaluation and report order. Not legal
  /// after StartBackground().
  void RegisterDetector(const std::string& name, Detector detector);

  /// Called (outside the monitor's locks) with every transition an
  /// evaluation produced — the DB points this at its event logger.
  void SetTransitionSink(TransitionSink sink);

  /// Runs every detector once; returns the transitions this pass
  /// produced (also forwarded to the sink).
  std::vector<HealthTransition> Evaluate();

  std::vector<HealthStatus> CurrentStatus() const;
  /// Worst current detector level (ok when nothing is registered).
  HealthLevel Overall() const;
  uint64_t evaluations() const;

  /// `{"overall":"ok","detectors":[{"name":...,"level":...,
  /// "value":...,"detail":...},...]}` — the `shield.health` property.
  std::string ToJson() const;

  /// Mirrors current levels into `shield_health_level{detector=...}`
  /// gauges (0/1/2) plus one `shield_health_overall`.
  void ExportGauges(MetricsRegistry* registry, const MetricLabels& base) const;

  /// Background evaluation loop on a dedicated thread (wall-clock
  /// cadence). Idempotent; StopBackground (or destruction) joins it.
  void StartBackground(uint64_t interval_micros);
  void StopBackground();

 private:
  struct DetectorState {
    std::string name;
    Detector fn;
    HealthLevel level = HealthLevel::kOk;
    double value = 0;
    std::string detail;
    bool evaluated = false;
  };

  void BackgroundLoop(uint64_t interval_micros);

  // Lock order: eval_mu_ before mu_. mu_ guards plain state copies
  // only and is never held across a detector call or any other
  // blocking work, so holding an outside lock (the DB mutex) while
  // taking mu_ cannot deadlock against an evaluation.
  mutable std::mutex eval_mu_;
  mutable std::mutex mu_;
  std::vector<DetectorState> detectors_;
  TransitionSink sink_;
  uint64_t evaluations_ = 0;

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  std::thread bg_thread_;
  bool bg_stop_ = false;
  bool bg_running_ = false;
};

}  // namespace shield

#endif  // SHIELD_UTIL_HEALTH_H_
