#include "util/thread_pool.h"

#include "util/perf_context.h"

namespace shield {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Schedule(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::QueueDepth() {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
    if (queue_.empty()) {
      // shutting_down_ and drained.
      return;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    lock.unlock();
    // Pooled threads outlive the ops they serve: chunk-decrypt and
    // shard-apply jobs charge this thread's PerfContext, and whatever
    // they leave behind would be misattributed to the next op that
    // lands on this worker. Each job starts from a zeroed context.
    GetPerfContext()->Reset();
    job();
    lock.lock();
    active_--;
    if (queue_.empty() && active_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

}  // namespace shield
