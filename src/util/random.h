#ifndef SHIELD_UTIL_RANDOM_H_
#define SHIELD_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace shield {

/// A simple xorshift-based pseudo-random generator. Deterministic given
/// a seed; used by tests and workload generators (never for key
/// material — see crypto/secure_random.h for that).
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ull : seed) {}

  uint64_t Next64() {
    // xorshift64*
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return (Next64() >> 11) * (1.0 / 9007199254740992.0);  // 2^53
  }

  /// Returns true with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Skewed: pick base uniformly from [0, max_log], then return a
  /// uniform number in [0, 2^base).
  uint64_t Skewed(int max_log) { return Uniform(uint64_t{1} << Uniform(max_log + 1)); }

 private:
  uint64_t state_;
};

/// Zipfian distribution over [0, n) using the Gray et al. algorithm
/// (same as YCSB's ZipfianGenerator). theta defaults to 0.99.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99, uint64_t seed = 301);

  uint64_t Next();

  /// Draws a value and scatters it with a multiplicative hash so that
  /// hot keys are spread over the keyspace (YCSB scrambled-zipfian).
  uint64_t NextScrambled();

  uint64_t num_items() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
  Random rnd_;
};

/// Bounded Pareto distribution for value sizes (used by the mixgraph
/// workload approximation; the Facebook characterization fits value
/// sizes to a generalized Pareto).
class ParetoGenerator {
 public:
  /// xm: scale (minimum), alpha: shape, cap: maximum returned value.
  ParetoGenerator(double xm, double alpha, double cap, uint64_t seed = startSeed());

  double Next();

 private:
  static uint64_t startSeed() { return 12345; }
  double xm_;
  double alpha_;
  double cap_;
  Random rnd_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_RANDOM_H_
