#include "util/retry.h"

#include <algorithm>

namespace shield {

namespace {

/// The exponential ladder before jitter: initial * multiplier^(attempt-2),
/// capped at max_backoff_micros. Attempt 1 never waits.
uint64_t BaseBackoffMicros(const RetryPolicy& policy, int attempt) {
  if (attempt <= 1) {
    return 0;
  }
  double backoff = static_cast<double>(policy.initial_backoff_micros);
  for (int i = 2; i < attempt; i++) {
    backoff *= policy.multiplier;
    if (backoff >= static_cast<double>(policy.max_backoff_micros)) {
      break;
    }
  }
  return std::min(static_cast<uint64_t>(backoff), policy.max_backoff_micros);
}

}  // namespace

uint64_t RetryPolicy::BackoffMicros(int attempt, Random* rnd) const {
  uint64_t micros = BaseBackoffMicros(*this, attempt);
  if (jitter > 0 && micros > 0 && rnd != nullptr) {
    const uint64_t span = static_cast<uint64_t>(jitter * micros);
    if (span > 0) {
      micros = micros - span + rnd->Uniform(span + 1);
    }
  }
  return micros;
}

uint64_t RetryPolicy::BackoffMicros(int attempt, uint64_t* rnd_state) const {
  uint64_t micros = BaseBackoffMicros(*this, attempt);
  if (jitter > 0 && micros > 0) {
    Random rnd(*rnd_state);
    const uint64_t span = static_cast<uint64_t>(jitter * micros);
    if (span > 0) {
      micros = micros - span + rnd.Uniform(span + 1);
    }
    *rnd_state = rnd.Next64();
  }
  return micros;
}

bool IsRetryableStatus(const Status& s) { return s.IsTransient(); }

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, int* attempts_out,
                    const RetryContext& ctx) {
  Clock* clock = ctx.clock != nullptr ? ctx.clock : SystemClock();
  Random local_rnd(policy.seed == 0 ? 0x5e7e7 : policy.seed);
  Random* rnd = ctx.rnd != nullptr ? ctx.rnd : &local_rnd;

  const uint64_t start = clock->NowMicros();
  const int max_attempts = std::max(policy.max_attempts, 1);
  Status s;
  int attempts_done = 0;
  for (int attempt = 1; attempt <= max_attempts; attempt++) {
    uint64_t backoff = policy.BackoffMicros(attempt, rnd);
    if (backoff > 0) {
      if (policy.deadline_micros > 0) {
        const uint64_t elapsed = clock->NowMicros() - start;
        if (elapsed >= policy.deadline_micros) {
          break;  // budget exhausted before this retry could start
        }
        // Never sleep past the deadline: cap to the remaining budget.
        backoff = std::min(backoff, policy.deadline_micros - elapsed);
      }
      clock->SleepForMicros(backoff);
    }
    s = op();
    attempts_done = attempt;
    if (s.ok() || !IsRetryableStatus(s)) {
      break;
    }
    if (policy.deadline_micros > 0 &&
        clock->NowMicros() - start >= policy.deadline_micros) {
      break;
    }
  }
  if (attempts_out != nullptr) {
    *attempts_out = std::max(attempts_done, 1);
  }
  return s;
}

}  // namespace shield
