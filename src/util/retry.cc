#include "util/retry.h"

#include <algorithm>

#include "util/clock.h"
#include "util/random.h"

namespace shield {

uint64_t RetryPolicy::BackoffMicros(int attempt, uint64_t* rnd_state) const {
  if (attempt <= 1) {
    return 0;
  }
  double backoff = static_cast<double>(initial_backoff_micros);
  for (int i = 2; i < attempt; i++) {
    backoff *= multiplier;
    if (backoff >= static_cast<double>(max_backoff_micros)) {
      break;
    }
  }
  uint64_t micros = std::min(static_cast<uint64_t>(backoff), max_backoff_micros);
  if (jitter > 0 && micros > 0) {
    Random rnd(*rnd_state);
    const uint64_t span = static_cast<uint64_t>(jitter * micros);
    if (span > 0) {
      micros = micros - span + rnd.Uniform(span + 1);
    }
    *rnd_state = rnd.Next64();
  }
  return micros;
}

bool IsRetryableStatus(const Status& s) { return s.IsTransient(); }

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, int* attempts_out) {
  const uint64_t start = NowMicros();
  uint64_t rnd_state = policy.seed == 0 ? 0x5e7e7 : policy.seed;
  Status s;
  int attempt = 0;
  for (attempt = 1; attempt <= std::max(policy.max_attempts, 1); attempt++) {
    const uint64_t backoff = policy.BackoffMicros(attempt, &rnd_state);
    if (backoff > 0) {
      SleepForMicros(backoff);
    }
    s = op();
    if (s.ok() || !IsRetryableStatus(s)) {
      break;
    }
    if (policy.deadline_micros > 0 &&
        NowMicros() - start >= policy.deadline_micros) {
      break;
    }
  }
  if (attempts_out != nullptr) {
    *attempts_out = std::min(attempt, std::max(policy.max_attempts, 1));
  }
  return s;
}

}  // namespace shield
