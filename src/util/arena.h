#ifndef SHIELD_UTIL_ARENA_H_
#define SHIELD_UTIL_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace shield {

/// Arena allocates memory in large blocks and hands out bump-pointer
/// chunks. Used by the memtable: all skiplist nodes and entries live in
/// the arena and are freed together when the memtable is dropped.
/// Allocate/AllocateAligned must be externally synchronized (the
/// memtable holds the DB write mutex); MemoryUsage is safe to read
/// concurrently.
class Arena {
 public:
  Arena();
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  /// Allocation aligned for pointer-sized access (skiplist nodes).
  char* AllocateAligned(size_t bytes);

  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  // Small enough that a freshly-created memtable (which allocates one
  // block for the skiplist head) stays far below any reasonable
  // write_buffer_size; the DB compares arena usage against that limit
  // to decide when to flush.
  static constexpr size_t kBlockSize = 4096;

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::atomic<size_t> memory_usage_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_ARENA_H_
