#ifndef SHIELD_UTIL_STATUS_H_
#define SHIELD_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace shield {

/// Status represents the result of an operation: success, or one of a
/// small set of error categories plus a human-readable message. The
/// library uses Status (never exceptions) on all fallible paths,
/// following the RocksDB idiom.
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotFound, msg, msg2);
  }
  static Status Corruption(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kCorruption, msg, msg2);
  }
  static Status NotSupported(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kNotSupported, msg, msg2);
  }
  static Status InvalidArgument(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kInvalidArgument, msg, msg2);
  }
  static Status IOError(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kIOError, msg, msg2);
  }
  static Status PermissionDenied(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kPermissionDenied, msg, msg2);
  }
  static Status Busy(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kBusy, msg, msg2);
  }
  static Status TryAgain(const Slice& msg, const Slice& msg2 = Slice()) {
    return Status(Code::kTryAgain, msg, msg2);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsPermissionDenied() const { return code_ == Code::kPermissionDenied; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsTryAgain() const { return code_ == Code::kTryAgain; }

  /// True for error categories that describe a momentary condition
  /// (resource contention, injected transient fault, unavailable
  /// service) where retrying the same operation may succeed. Used by
  /// RetryPolicy (util/retry.h) and background-job rescheduling to
  /// classify errors uniformly.
  bool IsTransient() const {
    return code_ == Code::kTryAgain || code_ == Code::kBusy;
  }

  /// Returns a string such as "Corruption: bad block checksum".
  std::string ToString() const;

 private:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kPermissionDenied,
    kBusy,
    kTryAgain,
  };

  Status(Code code, const Slice& msg, const Slice& msg2);

  Code code_;
  std::string msg_;
};

}  // namespace shield

#endif  // SHIELD_UTIL_STATUS_H_
