#include "util/random.h"

#include <cmath>

namespace shield {

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rnd_(seed) {
  zetan_ = Zeta(n_, theta_);
  zeta2theta_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  // O(n) harmonic sum; fine for the key counts used in benchmarks.
  // For very large n, sample the tail: the sum converges slowly but a
  // partial sum with a continuous correction keeps error under 1%.
  constexpr uint64_t kExactLimit = 10'000'000;
  double sum = 0;
  const uint64_t exact = n < kExactLimit ? n : kExactLimit;
  for (uint64_t i = 1; i <= exact; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  if (n > exact) {
    // Integral approximation of the remaining tail.
    sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
            std::pow(static_cast<double>(exact), 1.0 - theta)) /
           (1.0 - theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next() {
  const double u = rnd_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  return static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

uint64_t ZipfianGenerator::NextScrambled() {
  const uint64_t v = Next();
  // FNV-style scatter.
  uint64_t h = v * 0xc6a4a7935bd1e995ull;
  h ^= h >> 47;
  h *= 0xc6a4a7935bd1e995ull;
  return h % n_;
}

ParetoGenerator::ParetoGenerator(double xm, double alpha, double cap,
                                 uint64_t seed)
    : xm_(xm), alpha_(alpha), cap_(cap), rnd_(seed) {}

double ParetoGenerator::Next() {
  double u = rnd_.NextDouble();
  if (u <= 0.0) {
    u = 1e-12;
  }
  const double v = xm_ / std::pow(u, 1.0 / alpha_);
  return v > cap_ ? cap_ : v;
}

}  // namespace shield
