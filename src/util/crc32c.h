#ifndef SHIELD_UTIL_CRC32C_H_
#define SHIELD_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace shield {
namespace crc32c {

/// Returns the CRC32C (Castagnoli polynomial) of data[0, n-1] extended
/// from an initial crc (use 0 for a fresh computation).
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// CRC values stored on disk are "masked" (as in LevelDB/RocksDB) so that
// computing the CRC of a string that already contains embedded CRCs does
// not degrade the hash.
static constexpr uint32_t kMaskDelta = 0xa282ead8ul;

inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace shield

#endif  // SHIELD_UTIL_CRC32C_H_
